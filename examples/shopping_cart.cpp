// The paper's Section 6.3 comparison, runnable: the same shopping cart
// once as an XQuery-only application (client renders the product list
// from the XML database via REST; one listener registration covers all
// Buy buttons) and once as the legacy stack (server-rendered markup +
// JavaScript with embedded XPath).
//
//   $ ./build/examples/shopping_cart

#include <cstdio>

#include "app/environment.h"
#include "xml/serializer.h"

using xqib::app::BrowserEnvironment;
using xqib::app::ReadPageFile;

namespace {

constexpr const char* kProducts =
    "<products>"
    "<product><name>laptop</name><price>1200</price></product>"
    "<product><name>mouse</name><price>25</price></product>"
    "<product><name>keyboard</name><price>49</price></product>"
    "</products>";

int RunVariant(const char* label, const char* page_file) {
  BrowserEnvironment env;
  env.fabric().PutResource("http://shop.example.com/products.xml",
                           kProducts);
  auto page = ReadPageFile(page_file);
  if (!page.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", page_file,
                 page.status().ToString().c_str());
    return 1;
  }
  xqib::Status st =
      env.LoadPage("http://shop.example.com/cart.xhtml", *page);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: load failed: %s\n", label,
                 st.ToString().c_str());
    return 1;
  }
  // Buy a laptop and two mice.
  for (const char* id : {"laptop", "mouse", "mouse"}) {
    if (!env.ClickId(id).ok()) {
      std::fprintf(stderr, "%s: click on %s failed: %s\n", label, id,
                   env.ScriptErrors().c_str());
      return 1;
    }
  }
  std::printf("--- %s ---\n", label);
  std::printf("cart: %s\n",
              xqib::xml::Serialize(env.ById("shoppingcart")).c_str());
  std::printf("server requests: %llu\n\n",
              static_cast<unsigned long long>(env.fabric().stats().requests));
  return 0;
}

}  // namespace

int main() {
  // XQuery-only: the client fetches products.xml itself (1 REST call)
  // and renders the list; the whole app is one language.
  if (RunVariant("XQuery-only (paper's proposal)",
                 "shopping_cart_xquery.xhtml") != 0) {
    return 1;
  }
  // Legacy: the server rendered the product list into the page (JSP in
  // the paper; here the pre-rendered markup ships with the page) and
  // JavaScript handles the clicks.
  if (RunVariant("JSP + JavaScript (legacy stack)",
                 "shopping_cart_js.xhtml") != 0) {
    return 1;
  }
  return 0;
}
