// Quickstart: load the paper's Hello-World page (§4.1) into the headless
// browser, watch the XQuery script run, then poke at the DOM with a
// second script that uses the Update Facility and the event extension.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "app/environment.h"
#include "xml/serializer.h"

using xqib::app::BrowserEnvironment;
using xqib::app::ReadPageFile;

int main() {
  BrowserEnvironment env;

  // 1. The paper's hello-world page, loaded verbatim from disk.
  auto hello = ReadPageFile("hello.xhtml");
  if (!hello.ok()) {
    std::fprintf(stderr, "cannot read page: %s\n",
                 hello.status().ToString().c_str());
    return 1;
  }
  xqib::Status st = env.LoadPage("http://demo.example.com/hello.xhtml",
                                 *hello);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const std::string& alert : env.plugin().alerts()) {
    std::printf("[alert] %s\n", alert.c_str());
  }

  // 2. A richer page: a counter driven by the paper's event-handling
  //    grammar extension ("on event ... attach listener").
  st = env.LoadPage("http://demo.example.com/counter.xhtml", R"(
    <html><body>
      <input type="button" id="inc" value="+1"/>
      <p>count: <span id="count">0</span></p>
      <script type="text/xqueryp"><![CDATA[
        declare updating function local:inc($evt, $obj) {
          replace value of node //span[@id="count"]
            with xs:integer(string(//span[@id="count"])) + 1
        };
        on event "onclick" at //input[@id="inc"]
          attach listener local:inc
      ]]></script>
    </body></html>)");
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 3; ++i) {
    if (!env.ClickId("inc").ok()) return 1;
  }
  std::printf("[counter after 3 clicks] %s\n",
              env.ById("count")->StringValue().c_str());
  std::printf("[final page]\n%s\n",
              xqib::xml::Serialize(env.window()->document()->root(),
                                   {.indent = true})
                  .c_str());
  return 0;
}
