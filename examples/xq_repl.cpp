// xq_repl: a small command-line XQuery processor over the XQIB engine —
// handy for exploring the dialect this repository implements (XPath 2.0
// core, FLWOR, constructors, updates, scripting).
//
//   $ ./build/examples/xq_repl '1 + 2 * 3'
//   $ ./build/examples/xq_repl -d catalog.xml 'count(//item)'
//   $ echo 'for $i in 1 to 3 return <n>{$i}</n>' | ./build/examples/xq_repl
//   $ ./build/examples/xq_repl -p 'sum(1 to 1000)'   # with profile
//   $ ./build/examples/xq_repl            # interactive: one query/line

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "app/environment.h"
#include "base/strings.h"
#include "server/server.h"
#include "xml/interning.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/plan/plan.h"
#include "xquery/profiler.h"

using namespace xqib;  // NOLINT(build/namespaces) example code

namespace {

void PrintResult(const xdm::Sequence& result) {
  for (size_t i = 0; i < result.size(); ++i) {
    if (i > 0) std::printf(" ");
    const xdm::Item& item = result[i];
    if (item.is_node()) {
      std::printf("%s", xml::Serialize(item.node()).c_str());
    } else {
      std::printf("%s", item.atomic().ToXPathString().c_str());
    }
  }
  std::printf("\n");
}

// Counters accumulated across every query this process ran — the
// interactive loop recompiles per line, so per-evaluator stats are
// folded in here after each run and dumped by `:counters`.
xquery::Evaluator::EvalStats g_session_stats;

void AccumulateStats(const xquery::Evaluator::EvalStats& s) {
  xquery::Evaluator::EvalStats& d = g_session_stats;
  d.sorts_performed += s.sorts_performed;
  d.sorts_elided += s.sorts_elided;
  d.name_index_hits += s.name_index_hits;
  d.early_exits += s.early_exits;
  d.count_index_hits += s.count_index_hits;
  d.streams.items_pulled += s.streams.items_pulled;
  d.streams.items_materialized += s.streams.items_materialized;
  d.streams.buffers_avoided += s.streams.buffers_avoided;
  d.arena_bytes_used += s.arena_bytes_used;
  d.arena_resets += s.arena_resets;
  d.intern_hits = s.intern_hits;  // pool snapshot, not a delta
  d.parallel_predicate_chunks += s.parallel_predicate_chunks;
  d.plan_compiles += s.plan_compiles;
  d.plan_hits += s.plan_hits;
  d.plan_misses += s.plan_misses;
  d.plan_invalidations += s.plan_invalidations;
  d.plan_bytes += s.plan_bytes;
  d.delta.emitted += s.delta.emitted;
  d.delta.index_splices += s.delta.index_splices;
  d.delta.bucket_rebuilds_avoided += s.delta.bucket_rebuilds_avoided;
  d.delta.listeners_skipped += s.delta.listeners_skipped;
  d.http.cache_hits += s.http.cache_hits;
  d.http.cache_misses += s.http.cache_misses;
  d.http.prefetch_issued += s.http.prefetch_issued;
  d.http.prefetch_hits += s.http.prefetch_hits;
  d.http.scatter_batches += s.http.scatter_batches;
}

void PrintCounters(const xml::Document* context_doc) {
  const xquery::Evaluator::EvalStats& s = g_session_stats;
  std::printf("--- session counters ---\n");
  std::printf("  eval: %llu sorts performed, %llu elided, %llu name-index "
              "hits, %llu early exits, %llu count-index hits\n",
              (unsigned long long)s.sorts_performed,
              (unsigned long long)s.sorts_elided,
              (unsigned long long)s.name_index_hits,
              (unsigned long long)s.early_exits,
              (unsigned long long)s.count_index_hits);
  std::printf("  streams: %llu pulled, %llu materialized, %llu buffers "
              "avoided\n",
              (unsigned long long)s.streams.items_pulled,
              (unsigned long long)s.streams.items_materialized,
              (unsigned long long)s.streams.buffers_avoided);
  std::printf("  memory: %llu arena bytes, %llu resets, %llu intern hits\n",
              (unsigned long long)s.arena_bytes_used,
              (unsigned long long)s.arena_resets,
              (unsigned long long)s.intern_hits);
  std::printf("  plans: %llu compiles, %llu dispatches, %llu fallbacks, "
              "%llu invalidations, %llu bytes\n",
              (unsigned long long)s.plan_compiles,
              (unsigned long long)s.plan_hits,
              (unsigned long long)s.plan_misses,
              (unsigned long long)s.plan_invalidations,
              (unsigned long long)s.plan_bytes);
  std::printf("  delta: %llu emitted, %llu index splices, %llu rebuilds "
              "avoided, %llu listeners skipped\n",
              (unsigned long long)s.delta.emitted,
              (unsigned long long)s.delta.index_splices,
              (unsigned long long)s.delta.bucket_rebuilds_avoided,
              (unsigned long long)s.delta.listeners_skipped);
  std::printf("  http: %llu cache hits, %llu cache misses, %llu prefetches "
              "issued, %llu prefetch hits, %llu scatter batches\n",
              (unsigned long long)s.http.cache_hits,
              (unsigned long long)s.http.cache_misses,
              (unsigned long long)s.http.prefetch_issued,
              (unsigned long long)s.http.prefetch_hits,
              (unsigned long long)s.http.scatter_batches);
  if (context_doc != nullptr) {
    std::printf("  document: %llu index builds, %llu fine-grained hits, "
                "%llu index splices, %llu rebuilds avoided, %llu order "
                "rebuilds\n",
                (unsigned long long)context_doc->name_index_builds(),
                (unsigned long long)context_doc->name_index_fine_hits(),
                (unsigned long long)context_doc->index_splices(),
                (unsigned long long)context_doc->bucket_rebuilds_avoided(),
                (unsigned long long)context_doc->order_rebuilds());
  }
}

// `:http [fabric]` — federation stats. Prints a fabric's two clock
// views (latency sum vs makespan, overlap, in-flight peak) and the
// process-wide response cache with its per-URL hit/miss table.
void PrintHttpStats(const net::HttpFabric* fabric) {
  std::printf("--- http federation ---\n");
  if (fabric != nullptr) {
    const net::HttpFabric::Stats& fs = fabric->stats();
    std::printf("  fabric: %llu requests, %llu bytes, %.1f ms latency sum, "
                "%.1f ms makespan, %.1f ms overlapped, %llu in-flight peak\n",
                (unsigned long long)fs.requests,
                (unsigned long long)fs.bytes_served,
                (double)fs.simulated_latency_ms, (double)fs.makespan_ms,
                (double)fs.overlapped_ms,
                (unsigned long long)fs.inflight_peak);
    std::printf("  fabric cache traffic: %llu hits, %llu misses\n",
                (unsigned long long)fs.cache_hits,
                (unsigned long long)fs.cache_misses);
  }
  net::HttpResponseCache& cache = *net::HttpResponseCache::Global();
  net::HttpResponseCache::Stats rc = cache.stats();
  std::printf("  response cache: %llu entries, ttl %.0f ms, %llu hits, "
              "%llu misses, %llu inserts, %llu invalidations, "
              "%llu expirations\n",
              (unsigned long long)cache.size(), cache.ttl_ms(),
              (unsigned long long)rc.hits, (unsigned long long)rc.misses,
              (unsigned long long)rc.inserts,
              (unsigned long long)rc.invalidations,
              (unsigned long long)rc.expirations);
  for (const auto& [url, st] : cache.UrlStatsSnapshot()) {
    std::printf("    %s: %llu hits, %llu misses\n", url.c_str(),
                (unsigned long long)st.hits, (unsigned long long)st.misses);
  }
}

// `:http <page-file> [n [events [target-id]]]` — hosts the page on a
// demo page server (same harness as `:sessions`), fires the events, and
// dumps the backend fabric + shared response cache afterwards: the
// second session onward should answer its GETs from the cache.
int RunHttp(const std::string& args) {
  if (args.empty()) {
    PrintHttpStats(nullptr);
    return 0;
  }
  std::istringstream in(args);
  std::string page_file, target_id = "laptop";
  int sessions = 2, events = 3;
  in >> page_file >> sessions >> events >> target_id;
  auto page = app::ReadPageFile(page_file);
  if (!page.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", page_file.c_str(),
                 page.status().ToString().c_str());
    return 1;
  }
  server::PageServer server;
  server.backend().PutResource(
      "http://shop.example.com/products.xml",
      "<products>"
      "<product><name>laptop</name><price>1200</price></product>"
      "<product><name>mouse</name><price>25</price></product>"
      "<product><name>keyboard</name><price>49</price></product>"
      "</products>");
  for (int s = 0; s < std::max(sessions, 1); ++s) {
    auto session = server.CreateSessionFromSource(
        "http://shop.example.com/page.xhtml", *page);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    for (int e = 0; e < events; ++e) {
      server::SessionEvent ev;
      ev.target_id = target_id;
      (*session)->Submit(ev);
    }
  }
  server.DrainAll();
  PrintHttpStats(&server.backend());
  return 0;
}

// `:sessions` — shared-substrate stats (intern pool, plan cache);
// `:sessions <page-file> [n [events [target-id]]]` additionally hosts
// `n` copies of the page on a demo PageServer, fires `events` clicks at
// `target-id` per session, and dumps the per-session report.
int RunSessions(const std::string& args) {
  std::istringstream in(args);
  std::string page_file, target_id = "laptop";
  int sessions = 2, events = 3;
  in >> page_file >> sessions >> events >> target_id;
  if (!page_file.empty()) {
    auto page = app::ReadPageFile(page_file);
    if (!page.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", page_file.c_str(),
                   page.status().ToString().c_str());
      return 1;
    }
    server::PageServer server;
    server.backend().PutResource(
        "http://shop.example.com/products.xml",
        "<products>"
        "<product><name>laptop</name><price>1200</price></product>"
        "<product><name>mouse</name><price>25</price></product>"
        "<product><name>keyboard</name><price>49</price></product>"
        "</products>");
    for (int s = 0; s < std::max(sessions, 1); ++s) {
      auto session = server.CreateSessionFromSource(
          "http://shop.example.com/page.xhtml", *page);
      if (!session.ok()) {
        std::fprintf(stderr, "session: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      for (int e = 0; e < events; ++e) {
        server::SessionEvent ev;
        ev.target_id = target_id;
        (*session)->Submit(ev);
      }
    }
    server.DrainAll();
    std::printf("%s", server.FormatSessionsReport().c_str());
    return 0;
  }
  xml::InternPoolStats intern = xml::GetInternStats();
  std::printf("--- shared substrate ---\n");
  std::printf("  intern pool: %llu hits, %llu misses, %llu strings, "
              "%llu names\n",
              (unsigned long long)intern.hits,
              (unsigned long long)intern.misses,
              (unsigned long long)intern.strings,
              (unsigned long long)intern.names);
  xquery::plan::PlanCache& cache = xquery::plan::PlanCache::Global();
  xquery::plan::PlanCache::Stats plans = cache.stats();
  std::printf("  plan cache: %llu entries, %llu hits, %llu misses, "
              "%llu invalidations, %llu compiles kept, %llu bytes\n",
              (unsigned long long)cache.size(),
              (unsigned long long)plans.hits,
              (unsigned long long)plans.misses,
              (unsigned long long)plans.invalidations,
              (unsigned long long)plans.inserts,
              (unsigned long long)plans.resident_bytes);
  return 0;
}

int RunQuery(const std::string& query, xml::Document* context_doc,
             bool print_doc_after, bool profile) {
  // `:plan <query>` dumps the compiled bytecode plans of the query's
  // user-declared functions instead of evaluating it; `:counters` dumps
  // the counters accumulated by every query run so far.
  std::string trimmed(TrimWhitespace(query));
  if (trimmed == ":counters") {
    PrintCounters(context_doc);
    return 0;
  }
  if (trimmed.rfind(":sessions", 0) == 0) {
    return RunSessions(std::string(TrimWhitespace(trimmed.substr(9))));
  }
  if (trimmed.rfind(":http", 0) == 0) {
    return RunHttp(std::string(TrimWhitespace(trimmed.substr(5))));
  }
  if (trimmed.rfind(":plan", 0) == 0) {
    auto dump = xquery::plan::DumpPlansForQuery(
        std::string(TrimWhitespace(trimmed.substr(5))));
    if (!dump.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   dump.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", dump->c_str());
    return 0;
  }
  xquery::Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  xquery::DynamicContext ctx;
  if (context_doc != nullptr) {
    xquery::DynamicContext::Focus f;
    f.item = xdm::Item::Node(context_doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  xquery::Profiler profiler;
  if (profile) ctx.profiler = &profiler;
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.ToString().c_str());
    return 1;
  }
  auto result = (*compiled)->Run(ctx);
  AccumulateStats((*compiled)->evaluator().stats());
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintResult(*result);
  if (profile) {
    std::printf("--- profile (hottest expressions by self time) ---\n%s",
                profiler.Report(15).c_str());
  }
  if (print_doc_after && context_doc != nullptr) {
    std::printf("--- document after updates ---\n%s\n",
                xml::Serialize(context_doc->root(), {.indent = true})
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<xml::Document> context_doc;
  bool show_doc = false;
  bool profile = false;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in.good()) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto parsed = xml::ParseDocument(buf.str());
      if (!parsed.ok()) {
        std::fprintf(stderr, "XML error: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      context_doc = std::move(parsed).value();
      // Structured index maintenance for the session document, so
      // repeated queries after updates splice buckets instead of
      // rebuilding them — `:counters` shows the effect.
      context_doc->set_delta_tracking(true);
      show_doc = true;
    } else if (arg == "-p" || arg == "--profile") {
      profile = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: xq_repl [-d context.xml] [-p] [query]\n"
                  "Without a query argument, reads queries from stdin "
                  "(one per line\nwhen interactive, whole input when "
                  "piped).\nA query of the form ':plan <query>' dumps "
                  "the compiled bytecode plans\nof the query's "
                  "user-declared functions instead of evaluating it.\n"
                  "A query of ':counters' dumps the evaluation counters "
                  "accumulated\nacross the session (eval/stream/memory/"
                  "plan/delta plus the context\ndocument's index "
                  "counters).\n"
                  "A query of ':sessions' dumps the shared-substrate "
                  "stats (intern pool,\nplan cache); ':sessions "
                  "<page-file> [n [events [target-id]]]' hosts n\ncopies "
                  "of the page on a demo page server, fires the events, "
                  "and dumps\nthe per-session report.\n"
                  "A query of ':http' dumps the shared HTTP response "
                  "cache (per-URL\nhits/misses included); ':http "
                  "<page-file> [n [events [target-id]]]'\nruns the page-"
                  "server demo first and adds the backend fabric's "
                  "stats\n(latency sum vs makespan, overlap, in-flight "
                  "peak).\n");
      return 0;
    } else {
      if (!query.empty()) query += " ";
      query += arg;
    }
  }

  if (!query.empty()) {
    return RunQuery(query, context_doc.get(), show_doc, profile);
  }

  // stdin mode: interactive line-by-line, or the whole pipe at once.
  if (isatty(0)) {
    std::printf("xq> ");
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      if (!TrimWhitespace(line).empty()) {
        rc = RunQuery(line, context_doc.get(), false, profile);
      }
      std::printf("xq> ");
    }
    std::printf("\n");
    return rc;
  }
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return RunQuery(buf.str(), context_doc.get(), show_doc, profile);
}
