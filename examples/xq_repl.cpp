// xq_repl: a small command-line XQuery processor over the XQIB engine —
// handy for exploring the dialect this repository implements (XPath 2.0
// core, FLWOR, constructors, updates, scripting).
//
//   $ ./build/examples/xq_repl '1 + 2 * 3'
//   $ ./build/examples/xq_repl -d catalog.xml 'count(//item)'
//   $ echo 'for $i in 1 to 3 return <n>{$i}</n>' | ./build/examples/xq_repl
//   $ ./build/examples/xq_repl -p 'sum(1 to 1000)'   # with profile
//   $ ./build/examples/xq_repl            # interactive: one query/line

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/strings.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/plan/plan.h"
#include "xquery/profiler.h"

using namespace xqib;  // NOLINT(build/namespaces) example code

namespace {

void PrintResult(const xdm::Sequence& result) {
  for (size_t i = 0; i < result.size(); ++i) {
    if (i > 0) std::printf(" ");
    const xdm::Item& item = result[i];
    if (item.is_node()) {
      std::printf("%s", xml::Serialize(item.node()).c_str());
    } else {
      std::printf("%s", item.atomic().ToXPathString().c_str());
    }
  }
  std::printf("\n");
}

int RunQuery(const std::string& query, xml::Document* context_doc,
             bool print_doc_after, bool profile) {
  // `:plan <query>` dumps the compiled bytecode plans of the query's
  // user-declared functions instead of evaluating it.
  std::string trimmed(TrimWhitespace(query));
  if (trimmed.rfind(":plan", 0) == 0) {
    auto dump = xquery::plan::DumpPlansForQuery(
        std::string(TrimWhitespace(trimmed.substr(5))));
    if (!dump.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   dump.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", dump->c_str());
    return 0;
  }
  xquery::Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  xquery::DynamicContext ctx;
  if (context_doc != nullptr) {
    xquery::DynamicContext::Focus f;
    f.item = xdm::Item::Node(context_doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  xquery::Profiler profiler;
  if (profile) ctx.profiler = &profiler;
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.ToString().c_str());
    return 1;
  }
  auto result = (*compiled)->Run(ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintResult(*result);
  if (profile) {
    std::printf("--- profile (hottest expressions by self time) ---\n%s",
                profiler.Report(15).c_str());
  }
  if (print_doc_after && context_doc != nullptr) {
    std::printf("--- document after updates ---\n%s\n",
                xml::Serialize(context_doc->root(), {.indent = true})
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<xml::Document> context_doc;
  bool show_doc = false;
  bool profile = false;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in.good()) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto parsed = xml::ParseDocument(buf.str());
      if (!parsed.ok()) {
        std::fprintf(stderr, "XML error: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      context_doc = std::move(parsed).value();
      show_doc = true;
    } else if (arg == "-p" || arg == "--profile") {
      profile = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: xq_repl [-d context.xml] [-p] [query]\n"
                  "Without a query argument, reads queries from stdin "
                  "(one per line\nwhen interactive, whole input when "
                  "piped).\nA query of the form ':plan <query>' dumps "
                  "the compiled bytecode plans\nof the query's "
                  "user-declared functions instead of evaluating it.\n");
      return 0;
    } else {
      if (!query.empty()) query += " ";
      query += arg;
    }
  }

  if (!query.empty()) {
    return RunQuery(query, context_doc.get(), show_doc, profile);
  }

  // stdin mode: interactive line-by-line, or the whole pipe at once.
  if (isatty(0)) {
    std::printf("xq> ");
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      if (!TrimWhitespace(line).empty()) {
        rc = RunQuery(line, context_doc.get(), false, profile);
      }
      std::printf("xq> ");
    }
    std::printf("\n");
    return rc;
  }
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return RunQuery(buf.str(), context_doc.get(), show_doc, profile);
}
