// The Section 6.2 Google-Maps/weather mash-up: JavaScript (the Maps
// side) and XQuery (REST integration of weather services and webcams)
// listen to the SAME search-button click and both update the one page
// DOM ("the Web page serves like a database").
//
//   $ ./build/examples/mashup [location]

#include <cstdio>
#include <string>

#include "app/environment.h"
#include "xml/serializer.h"

using xqib::app::BrowserEnvironment;
using xqib::app::ReadPageFile;
using xqib::net::HttpRequest;
using xqib::net::HttpResponse;

namespace {

std::string QueryParam(const std::string& url) {
  size_t pos = url.find("?q=");
  return pos == std::string::npos ? "" : url.substr(pos + 3);
}

}  // namespace

int main(int argc, char** argv) {
  std::string location = argc > 1 ? argv[1] : "Zurich";
  BrowserEnvironment env;

  // Simulated weather service (the paper uses "a selection of different
  // weather services depending on language and region").
  env.fabric().SetHandler(
      "http://weather.example.com/api",
      [](const HttpRequest& req) -> xqib::Result<HttpResponse> {
        std::string q = QueryParam(req.url);
        return HttpResponse{
            200,
            "<weather city=\"" + q + "\"><summary>" + q +
                ": sunny, 21 C</summary><wind>12 km/h</wind></weather>",
            "application/xml"};
      });
  // Simulated webcam directory.
  env.fabric().SetHandler(
      "http://webcams.example.com/api",
      [](const HttpRequest& req) -> xqib::Result<HttpResponse> {
        std::string q = QueryParam(req.url);
        return HttpResponse{
            200,
            "<cams><cam url=\"http://cams.example.com/" + q +
                "/north\"/><cam url=\"http://cams.example.com/" + q +
                "/south\"/></cams>",
            "application/xml"};
      });

  auto page = ReadPageFile("mashup.xhtml");
  if (!page.ok()) {
    std::fprintf(stderr, "cannot read page: %s\n",
                 page.status().ToString().c_str());
    return 1;
  }
  xqib::Status st = env.LoadPage("http://mashup.example.com/", *page);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Type a location into the search box and click Search. Both script
  // engines react to the same click.
  env.ById("searchbox")->SetAttribute(xqib::xml::QName("value"), location);
  st = env.ClickId("searchbtn");
  if (!st.ok()) {
    std::fprintf(stderr, "search failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("map (JavaScript):  %s\n",
              env.ById("map")->StringValue().c_str());
  std::printf("weather (XQuery):  %s\n",
              env.ById("weather")->StringValue().c_str());
  std::printf("webcams (XQuery):\n%s\n",
              xqib::xml::Serialize(env.ById("webcams"), {.indent = true})
                  .c_str());
  std::printf("REST calls made:   %llu\n",
              static_cast<unsigned long long>(env.fabric().stats().requests));
  return 0;
}
