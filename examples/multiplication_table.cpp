// The multiplication-table demo behind the paper's lines-of-code claim
// (§6.3: "77 lines of JavaScript code or alternatively only 29 lines of
// XQuery code"). Runs BOTH runnable implementations, verifies they
// produce the same table, and reports their script sizes.
//
//   $ ./build/examples/multiplication_table [size]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/environment.h"
#include "base/strings.h"
#include "browser/page.h"
#include "xml/serializer.h"

using namespace xqib;       // NOLINT(build/namespaces) example code
using namespace xqib::app;  // NOLINT(build/namespaces)

namespace {

// Counts non-blank lines of embedded script code in a page.
size_t ScriptLines(const std::string& page_source) {
  auto doc = xml::ParseDocument(page_source);
  if (!doc.ok()) return 0;
  size_t lines = 0;
  for (const browser::Script& script :
       browser::ExtractScripts(doc->get())) {
    for (const std::string& line : SplitChar(script.code, '\n')) {
      if (!TrimWhitespace(line).empty()) ++lines;
    }
  }
  return lines;
}

Result<std::string> RunVariant(const char* page_file, int size) {
  BrowserEnvironment env;
  XQ_ASSIGN_OR_RETURN(std::string page, ReadPageFile(page_file));
  XQ_RETURN_NOT_OK(env.LoadPage("http://demo.example.com/table.xhtml",
                                page));
  env.ById("n")->SetAttribute(xml::QName("value"), std::to_string(size));
  XQ_RETURN_NOT_OK(env.ClickId("go"));
  xml::Node* out = env.ById("out");
  if (out == nullptr || out->children().empty()) {
    return Status::Error("BRWS0006", "no table generated");
  }
  return xml::Serialize(out->children()[0]);
}

}  // namespace

int main(int argc, char** argv) {
  int size = argc > 1 ? std::atoi(argv[1]) : 5;

  auto js_page = ReadPageFile("multiplication_table_js.xhtml");
  auto xq_page = ReadPageFile("multiplication_table_xquery.xhtml");
  if (!js_page.ok() || !xq_page.ok()) {
    std::fprintf(stderr, "cannot read pages\n");
    return 1;
  }

  auto js_table = RunVariant("multiplication_table_js.xhtml", size);
  auto xq_table = RunVariant("multiplication_table_xquery.xhtml", size);
  if (!js_table.ok() || !xq_table.ok()) {
    std::fprintf(stderr, "run failed: %s / %s\n",
                 js_table.ok() ? "ok" : js_table.status().ToString().c_str(),
                 xq_table.ok() ? "ok" : xq_table.status().ToString().c_str());
    return 1;
  }

  bool same = *js_table == *xq_table;
  std::printf("table size          : %dx%d\n", size, size);
  std::printf("outputs identical   : %s\n", same ? "yes" : "NO");
  std::printf("JavaScript lines    : %zu\n", ScriptLines(*js_page));
  std::printf("XQuery lines        : %zu\n", ScriptLines(*xq_page));
  std::printf("paper's claim       : 77 (JS) vs 29 (XQuery)\n\n");
  std::printf("XQuery table (%dx%d):\n%s\n", size, size,
              xq_table->c_str());
  return same ? 0 : 1;
}
