<html><head><script type='text/javascript'>
function buy(e) {
  newElement = document.createElement("p");
  elementText = document.createTextNode
    (e.target.getAttribute(id));
  newElement.appendChild(elementText);
  var res = document.evaluate(
    "//div[@id='shoppingcart']", document, null,
    XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);
  res.snapshotItem(0).appendChild(newElement);
}
</script></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"></div>
<% // Code establishing connection
ResultSet results =
  statement.executeQuery("SELECT * FROM PRODUCTS");
while (results.next()) {
  out.println("<div>");
  String prodName = results.getString(1);
  out.println(prodName);
  out.println("<input type='button' value='Buy'");
  out.println("id='"+prodName+"'");
  out.println("onclick='buy(event)'/></div>"); }
results.close();
// Code closing connection %></body></html>
