// The Elsevier Reference 2.0 migration (paper §6.1, Figure 2): run the
// same browsing session against the server-side deployment and against
// the migrated client-side deployment, and compare what reaches the
// server. "Reducing cost by off-loading servers was the main motivation
// for this project."
//
//   $ ./build/examples/elsevier_reference [interactions]

#include <cstdio>
#include <cstdlib>

#include "app/elsevier.h"

using namespace xqib;            // NOLINT(build/namespaces) example code
using namespace xqib::app;       // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int interactions = argc > 1 ? std::atoi(argv[1]) : 20;
  elsevier::CorpusOptions corpus;

  std::printf("Reference 2.0: %d journals x %d volumes x %d issues x %d "
              "articles, %d user interactions\n\n",
              corpus.journals, corpus.volumes, corpus.issues,
              corpus.articles_per_issue, interactions);

  for (auto deployment : {elsevier::Deployment::kServerSide,
                          elsevier::Deployment::kClientSide}) {
    BrowserEnvironment env;
    Status st = elsevier::BuildCorpus(&env.store(), corpus);
    if (st.ok()) st = elsevier::DeployServer(&env.store(), &env.fabric());
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto report = elsevier::RunSession(&env, deployment, corpus,
                                       interactions);
    if (!report.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const char* label =
        deployment == elsevier::Deployment::kServerSide
            ? "server-side (original: page rendered per request)"
            : "client-side (migrated: XQuery in the browser + cache)";
    std::printf("%s\n", label);
    std::printf("  server requests : %llu\n",
                static_cast<unsigned long long>(report->requests));
    std::printf("  bytes shipped   : %llu\n",
                static_cast<unsigned long long>(report->bytes));
    std::printf("  simulated net ms: %.1f\n", report->latency_ms);
    std::printf("  last title      : %s\n\n", report->last_title.c_str());
  }
  std::printf(
      "The client-side deployment pays one corpus download up front and\n"
      "then serves every interaction from the in-page cache: the server\n"
      "request count no longer grows with user activity (Figure 2).\n");
  return 0;
}
