// xq_lint — static checker for XQuery page scripts (and bare queries).
//
//   $ ./build/examples/xq_lint examples/pages/multiplication_table_xquery.xhtml
//   $ ./build/examples/xq_lint --json broken_page.xhtml
//   $ echo 'declare variable $x := 1; $y' | ./build/examples/xq_lint -
//
// Runs the same multi-pass analyzer the browser plug-in runs at page
// load (scope/type/update/lint; diagnostics XQSA001-XQSA032, see
// docs/LANGUAGE.md "Static diagnostics"), so a page that lints clean
// here will not be rejected by the plug-in.
//
// Exit codes: 0 = clean (or warnings only), 1 = errors (or warnings
// with --werror), 2 = usage / unreadable input.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "app/environment.h"
#include "browser/page.h"
#include "xml/dom.h"
#include "xquery/analysis/lint.h"
#include "xquery/plan/plan.h"

using xqib::xquery::analysis::LintReport;

namespace {

struct CliOptions {
  bool json = false;
  bool werror = false;
  bool effects = false;  // dump per-function read/write sets instead
  bool plan = false;     // dump compiled plan listings instead
  std::vector<std::string> files;
};

bool ReadInput(const std::string& name, std::string* out) {
  if (name == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    *out = buf.str();
    return true;
  }
  std::ifstream in(name);
  if (in.good()) {
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
  }
  // Bare page names resolve against the shared examples/pages corpus.
  auto page = xqib::app::ReadPageFile(name);
  if (page.ok()) {
    *out = std::move(*page);
    return true;
  }
  return false;
}

bool IsXhtml(const std::string& name, const std::string& content) {
  for (const char* ext : {".xhtml", ".html", ".htm", ".xml"}) {
    if (name.size() > std::strlen(ext) &&
        name.compare(name.size() - std::strlen(ext), std::string::npos,
                     ext) == 0) {
      return true;
    }
  }
  // stdin: sniff for markup.
  size_t start = content.find_first_not_of(" \t\r\n");
  return start != std::string::npos && content[start] == '<';
}

int Usage() {
  std::fprintf(stderr,
               "usage: xq_lint [--json] [--werror] [--effects|--plan] "
               "<file.xhtml|file.xq|->...\n"
               "  --effects  dump the effect analysis (per-function "
               "read/write sets)\n             instead of diagnostics "
               "(text output; --json takes precedence)\n"
               "  --plan     dump the compiled plan listing (flat "
               "bytecode with\n             specialization annotations) "
               "for every user function\n");
  return 2;
}

// --plan on an XHTML page dumps the plans of every XQuery script block,
// prefixed with the same "script N" labels the linter uses; on a bare
// query it dumps the single module. Returns 0 / 1 (compile error) / 2.
int DumpPlans(const std::string& file, const std::string& content,
              bool is_xhtml) {
  namespace plan = xqib::xquery::plan;
  std::vector<std::pair<std::string, std::string>> sources;
  if (is_xhtml) {
    auto doc = xqib::xml::ParseDocument(content);
    if (!doc.ok()) {
      std::fprintf(stderr, "xq_lint: %s: %s\n", file.c_str(),
                   doc.status().ToString().c_str());
      return 2;
    }
    size_t index = 0;
    for (const auto& script : xqib::browser::ExtractScripts(doc->get())) {
      if (script.language != xqib::browser::ScriptLanguage::kXQuery &&
          script.language != xqib::browser::ScriptLanguage::kXQueryP) {
        continue;
      }
      ++index;
      sources.emplace_back("script " + std::to_string(index), script.code);
    }
  } else {
    sources.emplace_back("query", content);
  }
  for (const auto& [label, source] : sources) {
    auto dump = plan::DumpPlansForQuery(source);
    if (!dump.ok()) {
      std::fprintf(stderr, "xq_lint: %s: %s: %s\n", file.c_str(),
                   label.c_str(), dump.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %s:\n%s", file.c_str(), label.c_str(), dump->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--effects") {
      options.effects = true;
    } else if (arg == "--plan") {
      options.plan = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      options.files.push_back(std::move(arg));
    }
  }
  if (options.files.empty()) return Usage();

  bool any_errors = false;
  bool any_warnings = false;
  bool json_first = true;
  if (options.json) std::printf("[");
  for (const std::string& file : options.files) {
    std::string content;
    if (!ReadInput(file, &content)) {
      std::fprintf(stderr, "xq_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    if (options.plan && !options.json) {
      int rc = DumpPlans(file, content, IsXhtml(file, content));
      if (rc != 0) return rc;
      continue;
    }
    LintReport report;
    if (IsXhtml(file, content)) {
      auto r = xqib::xquery::analysis::LintXhtml(content);
      if (!r.ok()) {
        std::fprintf(stderr, "xq_lint: %s: %s\n", file.c_str(),
                     r.status().ToString().c_str());
        return 2;
      }
      report = std::move(*r);
    } else {
      report = xqib::xquery::analysis::LintQuery(content);
    }
    any_errors = any_errors || report.has_errors();
    any_warnings = any_warnings || report.has_warnings();
    if (options.json) {
      if (!json_first) std::printf(",");
      json_first = false;
      std::printf("{\"file\":\"%s\",\"units\":%s}", file.c_str(),
                  report.ToJson().c_str());
    } else if (options.effects) {
      for (const std::string& line : report.RenderEffects()) {
        std::printf("%s: %s\n", file.c_str(), line.c_str());
      }
    } else {
      for (const std::string& line : report.RenderAll()) {
        std::printf("%s: %s\n", file.c_str(), line.c_str());
      }
    }
  }
  if (options.json) std::printf("]\n");
  if (any_errors || (options.werror && any_warnings)) return 1;
  return 0;
}
