// T1 — the paper's lines-of-code comparison (§6.3): "The multiplication
// table demoed on that site requires 77 lines of JavaScript code or
// alternatively only 29 lines of XQuery code", plus the shopping-cart
// JSP+SQL+JavaScript vs XQuery-only contrast. This harness counts the
// ACTUAL runnable pages in examples/pages/ (the same files the example
// binaries execute and the tests verify), so the numbers are honest.
//
// Not a timing benchmark: prints the table directly.

#include <cstdio>
#include <string>

#include "app/environment.h"
#include "base/strings.h"
#include "browser/page.h"
#include "xml/xml_parser.h"

namespace {

using xqib::SplitChar;
using xqib::TrimWhitespace;

size_t NonBlankLines(const std::string& text) {
  size_t n = 0;
  for (const std::string& line : SplitChar(text, '\n')) {
    if (!TrimWhitespace(line).empty()) ++n;
  }
  return n;
}

// Counts non-blank script lines inside a page's <script> elements.
size_t ScriptLines(const std::string& page_source) {
  auto doc = xqib::xml::ParseDocument(page_source);
  if (!doc.ok()) return 0;
  size_t lines = 0;
  for (const xqib::browser::Script& script :
       xqib::browser::ExtractScripts(doc->get())) {
    lines += NonBlankLines(script.code);
  }
  return lines;
}

struct Row {
  const char* name;
  const char* file;
  bool whole_file;  // count the whole artifact (JSP mixes languages)
};

}  // namespace

int main() {
  const Row rows[] = {
      {"multiplication table, JavaScript",
       "multiplication_table_js.xhtml", false},
      {"multiplication table, XQuery",
       "multiplication_table_xquery.xhtml", false},
      {"shopping cart, JSP+SQL+JS (whole stack)",
       "shopping_cart_legacy.jsp", true},
      {"shopping cart, server-rendered + JS (client script)",
       "shopping_cart_js.xhtml", false},
      {"shopping cart, XQuery only (client script)",
       "shopping_cart_xquery.xhtml", false},
      {"mash-up page, JS + XQuery combined",
       "mashup.xhtml", false},
  };

  std::printf("T1: lines-of-code comparison (non-blank lines)\n");
  std::printf("%-55s %8s\n", "artifact", "lines");
  std::printf("%s\n", std::string(64, '-').c_str());
  size_t js_table = 0, xq_table = 0;
  for (const Row& row : rows) {
    auto source = xqib::app::ReadPageFile(row.file);
    if (!source.ok()) {
      std::fprintf(stderr, "missing page %s: %s\n", row.file,
                   source.status().ToString().c_str());
      return 1;
    }
    size_t lines =
        row.whole_file ? NonBlankLines(*source) : ScriptLines(*source);
    std::printf("%-55s %8zu\n", row.name, lines);
    if (std::string(row.file) == "multiplication_table_js.xhtml") {
      js_table = lines;
    }
    if (std::string(row.file) == "multiplication_table_xquery.xhtml") {
      xq_table = lines;
    }
  }
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf("paper's multiplication-table claim: 77 (JS) vs 29 (XQuery)"
              " = %.1fx\n",
              77.0 / 29.0);
  if (xq_table > 0) {
    std::printf("measured here:                      %zu (JS) vs %zu "
                "(XQuery) = %.1fx\n",
                js_table, xq_table,
                static_cast<double>(js_table) /
                    static_cast<double>(xq_table));
  }
  std::printf("\n(The XQuery advantage — one declarative constructor vs "
              "imperative DOM\ncalls — is the shape the paper reports; "
              "exact counts depend on style.)\n");
  return 0;
}
