#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "app/environment.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::bench {

using app::BrowserEnvironment;
using xquery::DynamicContext;
using xquery::Engine;
using xquery::Evaluator;

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      args->iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      args->out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      args->baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      args->check = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--iters N] [--out FILE] [--check] [--baseline FILE]\n",
          argv[0]);
      return false;
    }
  }
  if (args->iters <= 0) args->iters = 1;
  return true;
}

double NsPerOp(const std::function<void()>& op, int iters) {
  for (int i = 0; i < 3; ++i) op();  // warm caches and the name index
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

bool TimeQuery(const std::string& query, const std::string& xml,
               const Evaluator::EvalOptions& options, int iters,
               double* ns_per_op, std::string* result,
               Evaluator::EvalStats* stats) {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return false;
  }
  (*compiled)->evaluator().set_options(options);
  std::unique_ptr<xml::Document> doc;
  DynamicContext ctx;
  if (!xml.empty()) {
    auto parsed = xml::ParseDocument(xml);
    if (!parsed.ok()) return false;
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  if (!(*compiled)->BindGlobals(ctx).ok()) return false;
  bool ok = true;
  *ns_per_op = NsPerOp(
      [&] {
        auto r = (*compiled)->Run(ctx);
        if (!r.ok()) {
          ok = false;
          return;
        }
        *result = xdm::SequenceToString(*r);
      },
      iters);
  *stats = (*compiled)->evaluator().stats();
  return ok;
}

bool MeasureStats(const std::string& query, const std::string& xml,
                  const Evaluator::EvalOptions& options,
                  Evaluator::EvalStats* stats) {
  double ns;
  std::string result;
  return TimeQuery(query, xml, options, 1, &ns, &result, stats);
}

bool RunQueryScenario(const std::string& name, const std::string& query,
                      const std::string& xml, int iters,
                      const Evaluator::EvalOptions& on,
                      const Evaluator::EvalOptions& off,
                      std::vector<ScenarioResult>* results,
                      Evaluator::EvalStats* on_stats) {
  ScenarioResult sr;
  sr.name = name;
  std::string on_result, off_result;
  Evaluator::EvalStats off_stats;
  if (!TimeQuery(query, xml, on, iters, &sr.on_ns, &on_result, on_stats) ||
      !TimeQuery(query, xml, off, iters, &sr.off_ns, &off_result,
                 &off_stats)) {
    return false;
  }
  sr.results_match = on_result == off_result;
  if (!sr.results_match) {
    std::fprintf(stderr, "%s: ablation results differ:\n  on:  %s\n  off: %s\n",
                 name.c_str(), on_result.c_str(), off_result.c_str());
  }
  results->push_back(sr);
  return true;
}

std::string MakeDispatchPage(int rows) {
  std::ostringstream out;
  out << R"(<html><body>
<input id="btn"/><span id="status">0</span><table id="data">)";
  for (int i = 0; i < rows; ++i) {
    out << "<tr><td>r" << i << "</td></tr>";
  }
  out << R"(</table>
<script type="text/xqueryp"><![CDATA[
declare updating function local:refresh($evt, $obj) {
  replace value of node //span[@id="status"]
    with string(count(//tr))
};
on event "onclick" at //input[@id="btn"] attach listener local:refresh
]]></script></body></html>)";
  return out.str();
}

bool RunDispatchScenario(const std::string& name, int rows, int iters,
                         const Evaluator::EvalOptions& on,
                         const Evaluator::EvalOptions& off,
                         std::vector<ScenarioResult>* results,
                         plugin::XqibPlugin::EventStats* on_stats) {
  BrowserEnvironment env;
  Status st =
      env.LoadPage("http://bench.example.com/", MakeDispatchPage(rows));
  if (!st.ok() || !env.ScriptErrors().empty()) {
    std::fprintf(stderr, "%s: page load failed: %s %s\n", name.c_str(),
                 st.ToString().c_str(), env.ScriptErrors().c_str());
    return false;
  }
  xml::Node* button = env.ById("btn");
  auto click = [&] {
    browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  };
  ScenarioResult sr;
  sr.name = name;
  env.plugin().set_eval_options(on);
  sr.on_ns = NsPerOp(click, iters);
  *on_stats = env.plugin().last_event_stats();
  std::string on_status = env.ById("status")->StringValue();
  env.plugin().set_eval_options(off);
  sr.off_ns = NsPerOp(click, iters);
  std::string off_status = env.ById("status")->StringValue();
  sr.results_match =
      on_status == off_status && on_status == std::to_string(rows);
  results->push_back(sr);
  return true;
}

std::string ScenariosJson(const std::vector<ScenarioResult>& results,
                          const char* on_key, const char* off_key) {
  std::ostringstream out;
  out << "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double speedup = r.on_ns > 0 ? r.off_ns / r.on_ns : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"%s_ns_per_op\": %.1f, "
                  "\"%s_ns_per_op\": %.1f, \"speedup\": %.2f, "
                  "\"results_match\": %s}%s\n",
                  r.name.c_str(), on_key, r.on_ns, off_key, r.off_ns, speedup,
                  r.results_match ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]";
  return out.str();
}

void EmitJson(const std::string& json, const std::string& out_path) {
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  std::fputs(json.c_str(), stdout);
}

bool AllResultsMatch(const std::vector<ScenarioResult>& results) {
  bool ok = true;
  for (const ScenarioResult& r : results) {
    if (!r.results_match) {
      std::fprintf(stderr, "FAIL: %s ablation results differ\n",
                   r.name.c_str());
      ok = false;
    }
  }
  return ok;
}

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (pct <= 0) return samples.front();
  // Nearest-rank: the smallest sample with at least pct% of the mass
  // at or below it. ceil(p/100 * n) as an index, clamped.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  double sum = 0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  auto rank = [&](double pct) {
    size_t r = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
    if (r == 0) r = 1;
    if (r > samples.size()) r = samples.size();
    return samples[r - 1];
  };
  out.p50 = rank(50);
  out.p95 = rank(95);
  out.p99 = rank(99);
  return out;
}

bool ReadBaselineValue(const std::string& path, const std::string& scenario,
                       const std::string& field, double* out) {
  std::ifstream in(path);
  if (!in) return false;
  const std::string name_marker = "\"name\": \"" + scenario + "\"";
  const std::string field_marker = "\"" + field + "\":";
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(name_marker) == std::string::npos) continue;
    size_t at = line.find(field_marker);
    if (at == std::string::npos) return false;
    *out = std::atof(line.c_str() + at + field_marker.size());
    return true;
  }
  return false;
}

bool CheckBaseline(const std::string& path,
                   const std::vector<BaselineMetric>& metrics,
                   double tolerance) {
  bool ok = true;
  for (const BaselineMetric& m : metrics) {
    const std::string label = m.scenario + "." + m.field;
    double baseline = 0;
    if (!ReadBaselineValue(path, m.scenario, m.field, &baseline) ||
        baseline <= 0) {
      std::fprintf(stderr, "FAIL: %s: no baseline entry in %s\n",
                   label.c_str(), path.c_str());
      ok = false;
      continue;
    }
    double delta_pct = (m.fresh / baseline - 1.0) * 100.0;
    if (m.fresh > baseline * tolerance) {
      std::fprintf(stderr,
                   "FAIL: %s: expected <= %.1f (baseline %.1f x %.2f), "
                   "actual %.1f, delta %+.0f%%\n",
                   label.c_str(), baseline * tolerance, baseline, tolerance,
                   m.fresh, delta_pct);
      ok = false;
    } else {
      std::fprintf(stderr,
                   "BASELINE OK: %s: expected %.1f, actual %.1f, "
                   "delta %+.0f%%\n",
                   label.c_str(), baseline, m.fresh, delta_pct);
    }
  }
  return ok;
}

}  // namespace xqib::bench
