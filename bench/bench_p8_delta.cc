// P8 — delta propagation: structured DomDeltas from the update-apply
// pass drive name-index bucket splicing and dispatch-level listener
// skipping, replacing PR 6's survive-or-recompute with true incremental
// re-evaluation. Self-timed runner emitting BENCH_P8.json, same schema
// as P2-P7.
//
// Usage:
//   bench_p8_delta [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios (arms = EvalOptions::delta_propagation on vs off; the off
// arm is exactly the PR 6 name-granular invalidation path):
//   index_churn    one (non-memoized) listener counting //item, one
//                  updating listener INSERTING an <item/> each op — the
//                  write name equals the read name, so the PR 6 arm's
//                  per-name counter moves every op and the whole //item
//                  bucket is rebuilt from a full-document DFS. The delta
//                  arm splices the one inserted node into the bucket in
//                  document order (gap keys make its position known
//                  without an order recompute).
//   listener_skip  eight memoizable listeners each counting a distinct
//                  element name, one updating listener appending into a
//                  log none of them read. The delta arm classifies the
//                  batch once per sync (read-set x write-name
//                  intersection) and replays all eight entries with
//                  ZERO evaluation and zero per-name probes; the off
//                  arm re-validates every recorded name counter per
//                  listener per event.
//
// --check exits non-zero unless both ablations agree byte-for-byte,
// the delta arm actually spliced (bucket_rebuilds_avoided > 0,
// index_splices > 0) with a >= 5x full-rebuild reduction over the PR 6
// arm, and the skip arm skipped listeners with zero re-evaluations in
// the timed window. --baseline FILE compares the fresh delta-arm ns/op
// numbers against the checked-in BENCH_P8.json within +/-25% — the CI
// regression guard.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "xml/dom.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;

// Write name == read name: every op inserts an <item/> next to the
// 20000 the counter reads.
std::string MakeIndexChurnPage(int items) {
  std::ostringstream out;
  out << "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      << "declare function local:n($evt, $obj) {\n"
      << "  concat(\"n=\", string(count(//item)))\n};\n"
      << "declare updating function local:mut($evt, $obj) {\n"
      << "  insert node <item v=\"0\"/> into //div[@id=\"data\"]\n};\n"
      << "{\n  on event \"onclick\" at //input[@id=\"btn\"] "
      << "attach listener local:n;\n"
      << "  on event \"onclick\" at //input[@id=\"mut\"] "
      << "attach listener local:mut;\n  ()\n}\n]]></script></head><body>"
      << "<input id=\"btn\"/><input id=\"mut\"/><div id=\"data\">";
  for (int i = 0; i < items; ++i) out << "<item v=\"1\"/>";
  out << "</div></body></html>";
  return out.str();
}

// Eight memoizable listeners over eight disjoint names; the mutator
// writes a ninth name none of them read.
std::string MakeSkipPage(int items_per_name, int listeners) {
  std::ostringstream out;
  out << "<html><head><script type=\"text/xqueryp\"><![CDATA[\n";
  for (int l = 0; l < listeners; ++l) {
    out << "declare function local:m" << l << "($evt, $obj) {\n"
        << "  concat(\"m" << l << "=\", string(count(//t" << l << ")))\n};\n";
  }
  out << "declare updating function local:mut($evt, $obj) {\n"
      << "  insert node <entry/> into /html/body/loga\n};\n{\n";
  for (int l = 0; l < listeners; ++l) {
    out << "  on event \"onclick\" at //input[@id=\"btn\"] "
        << "attach listener local:m" << l << ";\n";
  }
  out << "  on event \"onclick\" at //input[@id=\"mut\"] "
      << "attach listener local:mut;\n  ()\n}\n]]></script></head><body>"
      << "<input id=\"btn\"/><input id=\"mut\"/><loga/><div id=\"data\">";
  for (int l = 0; l < listeners; ++l) {
    for (int i = 0; i < items_per_name; ++i) out << "<t" << l << "/>";
  }
  out << "</div></body></html>";
  return out.str();
}

struct ChurnEnv {
  BrowserEnvironment env;
  xqib::xml::Node* btn = nullptr;
  xqib::xml::Node* mut = nullptr;

  bool Load(const std::string& page) {
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok() || !env.ScriptErrors().empty()) {
      std::fprintf(stderr, "page load failed: %s %s\n", st.ToString().c_str(),
                   env.ScriptErrors().c_str());
      return false;
    }
    btn = env.ById("btn");
    mut = env.ById("mut");
    return btn != nullptr && mut != nullptr;
  }

  void Click(xqib::xml::Node* target) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(target, e);
  }

  // One churn op: mutate, then count.
  void Op() {
    Click(mut);
    Click(btn);
  }
};

struct ArmCounters {
  // Document index maintenance during the timed window.
  uint64_t index_builds = 0;
  uint64_t index_splices = 0;
  uint64_t rebuilds_avoided = 0;
  // Plugin delta/memo activity during the timed window.
  uint64_t emitted = 0;
  uint64_t listeners_skipped = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_invalidations = 0;
};

// Times the churn op with delta propagation `delta` (PR 6 fine-grained
// stays on in both arms — it IS the off-arm), returning counter deltas
// over the timed window and the last listener result.
bool RunArm(const std::string& page, bool delta, bool memo, int iters,
            double* ns_per_op, ArmCounters* counters, std::string* result) {
  ChurnEnv d;
  xqib::xquery::Evaluator::EvalOptions opts;
  opts.delta_propagation = delta;
  d.env.plugin().set_eval_options(opts);
  d.env.plugin().set_memo_enabled(memo);
  if (!d.Load(page)) return false;
  // One op outside the window so memo entries are filled and the index
  // is warm: the timed window then measures steady-state churn.
  d.Op();
  const auto& memo_stats = d.env.plugin().memo_stats();
  const auto& delta_stats = d.env.plugin().delta_stats();
  const xqib::xml::Document* doc = d.env.browser().top_window()->document();
  const uint64_t builds0 = doc->name_index_builds();
  const uint64_t splices0 = doc->index_splices();
  const uint64_t avoided0 = doc->bucket_rebuilds_avoided();
  const uint64_t emitted0 = delta_stats.emitted;
  const uint64_t skipped0 = delta_stats.listeners_skipped;
  const uint64_t hits0 = memo_stats.hits;
  const uint64_t misses0 = memo_stats.misses;
  const uint64_t inval0 = memo_stats.invalidations;
  *ns_per_op = xqib::bench::NsPerOp([&] { d.Op(); }, iters);
  counters->index_builds = doc->name_index_builds() - builds0;
  counters->index_splices = doc->index_splices() - splices0;
  counters->rebuilds_avoided = doc->bucket_rebuilds_avoided() - avoided0;
  counters->emitted = delta_stats.emitted - emitted0;
  counters->listeners_skipped = delta_stats.listeners_skipped - skipped0;
  counters->memo_hits = memo_stats.hits - hits0;
  counters->memo_misses = memo_stats.misses - misses0;
  counters->memo_invalidations = memo_stats.invalidations - inval0;
  *result = d.env.plugin().last_listener_result();
  if (!d.env.ScriptErrors().empty()) {
    std::fprintf(stderr, "script errors during churn: %s\n",
                 d.env.ScriptErrors().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  std::vector<ScenarioResult> results;
  bool ok = true;

  // --- index_churn: splice the bucket vs rebuild it every op. ---
  ArmCounters index_delta, index_p6;
  {
    const std::string page = MakeIndexChurnPage(20000);
    ScenarioResult sr;
    sr.name = "index_churn";
    std::string delta_result, p6_result;
    ok &= RunArm(page, true, false, iters, &sr.on_ns, &index_delta,
                 &delta_result);
    ok &= RunArm(page, false, false, iters, &sr.off_ns, &index_p6,
                 &p6_result);
    sr.results_match = delta_result == p6_result && !delta_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "index_churn: delta %s != p6 %s\n",
                   delta_result.c_str(), p6_result.c_str());
    }
    results.push_back(sr);
  }

  // --- listener_skip: skip-by-read-set vs per-name probes per event. ---
  ArmCounters skip_delta, skip_p6;
  {
    const std::string page = MakeSkipPage(1000, 8);
    ScenarioResult sr;
    sr.name = "listener_skip";
    std::string delta_result, p6_result;
    ok &= RunArm(page, true, true, iters, &sr.on_ns, &skip_delta,
                 &delta_result);
    ok &= RunArm(page, false, true, iters, &sr.off_ns, &skip_p6,
                 &p6_result);
    sr.results_match = delta_result == p6_result && !delta_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "listener_skip: delta %s != p6 %s\n",
                   delta_result.c_str(), p6_result.c_str());
    }
    results.push_back(sr);
  }

  const double rebuild_ratio =
      static_cast<double>(index_p6.index_builds) /
      static_cast<double>(index_delta.index_builds == 0
                              ? 1
                              : index_delta.index_builds);

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p8_delta\",\n  \"iters\": " << iters
       << ",\n" << xqib::bench::ScenariosJson(results, "delta", "p6")
       << ",\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"rebuild_ratio\": %.2f,\n"
      "  \"counters\": {\"index_builds_delta\": %llu, "
      "\"index_builds_p6\": %llu, \"index_splices\": %llu, "
      "\"bucket_rebuilds_avoided\": %llu, \"deltas_emitted\": %llu, "
      "\"listeners_skipped\": %llu, \"skip_arm_misses\": %llu}\n}\n",
      rebuild_ratio,
      static_cast<unsigned long long>(index_delta.index_builds),
      static_cast<unsigned long long>(index_p6.index_builds),
      static_cast<unsigned long long>(index_delta.index_splices),
      static_cast<unsigned long long>(index_delta.rebuilds_avoided),
      static_cast<unsigned long long>(index_delta.emitted +
                                      skip_delta.emitted),
      static_cast<unsigned long long>(skip_delta.listeners_skipped),
      static_cast<unsigned long long>(skip_delta.memo_misses));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    if (index_delta.rebuilds_avoided == 0 || index_delta.index_splices == 0) {
      std::fprintf(stderr, "FAIL: the delta arm never spliced a bucket\n");
      return 1;
    }
    // The P8 acceptance floor: >= 5x fewer full index rebuilds than the
    // PR 6 arm on the same churn.
    if (rebuild_ratio < 5.0) {
      std::fprintf(stderr,
                   "FAIL: rebuild ratio %.2f (delta %llu vs p6 %llu) below "
                   "the 5x floor\n",
                   rebuild_ratio,
                   static_cast<unsigned long long>(index_delta.index_builds),
                   static_cast<unsigned long long>(index_p6.index_builds));
      return 1;
    }
    if (skip_delta.listeners_skipped == 0) {
      std::fprintf(stderr, "FAIL: no listener was ever delta-skipped\n");
      return 1;
    }
    // "Zero evaluation": past the warmup op, no skip-arm listener may
    // miss or be invalidated — every count event replays all 8 entries.
    if (skip_delta.memo_misses != 0 || skip_delta.memo_invalidations != 0) {
      std::fprintf(stderr,
                   "FAIL: skip arm re-evaluated (%llu misses, %llu "
                   "invalidations) in the timed window\n",
                   static_cast<unsigned long long>(skip_delta.memo_misses),
                   static_cast<unsigned long long>(
                       skip_delta.memo_invalidations));
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"index_churn", "delta_ns_per_op",
            results.empty() ? 0 : results[0].on_ns},
           {"listener_skip", "delta_ns_per_op",
            results.size() < 2 ? 0 : results[1].on_ns}})) {
    return 1;
  }
  return 0;
}
