// A1 — ablation for the paper's §1 claim that XQuery is "carefully
// designed to be highly optimisable": the same compiled query evaluated
// with and without the rewrite optimizer. The paper's plug-in compiles a
// page's prolog once and re-runs listeners on every event, so rewrite
// cost is paid once and saved work repeats per event.

#include <benchmark/benchmark.h>

#include <sstream>

#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace {

using xqib::xquery::CompileOptions;
using xqib::xquery::DynamicContext;
using xqib::xquery::Engine;

std::unique_ptr<xqib::xml::Document> MakeDoc(int items) {
  std::ostringstream out;
  out << "<catalog>";
  for (int i = 0; i < items; ++i) {
    out << "<item n=\"" << i << "\"><price>" << (i % 50) << "</price>"
        << "</item>";
  }
  out << "</catalog>";
  return std::move(xqib::xml::ParseDocument(out.str())).value();
}

// A listener-style query with foldable constants and a count()>0 guard —
// the shape page scripts take after template expansion.
const char* kQuery = R"(
  if (count(//item[xs:integer(string(price)) > (10 + 15)]) > 0)
  then
    for $i in //item
    where xs:integer(string($i/price)) > (2 * 10 + 5)
    return <hit n="{string($i/@n)}">{(1 + 1) * 2}</hit>
  else ()
)";

void RunQuery(benchmark::State& state, bool optimize) {
  auto doc = MakeDoc(static_cast<int>(state.range(0)));
  Engine engine;
  CompileOptions options;
  options.optimize = optimize;
  auto q = engine.Compile(kQuery, options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  for (auto _ : state) {
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewrites"] =
      static_cast<double>((*q)->optimizer_stats().total());
}

void BM_A1_Unoptimized(benchmark::State& state) { RunQuery(state, false); }
BENCHMARK(BM_A1_Unoptimized)->Arg(100)->Arg(1000)->Arg(10000);

void BM_A1_Optimized(benchmark::State& state) { RunQuery(state, true); }
BENCHMARK(BM_A1_Optimized)->Arg(100)->Arg(1000)->Arg(10000);

// Constant-heavy hot loop: where folding pays per iteration.
void RunLoop(benchmark::State& state, bool optimize) {
  Engine engine;
  CompileOptions options;
  options.optimize = optimize;
  auto q = engine.Compile(
      "sum(for $i in 1 to " + std::to_string(state.range(0)) +
      " return $i * (2 + 3) - (10 idiv 5))",
      options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    DynamicContext ctx;
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}

void BM_A1_HotLoopUnoptimized(benchmark::State& state) {
  RunLoop(state, false);
}
BENCHMARK(BM_A1_HotLoopUnoptimized)->Arg(1000)->Arg(100000);

void BM_A1_HotLoopOptimized(benchmark::State& state) {
  RunLoop(state, true);
}
BENCHMARK(BM_A1_HotLoopOptimized)->Arg(1000)->Arg(100000);

// Static-analyzer ablation: exists($i) on a for variable only folds
// when the optimizer has the analyzer's inferred-cardinality facts —
// syntactic rewriting cannot prove the variable is a singleton. Both
// runs use the full syntactic optimizer; only analysis is toggled.
void RunAnalyzerLoop(benchmark::State& state, bool analyze) {
  Engine engine;
  CompileOptions options;
  options.analyze = analyze;
  auto q = engine.Compile(
      "sum(for $i in 1 to " + std::to_string(state.range(0)) +
      " return (if (exists($i)) then $i else 0))",
      options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    DynamicContext ctx;
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["inferred_rewrites"] =
      static_cast<double>((*q)->optimizer_stats().inferred_rewrites);
}

void BM_A1_AnalyzerOff(benchmark::State& state) {
  RunAnalyzerLoop(state, false);
}
BENCHMARK(BM_A1_AnalyzerOff)->Arg(1000)->Arg(100000);

void BM_A1_AnalyzerOn(benchmark::State& state) {
  RunAnalyzerLoop(state, true);
}
BENCHMARK(BM_A1_AnalyzerOn)->Arg(1000)->Arg(100000);

// Compilation overhead of the optimizer itself (paid once per page).
void BM_A1_CompileCost(benchmark::State& state) {
  bool optimize = state.range(0) == 1;
  Engine engine;
  CompileOptions options;
  options.optimize = optimize;
  for (auto _ : state) {
    auto q = engine.Compile(kQuery, options);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_A1_CompileCost)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
