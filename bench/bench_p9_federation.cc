// P9 — async federation: the fig3 mash-up over K remote sources, serial
// round trips vs scatter-gather overlap, and the shared HTTP response
// cache cold vs warm. Self-timed runner emitting BENCH_P9.json, same
// schema as P2-P8.
//
// Usage:
//   bench_p9_federation [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios (arms = EvalOptions::async_federation on vs off; off is the
// one-round-trip-at-a-time client):
//   fanout_scatter  a listener with K literal http:get calls (the fig3
//                   weather fan-out). The plug-in's per-listener static
//                   fetch plan issues all K GETs before the body runs,
//                   so their latencies land inside one in-flight window:
//                   makespan ~= 1 RTT instead of K.
//   flwor_scatter   the same K sources reached through a FLWOR whose
//                   URL is concat(prefix, $s, suffix) — statically a
//                   template over the loop variable, so the evaluator's
//                   scatter hook prefetches the whole batch when the
//                   FLWOR is entered.
//
// The timed numbers are CPU cost (the fabric's latency is virtual); the
// federation win is read off the fabric's two clocks — `makespan_ms`
// (virtual wall clock) vs `simulated_latency_ms` (sum of round trips).
//
// --check exits non-zero unless both ablations agree byte-for-byte, the
// overlapped arms' makespan is <= 2x the single-source RTT while the
// serial arms pay >= 6x (K = 8), and the warm-cache pass answers >= 90%
// of its lookups from the shared response cache. --baseline FILE
// compares fresh numbers against the checked-in BENCH_P9.json within
// +25% — the CI regression guard. The guarded metrics are the virtual
// ones (overlapped makespan, warm-cache miss count): they are exact and
// machine-independent, unlike CPU ns/op which swings tens of percent on
// a noisy runner at the ~35 us/op these searches cost.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "net/response_cache.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;

constexpr int kSources = 8;

std::string SourceUrl(int s) {
  return "http://weather" + std::to_string(s) + ".example.com/api";
}

void PutSources(BrowserEnvironment* env) {
  for (int s = 0; s < kSources; ++s) {
    env->fabric().PutResource(
        SourceUrl(s), "<weather><summary>svc " + std::to_string(s) +
                          ": sunny</summary></weather>");
  }
}

// K literal GET sites: the plug-in's listener-level fetch plan sees
// every URL statically.
std::string MakeFanoutPage() {
  std::ostringstream page;
  page << "<html><body><input id=\"btn\"/><div id=\"out\"/>\n"
       << "<script type=\"text/xqueryp\"><![CDATA[\n"
       << "declare function local:go($evt, $obj) {\n  string-join((";
  for (int s = 0; s < kSources; ++s) {
    if (s > 0) page << ",\n    ";
    page << "string(http:get(\"" << SourceUrl(s) << "\")//summary)";
  }
  page << "), \"; \")\n};\n"
       << "on event \"onclick\" at //input[@id=\"btn\"] "
       << "attach listener local:go\n]]></script></body></html>";
  return page.str();
}

// One templated GET site inside a FLWOR: the evaluator's scatter hook
// instantiates concat("http://weather", $s, ...) per binding item.
std::string MakeFlworPage() {
  std::ostringstream page;
  page << "<html><body><input id=\"btn\"/><div id=\"out\"/>\n"
       << "<script type=\"text/xqueryp\"><![CDATA[\n"
       << "declare function local:go($evt, $obj) {\n"
       << "  string-join(\n    for $s in (";
  for (int s = 0; s < kSources; ++s) {
    if (s > 0) page << ", ";
    page << "\"" << s << "\"";
  }
  page << ")\n    return string(http:get(concat(\"http://weather\", $s, "
       << "\".example.com/api\"))//summary),\n    \"; \")\n};\n"
       << "on event \"onclick\" at //input[@id=\"btn\"] "
       << "attach listener local:go\n]]></script></body></html>";
  return page.str();
}

struct MashupEnv {
  BrowserEnvironment env;
  xqib::xml::Node* btn = nullptr;

  bool Load(const std::string& page, bool async_federation) {
    PutSources(&env);
    xqib::xquery::Evaluator::EvalOptions opts;
    opts.async_federation = async_federation;
    env.plugin().set_eval_options(opts);
    xqib::Status st = env.LoadPage("http://mashup.example.com/", page);
    if (!st.ok() || !env.ScriptErrors().empty()) {
      std::fprintf(stderr, "page load failed: %s %s\n", st.ToString().c_str(),
                   env.ScriptErrors().c_str());
      return false;
    }
    btn = env.ById("btn");
    return btn != nullptr;
  }

  void Op() {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(btn, e);
  }
};

struct ArmCounters {
  double makespan_ms_per_op = 0;
  double latency_ms_per_op = 0;
  double requests_per_op = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t inflight_peak = 0;
};

// Bare timed loop, no internal warmups (NsPerOp's would land inside
// the fabric-stats window and skew every per-op counter below by
// (iters + 3) / iters, making the virtual metrics depend on --iters).
double TimeOps(const std::function<void()>& op, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

// Times one search with async federation on/off; makespan and latency
// deltas are read off the fabric across the timed window.
bool RunArm(const std::string& page, bool async_federation, int iters,
            double* ns_per_op, ArmCounters* counters, std::string* result) {
  MashupEnv m;
  if (!m.Load(page, async_federation)) return false;
  // Warm plans, fetch-plan caches, and the listener memo gates before
  // the stats snapshot so the timed window holds exactly `iters` ops.
  for (int i = 0; i < 3; ++i) m.Op();
  const xqib::net::HttpFabric::Stats& fs = m.env.fabric().stats();
  const double makespan0 = fs.makespan_ms;
  const double latency0 = fs.simulated_latency_ms;
  const uint64_t requests0 = fs.requests;
  *ns_per_op = TimeOps([&] { m.Op(); }, iters);
  const double ops = static_cast<double>(iters);
  counters->makespan_ms_per_op = (fs.makespan_ms - makespan0) / ops;
  counters->latency_ms_per_op = (fs.simulated_latency_ms - latency0) / ops;
  counters->requests_per_op =
      static_cast<double>(fs.requests - requests0) / ops;
  const auto& es = m.env.plugin().last_event_stats();
  counters->prefetch_issued = es.http_prefetch_issued;
  counters->prefetch_hits = es.http_prefetch_hits;
  counters->inflight_peak = fs.inflight_peak;
  *result = m.env.plugin().last_listener_result();
  if (!m.env.ScriptErrors().empty()) {
    std::fprintf(stderr, "script errors: %s\n",
                 m.env.ScriptErrors().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  std::vector<ScenarioResult> results;
  bool ok = true;

  ArmCounters fanout_async, fanout_serial;
  {
    ScenarioResult sr;
    sr.name = "fanout_scatter";
    std::string on_result, off_result;
    ok &= RunArm(MakeFanoutPage(), true, iters, &sr.on_ns, &fanout_async,
                 &on_result);
    ok &= RunArm(MakeFanoutPage(), false, iters, &sr.off_ns, &fanout_serial,
                 &off_result);
    sr.results_match = on_result == off_result && !on_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "fanout_scatter: async %s != serial %s\n",
                   on_result.c_str(), off_result.c_str());
    }
    results.push_back(sr);
  }

  ArmCounters flwor_async, flwor_serial;
  {
    ScenarioResult sr;
    sr.name = "flwor_scatter";
    std::string on_result, off_result;
    ok &= RunArm(MakeFlworPage(), true, iters, &sr.on_ns, &flwor_async,
                 &on_result);
    ok &= RunArm(MakeFlworPage(), false, iters, &sr.off_ns, &flwor_serial,
                 &off_result);
    sr.results_match = on_result == off_result && !on_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "flwor_scatter: async %s != serial %s\n",
                   on_result.c_str(), off_result.c_str());
    }
    results.push_back(sr);
  }

  // --- warm_cache: same fan-out, shared response cache attached. The
  // first op pays K round trips and fills the cache; every later op
  // answers all K from it (TTL 60 s on a virtual clock that barely
  // moves). Measured against the identical no-cache run above.
  double cold_ns = 0, warm_ns = 0, hit_rate = 0;
  uint64_t cache_hits = 0, cache_misses = 0;
  bool cache_match = false;
  {
    MashupEnv m;
    xqib::net::HttpResponseCache cache;
    m.env.fabric().set_response_cache(&cache);
    if (m.Load(MakeFanoutPage(), true)) {
      // The load itself warmed the cache; measure a genuinely cold
      // first search by clearing it.
      cache.Clear();
      cache.ResetStats();
      // No warmup calls here: the first op must really be the one that
      // pays the K round trips and fills the cache.
      cold_ns = TimeOps([&] { m.Op(); }, 1);
      std::string cold_result = m.env.plugin().last_listener_result();
      warm_ns = TimeOps([&] { m.Op(); }, iters);
      cache_hits = cache.stats().hits;
      cache_misses = cache.stats().misses;
      hit_rate = cache_hits + cache_misses == 0
                     ? 0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(cache_hits + cache_misses);
      cache_match = m.env.plugin().last_listener_result() == cold_result &&
                    !cold_result.empty();
      if (!cache_match) {
        std::fprintf(stderr, "warm_cache: warm result != cold result\n");
      }
    } else {
      ok = false;
    }
    m.env.fabric().set_response_cache(nullptr);
  }

  const double rtt_ms = fanout_serial.requests_per_op > 0
                            ? fanout_serial.latency_ms_per_op /
                                  fanout_serial.requests_per_op
                            : 0;

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p9_federation\",\n  \"iters\": " << iters
       << ",\n  \"sources\": " << kSources << ",\n"
       << xqib::bench::ScenariosJson(results, "async", "serial") << ",\n";
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  \"cache\": {\"name\": \"warm_cache\", \"cold_ns_per_op\": %.1f, "
      "\"warm_ns_per_op\": %.1f, \"hit_rate\": %.4f, \"hits\": %llu, "
      "\"misses\": %llu, \"results_match\": %s},\n",
      cold_ns, warm_ns, hit_rate, static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      cache_match ? "true" : "false");
  json << buf;
  // Virtual-clock metrics as named entries so --baseline can guard them
  // (they are exact, so the guard has no noise floor).
  std::snprintf(
      buf, sizeof(buf),
      "  \"makespan\": [\n"
      "    {\"name\": \"fanout_makespan\", \"async_ms_per_op\": %.2f, "
      "\"serial_ms_per_op\": %.2f},\n"
      "    {\"name\": \"flwor_makespan\", \"async_ms_per_op\": %.2f, "
      "\"serial_ms_per_op\": %.2f}\n  ],\n"
      "  \"counters\": {\"rtt_ms\": %.2f, \"prefetch_issued_per_op\": %llu, "
      "\"prefetch_hits_per_op\": %llu, \"inflight_peak\": %llu, "
      "\"requests_per_op\": %.1f}\n}\n",
      fanout_async.makespan_ms_per_op, fanout_serial.makespan_ms_per_op,
      flwor_async.makespan_ms_per_op, flwor_serial.makespan_ms_per_op,
      rtt_ms,
      static_cast<unsigned long long>(fanout_async.prefetch_issued),
      static_cast<unsigned long long>(fanout_async.prefetch_hits),
      static_cast<unsigned long long>(fanout_async.inflight_peak),
      fanout_async.requests_per_op);
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results) || !cache_match) return 1;
    // The P9 acceptance floor: over 8 sources the overlapped arms'
    // virtual wall clock stays within 2 RTTs while the serial arms pay
    // nearly all 8 — the fig3 mash-up speedup this PR exists for.
    struct { const char* name; const ArmCounters* async_arm;
             const ArmCounters* serial_arm; } spans[] = {
        {"fanout_scatter", &fanout_async, &fanout_serial},
        {"flwor_scatter", &flwor_async, &flwor_serial},
    };
    for (const auto& s : spans) {
      if (s.async_arm->makespan_ms_per_op > 2.0 * rtt_ms) {
        std::fprintf(stderr,
                     "FAIL: %s: overlapped makespan %.2f ms/op exceeds 2x "
                     "RTT (%.2f ms)\n",
                     s.name, s.async_arm->makespan_ms_per_op, rtt_ms);
        return 1;
      }
      if (s.serial_arm->makespan_ms_per_op < 6.0 * rtt_ms) {
        std::fprintf(stderr,
                     "FAIL: %s: serial makespan %.2f ms/op below 6x RTT "
                     "(%.2f ms) — the serial oracle overlapped?\n",
                     s.name, s.serial_arm->makespan_ms_per_op, rtt_ms);
        return 1;
      }
    }
    if (fanout_async.prefetch_issued < static_cast<uint64_t>(kSources) ||
        fanout_async.prefetch_hits < static_cast<uint64_t>(kSources)) {
      std::fprintf(stderr,
                   "FAIL: fanout scatter issued %llu / consumed %llu "
                   "prefetches (want %d)\n",
                   static_cast<unsigned long long>(
                       fanout_async.prefetch_issued),
                   static_cast<unsigned long long>(fanout_async.prefetch_hits),
                   kSources);
      return 1;
    }
    if (hit_rate < 0.9) {
      std::fprintf(stderr, "FAIL: warm-cache hit rate %.3f below 0.9\n",
                   hit_rate);
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  // Guard the virtual metrics, not CPU ns/op: overlapped makespan and
  // the warm pass's miss count are deterministic, so any drift is a
  // real regression (a lost overlap, a cache that stopped answering),
  // never runner noise.
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"fanout_makespan", "async_ms_per_op",
            fanout_async.makespan_ms_per_op},
           {"flwor_makespan", "async_ms_per_op",
            flwor_async.makespan_ms_per_op},
           {"warm_cache", "misses", static_cast<double>(cache_misses)}})) {
    return 1;
  }
  return 0;
}
