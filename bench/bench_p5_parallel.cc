// P5 — the parallel dispatch runtime: staged pure listeners on the
// worker pool, the partitioned //name[pred] scan, and the serial-path
// parity guarantee. Self-timed runner emitting BENCH_P5.json, same
// schema as P2/P3/P4.
//
// Usage:
//   bench_p5_parallel [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios:
//   fanout_dispatch   one click fans out to 8 analyzer-proven pure
//                     listeners, each a full //item scan (memo cache
//                     OFF so every fire recomputes); arms = worker pool
//                     of 4 vs pool of 0 (the inline serial baseline).
//   partitioned_scan  query-level: count(//item[@v > 500]) over a
//                     40k-element bucket; arms = pool of 4 with
//                     parallel streams vs no pool.
//   serial_parity     the Figure 1 updating dispatch with NO pool;
//                     arms = parallel runtime present-but-idle vs the
//                     pre-P5 configuration (parallel_streams off). The
//                     two must be within a few percent: the runtime
//                     must cost nothing when it isn't used.
//
// The JSON also carries the fanout scaling curve at 0/1/2/4/8 workers
// (EXPERIMENTS.md §P5) and the runtime's own counters (staged listener
// invocations, predicate chunks, pool steals).
//
// --check exits non-zero unless every ablation's results match, serial
// parity holds within +/-5%, the staged/chunk counters actually fired,
// and — on hosts with >= 4 hardware threads, where the pool can
// physically win — the fanout dispatch speeds up >= 2.5x at 4 workers
// and the partitioned scan >= 1.5x. With 2-3 threads the floors relax
// (>= 1.2x / >= 1.05x); on a single-core host the speedup gates are
// skipped entirely (every arm shares one CPU) and only the correctness
// invariants bind.
// --baseline FILE compares the fresh fanout_dispatch on-arm ns/op
// against the checked-in BENCH_P5.json within +/-25% — the CI
// regression guard.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/environment.h"
#include "base/thread_pool.h"
#include "bench_util.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::base::ThreadPool;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;
using xqib::xquery::Evaluator;

// Deterministic page with `n` valued items: the scan corpus for both
// the fan-out listeners and the partitioned predicate.
std::string BigItems(int n) {
  std::ostringstream out;
  out << "<page>";
  uint32_t state = 12345;
  for (int i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    out << "<item v=\"" << ((state >> 16) % 1000) << "\"/>";
  }
  out << "</page>";
  return out.str();
}

// The fan-out page: one button, 8 pure listeners. Each listener scans
// every item against its own threshold — an embarrassingly parallel
// dispatch once the analyzer proves all eight side-effect-free.
std::string MakeFanoutPage(int items, int listeners) {
  std::ostringstream out;
  out << "<html><body><input id=\"btn\"/><div id=\"data\">";
  uint32_t state = 98765;
  for (int i = 0; i < items; ++i) {
    state = state * 1664525u + 1013904223u;
    out << "<item v=\"" << ((state >> 16) % 1000) << "\"/>";
  }
  out << "</div><script type=\"text/xqueryp\"><![CDATA[\n";
  for (int l = 0; l < listeners; ++l) {
    out << "declare function local:p" << l << "($evt, $obj) {\n"
        << "  concat(\"p" << l << "=\", string(count(//item[@v > "
        << (l * 100 + 50) << "])))\n};\n";
  }
  out << "{\n";
  for (int l = 0; l < listeners; ++l) {
    out << "  on event \"onclick\" at //input[@id=\"btn\"] "
        << "attach listener local:p" << l << ";\n";
  }
  out << "  ()\n}\n]]></script></body></html>";
  return out.str();
}

struct DispatchEnv {
  BrowserEnvironment env;
  xqib::xml::Node* button = nullptr;

  bool Load(const std::string& page) {
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok() || !env.ScriptErrors().empty()) {
      std::fprintf(stderr, "page load failed: %s %s\n", st.ToString().c_str(),
                   env.ScriptErrors().c_str());
      return false;
    }
    button = env.ById("btn");
    return button != nullptr;
  }

  void Click() {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
};

// ns/op for count(//item[@v > 500]) under `options`, with or without a
// pool wired into the evaluator. Result string and lifetime evaluator
// counters come back through the out-params.
bool TimePartitionedScan(const std::string& xml,
                         const Evaluator::EvalOptions& options,
                         ThreadPool* pool, int iters, double* ns_per_op,
                         std::string* result, Evaluator::EvalStats* stats) {
  xqib::xquery::Engine engine;
  auto compiled = engine.Compile("count(//item[@v > 500])");
  if (!compiled.ok()) return false;
  (*compiled)->evaluator().set_options(options);
  (*compiled)->evaluator().set_thread_pool(pool);
  auto parsed = xqib::xml::ParseDocument(xml);
  if (!parsed.ok()) return false;
  std::unique_ptr<xqib::xml::Document> doc = std::move(parsed).value();
  xqib::xquery::DynamicContext ctx;
  xqib::xquery::DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  if (!(*compiled)->BindGlobals(ctx).ok()) return false;
  bool ok = true;
  *ns_per_op = xqib::bench::NsPerOp(
      [&] {
        auto r = (*compiled)->Run(ctx);
        if (!r.ok()) {
          ok = false;
          return;
        }
        *result = xqib::xdm::SequenceToString(*r);
      },
      iters);
  if (stats != nullptr) *stats = (*compiled)->evaluator().stats();
  return ok;
}

struct ScalePoint {
  size_t workers;
  double ns_per_op;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  std::vector<ScenarioResult> results;
  bool ok = true;

  // --- fanout_dispatch + the scaling curve. One environment; the pool
  // is rewired between arms (EnableParallelDispatch re-stages existing
  // pages), so both arms dispatch the identical listener set. ---
  uint64_t staged_delta = 0;
  uint64_t pool_stolen = 0;
  std::vector<ScalePoint> scaling;
  {
    DispatchEnv d;
    ok &= d.Load(MakeFanoutPage(2500, 8));
    if (ok) {
      // Memo OFF: every fire recomputes all eight scans — the dispatch
      // cost being parallelized, not the cache being hit.
      d.env.plugin().set_memo_enabled(false);

      ScenarioResult sr;
      sr.name = "fanout_dispatch";
      d.env.plugin().EnableParallelDispatch(4);
      uint64_t staged_before = d.env.browser().events().staged_invocations();
      sr.on_ns = xqib::bench::NsPerOp([&] { d.Click(); }, iters);
      staged_delta =
          d.env.browser().events().staged_invocations() - staged_before;
      pool_stolen = d.env.plugin().thread_pool()->stats().stolen;
      std::string par_result = d.env.plugin().last_listener_result();

      d.env.plugin().EnableParallelDispatch(0);
      sr.off_ns = xqib::bench::NsPerOp([&] { d.Click(); }, iters);
      std::string serial_result = d.env.plugin().last_listener_result();
      sr.results_match =
          par_result == serial_result && !par_result.empty();
      if (!sr.results_match) {
        std::fprintf(stderr, "fanout_dispatch: parallel %s != serial %s\n",
                     par_result.c_str(), serial_result.c_str());
      }
      results.push_back(sr);

      // Scaling curve for EXPERIMENTS.md §P5.
      for (size_t workers : {0u, 1u, 2u, 4u, 8u}) {
        d.env.plugin().EnableParallelDispatch(workers);
        ScalePoint p;
        p.workers = workers;
        p.ns_per_op = xqib::bench::NsPerOp([&] { d.Click(); }, iters);
        scaling.push_back(p);
      }
      d.env.plugin().EnableParallelDispatch(0);
    }
  }

  // --- partitioned_scan: the //item[@v > 500] bucket split across the
  // pool vs walked sequentially. ---
  Evaluator::EvalStats scan_stats;
  {
    const std::string corpus = BigItems(40000);
    ThreadPool pool(4);
    ScenarioResult sr;
    sr.name = "partitioned_scan";
    std::string par_result, serial_result;
    Evaluator::EvalOptions on;  // parallel_streams defaults on
    ok &= TimePartitionedScan(corpus, on, &pool, iters, &sr.on_ns,
                              &par_result, &scan_stats);
    Evaluator::EvalOptions off;
    ok &= TimePartitionedScan(corpus, off, nullptr, iters, &sr.off_ns,
                              &serial_result, nullptr);
    sr.results_match = par_result == serial_result && !par_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "partitioned_scan: parallel %s != serial %s\n",
                   par_result.c_str(), serial_result.c_str());
    }
    results.push_back(sr);
  }

  // --- serial_parity: the standard Figure 1 updating dispatch, pool of
  // 0 and parallel options (on) vs the pre-P5 configuration (off). The
  // arms alternate over several rounds and each takes its per-round
  // minimum: a ratio of two ~100 µs loops is otherwise at the mercy of
  // scheduler interference, and the minimum is the load-robust
  // estimator for "what the code costs". ---
  {
    const int rounds = 5;
    const int per_round = std::max(iters, 150) / rounds;
    DispatchEnv d;
    ok &= d.Load(xqib::bench::MakeDispatchPage(300));
    if (ok) {
      ScenarioResult sr;
      sr.name = "serial_parity";
      Evaluator::EvalOptions with_p5;  // parallel_streams defaults on
      Evaluator::EvalOptions pre_p5;
      pre_p5.parallel_streams = false;
      d.env.plugin().EnableParallelDispatch(0);
      double on_min = 0, off_min = 0;
      std::string on_result, off_result;
      // The listener is updating (returns nothing): the observable is
      // the status span it writes.
      auto status = [&] {
        xqib::xml::Node* span = d.env.ById("status");
        return span != nullptr ? xqib::xml::Serialize(span) : std::string();
      };
      for (int r = 0; r < rounds; ++r) {
        d.env.plugin().set_eval_options(with_p5);
        double on_ns = xqib::bench::NsPerOp([&] { d.Click(); }, per_round);
        on_result = status();
        d.env.plugin().set_eval_options(pre_p5);
        double off_ns = xqib::bench::NsPerOp([&] { d.Click(); }, per_round);
        off_result = status();
        if (r == 0 || on_ns < on_min) on_min = on_ns;
        if (r == 0 || off_ns < off_min) off_min = off_ns;
      }
      sr.on_ns = on_min;
      sr.off_ns = off_min;
      sr.results_match = on_result == off_result && !on_result.empty();
      results.push_back(sr);
    }
  }

  double fanout_speedup =
      results.empty() || results[0].on_ns <= 0
          ? 0
          : results[0].off_ns / results[0].on_ns;
  double scan_speedup = results.size() < 2 || results[1].on_ns <= 0
                            ? 0
                            : results[1].off_ns / results[1].on_ns;
  double parity = results.size() < 3 || results[2].off_ns <= 0
                      ? 0
                      : results[2].on_ns / results[2].off_ns;

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p5_parallel\",\n  \"iters\": " << iters
       << ",\n"
       << xqib::bench::ScenariosJson(results, "parallel", "serial") << ",\n";
  json << "  \"scaling\": [\n";
  double base_ns = scaling.empty() ? 0 : scaling[0].ns_per_op;
  for (size_t i = 0; i < scaling.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    {\"workers\": %zu, \"ns_per_op\": %.1f, "
                  "\"speedup\": %.2f}%s\n",
                  scaling[i].workers, scaling[i].ns_per_op,
                  scaling[i].ns_per_op > 0 ? base_ns / scaling[i].ns_per_op
                                           : 0.0,
                  i + 1 < scaling.size() ? "," : "");
    json << line;
  }
  json << "  ],\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"parity\": {\"ratio\": %.3f},\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"counters\": {\"staged_invocations\": %llu, "
                "\"pool_stolen\": %llu, \"parallel_predicate_chunks\": "
                "%llu}\n}\n",
                parity, std::thread::hardware_concurrency(),
                static_cast<unsigned long long>(staged_delta),
                static_cast<unsigned long long>(pool_stolen),
                static_cast<unsigned long long>(
                    scan_stats.parallel_predicate_chunks));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    const unsigned cores = std::thread::hardware_concurrency();
    // The speedup floors only bind where the pool can physically win.
    double fanout_floor = cores >= 4 ? 2.5 : (cores >= 2 ? 1.2 : 0.0);
    double scan_floor = cores >= 4 ? 1.5 : (cores >= 2 ? 1.05 : 0.0);
    if (cores < 2) {
      std::fprintf(stderr,
                   "NOTE: single-core host, speedup floors skipped\n");
    }
    if (fanout_speedup < fanout_floor) {
      std::fprintf(stderr,
                   "FAIL: fanout dispatch only %.2fx at 4 workers on "
                   "%u cores (need %.2fx)\n",
                   fanout_speedup, cores, fanout_floor);
      return 1;
    }
    if (scan_speedup < scan_floor) {
      std::fprintf(stderr,
                   "FAIL: partitioned scan only %.2fx at 4 workers on "
                   "%u cores (need %.2fx)\n",
                   scan_speedup, cores, scan_floor);
      return 1;
    }
    if (std::abs(parity - 1.0) > 0.05) {
      std::fprintf(stderr,
                   "FAIL: serial parity ratio %.3f outside +/-5%%\n",
                   parity);
      return 1;
    }
    if (staged_delta == 0) {
      std::fprintf(stderr, "FAIL: no listener was ever staged\n");
      return 1;
    }
    if (scan_stats.parallel_predicate_chunks == 0) {
      std::fprintf(stderr, "FAIL: the scan never partitioned\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"fanout_dispatch", "parallel_ns_per_op",
            results.empty() ? 0 : results[0].on_ns}})) {
    return 1;
  }
  return 0;
}
