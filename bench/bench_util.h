// Shared machinery for the self-timed JSON benchmark runners
// (bench_p2_fastpath, bench_p3_streaming, bench_p4_memory): argument
// parsing, the warmup+timing loop, query/dispatch ablation scenarios,
// and the common JSON results schema
//   {"name": ..., "<on>_ns_per_op": ..., "<off>_ns_per_op": ...,
//    "speedup": ..., "results_match": ...}
// so every runner's checked-in BENCH_*.json stays structurally
// identical and CI can scrape them uniformly.

#ifndef XQIB_BENCH_BENCH_UTIL_H_
#define XQIB_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "plugin/plugin.h"
#include "xquery/evaluator.h"

namespace xqib::bench {

// --iters N / --out FILE / --check / --baseline FILE.
struct Args {
  int iters = 200;
  std::string out_path;
  bool check = false;
  std::string baseline_path;
};

// Returns false (after printing usage) on an unrecognized flag.
bool ParseArgs(int argc, char** argv, Args* args);

// One on/off ablation measurement.
struct ScenarioResult {
  std::string name;
  double on_ns = 0;
  double off_ns = 0;
  bool results_match = false;
};

// Median-free ns/op: 3 warmup calls, then `iters` timed calls.
double NsPerOp(const std::function<void()>& op, int iters);

// Compiles `query` against `xml` (context item = document root when
// non-empty) and times Run() under `options`; serialized result and
// lifetime evaluator counters come back through the out-params.
bool TimeQuery(const std::string& query, const std::string& xml,
               const xquery::Evaluator::EvalOptions& options, int iters,
               double* ns_per_op, std::string* result,
               xquery::Evaluator::EvalStats* stats);

// Fresh engine, fixed number of executions, so two arms' counters are
// directly comparable regardless of --iters.
bool MeasureStats(const std::string& query, const std::string& xml,
                  const xquery::Evaluator::EvalOptions& options,
                  xquery::Evaluator::EvalStats* stats);

// Runs `query` under `on` and `off` options, appends the timing pair
// (on-arm counters via `on_stats`), and verifies both arms serialize to
// the same result.
bool RunQueryScenario(const std::string& name, const std::string& query,
                      const std::string& xml, int iters,
                      const xquery::Evaluator::EvalOptions& on,
                      const xquery::Evaluator::EvalOptions& off,
                      std::vector<ScenarioResult>* results,
                      xquery::Evaluator::EvalStats* on_stats);

// The Figure 1 dispatch page: a button, a status span, `rows` table
// rows, and an XQuery listener that re-counts the rows on every click.
std::string MakeDispatchPage(int rows);

// Times one event dispatch (FireEvent through the plug-in) with the
// page evaluator's options flipped between the two arms.
bool RunDispatchScenario(const std::string& name, int rows, int iters,
                         const xquery::Evaluator::EvalOptions& on,
                         const xquery::Evaluator::EvalOptions& off,
                         std::vector<ScenarioResult>* results,
                         plugin::XqibPlugin::EventStats* on_stats);

// The shared scenarios array; `on_key`/`off_key` label the two arms
// (e.g. "fast"/"slow", "stream"/"eager", "arena"/"heap").
std::string ScenariosJson(const std::vector<ScenarioResult>& results,
                          const char* on_key, const char* off_key);

// Prints `json` to stdout and, when `out_path` is non-empty, writes it
// there too.
void EmitJson(const std::string& json, const std::string& out_path);

bool AllResultsMatch(const std::vector<ScenarioResult>& results);

// Nearest-rank percentile (pct in [0,100]) over `samples`; copies and
// sorts internally, so callers can keep feeding the same vector. 0 on
// an empty input.
double Percentile(std::vector<double> samples, double pct);

// The load-harness latency digest: p50/p95/p99 plus count and mean,
// computed in one sort.
struct LatencySummary {
  size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};
LatencySummary SummarizeLatencies(std::vector<double> samples);

// Scrapes `"field": <number>` out of the object whose `"name"` equals
// `scenario` in a checked-in BENCH_*.json (line-oriented; the emitter
// above writes one scenario per line). Used by the CI regression guard
// to compare fresh numbers against the committed baseline.
bool ReadBaselineValue(const std::string& path, const std::string& scenario,
                       const std::string& field, double* out);

// One --baseline guarded metric: a fresh measurement to compare against
// the `scenario`/`field` value in a checked-in BENCH_*.json.
struct BaselineMetric {
  std::string scenario;
  std::string field;
  double fresh = 0;
};

// Shared --baseline regression guard: every metric's fresh value must
// satisfy fresh <= baseline * tolerance. Reports EVERY metric (not just
// the first failure) as a name/expected/actual/delta line; a missing or
// non-positive baseline entry fails too. Returns true when all pass.
bool CheckBaseline(const std::string& path,
                   const std::vector<BaselineMetric>& metrics,
                   double tolerance = 1.25);

}  // namespace xqib::bench

#endif  // XQIB_BENCH_BENCH_UTIL_H_
