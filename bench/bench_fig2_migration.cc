// F2 — Figure 2 (Elsevier Reference 2.0 server-to-client migration):
// the off-loading experiment. The same browsing session runs against
// the original server-side deployment and the migrated client-side
// deployment; counters report what reaches the server (requests, bytes,
// simulated network latency). The paper's claim: with XQuery in the
// browser plus whole-document caching, "most user requests can be
// processed without any interaction with the Elsevier server".

#include <benchmark/benchmark.h>

#include "app/elsevier.h"

namespace {

using xqib::app::BrowserEnvironment;
namespace elsevier = xqib::app::elsevier;

void RunDeployment(benchmark::State& state,
                   elsevier::Deployment deployment) {
  int interactions = static_cast<int>(state.range(0));
  elsevier::CorpusOptions corpus;
  elsevier::SessionReport last;
  for (auto _ : state) {
    BrowserEnvironment env;
    xqib::Status st = elsevier::BuildCorpus(&env.store(), corpus);
    if (st.ok()) st = elsevier::DeployServer(&env.store(), &env.fabric());
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    auto report =
        elsevier::RunSession(&env, deployment, corpus, interactions);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    last = *report;
  }
  state.counters["server_requests"] = static_cast<double>(last.requests);
  state.counters["bytes_shipped"] = static_cast<double>(last.bytes);
  state.counters["sim_net_ms"] = last.latency_ms;
  state.counters["req_per_interaction"] =
      static_cast<double>(last.requests) /
      static_cast<double>(interactions);
}

void BM_Fig2_ServerSide(benchmark::State& state) {
  RunDeployment(state, elsevier::Deployment::kServerSide);
}
BENCHMARK(BM_Fig2_ServerSide)->Arg(5)->Arg(20)->Arg(50);

void BM_Fig2_ClientSide(benchmark::State& state) {
  RunDeployment(state, elsevier::Deployment::kClientSide);
}
BENCHMARK(BM_Fig2_ClientSide)->Arg(5)->Arg(20)->Arg(50);

// Ablation: client-side WITHOUT the whole-document cache — refetching
// the corpus per interaction. Shows the §6.1 adjustment ("serve whole
// documents ... to better enable caching") is what makes the migration
// pay off, not client-side execution alone.
void BM_Fig2_ClientNoCache(benchmark::State& state) {
  int interactions = static_cast<int>(state.range(0));
  elsevier::CorpusOptions corpus;
  uint64_t requests = 0;
  double latency = 0;
  for (auto _ : state) {
    BrowserEnvironment env;
    xqib::Status st = elsevier::BuildCorpus(&env.store(), corpus);
    if (st.ok()) st = elsevier::DeployServer(&env.store(), &env.fabric());
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    // The uncached client page: every view re-fetches the corpus.
    xqib::Status load = env.LoadPage(
        "http://elsevier.example.com/nocache.xhtml",
        R"(<html><head><script type="text/xqueryp"><![CDATA[
declare updating function local:show($evt, $obj) {
  delete nodes //div[@id="view"]/*;
  insert node <h1 id="title">{
      string(http:get("http://elsevier.example.com/corpus.xml")
        //article[@id=string($obj/@article)]/title)
    }</h1> into //div[@id="view"]
};
insert node <ul id="toc">{
    for $a in http:get("http://elsevier.example.com/corpus.xml")//article
    return <li><span id="link-{$a/@id}" article="{$a/@id}"/></li>
  }</ul> into /html/body;
on event "onclick" at //ul[@id="toc"]//span attach listener local:show
]]></script></head><body><div id="view"/></body></html>)");
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    auto ids = elsevier::ArticleIds(corpus);
    for (int i = 0; i < interactions; ++i) {
      xqib::Status click =
          env.ClickId("link-" + ids[static_cast<size_t>(i) % ids.size()]);
      if (!click.ok()) {
        state.SkipWithError(click.ToString().c_str());
        return;
      }
    }
    requests = env.fabric().stats().requests;
    latency = env.fabric().stats().simulated_latency_ms;
  }
  state.counters["server_requests"] = static_cast<double>(requests);
  state.counters["sim_net_ms"] = latency;
}
BENCHMARK(BM_Fig2_ClientNoCache)->Arg(5)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
