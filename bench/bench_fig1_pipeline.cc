// F1 — Figure 1 (plug-in architecture): cost of each pipeline stage as a
// function of page size. The paper's processing model is: browser parses
// the XHTML and builds the DOM -> plug-in extracts the script -> Zorba
// compiles the prolog -> main query runs (registering listeners) -> the
// plug-in loops dispatching events to listeners. Each benchmark isolates
// one stage.

#include <benchmark/benchmark.h>

#include <sstream>

#include "app/environment.h"
#include "xml/xml_parser.h"

namespace {

using xqib::app::BrowserEnvironment;

// A page with `rows` table rows, one XQuery script, and a button.
std::string MakePage(int rows) {
  std::ostringstream out;
  out << R"(<html><head><script type="text/xqueryp"><![CDATA[
declare updating function local:onClick($evt, $obj) {
  replace value of node //span[@id="status"]
    with concat("clicked ", string(count(//tr)))
};
on event "onclick" at //input[@id="btn"] attach listener local:onClick
]]></script></head><body>
<input type="button" id="btn" value="go"/>
<span id="status">idle</span>
<table>)";
  for (int i = 0; i < rows; ++i) {
    out << "<tr id=\"r" << i << "\"><td>cell " << i
        << "</td><td class=\"v\">" << (i * 7 % 101) << "</td></tr>";
  }
  out << "</table></body></html>";
  return out.str();
}

// Stage 1: XHTML parsing -> DOM (the browser's work before the plug-in).
void BM_Fig1_ParseXhtml(benchmark::State& state) {
  std::string page = MakePage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = xqib::xml::ParseDocument(page);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
  state.counters["nodes"] = static_cast<double>(
      (*xqib::xml::ParseDocument(page))->node_count());
}
BENCHMARK(BM_Fig1_ParseXhtml)->Arg(100)->Arg(1000)->Arg(10000);

// Stages 2-4: plug-in initialization (script extraction, prolog compile,
// globals, main-query run with listener registration).
void BM_Fig1_PluginInit(benchmark::State& state) {
  std::string page = MakePage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BrowserEnvironment env;
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(env.window()->document());
  }
  // Phase breakdown from the last init (microseconds).
  BrowserEnvironment env;
  (void)env.LoadPage("http://bench.example.com/", page);
  const auto& t = env.plugin().last_init_timing();
  state.counters["extract_us"] = t.extract_us;
  state.counters["compile_us"] = t.compile_us;
  state.counters["run_main_us"] = t.run_main_us;
}
BENCHMARK(BM_Fig1_PluginInit)->Arg(100)->Arg(1000)->Arg(10000);

// Stage 5: the event loop — listener dispatch latency on a loaded page
// (the steady-state cost of Figure 1's "loop between listening for IE
// events and executing the corresponding listeners").
void BM_Fig1_EventDispatch(benchmark::State& state) {
  BrowserEnvironment env;
  std::string page = MakePage(static_cast<int>(state.range(0)));
  xqib::Status st = env.LoadPage("http://bench.example.com/", page);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  xqib::xml::Node* button = env.ById("btn");
  for (auto _ : state) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
  state.counters["listener_calls"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig1_EventDispatch)->Arg(100)->Arg(1000)->Arg(10000);

// Reference point: re-running the prolog per event (what the paper's
// plug-in does: "Zorba is called with the XQuery prolog followed by the
// listener call") vs. our persistent compiled context. This quantifies
// the design decision documented in DESIGN.md.
void BM_Fig1_PrologPerEvent(benchmark::State& state) {
  std::string page = MakePage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BrowserEnvironment env;
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(env.ById("btn"), e);
  }
}
BENCHMARK(BM_Fig1_PrologPerEvent)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
