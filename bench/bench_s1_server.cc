// S1 — the multi-tenant page server under load: N concurrent
// shopping-cart sessions (the paper's §6.3 page) driven closed-loop
// through the shared-pool session runtime, with per-event latency
// percentiles. Self-timed runner emitting BENCH_S1.json.
//
// Usage:
//   bench_s1_server [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios:
//   load sweep        sessions {1, 4, 16} x pool {0, 1, 4, 8}; every
//                     session replays the same deterministic buy-click
//                     script (rotating product ids offset by session
//                     index), each completion immediately enqueuing the
//                     session's next event (closed loop, zero think
//                     time). Reports events/sec, ns/op, and p50/p95/p99
//                     enqueue-to-completion latency per cell.
//   determinism       the oracle: for each session count, every
//                     session's serialized DOM must be byte-identical
//                     between the serial run (pool 0) and every
//                     concurrent run (pool 1/4/8).
//   server_parity     one session, pool 0: an event through the server
//                     runtime (queue + strand + completion) vs the same
//                     click through BrowserEnvironment's direct
//                     dispatch. The server layer must cost <= 10% — the
//                     session abstraction is bookkeeping, not a detour.
//
// --check exits non-zero unless the oracle holds for every cell, the
// parity ratio is <= 1.10, every cell dispatched exactly its script
// with zero errors, and — only on hosts with enough hardware threads
// for the pool to physically win (>= 4 cores: >= 1.8x at 16 sessions /
// pool 4; >= 2 cores: >= 1.15x; single core: gate skipped) — multi-
// session throughput actually scales.
// --baseline FILE compares two fixed-workload ns/op numbers — the
// 4-session serial guard cell (always 100 events/session) and the
// parity block's server arm — against the checked-in BENCH_S1.json
// within +/-25%; both are independent of --iters, so smoke runs and
// the baseline measure the same work.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "server/server.h"
#include "xquery/plan/plan.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::app::ReadPageFile;
using xqib::bench::Args;
using xqib::bench::LatencySummary;
using xqib::server::PageServer;
using xqib::server::Session;
using xqib::server::SessionEvent;

constexpr const char* kProductsUrl = "http://shop.example.com/products.xml";
constexpr const char* kProducts =
    "<products>"
    "<product><name>laptop</name><price>1200</price></product>"
    "<product><name>mouse</name><price>25</price></product>"
    "<product><name>keyboard</name><price>49</price></product>"
    "</products>";
constexpr const char* kProductIds[] = {"laptop", "mouse", "keyboard"};

// The per-session deterministic event script: every session buys the
// same sequence of products, phase-shifted by its index so concurrent
// sessions are not in lockstep on one listener.
std::vector<SessionEvent> MakeScript(size_t session_index, int events) {
  std::vector<SessionEvent> script;
  script.reserve(static_cast<size_t>(events));
  for (int e = 0; e < events; ++e) {
    SessionEvent ev;
    ev.target_id = kProductIds[(session_index + static_cast<size_t>(e)) % 3];
    script.push_back(std::move(ev));
  }
  return script;
}

// One session's closed-loop driver: each completion enqueues the next
// scripted event, so the session is always exactly one event deep —
// per-session order is script order at any pool size.
struct Driver {
  std::shared_ptr<Session> session;
  std::vector<SessionEvent> script;
  std::atomic<size_t> next{1};
  std::atomic<uint64_t> failures{0};
};

struct LoadCell {
  size_t sessions = 0;
  size_t workers = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  double ns_per_op = 0;
  LatencySummary latency;
  uint64_t errors = 0;
  // The oracle channel: session index -> serialized DOM after the run.
  std::vector<std::string> doms;
};

bool RunLoadCell(const std::string& page, size_t sessions, size_t workers,
                 int events_per_session, LoadCell* cell) {
  PageServer::Options options;
  options.workers = workers;
  PageServer server(options);
  server.backend().PutResource(kProductsUrl, kProducts);

  std::vector<std::shared_ptr<Driver>> drivers;
  for (size_t s = 0; s < sessions; ++s) {
    auto created = server.CreateSessionFromSource(
        "http://shop.example.com/cart.xhtml", page);
    if (!created.ok()) {
      std::fprintf(stderr, "session create failed: %s\n",
                   created.status().ToString().c_str());
      return false;
    }
    auto driver = std::make_shared<Driver>();
    driver->session = *created;
    driver->script = MakeScript(s, events_per_session);
    drivers.push_back(std::move(driver));
  }

  const auto start = std::chrono::steady_clock::now();
  for (const auto& driver : drivers) {
    auto chain = std::make_shared<
        std::function<void(const xqib::Status&, double)>>();
    *chain = [driver, chain](const xqib::Status& st, double) {
      if (!st.ok()) driver->failures.fetch_add(1, std::memory_order_relaxed);
      size_t i = driver->next.fetch_add(1, std::memory_order_relaxed);
      if (i < driver->script.size()) {
        driver->session->Submit(driver->script[i], *chain);
      }
    };
    driver->session->Submit(driver->script[0], *chain);
  }
  server.DrainAll();
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const double total_events =
      static_cast<double>(sessions) * events_per_session;
  cell->sessions = sessions;
  cell->workers = workers;
  cell->wall_sec = wall_sec;
  cell->events_per_sec = wall_sec > 0 ? total_events / wall_sec : 0;
  cell->ns_per_op = total_events > 0 ? wall_sec * 1e9 / total_events : 0;
  std::vector<double> samples;
  for (const auto& driver : drivers) {
    Session::StatsSnapshot s = driver->session->stats();
    cell->errors += s.errors + driver->failures.load();
    if (s.dispatched != static_cast<uint64_t>(events_per_session)) {
      std::fprintf(stderr,
                   "FAIL: %s dispatched %llu of %d scripted events\n",
                   driver->session->id().c_str(),
                   static_cast<unsigned long long>(s.dispatched),
                   events_per_session);
      return false;
    }
    std::vector<double> mine = driver->session->TakeLatencySamples();
    samples.insert(samples.end(), mine.begin(), mine.end());
    cell->doms.push_back(driver->session->SerializeDom());
  }
  cell->latency = xqib::bench::SummarizeLatencies(std::move(samples));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  // --iters is events PER SESSION here (closed loop, not timed reps).
  const int events = std::max(args.iters, 10);

  auto page = ReadPageFile("shopping_cart_xquery.xhtml");
  if (!page.ok()) {
    std::fprintf(stderr, "cannot read shopping cart page: %s\n",
                 page.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> session_counts = {1, 4, 16};
  const std::vector<size_t> pool_sizes = {0, 1, 4, 8};
  std::vector<LoadCell> cells;
  bool ok = true;
  for (size_t sessions : session_counts) {
    for (size_t workers : pool_sizes) {
      LoadCell cell;
      if (!RunLoadCell(*page, sessions, workers, events, &cell)) {
        ok = false;
        continue;
      }
      cells.push_back(std::move(cell));
    }
  }

  // The baseline-guard cell runs a FIXED event count regardless of
  // --iters: per-event cost grows with the cart DOM, so only
  // same-script runs are comparable across machines and smoke depths.
  LoadCell guard_cell;
  ok &= RunLoadCell(*page, 4, 0, 100, &guard_cell);

  // --- determinism oracle: within one session count, every pool size
  // must leave every session with the byte-identical DOM the serial
  // run produced. ---
  bool deterministic = true;
  for (size_t sessions : session_counts) {
    const LoadCell* serial = nullptr;
    for (const LoadCell& cell : cells) {
      if (cell.sessions == sessions && cell.workers == 0) serial = &cell;
    }
    if (serial == nullptr) {
      deterministic = false;
      continue;
    }
    for (const LoadCell& cell : cells) {
      if (cell.sessions != sessions || cell.workers == 0) continue;
      for (size_t s = 0; s < sessions; ++s) {
        if (cell.doms[s] != serial->doms[s]) {
          std::fprintf(stderr,
                       "FAIL: determinism: session %zu DOM differs between "
                       "pool 0 and pool %zu (%zu sessions)\n",
                       s, cell.workers, sessions);
          deterministic = false;
        }
      }
    }
  }

  // --- server_parity: the session runtime's overhead over direct
  // dispatch, both arms resolving the target and firing the identical
  // listener. Alternating rounds, per-arm minima (the load-robust
  // estimator, as in P5's parity gate). ---
  double server_ns = 0, direct_ns = 0;
  {
    // Fixed sample size, independent of --iters: the 1.10 parity gate
    // is an acceptance criterion, so the estimate must not get noisier
    // when CI runs the quick smoke. Per-op samples in small
    // interleaved blocks (so the DOM-growth trend stays matched
    // between arms), compared at the median — a single descheduling
    // spike on a loaded host cannot move the estimator.
    const int blocks = 20, per_block = 20;
    PageServer server;  // pool 0: Submit dispatches inline
    server.backend().PutResource(kProductsUrl, kProducts);
    auto session = server.CreateSessionFromSource(
        "http://shop.example.com/cart.xhtml", *page);
    BrowserEnvironment direct;
    direct.fabric().PutResource(kProductsUrl, kProducts);
    xqib::Status st =
        direct.LoadPage("http://shop.example.com/cart.xhtml", *page);
    if (!session.ok() || !st.ok() || !direct.ScriptErrors().empty()) {
      std::fprintf(stderr, "parity setup failed\n");
      ok = false;
    } else {
      SessionEvent buy;
      buy.target_id = "laptop";
      std::vector<double> server_samples, direct_samples;
      auto sample = [](const std::function<void()>& op,
                       std::vector<double>* out, int n) {
        for (int i = 0; i < n; ++i) {
          auto t0 = std::chrono::steady_clock::now();
          op();
          out->push_back(std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
        }
      };
      for (int b = 0; b < blocks; ++b) {
        sample([&] { (*session)->Submit(buy); }, &server_samples, per_block);
        sample([&] { (void)direct.ClickId("laptop"); }, &direct_samples,
               per_block);
      }
      server_ns = xqib::bench::Percentile(std::move(server_samples), 50);
      direct_ns = xqib::bench::Percentile(std::move(direct_samples), 50);
    }
  }
  const double parity = direct_ns > 0 ? server_ns / direct_ns : 0;

  // Shared-substrate counters: N sessions, one compile per plan.
  xqib::xquery::plan::PlanCache::Stats plans =
      xqib::xquery::plan::PlanCache::Global().stats();

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_s1_server\",\n  \"events_per_session\": "
       << events << ",\n  \"load\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const LoadCell& c = cells[i];
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "    {\"name\": \"load_s%zu_p%zu\", \"sessions\": %zu, "
        "\"workers\": %zu, \"events_per_sec\": %.0f, \"ns_per_op\": %.1f, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"errors\": %llu}%s\n",
        c.sessions, c.workers, c.sessions, c.workers, c.events_per_sec,
        c.ns_per_op, c.latency.p50, c.latency.p95, c.latency.p99,
        static_cast<unsigned long long>(c.errors),
        i + 1 < cells.size() ? "," : "");
    json << line;
  }
  char guard_line[200];
  std::snprintf(guard_line, sizeof(guard_line),
                "  \"guard\": {\"name\": \"guard_s4_p0\", "
                "\"events_per_session\": 100, \"ns_per_op\": %.1f, "
                "\"p50_us\": %.1f, \"p99_us\": %.1f},\n",
                guard_cell.ns_per_op, guard_cell.latency.p50,
                guard_cell.latency.p99);
  char buf[400];
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n%s"
      "  \"parity\": {\"name\": \"server_parity\", "
      "\"server_ns_per_op\": %.1f, "
      "\"direct_ns_per_op\": %.1f, \"parity_ratio\": %.3f},\n"
      "  \"determinism\": %s,\n  \"hardware_concurrency\": %u,\n"
      "  \"plan_cache\": {\"inserts\": %llu, \"hits\": %llu}\n}\n",
      guard_line, server_ns, direct_ns, parity,
      deterministic ? "true" : "false",
      std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(plans.inserts),
      static_cast<unsigned long long>(plans.hits));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a load cell did not run\n");
    return 1;
  }
  if (args.check) {
    if (!deterministic) return 1;
    for (const LoadCell& c : cells) {
      if (c.errors != 0) {
        std::fprintf(stderr, "FAIL: load_s%zu_p%zu saw %llu errors\n",
                     c.sessions, c.workers,
                     static_cast<unsigned long long>(c.errors));
        return 1;
      }
    }
    if (parity <= 0 || parity > 1.10) {
      std::fprintf(stderr,
                   "FAIL: server parity ratio %.3f (need <= 1.10)\n", parity);
      return 1;
    }
    // Throughput scaling only binds where the pool can physically win.
    const unsigned cores = std::thread::hardware_concurrency();
    const double floor = cores >= 4 ? 1.8 : (cores >= 2 ? 1.15 : 0.0);
    if (floor > 0) {
      double serial16 = 0, pooled16 = 0;
      for (const LoadCell& c : cells) {
        if (c.sessions == 16 && c.workers == 0) serial16 = c.events_per_sec;
        if (c.sessions == 16 && c.workers == 4) pooled16 = c.events_per_sec;
      }
      const double speedup = serial16 > 0 ? pooled16 / serial16 : 0;
      if (speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: 16-session throughput only %.2fx at pool 4 on "
                     "%u cores (need %.2fx)\n",
                     speedup, cores, floor);
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "NOTE: single-core host, throughput scaling gate "
                   "skipped\n");
    }
    if (plans.hits == 0) {
      std::fprintf(stderr,
                   "FAIL: sessions never shared a compiled plan\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  // The parity ratio itself is NOT baseline-guarded: it hovers around
  // 1.0 and is gated absolutely (<= 1.10) by --check above; a +/-25%
  // band around it would flag noise, not regressions. The guarded
  // metrics are the two fixed-workload ns/op numbers, which don't vary
  // with --iters.
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"guard_s4_p0", "ns_per_op", guard_cell.ns_per_op},
           {"server_parity", "server_ns_per_op", server_ns}})) {
    return 1;
  }
  return 0;
}
