// P2 — path-evaluation fast paths: ordering/dedup elision, the
// per-document element-name index, and early-exit (bounded) evaluation.
// Unlike the google-benchmark suites, this is a self-timed runner that
// emits machine-readable JSON (BENCH_P2.json) with an on/off ablation
// for every scenario, so the speedups are reproducible numbers checked
// into the repository and smoke-tested by CI.
//
// Usage:
//   bench_p2_fastpath [--iters N] [--out FILE] [--check]
//
// --check exits non-zero unless (a) every scenario produces identical
// results with the fast paths on and off and (b) the elision / index /
// early-exit counters actually fired — i.e. the fast paths are both
// sound and live.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::xquery::DynamicContext;
using xqib::xquery::Engine;
using xqib::xquery::Evaluator;

Evaluator::EvalOptions FastOn() { return Evaluator::EvalOptions(); }

Evaluator::EvalOptions FastOff() {
  Evaluator::EvalOptions off;
  off.honor_sort_elision = false;
  off.use_name_index = false;
  off.bounded_eval = false;
  return off;
}

std::string MakeCatalog(int n) {
  std::ostringstream out;
  out << "<catalog>";
  for (int i = 0; i < n; ++i) {
    out << "<item id=\"i" << i << "\" cat=\"c" << (i % 7)
        << "\"><name>Item " << i << "</name><price>" << (i % 100)
        << "</price></item>";
  }
  out << "</catalog>";
  return out.str();
}

struct ScenarioResult {
  std::string name;
  double fast_ns = 0;
  double slow_ns = 0;
  bool results_match = false;
};

double NsPerOp(const std::function<void()>& op, int iters) {
  for (int i = 0; i < 3; ++i) op();  // warm caches and the name index
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

// Compiles `query` against `xml` and times Run() with the given
// evaluator options; the result string and final fast-path counters are
// returned through the out-params.
bool TimeQuery(const std::string& query, const std::string& xml,
               const Evaluator::EvalOptions& options, int iters,
               double* ns_per_op, std::string* result,
               Evaluator::EvalStats* stats) {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return false;
  }
  (*compiled)->evaluator().set_options(options);
  auto parsed = xqib::xml::ParseDocument(xml);
  if (!parsed.ok()) return false;
  auto doc = std::move(parsed).value();
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  if (!(*compiled)->BindGlobals(ctx).ok()) return false;
  bool ok = true;
  *ns_per_op = NsPerOp(
      [&] {
        auto r = (*compiled)->Run(ctx);
        if (!r.ok()) {
          ok = false;
          return;
        }
        *result = xqib::xdm::SequenceToString(*r);
      },
      iters);
  *stats = (*compiled)->evaluator().stats();
  return ok;
}

bool RunQueryScenario(const std::string& name, const std::string& query,
                      const std::string& xml, int iters,
                      std::vector<ScenarioResult>* results,
                      Evaluator::EvalStats* fast_stats) {
  ScenarioResult sr;
  sr.name = name;
  std::string fast_result, slow_result;
  Evaluator::EvalStats slow_stats;
  if (!TimeQuery(query, xml, FastOn(), iters, &sr.fast_ns, &fast_result,
                 fast_stats) ||
      !TimeQuery(query, xml, FastOff(), iters, &sr.slow_ns, &slow_result,
                 &slow_stats)) {
    return false;
  }
  sr.results_match = fast_result == slow_result;
  if (!sr.results_match) {
    std::fprintf(stderr, "%s: ablation results differ:\n  on:  %s\n  off: %s\n",
                 name.c_str(), fast_result.c_str(), slow_result.c_str());
  }
  results->push_back(sr);
  return true;
}

std::string MakeDispatchPage(int rows) {
  std::ostringstream out;
  out << R"(<html><body>
<input id="btn"/><span id="status">0</span><table id="data">)";
  for (int i = 0; i < rows; ++i) {
    out << "<tr><td>r" << i << "</td></tr>";
  }
  out << R"(</table>
<script type="text/xqueryp"><![CDATA[
declare updating function local:refresh($evt, $obj) {
  replace value of node //span[@id="status"]
    with string(count(//tr))
};
on event "onclick" at //input[@id="btn"] attach listener local:refresh
]]></script></body></html>)";
  return out.str();
}

// Times one event dispatch (FireEvent through the plug-in, listener
// re-counting //tr) with the page evaluator's fast paths on vs off.
bool RunDispatchScenario(const std::string& name, int rows, int iters,
                         std::vector<ScenarioResult>* results,
                         xqib::plugin::XqibPlugin::EventStats* fast_stats) {
  BrowserEnvironment env;
  xqib::Status st =
      env.LoadPage("http://bench.example.com/", MakeDispatchPage(rows));
  if (!st.ok() || !env.ScriptErrors().empty()) {
    std::fprintf(stderr, "%s: page load failed: %s %s\n", name.c_str(),
                 st.ToString().c_str(), env.ScriptErrors().c_str());
    return false;
  }
  xqib::xml::Node* button = env.ById("btn");
  auto click = [&] {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  };
  ScenarioResult sr;
  sr.name = name;
  env.plugin().set_eval_options(FastOn());
  sr.fast_ns = NsPerOp(click, iters);
  *fast_stats = env.plugin().last_event_stats();
  std::string fast_status = env.ById("status")->StringValue();
  env.plugin().set_eval_options(FastOff());
  sr.slow_ns = NsPerOp(click, iters);
  std::string slow_status = env.ById("status")->StringValue();
  sr.results_match = fast_status == slow_status &&
                     fast_status == std::to_string(rows);
  results->push_back(sr);
  return true;
}

std::string ToJson(const std::vector<ScenarioResult>& results, int iters,
                   const Evaluator::EvalStats& counters) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_p2_fastpath\",\n  \"iters\": " << iters
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double speedup = r.fast_ns > 0 ? r.slow_ns / r.fast_ns : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"fast_ns_per_op\": %.1f, "
                  "\"slow_ns_per_op\": %.1f, \"speedup\": %.2f, "
                  "\"results_match\": %s}%s\n",
                  r.name.c_str(), r.fast_ns, r.slow_ns, speedup,
                  r.results_match ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"counters\": {\"sorts_elided\": " << counters.sorts_elided
      << ", \"sorts_performed\": " << counters.sorts_performed
      << ", \"name_index_hits\": " << counters.name_index_hits
      << ", \"early_exits\": " << counters.early_exits << "}\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 200;
  std::string out_path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iters N] [--out FILE] [--check]\n", argv[0]);
      return 2;
    }
  }
  if (iters <= 0) iters = 1;

  const std::string catalog = MakeCatalog(1500);
  std::vector<ScenarioResult> results;
  // Accumulated fast-run counters across scenarios; --check asserts
  // each fast path actually fired somewhere.
  Evaluator::EvalStats totals;
  Evaluator::EvalStats s;
  bool ok = true;

  ok &= RunQueryScenario("micro_descendant_name", "count(//price)", catalog,
                         iters, &results, &s);
  totals.name_index_hits += s.name_index_hits;
  totals.sorts_elided += s.sorts_elided;
  ok &= RunQueryScenario("micro_child_chain", "count(/catalog/item/price)",
                         catalog, iters, &results, &s);
  totals.sorts_elided += s.sorts_elided;
  totals.sorts_performed += s.sorts_performed;
  ok &= RunQueryScenario("micro_exists", "exists(//item)", catalog, iters,
                         &results, &s);
  totals.early_exits += s.early_exits;
  ok &= RunQueryScenario("micro_first", "(//item)[1]/@id", catalog, iters,
                         &results, &s);
  totals.early_exits += s.early_exits;
  ok &= RunQueryScenario("micro_last", "(//item)[last()]/@id", catalog,
                         iters, &results, &s);
  totals.early_exits += s.early_exits;

  xqib::plugin::XqibPlugin::EventStats ev;
  ok &= RunDispatchScenario("fig1_event_dispatch", 300, iters, &results, &ev);
  totals.sorts_elided += ev.sorts_elided;
  totals.name_index_hits += ev.name_index_hits;
  ok &= RunDispatchScenario("fig3_mashup_dispatch", 60, iters, &results, &ev);
  totals.sorts_elided += ev.sorts_elided;
  totals.name_index_hits += ev.name_index_hits;

  std::string json = ToJson(results, iters, totals);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  std::fputs(json.c_str(), stdout);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (check) {
    for (const ScenarioResult& r : results) {
      if (!r.results_match) {
        std::fprintf(stderr, "FAIL: %s ablation results differ\n",
                     r.name.c_str());
        return 1;
      }
    }
    if (totals.sorts_elided == 0 || totals.name_index_hits == 0 ||
        totals.early_exits == 0) {
      std::fprintf(stderr, "FAIL: a fast-path counter never fired\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  return 0;
}
