// P2 — path-evaluation fast paths: ordering/dedup elision, the
// per-document element-name index, and early-exit (bounded) evaluation.
// Unlike the google-benchmark suites, this is a self-timed runner that
// emits machine-readable JSON (BENCH_P2.json) with an on/off ablation
// for every scenario, so the speedups are reproducible numbers checked
// into the repository and smoke-tested by CI.
//
// Usage:
//   bench_p2_fastpath [--iters N] [--out FILE] [--check]
//
// --check exits non-zero unless (a) every scenario produces identical
// results with the fast paths on and off and (b) the elision / index /
// early-exit counters actually fired — i.e. the fast paths are both
// sound and live.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using xqib::bench::Args;
using xqib::bench::ScenarioResult;
using xqib::xquery::Evaluator;

Evaluator::EvalOptions FastOn() { return Evaluator::EvalOptions(); }

Evaluator::EvalOptions FastOff() {
  Evaluator::EvalOptions off;
  off.honor_sort_elision = false;
  off.use_name_index = false;
  off.bounded_eval = false;
  return off;
}

std::string MakeCatalog(int n) {
  std::ostringstream out;
  out << "<catalog>";
  for (int i = 0; i < n; ++i) {
    out << "<item id=\"i" << i << "\" cat=\"c" << (i % 7)
        << "\"><name>Item " << i << "</name><price>" << (i % 100)
        << "</price></item>";
  }
  out << "</catalog>";
  return out.str();
}

std::string ToJson(const std::vector<ScenarioResult>& results, int iters,
                   const Evaluator::EvalStats& counters) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_p2_fastpath\",\n  \"iters\": " << iters
      << ",\n"
      << xqib::bench::ScenariosJson(results, "fast", "slow")
      << ",\n  \"counters\": {\"sorts_elided\": " << counters.sorts_elided
      << ", \"sorts_performed\": " << counters.sorts_performed
      << ", \"name_index_hits\": " << counters.name_index_hits
      << ", \"early_exits\": " << counters.early_exits << "}\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  const std::string catalog = MakeCatalog(1500);
  std::vector<ScenarioResult> results;
  // Accumulated fast-run counters across scenarios; --check asserts
  // each fast path actually fired somewhere.
  Evaluator::EvalStats totals;
  Evaluator::EvalStats s;
  bool ok = true;

  auto query = [&](const std::string& name, const std::string& q) {
    return xqib::bench::RunQueryScenario(name, q, catalog, iters, FastOn(),
                                         FastOff(), &results, &s);
  };
  ok &= query("micro_descendant_name", "count(//price)");
  totals.name_index_hits += s.name_index_hits;
  totals.sorts_elided += s.sorts_elided;
  ok &= query("micro_child_chain", "count(/catalog/item/price)");
  totals.sorts_elided += s.sorts_elided;
  totals.sorts_performed += s.sorts_performed;
  ok &= query("micro_exists", "exists(//item)");
  totals.early_exits += s.early_exits;
  ok &= query("micro_first", "(//item)[1]/@id");
  totals.early_exits += s.early_exits;
  ok &= query("micro_last", "(//item)[last()]/@id");
  totals.early_exits += s.early_exits;

  xqib::plugin::XqibPlugin::EventStats ev;
  ok &= xqib::bench::RunDispatchScenario("fig1_event_dispatch", 300, iters,
                                         FastOn(), FastOff(), &results, &ev);
  totals.sorts_elided += ev.sorts_elided;
  totals.name_index_hits += ev.name_index_hits;
  ok &= xqib::bench::RunDispatchScenario("fig3_mashup_dispatch", 60, iters,
                                         FastOn(), FastOff(), &results, &ev);
  totals.sorts_elided += ev.sorts_elided;
  totals.name_index_hits += ev.name_index_hits;

  xqib::bench::EmitJson(ToJson(results, iters, totals), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    if (totals.sorts_elided == 0 || totals.name_index_hits == 0 ||
        totals.early_exits == 0) {
      std::fprintf(stderr, "FAIL: a fast-path counter never fired\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  return 0;
}
