// P3 — streaming XDM: the pull-based ItemStream pipeline vs the eager
// vector-sequence baseline (EvalOptions::stream_pipeline off). Like
// bench_p2_fastpath this is a self-timed runner emitting machine-
// readable JSON (BENCH_P3.json) with an on/off ablation per scenario.
//
// Usage:
//   bench_p3_streaming [--iters N] [--out FILE] [--check]
//
// --check exits non-zero unless (a) every scenario produces identical
// results with the stream pipeline on and off, (b) the streaming
// counters (items pulled, buffers avoided, count-index hits, early
// exits) actually fired, and (c) the deep-FLWOR micro materializes at
// least 5x fewer intermediate items with the pipeline on — i.e. the
// pipeline is sound, live, and actually lazy.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::xquery::DynamicContext;
using xqib::xquery::Engine;
using xqib::xquery::Evaluator;

// Both arms keep PR 2's fast paths (elision, name index, bounded eval)
// on; the only axis flipped is the streaming pipeline itself, so the
// numbers isolate what pull-based evaluation buys on top of PR 2.
Evaluator::EvalOptions StreamOn() { return Evaluator::EvalOptions(); }

Evaluator::EvalOptions StreamOff() {
  Evaluator::EvalOptions off;
  off.stream_pipeline = false;
  return off;
}

// Nested sections/items/leaves: a three-level page so a multi-clause
// FLWOR has genuinely large intermediate bindings to avoid buffering.
std::string MakeNestedPage(int secs, int items, int leaves) {
  std::ostringstream out;
  out << "<page>";
  for (int s = 0; s < secs; ++s) {
    out << "<sec id=\"s" << s << "\">";
    for (int i = 0; i < items; ++i) {
      out << "<item v=\"" << (i % 97) << "\">";
      for (int l = 0; l < leaves; ++l) out << "<leaf/>";
      out << "</item>";
    }
    out << "</sec>";
  }
  out << "</page>";
  return out.str();
}

struct ScenarioResult {
  std::string name;
  double stream_ns = 0;
  double eager_ns = 0;
  bool results_match = false;
};

double NsPerOp(const std::function<void()>& op, int iters) {
  for (int i = 0; i < 3; ++i) op();  // warm caches and the name index
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

// Compiles `query` against `xml` and times Run() with the given
// evaluator options; result string and accumulated counters come back
// through the out-params.
bool TimeQuery(const std::string& query, const std::string& xml,
               const Evaluator::EvalOptions& options, int iters,
               double* ns_per_op, std::string* result,
               Evaluator::EvalStats* stats) {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return false;
  }
  (*compiled)->evaluator().set_options(options);
  std::unique_ptr<xqib::xml::Document> doc;
  DynamicContext ctx;
  if (!xml.empty()) {
    auto parsed = xqib::xml::ParseDocument(xml);
    if (!parsed.ok()) return false;
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xqib::xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  if (!(*compiled)->BindGlobals(ctx).ok()) return false;
  bool ok = true;
  *ns_per_op = NsPerOp(
      [&] {
        auto r = (*compiled)->Run(ctx);
        if (!r.ok()) {
          ok = false;
          return;
        }
        *result = xqib::xdm::SequenceToString(*r);
      },
      iters);
  *stats = (*compiled)->evaluator().stats();
  return ok;
}

// Fresh engine, fixed number of executions (3 warmups + 1 timed), so
// the two arms' counters are directly comparable regardless of
// --iters (used for the materialization-ratio check).
bool MeasureStats(const std::string& query, const std::string& xml,
                  const Evaluator::EvalOptions& options,
                  Evaluator::EvalStats* stats) {
  double ns;
  std::string result;
  return TimeQuery(query, xml, options, 1, &ns, &result, stats);
}

bool RunQueryScenario(const std::string& name, const std::string& query,
                      const std::string& xml, int iters,
                      std::vector<ScenarioResult>* results,
                      Evaluator::EvalStats* stream_stats) {
  ScenarioResult sr;
  sr.name = name;
  std::string stream_result, eager_result;
  Evaluator::EvalStats eager_stats;
  if (!TimeQuery(query, xml, StreamOn(), iters, &sr.stream_ns,
                 &stream_result, stream_stats) ||
      !TimeQuery(query, xml, StreamOff(), iters, &sr.eager_ns,
                 &eager_result, &eager_stats)) {
    return false;
  }
  sr.results_match = stream_result == eager_result;
  if (!sr.results_match) {
    std::fprintf(stderr, "%s: ablation results differ:\n  on:  %s\n  off: %s\n",
                 name.c_str(), stream_result.c_str(), eager_result.c_str());
  }
  results->push_back(sr);
  return true;
}

std::string MakeDispatchPage(int rows) {
  std::ostringstream out;
  out << R"(<html><body>
<input id="btn"/><span id="status">0</span><table id="data">)";
  for (int i = 0; i < rows; ++i) {
    out << "<tr><td>r" << i << "</td></tr>";
  }
  out << R"(</table>
<script type="text/xqueryp"><![CDATA[
declare updating function local:refresh($evt, $obj) {
  replace value of node //span[@id="status"]
    with string(count(//tr))
};
on event "onclick" at //input[@id="btn"] attach listener local:refresh
]]></script></body></html>)";
  return out.str();
}

// Times one event dispatch (FireEvent through the plug-in, listener
// re-counting //tr) with the page evaluator's stream pipeline on vs
// off — the paper's Figure 1 processing loop.
bool RunDispatchScenario(const std::string& name, int rows, int iters,
                         std::vector<ScenarioResult>* results,
                         xqib::plugin::XqibPlugin::EventStats* stream_stats) {
  BrowserEnvironment env;
  xqib::Status st =
      env.LoadPage("http://bench.example.com/", MakeDispatchPage(rows));
  if (!st.ok() || !env.ScriptErrors().empty()) {
    std::fprintf(stderr, "%s: page load failed: %s %s\n", name.c_str(),
                 st.ToString().c_str(), env.ScriptErrors().c_str());
    return false;
  }
  xqib::xml::Node* button = env.ById("btn");
  auto click = [&] {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  };
  ScenarioResult sr;
  sr.name = name;
  env.plugin().set_eval_options(StreamOn());
  sr.stream_ns = NsPerOp(click, iters);
  *stream_stats = env.plugin().last_event_stats();
  std::string stream_status = env.ById("status")->StringValue();
  env.plugin().set_eval_options(StreamOff());
  sr.eager_ns = NsPerOp(click, iters);
  std::string eager_status = env.ById("status")->StringValue();
  sr.results_match = stream_status == eager_status &&
                     stream_status == std::to_string(rows);
  results->push_back(sr);
  return true;
}

std::string ToJson(const std::vector<ScenarioResult>& results, int iters,
                   const Evaluator::EvalStats& counters,
                   uint64_t flwor_stream_mat, uint64_t flwor_eager_mat) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_p3_streaming\",\n  \"iters\": " << iters
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double speedup = r.stream_ns > 0 ? r.eager_ns / r.stream_ns : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"stream_ns_per_op\": %.1f, "
                  "\"eager_ns_per_op\": %.1f, \"speedup\": %.2f, "
                  "\"results_match\": %s}%s\n",
                  r.name.c_str(), r.stream_ns, r.eager_ns, speedup,
                  r.results_match ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  double reduction =
      flwor_stream_mat > 0
          ? static_cast<double>(flwor_eager_mat) /
                static_cast<double>(flwor_stream_mat)
          : static_cast<double>(flwor_eager_mat);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"deep_flwor_materialization\": "
                "{\"stream_items_materialized\": %llu, "
                "\"eager_items_materialized\": %llu, "
                "\"reduction\": %.1f},\n",
                static_cast<unsigned long long>(flwor_stream_mat),
                static_cast<unsigned long long>(flwor_eager_mat), reduction);
  out << buf;
  out << "  \"counters\": {\"items_pulled\": " << counters.streams.items_pulled
      << ", \"items_materialized\": " << counters.streams.items_materialized
      << ", \"buffers_avoided\": " << counters.streams.buffers_avoided
      << ", \"count_index_hits\": " << counters.count_index_hits
      << ", \"early_exits\": " << counters.early_exits << "}\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 200;
  std::string out_path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iters N] [--out FILE] [--check]\n", argv[0]);
      return 2;
    }
  }
  if (iters <= 0) iters = 1;

  const std::string page = MakeNestedPage(30, 20, 5);
  const std::string deep_flwor =
      "count(for $s in //sec, $i in $s/item, $l in $i/leaf return $l)";
  std::vector<ScenarioResult> results;
  // Accumulated stream-arm counters across scenarios; --check asserts
  // the pipeline's counter families all fired somewhere.
  Evaluator::EvalStats totals;
  Evaluator::EvalStats s;
  bool ok = true;

  ok &= RunQueryScenario("deep_flwor_count", deep_flwor, page, iters,
                         &results, &s);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.streams.buffers_avoided += s.streams.buffers_avoided;
  ok &= RunQueryScenario("micro_exists_where",
                         "exists(for $i in 1 to 100000 "
                         "where $i mod 2 = 0 return $i)",
                         "", iters, &results, &s);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.early_exits += s.early_exits;
  ok &= RunQueryScenario("micro_head_flwor",
                         "head(for $i in 1 to 100000 return $i * 2)", "",
                         iters, &results, &s);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.early_exits += s.early_exits;
  ok &= RunQueryScenario("micro_count_fold", "count(//item/@v)", page, iters,
                         &results, &s);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.streams.buffers_avoided += s.streams.buffers_avoided;
  ok &= RunQueryScenario("micro_count_index", "count(//leaf)", page, iters,
                         &results, &s);
  totals.count_index_hits += s.count_index_hits;

  xqib::plugin::XqibPlugin::EventStats ev;
  ok &= RunDispatchScenario("fig1_event_dispatch", 300, iters, &results, &ev);
  totals.streams.items_pulled += ev.items_pulled;
  totals.streams.buffers_avoided += ev.buffers_avoided;

  // Peak-intermediate-materialization ratio on the deep FLWOR: one
  // fresh run per arm so the counters are per-execution, not per
  // timing loop.
  Evaluator::EvalStats flwor_on, flwor_off;
  ok &= MeasureStats(deep_flwor, page, StreamOn(), &flwor_on);
  ok &= MeasureStats(deep_flwor, page, StreamOff(), &flwor_off);
  totals.streams.items_materialized += flwor_on.streams.items_materialized;

  std::string json =
      ToJson(results, iters, totals, flwor_on.streams.items_materialized,
             flwor_off.streams.items_materialized);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  std::fputs(json.c_str(), stdout);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (check) {
    for (const ScenarioResult& r : results) {
      if (!r.results_match) {
        std::fprintf(stderr, "FAIL: %s ablation results differ\n",
                     r.name.c_str());
        return 1;
      }
    }
    if (totals.streams.items_pulled == 0 ||
        totals.streams.buffers_avoided == 0 ||
        totals.count_index_hits == 0 || totals.early_exits == 0) {
      std::fprintf(stderr, "FAIL: a streaming counter never fired\n");
      return 1;
    }
    if (flwor_off.streams.items_materialized <
        5 * (flwor_on.streams.items_materialized == 0
                 ? 1
                 : flwor_on.streams.items_materialized)) {
      std::fprintf(stderr,
                   "FAIL: deep-FLWOR materialization reduction below 5x "
                   "(on=%llu off=%llu)\n",
                   static_cast<unsigned long long>(
                       flwor_on.streams.items_materialized),
                   static_cast<unsigned long long>(
                       flwor_off.streams.items_materialized));
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  return 0;
}
