// P3 — streaming XDM: the pull-based ItemStream pipeline vs the eager
// vector-sequence baseline (EvalOptions::stream_pipeline off). Like
// bench_p2_fastpath this is a self-timed runner emitting machine-
// readable JSON (BENCH_P3.json) with an on/off ablation per scenario.
//
// Usage:
//   bench_p3_streaming [--iters N] [--out FILE] [--check]
//
// --check exits non-zero unless (a) every scenario produces identical
// results with the stream pipeline on and off, (b) the streaming
// counters (items pulled, buffers avoided, count-index hits, early
// exits) actually fired, and (c) the deep-FLWOR micro materializes at
// least 5x fewer intermediate items with the pipeline on — i.e. the
// pipeline is sound, live, and actually lazy.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using xqib::bench::Args;
using xqib::bench::ScenarioResult;
using xqib::xquery::Evaluator;

// Both arms keep PR 2's fast paths (elision, name index, bounded eval)
// on; the only axis flipped is the streaming pipeline itself, so the
// numbers isolate what pull-based evaluation buys on top of PR 2.
Evaluator::EvalOptions StreamOn() { return Evaluator::EvalOptions(); }

Evaluator::EvalOptions StreamOff() {
  Evaluator::EvalOptions off;
  off.stream_pipeline = false;
  return off;
}

// Nested sections/items/leaves: a three-level page so a multi-clause
// FLWOR has genuinely large intermediate bindings to avoid buffering.
std::string MakeNestedPage(int secs, int items, int leaves) {
  std::ostringstream out;
  out << "<page>";
  for (int s = 0; s < secs; ++s) {
    out << "<sec id=\"s" << s << "\">";
    for (int i = 0; i < items; ++i) {
      out << "<item v=\"" << (i % 97) << "\">";
      for (int l = 0; l < leaves; ++l) out << "<leaf/>";
      out << "</item>";
    }
    out << "</sec>";
  }
  out << "</page>";
  return out.str();
}

std::string ToJson(const std::vector<ScenarioResult>& results, int iters,
                   const Evaluator::EvalStats& counters,
                   uint64_t flwor_stream_mat, uint64_t flwor_eager_mat) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_p3_streaming\",\n  \"iters\": " << iters
      << ",\n"
      << xqib::bench::ScenariosJson(results, "stream", "eager") << ",\n";
  double reduction =
      flwor_stream_mat > 0
          ? static_cast<double>(flwor_eager_mat) /
                static_cast<double>(flwor_stream_mat)
          : static_cast<double>(flwor_eager_mat);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"deep_flwor_materialization\": "
                "{\"stream_items_materialized\": %llu, "
                "\"eager_items_materialized\": %llu, "
                "\"reduction\": %.1f},\n",
                static_cast<unsigned long long>(flwor_stream_mat),
                static_cast<unsigned long long>(flwor_eager_mat), reduction);
  out << buf;
  out << "  \"counters\": {\"items_pulled\": " << counters.streams.items_pulled
      << ", \"items_materialized\": " << counters.streams.items_materialized
      << ", \"buffers_avoided\": " << counters.streams.buffers_avoided
      << ", \"count_index_hits\": " << counters.count_index_hits
      << ", \"early_exits\": " << counters.early_exits << "}\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  const std::string page = MakeNestedPage(30, 20, 5);
  const std::string deep_flwor =
      "count(for $s in //sec, $i in $s/item, $l in $i/leaf return $l)";
  std::vector<ScenarioResult> results;
  // Accumulated stream-arm counters across scenarios; --check asserts
  // the pipeline's counter families all fired somewhere.
  Evaluator::EvalStats totals;
  Evaluator::EvalStats s;
  bool ok = true;

  auto query = [&](const std::string& name, const std::string& q,
                   const std::string& xml) {
    return xqib::bench::RunQueryScenario(name, q, xml, iters, StreamOn(),
                                         StreamOff(), &results, &s);
  };
  ok &= query("deep_flwor_count", deep_flwor, page);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.streams.buffers_avoided += s.streams.buffers_avoided;
  ok &= query("micro_exists_where",
              "exists(for $i in 1 to 100000 "
              "where $i mod 2 = 0 return $i)",
              "");
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.early_exits += s.early_exits;
  ok &= query("micro_head_flwor", "head(for $i in 1 to 100000 return $i * 2)",
              "");
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.early_exits += s.early_exits;
  ok &= query("micro_count_fold", "count(//item/@v)", page);
  totals.streams.items_pulled += s.streams.items_pulled;
  totals.streams.buffers_avoided += s.streams.buffers_avoided;
  ok &= query("micro_count_index", "count(//leaf)", page);
  totals.count_index_hits += s.count_index_hits;

  xqib::plugin::XqibPlugin::EventStats ev;
  ok &= xqib::bench::RunDispatchScenario("fig1_event_dispatch", 300, iters,
                                         StreamOn(), StreamOff(), &results,
                                         &ev);
  totals.streams.items_pulled += ev.items_pulled;
  totals.streams.buffers_avoided += ev.buffers_avoided;

  // Peak-intermediate-materialization ratio on the deep FLWOR: one
  // fresh run per arm so the counters are per-execution, not per
  // timing loop.
  Evaluator::EvalStats flwor_on, flwor_off;
  ok &= xqib::bench::MeasureStats(deep_flwor, page, StreamOn(), &flwor_on);
  ok &= xqib::bench::MeasureStats(deep_flwor, page, StreamOff(), &flwor_off);
  totals.streams.items_materialized += flwor_on.streams.items_materialized;

  xqib::bench::EmitJson(
      ToJson(results, iters, totals, flwor_on.streams.items_materialized,
             flwor_off.streams.items_materialized),
      args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    if (totals.streams.items_pulled == 0 ||
        totals.streams.buffers_avoided == 0 ||
        totals.count_index_hits == 0 || totals.early_exits == 0) {
      std::fprintf(stderr, "FAIL: a streaming counter never fired\n");
      return 1;
    }
    if (flwor_off.streams.items_materialized <
        5 * (flwor_on.streams.items_materialized == 0
                 ? uint64_t{1}
                 : flwor_on.streams.items_materialized.value())) {
      std::fprintf(stderr,
                   "FAIL: deep-FLWOR materialization reduction below 5x "
                   "(on=%llu off=%llu)\n",
                   static_cast<unsigned long long>(
                       flwor_on.streams.items_materialized),
                   static_cast<unsigned long long>(
                       flwor_off.streams.items_materialized));
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  return 0;
}
