// P7 — compiled query plans: user-function bodies lowered once into
// flat register bytecode (xquery/plan/) so a memo-miss listener
// dispatch executes a linear op array instead of tree-walking the AST.
// Self-timed runner emitting BENCH_P7.json, same schema as P2-P6.
//
// Usage:
//   bench_p7_plans [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios (arms = EvalOptions::compiled_plans on vs off; the tree
// walker is the oracle, so both arms must produce identical DOM state):
//   memomiss_dispatch  the P7 acceptance scenario: an UPDATING listener
//                      (never memoizable — every click is a memo miss)
//                      whose body is a FLWOR over 1 to N with integer
//                      arithmetic and a mod/where filter, ending in one
//                      `replace value of node //span[@id="status"]`.
//                      The plan arm runs the loop as arith.int/compare
//                      bytecode; the tree arm re-walks the AST per
//                      iteration.
//   fig1_dispatch      the Figure 1 continuity page (count //tr rows on
//                      click) with plans on vs off — the path/count
//                      work dominates, so this guards "plans never hurt
//                      the paths the earlier PRs optimized".
//
// --check exits non-zero unless both ablations agree, the plan arm wins
// >= 2x on memomiss_dispatch (the P7 acceptance floor), the warm
// dispatch performed zero plan compilations (the plan-cache hit path),
// and at least one call actually executed through a plan.
// --baseline FILE compares the fresh memomiss_dispatch plan-arm ns/op
// against the checked-in BENCH_P7.json within +/-25%.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "xml/dom.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;
using xqib::xquery::Evaluator;

// The memo-miss page: one button, one status span, and an updating
// listener dominated by plan-lowerable integer work.
std::string MakePlanWorkPage(int n) {
  std::ostringstream out;
  out << "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      << "declare updating function local:work($evt, $obj) {\n"
      << "  let $acc :=\n"
      << "    for $i in 1 to " << n << "\n"
      << "    where ($i * 3 + 1) mod 7 = 3\n"
      << "    return $i * $i mod 101\n"
      << "  return replace value of node //span[@id=\"status\"]\n"
      << "    with string(sum($acc) + count($acc))\n"
      << "};\n"
      << "on event \"onclick\" at //input[@id=\"btn\"] "
      << "attach listener local:work\n"
      << "]]></script></head><body>"
      << "<input id=\"btn\"/><span id=\"status\">0</span>"
      << "</body></html>";
  return out.str();
}

// Times one event dispatch on `page` with compiled plans flipped
// between the arms; `on_stats` receives the last warm on-arm dispatch's
// EventStats (its plan_compiles must be zero: the cache-hit path).
bool RunPlanDispatch(const std::string& name, const std::string& page,
                     int iters, const Evaluator::EvalOptions& on,
                     const Evaluator::EvalOptions& off,
                     std::vector<ScenarioResult>* results,
                     xqib::plugin::XqibPlugin::EventStats* on_stats) {
  BrowserEnvironment env;
  xqib::Status st = env.LoadPage("http://bench.example.com/", page);
  if (!st.ok() || !env.ScriptErrors().empty()) {
    std::fprintf(stderr, "%s: page load failed: %s %s\n", name.c_str(),
                 st.ToString().c_str(), env.ScriptErrors().c_str());
    return false;
  }
  xqib::xml::Node* button = env.ById("btn");
  if (button == nullptr) return false;
  auto click = [&] {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  };
  ScenarioResult sr;
  sr.name = name;
  env.plugin().set_eval_options(on);
  sr.on_ns = xqib::bench::NsPerOp(click, iters);
  *on_stats = env.plugin().last_event_stats();
  std::string on_status = env.ById("status")->StringValue();
  env.plugin().set_eval_options(off);
  sr.off_ns = xqib::bench::NsPerOp(click, iters);
  std::string off_status = env.ById("status")->StringValue();
  sr.results_match = on_status == off_status && !on_status.empty() &&
                     on_status != "0";
  if (!sr.results_match) {
    std::fprintf(stderr, "%s: ablation results differ: plan %s tree %s\n",
                 name.c_str(), on_status.c_str(), off_status.c_str());
  }
  results->push_back(sr);
  if (!env.ScriptErrors().empty()) {
    std::fprintf(stderr, "%s: script errors during dispatch: %s\n",
                 name.c_str(), env.ScriptErrors().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  Evaluator::EvalOptions on;  // defaults: compiled_plans = true
  Evaluator::EvalOptions off;
  off.compiled_plans = false;

  std::vector<ScenarioResult> results;
  bool ok = true;

  xqib::plugin::XqibPlugin::EventStats plan_stats;
  ok &= RunPlanDispatch("memomiss_dispatch", MakePlanWorkPage(4000), iters,
                        on, off, &results, &plan_stats);

  xqib::plugin::XqibPlugin::EventStats fig1_stats;
  ok &= xqib::bench::RunDispatchScenario("fig1_dispatch", 2000, iters, on,
                                         off, &results, &fig1_stats);

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p7_plans\",\n  \"iters\": " << iters
       << ",\n"
       << xqib::bench::ScenariosJson(results, "plan", "tree") << ",\n";
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "  \"warm_dispatch\": {\"plan_hits\": %llu, \"plan_misses\": %llu, "
      "\"plan_compiles\": %llu, \"plan_invalidations\": %llu}\n}\n",
      static_cast<unsigned long long>(plan_stats.plan_hits),
      static_cast<unsigned long long>(plan_stats.plan_misses),
      static_cast<unsigned long long>(plan_stats.plan_compiles),
      static_cast<unsigned long long>(plan_stats.plan_invalidations));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    const ScenarioResult& mm = results[0];
    const double speedup = mm.on_ns > 0 ? mm.off_ns / mm.on_ns : 0;
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: memo-miss dispatch speedup %.2fx below the 2x "
                   "floor (plan %.1f ns, tree %.1f ns)\n",
                   speedup, mm.on_ns, mm.off_ns);
      return 1;
    }
    if (plan_stats.plan_compiles != 0) {
      std::fprintf(stderr,
                   "FAIL: warm dispatch compiled %llu plans (the cache-hit "
                   "path must compile zero)\n",
                   static_cast<unsigned long long>(plan_stats.plan_compiles));
      return 1;
    }
    if (plan_stats.plan_hits == 0) {
      std::fprintf(stderr,
                   "FAIL: no call executed through a plan on the plan arm\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"memomiss_dispatch", "plan_ns_per_op", results[0].on_ns}})) {
    return 1;
  }
  return 0;
}
