// A2 — Update Facility snapshot semantics (§3.2) vs Scripting Extension
// statement-boundary semantics (§3.3): k insertions applied as one
// pending-update-list batch vs k sequential statements each applying its
// own PUL. Also the imperative MiniJS equivalent for scale.

#include <benchmark/benchmark.h>

#include <sstream>

#include "app/environment.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace {

using xqib::xquery::DynamicContext;
using xqib::xquery::Engine;

void FocusOn(DynamicContext* ctx, xqib::xml::Document* doc) {
  DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx->set_focus(f);
}

// One snapshot: a single FLWOR producing k insert primitives, applied
// together at the end (the Update Facility model).
void BM_A2_SnapshotBatch(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Engine engine;
  auto q = engine.Compile("for $i in 1 to " + std::to_string(k) +
                          " return insert node <row/> into /root");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto doc = std::move(xqib::xml::ParseDocument("<root/>")).value();
    DynamicContext ctx;
    FocusOn(&ctx, doc.get());
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.counters["updates"] = k;
}
BENCHMARK(BM_A2_SnapshotBatch)->Arg(10)->Arg(100)->Arg(1000);

// Scripting: a while loop whose body applies its PUL at every statement
// boundary — each insertion becomes immediately visible (§3.3), at the
// cost of k PUL applications.
void BM_A2_ScriptingStatements(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Engine engine;
  auto q = engine.Compile(
      "{ declare variable $i := 0;"
      "  while ($i < " + std::to_string(k) + ") {"
      "    insert node <row/> into /root;"
      "    set $i := $i + 1;"
      "  };"
      "  count(/root/row) }");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto doc = std::move(xqib::xml::ParseDocument("<root/>")).value();
    DynamicContext ctx;
    FocusOn(&ctx, doc.get());
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.counters["updates"] = k;
}
BENCHMARK(BM_A2_ScriptingStatements)->Arg(10)->Arg(100)->Arg(1000);

// Imperative baseline: the same k insertions through MiniJS DOM calls.
void BM_A2_MiniJsAppend(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  xqib::app::BrowserEnvironment env;
  xqib::Status st = env.LoadPage("http://bench.example.com/",
                                 "<html><body><div id=\"root\"/>"
                                 "</body></html>");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  st = env.js()->Execute(env.window(), R"(
    function fill(k) {
      var root = document.getElementById('root');
      for (var i = 0; i < k; i++) {
        root.appendChild(document.createElement('row'));
      }
    })");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::string call = "fill(" + std::to_string(k) + ");";
  for (auto _ : state) {
    st = env.js()->Execute(env.window(), call);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["updates"] = k;
}
BENCHMARK(BM_A2_MiniJsAppend)->Arg(10)->Arg(100)->Arg(1000);

// PUL compatibility checking cost: many primitives on distinct targets.
void BM_A2_PulCompatibilityCheck(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::ostringstream xml;
  xml << "<root>";
  for (int i = 0; i < k; ++i) xml << "<e n=\"" << i << "\"/>";
  xml << "</root>";
  Engine engine;
  auto q = engine.Compile(
      "for $e in /root/e return rename node $e as \"renamed\"");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto doc = std::move(xqib::xml::ParseDocument(xml.str())).value();
    DynamicContext ctx;
    FocusOn(&ctx, doc.get());
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
}
BENCHMARK(BM_A2_PulCompatibilityCheck)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
