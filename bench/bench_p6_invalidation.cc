// P6 — name-granular invalidation under churn: memo entries and
// name-index buckets that survive mutations provably disjoint from
// their recorded read sets. Self-timed runner emitting BENCH_P6.json,
// same schema as P2-P5.
//
// Usage:
//   bench_p6_invalidation [--iters N] [--out FILE] [--check]
//                         [--baseline FILE]
//
// Scenarios (arms = fine-grained invalidation on vs the
// set_fine_grained_invalidation(false) ablation, which restores the
// pre-P6 whole-document-version behavior exactly):
//   memo_churn   8 memoizable listeners counting //item thresholds on
//                one button, one updating listener appending into
//                /html/body/loga on another; op = mutate-click then
//                count-click. Fine-grained: every entry records
//                ReadSet {item @v} at fill time and survives the loga
//                churn (8 hits/op). Coarse: the global version bump
//                evicts all 8 every op.
//   index_churn  the same churn with the memo cache disabled, so the
//                listener re-runs every op and the win is the //item
//                name-index bucket served without a rebuild (the
//                lazy index snapshot's per-name counters still match).
//
// --check exits non-zero unless both ablations agree, the fine arm's
// survivals and index fine-hits actually fired, and the memo hit rate
// improves >= 5x over the coarse arm (the P6 acceptance floor).
// --baseline FILE compares the fresh memo_churn fine-arm ns/op against
// the checked-in BENCH_P6.json within +/-25% — the CI regression
// guard.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "xml/dom.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;

// The churn page: `items` valued items, one count button fanning out to
// `listeners` memoizable listeners, one mutate button whose updating
// listener appends into a log no counter ever reads.
std::string MakeChurnPage(int items, int listeners) {
  std::ostringstream out;
  out << "<html><head><script type=\"text/xqueryp\"><![CDATA[\n";
  for (int l = 0; l < listeners; ++l) {
    out << "declare function local:m" << l << "($evt, $obj) {\n"
        << "  concat(\"m" << l << "=\", string(count(//item[@v > "
        << (l * 100 + 50) << "])))\n};\n";
  }
  out << "declare updating function local:mut($evt, $obj) {\n"
      << "  insert node <entry/> into /html/body/loga\n};\n{\n";
  for (int l = 0; l < listeners; ++l) {
    out << "  on event \"onclick\" at //input[@id=\"btn\"] "
        << "attach listener local:m" << l << ";\n";
  }
  out << "  on event \"onclick\" at //input[@id=\"mut\"] "
      << "attach listener local:mut;\n  ()\n}\n]]></script></head><body>"
      << "<input id=\"btn\"/><input id=\"mut\"/><loga/><div id=\"data\">";
  uint32_t state = 98765;
  for (int i = 0; i < items; ++i) {
    state = state * 1664525u + 1013904223u;
    out << "<item v=\"" << ((state >> 16) % 1000) << "\"/>";
  }
  out << "</div></body></html>";
  return out.str();
}

// The index-churn page: a single predicate-free counter, so the op
// cost is the //item bucket lookup itself — a full lazy-index rebuild
// per op on the coarse arm, a snapshot-validated bucket serve on the
// fine arm.
std::string MakeIndexChurnPage(int items) {
  std::ostringstream out;
  out << "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      << "declare function local:n($evt, $obj) {\n"
      << "  concat(\"n=\", string(count(//item)))\n};\n"
      << "declare updating function local:mut($evt, $obj) {\n"
      << "  insert node <entry/> into /html/body/loga\n};\n"
      << "{\n  on event \"onclick\" at //input[@id=\"btn\"] "
      << "attach listener local:n;\n"
      << "  on event \"onclick\" at //input[@id=\"mut\"] "
      << "attach listener local:mut;\n  ()\n}\n]]></script></head><body>"
      << "<input id=\"btn\"/><input id=\"mut\"/><loga/><div id=\"data\">";
  for (int i = 0; i < items; ++i) out << "<item/>";
  out << "</div></body></html>";
  return out.str();
}

struct ChurnEnv {
  BrowserEnvironment env;
  xqib::xml::Node* btn = nullptr;
  xqib::xml::Node* mut = nullptr;

  bool Load(const std::string& page) {
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok() || !env.ScriptErrors().empty()) {
      std::fprintf(stderr, "page load failed: %s %s\n", st.ToString().c_str(),
                   env.ScriptErrors().c_str());
      return false;
    }
    btn = env.ById("btn");
    mut = env.ById("mut");
    return btn != nullptr && mut != nullptr;
  }

  void Click(xqib::xml::Node* target) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(target, e);
  }

  // One churn op: mutate (bumps the document version), then count.
  void Op() {
    Click(mut);
    Click(btn);
  }
};

struct ArmCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t survivals = 0;
  uint64_t invalidations_global = 0;
  uint64_t invalidations_name = 0;
  uint64_t index_fine_hits = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

// Times the churn op on a fresh environment with fine-grained
// invalidation `fine` (and optionally the memo disabled), returning
// the arm's counter deltas and the last listener result.
bool RunArm(const std::string& page, bool fine, bool memo, int iters,
            double* ns_per_op, ArmCounters* counters, std::string* result) {
  ChurnEnv d;
  d.env.plugin().set_fine_grained_invalidation(fine);
  d.env.plugin().set_memo_enabled(memo);
  if (!d.Load(page)) return false;
  const auto& stats = d.env.plugin().memo_stats();
  const xqib::xml::Document* doc = d.env.browser().top_window()->document();
  const uint64_t hits0 = stats.hits;
  const uint64_t misses0 = stats.misses;
  const uint64_t survivals0 = stats.fine_grained_survivals;
  const uint64_t global0 = stats.invalidations_global;
  const uint64_t name0 = stats.invalidations_name;
  const uint64_t index0 = doc->name_index_fine_hits();
  *ns_per_op = xqib::bench::NsPerOp([&] { d.Op(); }, iters);
  counters->hits = stats.hits - hits0;
  counters->misses = stats.misses - misses0;
  counters->survivals = stats.fine_grained_survivals - survivals0;
  counters->invalidations_global = stats.invalidations_global - global0;
  counters->invalidations_name = stats.invalidations_name - name0;
  counters->index_fine_hits = doc->name_index_fine_hits() - index0;
  *result = d.env.plugin().last_listener_result();
  if (!d.env.ScriptErrors().empty()) {
    std::fprintf(stderr, "script errors during churn: %s\n",
                 d.env.ScriptErrors().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;
  const std::string page = MakeChurnPage(2500, 8);

  std::vector<ScenarioResult> results;
  bool ok = true;

  // --- memo_churn: entries survive vs are evicted every op. ---
  ArmCounters memo_fine, memo_coarse;
  {
    ScenarioResult sr;
    sr.name = "memo_churn";
    std::string fine_result, coarse_result;
    ok &= RunArm(page, true, true, iters, &sr.on_ns, &memo_fine,
                 &fine_result);
    ok &= RunArm(page, false, true, iters, &sr.off_ns, &memo_coarse,
                 &coarse_result);
    sr.results_match = fine_result == coarse_result && !fine_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "memo_churn: fine %s != coarse %s\n",
                   fine_result.c_str(), coarse_result.c_str());
    }
    results.push_back(sr);
  }

  // --- index_churn: memo off, the //item bucket survives the rebuild. ---
  ArmCounters index_fine, index_coarse;
  {
    const std::string index_page = MakeIndexChurnPage(20000);
    ScenarioResult sr;
    sr.name = "index_churn";
    std::string fine_result, coarse_result;
    ok &= RunArm(index_page, true, false, iters, &sr.on_ns, &index_fine,
                 &fine_result);
    ok &= RunArm(index_page, false, false, iters, &sr.off_ns, &index_coarse,
                 &coarse_result);
    sr.results_match = fine_result == coarse_result && !fine_result.empty();
    if (!sr.results_match) {
      std::fprintf(stderr, "index_churn: fine %s != coarse %s\n",
                   fine_result.c_str(), coarse_result.c_str());
    }
    results.push_back(sr);
  }

  const double rate_fine = memo_fine.HitRate();
  const double rate_coarse = memo_coarse.HitRate();

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p6_invalidation\",\n  \"iters\": "
       << iters << ",\n"
       << xqib::bench::ScenariosJson(results, "fine", "coarse") << ",\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"hit_rate\": {\"fine\": %.4f, \"coarse\": %.4f},\n"
      "  \"counters\": {\"fine_survivals\": %llu, "
      "\"coarse_invalidations_global\": %llu, "
      "\"fine_invalidations_name\": %llu, "
      "\"index_fine_hits\": %llu}\n}\n",
      rate_fine, rate_coarse,
      static_cast<unsigned long long>(memo_fine.survivals),
      static_cast<unsigned long long>(memo_coarse.invalidations_global),
      static_cast<unsigned long long>(memo_fine.invalidations_name),
      static_cast<unsigned long long>(index_fine.index_fine_hits));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    if (memo_fine.survivals == 0) {
      std::fprintf(stderr, "FAIL: no memo entry ever survived a churn op\n");
      return 1;
    }
    if (index_fine.index_fine_hits == 0) {
      std::fprintf(stderr,
                   "FAIL: the name index never served a surviving bucket\n");
      return 1;
    }
    // The acceptance floor: the churn hit rate improves >= 5x. The
    // coarse arm's rate is typically 0 (every op evicts everything), so
    // also require the fine arm to be genuinely hitting.
    if (rate_fine < 0.5 || rate_fine < 5.0 * rate_coarse) {
      std::fprintf(stderr,
                   "FAIL: memo churn hit rate %.4f (coarse %.4f) below "
                   "the 5x floor\n",
                   rate_fine, rate_coarse);
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"memo_churn", "fine_ns_per_op",
            results.empty() ? 0 : results[0].on_ns}})) {
    return 1;
  }
  return 0;
}
