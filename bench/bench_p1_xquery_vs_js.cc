// P1 — the paper's future-work §7 performance study: "we would like to
// study the performance of XQuery in the browser as compared to
// JavaScript". Three implementations of each workload run against the
// same DOM: the XQuery engine, the MiniJS interpreter, and native C++
// DOM calls (the lower bound a native JS engine approaches).
//
// Workloads: DOM navigation (filtering query), bulk DOM update, and
// table generation — the operations the paper's applications perform.

#include <benchmark/benchmark.h>

#include <sstream>

#include "app/environment.h"
#include "xquery/engine.h"

namespace {

using xqib::app::BrowserEnvironment;

std::string MakeDataPage(int rows) {
  std::ostringstream out;
  out << "<html><body><div id=\"out\"/><table id=\"data\">";
  for (int i = 0; i < rows; ++i) {
    out << "<tr><td class=\"k\">row" << i << "</td><td class=\"v\">"
        << (i * 13 % 997) << "</td></tr>";
  }
  out << "</table></body></html>";
  return out.str();
}

std::unique_ptr<BrowserEnvironment> MakeEnv(int rows) {
  auto env = std::make_unique<BrowserEnvironment>();
  xqib::Status st =
      env->LoadPage("http://bench.example.com/", MakeDataPage(rows));
  if (!st.ok()) std::abort();
  return env;
}

// ---- navigation: count rows with value > 500 --------------------------

void BM_P1_Navigate_XQuery(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  xqib::xquery::Engine engine;
  auto q = engine.Compile(
      "count(//tr[xs:integer(string(td[@class=\"v\"])) > 500])");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  xqib::xquery::DynamicContext ctx;
  xqib::xquery::DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(env->window()->document()->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  for (auto _ : state) {
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_P1_Navigate_XQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_P1_Navigate_MiniJS(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  // Install the counting function once; call it per iteration.
  xqib::Status st = env->js()->Execute(env->window(), R"(
    function countBig() {
      var rows = document.getElementById('data').childNodes;
      var n = 0;
      for (var i = 0; i < rows.length; i++) {
        var v = Number(rows[i].childNodes[1].textContent);
        if (v > 500) { n = n + 1; }
      }
      return n;
    })");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    st = env->js()->Execute(env->window(), "countBig();");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_P1_Navigate_MiniJS)->Arg(100)->Arg(1000)->Arg(10000);

void BM_P1_Navigate_NativeDom(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  xqib::xml::Node* table = env->ById("data");
  for (auto _ : state) {
    int n = 0;
    for (xqib::xml::Node* tr : table->children()) {
      const std::string v = tr->children()[1]->StringValue();
      if (std::atoi(v.c_str()) > 500) ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_P1_Navigate_NativeDom)->Arg(100)->Arg(1000)->Arg(10000);

// ---- bulk update: tag every row with a "seen" attribute ----------------

void BM_P1_Update_XQuery(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  xqib::xquery::Engine engine;
  auto q = engine.Compile(
      "for $tr in //table[@id=\"data\"]/tr "
      "return insert node attribute seen {\"1\"} into $tr");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  xqib::xquery::DynamicContext ctx;
  xqib::xquery::DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(env->window()->document()->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  for (auto _ : state) {
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
}
BENCHMARK(BM_P1_Update_XQuery)->Arg(100)->Arg(1000);

void BM_P1_Update_MiniJS(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  xqib::Status st = env->js()->Execute(env->window(), R"(
    function tagAll() {
      var rows = document.getElementById('data').childNodes;
      for (var i = 0; i < rows.length; i++) {
        rows[i].setAttribute('seen', '1');
      }
    })");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    st = env->js()->Execute(env->window(), "tagAll();");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_P1_Update_MiniJS)->Arg(100)->Arg(1000);

void BM_P1_Update_NativeDom(benchmark::State& state) {
  auto env = MakeEnv(static_cast<int>(state.range(0)));
  xqib::xml::Node* table = env->ById("data");
  for (auto _ : state) {
    for (xqib::xml::Node* tr : table->children()) {
      tr->SetAttribute(xqib::xml::QName("seen"), "1");
    }
  }
}
BENCHMARK(BM_P1_Update_NativeDom)->Arg(100)->Arg(1000);

// ---- generation: build an n x n multiplication table -------------------
// (the workload behind the paper's 77-vs-29-lines demo)

void BM_P1_Table_XQuery(benchmark::State& state) {
  auto env = MakeEnv(1);
  int n = static_cast<int>(state.range(0));
  xqib::xquery::Engine engine;
  auto q = engine.Compile(
      "<table>{ for $i in 1 to " + std::to_string(n) +
      " return <tr>{ for $j in 1 to " + std::to_string(n) +
      " return <td>{$i * $j}</td> }</tr> }</table>");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    xqib::xquery::DynamicContext ctx;
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_P1_Table_XQuery)->Arg(10)->Arg(30)->Arg(100);

void BM_P1_Table_MiniJS(benchmark::State& state) {
  auto env = MakeEnv(1);
  int n = static_cast<int>(state.range(0));
  xqib::Status st = env->js()->Execute(env->window(), R"(
    function makeTable(n) {
      var table = document.createElement('table');
      for (var i = 1; i <= n; i++) {
        var tr = document.createElement('tr');
        for (var j = 1; j <= n; j++) {
          var td = document.createElement('td');
          td.appendChild(document.createTextNode(String(i * j)));
          tr.appendChild(td);
        }
        table.appendChild(tr);
      }
      return table;
    })");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::string call = "makeTable(" + std::to_string(n) + ");";
  for (auto _ : state) {
    st = env->js()->Execute(env->window(), call);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_P1_Table_MiniJS)->Arg(10)->Arg(30)->Arg(100);

void BM_P1_Table_NativeDom(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    xqib::xml::Document doc;
    xqib::xml::Node* table = doc.CreateElement(xqib::xml::QName("table"));
    for (int i = 1; i <= n; ++i) {
      xqib::xml::Node* tr = doc.CreateElement(xqib::xml::QName("tr"));
      for (int j = 1; j <= n; ++j) {
        xqib::xml::Node* td = doc.CreateElement(xqib::xml::QName("td"));
        td->AppendChild(doc.CreateText(std::to_string(i * j)));
        tr->AppendChild(td);
      }
      table->AppendChild(tr);
    }
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_P1_Table_NativeDom)->Arg(10)->Arg(30)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
