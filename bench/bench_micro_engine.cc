// Substrate microbenchmarks: throughput of the engine's building blocks
// (XML parse/serialize, query compile, axis navigation, the profiler's
// overhead). Not tied to a paper figure — these document the performance
// envelope within which the F/P experiments run.

#include <benchmark/benchmark.h>

#include <sstream>

#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/profiler.h"

namespace {

std::string MakeXml(int n) {
  std::ostringstream out;
  out << "<catalog>";
  for (int i = 0; i < n; ++i) {
    out << "<item id=\"i" << i << "\" cat=\"c" << (i % 7)
        << "\"><name>Item " << i << "</name><price>" << (i % 100)
        << "</price></item>";
  }
  out << "</catalog>";
  return out.str();
}

void BM_Micro_XmlParse(benchmark::State& state) {
  std::string xml = MakeXml(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = xqib::xml::ParseDocument(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_Micro_XmlParse)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Micro_XmlSerialize(benchmark::State& state) {
  auto doc = std::move(
                 xqib::xml::ParseDocument(
                     MakeXml(static_cast<int>(state.range(0)))))
                 .value();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = xqib::xml::Serialize(doc->root());
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Micro_XmlSerialize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Micro_QueryCompile(benchmark::State& state) {
  const char* query = R"(
    declare function local:render($items) {
      <ul>{ for $i in $items
            order by xs:integer(string($i/price)) descending
            return <li class="{string($i/@cat)}">{string($i/name)}</li>
      }</ul>
    };
    local:render(//item[xs:integer(string(price)) > 10]))";
  xqib::xquery::Engine engine;
  for (auto _ : state) {
    auto q = engine.Compile(query);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_Micro_QueryCompile);

void RunAxisQuery(benchmark::State& state, const char* query) {
  auto doc = std::move(
                 xqib::xml::ParseDocument(
                     MakeXml(static_cast<int>(state.range(0)))))
                 .value();
  xqib::xquery::Engine engine;
  auto q = engine.Compile(query);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  xqib::xquery::DynamicContext ctx;
  xqib::xquery::DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  for (auto _ : state) {
    auto r = (*q)->Run(ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}

void BM_Micro_DescendantAxis(benchmark::State& state) {
  RunAxisQuery(state, "count(//price)");
}
BENCHMARK(BM_Micro_DescendantAxis)->Arg(1000)->Arg(10000);

void BM_Micro_PredicateFilter(benchmark::State& state) {
  RunAxisQuery(state, "count(//item[@cat = \"c3\"])");
}
BENCHMARK(BM_Micro_PredicateFilter)->Arg(1000)->Arg(10000);

void BM_Micro_PositionalPredicate(benchmark::State& state) {
  RunAxisQuery(state, "string((//item)[last()]/@id)");
}
BENCHMARK(BM_Micro_PositionalPredicate)->Arg(1000)->Arg(10000);

// Profiler overhead: the same query with and without instrumentation.
void BM_Micro_ProfilerOverhead(benchmark::State& state) {
  bool profiled = state.range(0) == 1;
  auto doc = std::move(xqib::xml::ParseDocument(MakeXml(1000))).value();
  xqib::xquery::Engine engine;
  auto q = engine.Compile("sum(//item/xs:integer(string(price)))");
  if (!q.ok()) {
    // Trailing function-call steps are not XPath 2.0; use a FLWOR.
    q = engine.Compile(
        "sum(for $i in //item return xs:integer(string($i/price)))");
  }
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  xqib::xquery::DynamicContext ctx;
  xqib::xquery::DynamicContext::Focus f;
  f.item = xqib::xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  xqib::xquery::Profiler profiler;
  if (profiled) ctx.profiler = &profiler;
  for (auto _ : state) {
    auto r = (*q)->Run(ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Micro_ProfilerOverhead)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
