// F3 — Figure 3 (Maps/weather mash-up): JavaScript and XQuery listening
// to the same events on one DOM. Measures coexistence overhead (event
// fan-out to both engines, serialized in registration order) and the
// REST fan-out cost when the XQuery side integrates k services.

#include <benchmark/benchmark.h>

#include <sstream>

#include "app/environment.h"

namespace {

using xqib::app::BrowserEnvironment;
using xqib::net::HttpRequest;
using xqib::net::HttpResponse;

// One click fanning out to a JS listener and an XQuery listener on the
// same button (the mash-up's search).
void BM_Fig3_DualEngineClick(benchmark::State& state) {
  BrowserEnvironment env;
  xqib::Status st = env.LoadPage("http://mashup.example.com/", R"(
<html><body>
<input id="btn"/><div id="jslog"/><div id="xqlog"/>
<script type="text/javascript">
  var n = 0;
  document.getElementById('btn').addEventListener('onclick',
    function(e) { n = n + 1; }, false);
</script>
<script type="text/xqueryp"><![CDATA[
declare updating function local:go($evt, $obj) {
  replace value of node //div[@id="xqlog"]
    with concat("hits ", string($evt/type))
};
on event "onclick" at //input[@id="btn"] attach listener local:go
]]></script></body></html>)");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  xqib::xml::Node* button = env.ById("btn");
  for (auto _ : state) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
}
BENCHMARK(BM_Fig3_DualEngineClick);

// Single-engine baselines for the same interaction: what each engine
// costs alone (the coexistence overhead is the delta).
void BM_Fig3_JsOnlyClick(benchmark::State& state) {
  BrowserEnvironment env;
  xqib::Status st = env.LoadPage("http://mashup.example.com/", R"(
<html><body><input id="btn"/>
<script type="text/javascript">
  var n = 0;
  document.getElementById('btn').addEventListener('onclick',
    function(e) { n = n + 1; }, false);
</script></body></html>)");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  xqib::xml::Node* button = env.ById("btn");
  for (auto _ : state) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
}
BENCHMARK(BM_Fig3_JsOnlyClick);

void BM_Fig3_XQueryOnlyClick(benchmark::State& state) {
  BrowserEnvironment env;
  xqib::Status st = env.LoadPage("http://mashup.example.com/", R"(
<html><body><input id="btn"/><div id="xqlog"/>
<script type="text/xqueryp"><![CDATA[
declare updating function local:go($evt, $obj) {
  replace value of node //div[@id="xqlog"]
    with concat("hits ", string($evt/type))
};
on event "onclick" at //input[@id="btn"] attach listener local:go
]]></script></body></html>)");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  xqib::xml::Node* button = env.ById("btn");
  for (auto _ : state) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
}
BENCHMARK(BM_Fig3_XQueryOnlyClick);

// REST integration fan-out: the XQuery listener aggregates k weather
// services per search (the paper uses "a selection of different weather
// services"). Reports simulated network time per search.
void BM_Fig3_RestFanout(benchmark::State& state) {
  int services = static_cast<int>(state.range(0));
  BrowserEnvironment env;
  for (int s = 0; s < services; ++s) {
    env.fabric().PutResource(
        "http://weather" + std::to_string(s) + ".example.com/api",
        "<weather><summary>svc " + std::to_string(s) +
            ": sunny</summary></weather>");
  }
  std::ostringstream page;
  page << R"(<html><body><input id="btn"/><div id="out"/>
<script type="text/xqueryp"><![CDATA[
declare updating function local:go($evt, $obj) {
  delete nodes //div[@id="out"]/*;
  insert node <ul>{)";
  for (int s = 0; s < services; ++s) {
    if (s > 0) page << ",\n";
    page << "<li>{string(http:get(\"http://weather" << s
         << ".example.com/api\")//summary)}</li>";
  }
  page << R"(}</ul> into //div[@id="out"]
};
on event "onclick" at //input[@id="btn"] attach listener local:go
]]></script></body></html>)";
  xqib::Status st = env.LoadPage("http://mashup.example.com/", page.str());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  xqib::xml::Node* button = env.ById("btn");
  env.fabric().ResetStats();
  for (auto _ : state) {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
  state.counters["rest_calls_per_search"] =
      static_cast<double>(env.fabric().stats().requests) /
      static_cast<double>(state.iterations());
  state.counters["sim_net_ms_per_search"] =
      env.fabric().stats().simulated_latency_ms /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fig3_RestFanout)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
