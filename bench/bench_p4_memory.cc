// P4 — the memory layer: interned QNames, the arena-backed stream
// pipeline, and the mutation-versioned pure-listener memo cache.
// Self-timed runner emitting BENCH_P4.json, same schema as P2/P3.
//
// Usage:
//   bench_p4_memory [--iters N] [--out FILE] [--check] [--baseline FILE]
//
// Scenarios:
//   fig1_dispatch_memo     repeated identical clicks on a page whose
//                          listener the analyzer proved memoizable;
//                          arms = memo cache on vs off.
//   fig1_dispatch_updating the honest arm: the standard updating
//                          listener (never memoizable); arms = arena
//                          allocation on vs heap.
//   deep_flwor_arena       query-level: the P3 deep FLWOR with stream
//                          operators arena- vs heap-allocated.
//
// Besides timing, the runner counts global operator-new calls per
// dispatch (full memory layer vs none) and reports the memo hit rate.
//
// --check exits non-zero unless every ablation's results match, the
// memo hit rate is >= 90%, allocations per dispatch drop >= 5x with the
// memory layer on, and the fresh memo-arm fig1 dispatch beats the
// checked-in PR 3 stream-arm baseline (148817 ns) by >= 1.5x.
// --baseline FILE additionally compares the fresh fig1_dispatch_memo
// ns/op against the checked-in BENCH_P4.json within +/-25% — the CI
// regression guard.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "app/environment.h"
#include "bench_util.h"
#include "xml/interning.h"

// ------------------------------------------------ allocation counter ---
// Global operator-new override: every heap allocation in the process
// bumps g_allocs, so per-op deltas measure exactly what the arena and
// the memo cache keep off the heap.

static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using xqib::app::BrowserEnvironment;
using xqib::bench::Args;
using xqib::bench::ScenarioResult;
using xqib::xquery::Evaluator;

// The PR 3 stream-arm fig1 dispatch time this PR must beat by >= 1.5x
// (checked-in BENCH_P3.json before the memory layer landed).
constexpr double kPr3Fig1Ns = 148817.0;

Evaluator::EvalOptions MemOn() { return Evaluator::EvalOptions(); }

Evaluator::EvalOptions ArenaOff() {
  Evaluator::EvalOptions off;
  off.arena_streams = false;
  return off;
}

// The Figure 1 page with a NON-updating listener: recomputes the row
// count into its result instead of writing it back, so the analyzer
// proves it pure and memoizable and repeated identical clicks can be
// answered from the memo cache.
std::string MakePureDispatchPage(int rows) {
  std::ostringstream out;
  out << R"(<html><body>
<input id="btn"/><span id="status">0</span><table id="data">)";
  for (int i = 0; i < rows; ++i) {
    out << "<tr><td>r" << i << "</td></tr>";
  }
  out << R"(</table>
<script type="text/xqueryp"><![CDATA[
declare function local:peek($evt, $obj) {
  count(//tr) + count($evt/self::event)
};
on event "onclick" at //input[@id="btn"] attach listener local:peek
]]></script></body></html>)";
  return out.str();
}

struct DispatchEnv {
  BrowserEnvironment env;
  xqib::xml::Node* button = nullptr;

  bool Load(const std::string& page) {
    xqib::Status st = env.LoadPage("http://bench.example.com/", page);
    if (!st.ok() || !env.ScriptErrors().empty()) {
      std::fprintf(stderr, "page load failed: %s %s\n", st.ToString().c_str(),
                   env.ScriptErrors().c_str());
      return false;
    }
    button = env.ById("btn");
    return button != nullptr;
  }

  void Click() {
    xqib::browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(button, e);
  }
};

// Heap allocations per op: 3 warmup calls, then a counted loop.
double AllocsPerOp(const std::function<void()>& op, int iters) {
  for (int i = 0; i < 3; ++i) op();
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < iters; ++i) op();
  uint64_t after = g_allocs.load(std::memory_order_relaxed);
  return static_cast<double>(after - before) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!xqib::bench::ParseArgs(argc, argv, &args)) return 2;
  const int iters = args.iters;

  std::vector<ScenarioResult> results;
  bool ok = true;

  // --- fig1_dispatch_memo: memo cache on vs off, identical clicks. ---
  xqib::plugin::XqibPlugin::MemoStats memo_delta;
  double memo_hit_rate = 0;
  {
    DispatchEnv d;
    ok &= d.Load(MakePureDispatchPage(300));
    if (ok) {
      ScenarioResult sr;
      sr.name = "fig1_dispatch_memo";
      d.env.plugin().set_eval_options(MemOn());
      d.env.plugin().set_memo_enabled(true);
      auto before = d.env.plugin().memo_stats();
      sr.on_ns = xqib::bench::NsPerOp([&] { d.Click(); }, iters);
      auto after = d.env.plugin().memo_stats();
      memo_delta.hits = after.hits - before.hits;
      memo_delta.misses = after.misses - before.misses;
      memo_delta.invalidations = after.invalidations - before.invalidations;
      uint64_t lookups =
          memo_delta.hits + memo_delta.misses + memo_delta.invalidations;
      memo_hit_rate =
          lookups > 0 ? static_cast<double>(memo_delta.hits) / lookups : 0;
      std::string memo_result = d.env.plugin().last_listener_result();
      d.env.plugin().set_memo_enabled(false);
      sr.off_ns = xqib::bench::NsPerOp([&] { d.Click(); }, iters);
      std::string fresh_result = d.env.plugin().last_listener_result();
      sr.results_match = memo_result == fresh_result && memo_result == "301";
      if (!sr.results_match) {
        std::fprintf(stderr,
                     "fig1_dispatch_memo: replayed result %s != fresh %s\n",
                     memo_result.c_str(), fresh_result.c_str());
      }
      results.push_back(sr);
    }
  }

  // --- fig1_dispatch_updating: arena vs heap on the updating page. ---
  xqib::plugin::XqibPlugin::EventStats ev;
  ok &= xqib::bench::RunDispatchScenario("fig1_dispatch_updating", 300, iters,
                                         MemOn(), ArenaOff(), &results, &ev);

  // --- deep_flwor_arena: stream operators arena- vs heap-allocated. ---
  std::ostringstream page;
  page << "<page>";
  for (int s = 0; s < 30; ++s) {
    page << "<sec>";
    for (int i = 0; i < 20; ++i) {
      page << "<item>";
      for (int l = 0; l < 5; ++l) page << "<leaf/>";
      page << "</item>";
    }
    page << "</sec>";
  }
  page << "</page>";
  Evaluator::EvalStats qstats;
  ok &= xqib::bench::RunQueryScenario(
      "deep_flwor_arena",
      "count(for $s in //sec, $i in $s/item, $l in $i/leaf return $l)",
      page.str(), iters, MemOn(), ArenaOff(), &results, &qstats);

  // --- allocations per dispatch: full memory layer vs none. ---
  double allocs_on = 0, allocs_off = 0;
  {
    DispatchEnv d;
    ok &= d.Load(MakePureDispatchPage(300));
    if (ok) {
      d.env.plugin().set_eval_options(MemOn());
      d.env.plugin().set_memo_enabled(true);
      allocs_on = AllocsPerOp([&] { d.Click(); }, iters);
      d.env.plugin().set_memo_enabled(false);
      d.env.plugin().set_eval_options(ArenaOff());
      allocs_off = AllocsPerOp([&] { d.Click(); }, iters);
    }
  }
  double alloc_reduction = allocs_on > 0 ? allocs_off / allocs_on
                                         : allocs_off;

  double fig1_fresh_ns = results.empty() ? 0 : results[0].on_ns;
  double fig1_vs_pr3 = fig1_fresh_ns > 0 ? kPr3Fig1Ns / fig1_fresh_ns : 0;
  xqib::xml::InternPoolStats intern = xqib::xml::GetInternStats();

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_p4_memory\",\n  \"iters\": " << iters
       << ",\n"
       << xqib::bench::ScenariosJson(results, "on", "off") << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"memo\": {\"hits\": %llu, \"misses\": %llu, "
                "\"invalidations\": %llu, \"hit_rate\": %.3f},\n",
                static_cast<unsigned long long>(memo_delta.hits),
                static_cast<unsigned long long>(memo_delta.misses),
                static_cast<unsigned long long>(memo_delta.invalidations),
                memo_hit_rate);
  json << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"allocations\": {\"on_allocs_per_op\": %.1f, "
                "\"off_allocs_per_op\": %.1f, \"reduction\": %.1f},\n",
                allocs_on, allocs_off, alloc_reduction);
  json << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"fig1_vs_pr3\": {\"pr3_stream_ns\": %.1f, "
                "\"fresh_ns\": %.1f, \"speedup\": %.2f},\n",
                kPr3Fig1Ns, fig1_fresh_ns, fig1_vs_pr3);
  json << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"counters\": {\"arena_bytes_used\": %llu, \"arena_resets\": "
      "%llu, \"intern_hits\": %llu, \"intern_strings\": %llu}\n}\n",
      static_cast<unsigned long long>(qstats.arena_bytes_used),
      static_cast<unsigned long long>(qstats.arena_resets),
      static_cast<unsigned long long>(intern.hits),
      static_cast<unsigned long long>(intern.strings));
  json << buf;
  xqib::bench::EmitJson(json.str(), args.out_path);

  if (!ok) {
    std::fprintf(stderr, "FAIL: a scenario did not run\n");
    return 1;
  }
  if (args.check) {
    if (!xqib::bench::AllResultsMatch(results)) return 1;
    if (memo_hit_rate < 0.9) {
      std::fprintf(stderr, "FAIL: memo hit rate %.3f below 0.9\n",
                   memo_hit_rate);
      return 1;
    }
    if (alloc_reduction < 5.0) {
      std::fprintf(stderr,
                   "FAIL: allocation reduction %.1fx below 5x "
                   "(on=%.1f off=%.1f)\n",
                   alloc_reduction, allocs_on, allocs_off);
      return 1;
    }
    if (fig1_vs_pr3 < 1.5) {
      std::fprintf(stderr,
                   "FAIL: fig1 dispatch %.1f ns only %.2fx over the PR 3 "
                   "baseline %.1f ns (need 1.5x)\n",
                   fig1_fresh_ns, fig1_vs_pr3, kPr3Fig1Ns);
      return 1;
    }
    if (qstats.arena_bytes_used == 0 || qstats.arena_resets == 0) {
      std::fprintf(stderr, "FAIL: arena counters never fired\n");
      return 1;
    }
    std::fputs("CHECK OK\n", stderr);
  }
  if (!args.baseline_path.empty() &&
      !xqib::bench::CheckBaseline(
          args.baseline_path,
          {{"fig1_dispatch_memo", "on_ns_per_op", fig1_fresh_ns}})) {
    return 1;
  }
  return 0;
}
