// Tests for the static analyzer: each pass (scope/symbol, type
// inference, update/purity, lint), the diagnostic spans, suppression,
// the engine/optimizer/plug-in integration, and a golden check that
// every shipped example page lints clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "app/environment.h"
#include "browser/bom.h"
#include "net/http.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "plugin/plugin.h"
#include "xdm/item.h"
#include "xquery/analysis/analyzer.h"
#include "xquery/analysis/lint.h"
#include "xquery/engine.h"
#include "xquery/parser.h"

namespace xqib::xquery::analysis {
namespace {

using browser::Window;

AnalysisResult Analyze(const std::string& query,
                       AnalyzerOptions options = AnalyzerOptions()) {
  auto module = ParseModule(query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  Analyzer analyzer(options);
  return analyzer.Analyze(**module);
}

// Codes of all diagnostics, in source order.
std::vector<std::string> Codes(const AnalysisResult& result) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : result.diagnostics) codes.push_back(d.code);
  return codes;
}

bool HasCode(const AnalysisResult& result, const std::string& code) {
  const auto codes = Codes(result);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

// --------------------------------------------------- scope/symbol pass ---

TEST(ScopePass, UndefinedVariableWithExactSpan) {
  AnalysisResult r = Analyze("1 + $nope");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"XQSA001"});
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.span.line, 1);
  EXPECT_EQ(d.span.column, 5);  // the '$' of $nope
  EXPECT_EQ(d.Render(),
            "XQSA001: undefined variable $nope (line 1, column 5)");
}

TEST(ScopePass, DeclaredVariablesResolve) {
  EXPECT_TRUE(Analyze("declare variable $x := 1; $x + 1").diagnostics.empty());
  EXPECT_TRUE(Analyze("let $x := 1 return $x").diagnostics.empty());
  EXPECT_TRUE(Analyze("for $x in 1 to 3 return $x").diagnostics.empty());
  EXPECT_TRUE(
      Analyze("some $x in (1, 2) satisfies $x = 1").diagnostics.empty());
}

TEST(ScopePass, BrowserVariablesAreHostBound) {
  // $browser:value etc. are bound by the plug-in at event time.
  AnalysisResult r = Analyze(
      "declare namespace browser = \"http://www.example.com/browser\";\n"
      "$browser:value");
  EXPECT_FALSE(HasCode(r, "XQSA001"));
}

TEST(ScopePass, UndefinedFunction) {
  AnalysisResult r = Analyze("fn:no-such-function(1)");
  ASSERT_TRUE(HasCode(r, "XQSA002"));
  AnalysisResult local = Analyze("local:nothere(1)");
  EXPECT_TRUE(HasCode(local, "XQSA002"));
}

TEST(ScopePass, BuiltinArityMismatch) {
  AnalysisResult r = Analyze("fn:count(1, 2)");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"XQSA003"});
  EXPECT_NE(r.diagnostics[0].message.find("expects 1"), std::string::npos);
  // Variadic fn:concat accepts any arity >= 2.
  EXPECT_TRUE(Analyze("concat('a', 'b', 'c', 'd')").diagnostics.empty());
  EXPECT_TRUE(HasCode(Analyze("concat('a')"), "XQSA003"));
}

TEST(ScopePass, DeclaredFunctionArityMismatch) {
  AnalysisResult r = Analyze(
      "declare function local:f($a) { $a };\n"
      "local:f(1, 2)");
  ASSERT_TRUE(HasCode(r, "XQSA003"));
  EXPECT_NE(r.diagnostics[0].message.find("declared arity: 1"),
            std::string::npos);
}

TEST(ScopePass, DuplicateFunctionDeclaration) {
  AnalysisResult r = Analyze(
      "declare function local:f() { 1 };\n"
      "declare function local:f() { 2 };\n"
      "local:f()");
  EXPECT_TRUE(HasCode(r, "XQSA004"));
  // Same name, different arity: a legal overload, not a duplicate.
  AnalysisResult overload = Analyze(
      "declare function local:f() { 1 };\n"
      "declare function local:f($a) { $a };\n"
      "local:f()");
  EXPECT_FALSE(HasCode(overload, "XQSA004"));
}

TEST(ScopePass, DuplicateVariableDeclaration) {
  AnalysisResult r = Analyze(
      "declare variable $x := 1;\n"
      "declare variable $x := 2;\n"
      "$x");
  EXPECT_TRUE(HasCode(r, "XQSA005"));
}

TEST(ScopePass, ContextModuleDeclarationsVisible) {
  auto lib = ParseModule(
      "declare variable $shared := 42;\n"
      "declare function local:helper($a) { $a * 2 };\n"
      "1");
  ASSERT_TRUE(lib.ok());
  auto main_mod = ParseModule("local:helper($shared)");
  ASSERT_TRUE(main_mod.ok());
  Analyzer analyzer;
  analyzer.AddContextModule(**lib);
  AnalysisResult r = analyzer.Analyze(**main_mod);
  EXPECT_TRUE(r.diagnostics.empty())
      << (r.diagnostics.empty() ? "" : r.diagnostics[0].Render());
}

// ------------------------------------------------ type inference pass ---

TEST(TypePass, ImpossibleComparison) {
  AnalysisResult r = Analyze("1 eq \"a\"");
  ASSERT_TRUE(HasCode(r, "XQSA010"));
  EXPECT_TRUE(HasCode(Analyze("let $x := 5 return $x = \"five\""),
                      "XQSA010"));
  EXPECT_TRUE(HasCode(Analyze("true() lt 3"), "XQSA010"));
}

TEST(TypePass, ComparableFamiliesAreQuiet) {
  EXPECT_FALSE(HasCode(Analyze("1 eq 2.5"), "XQSA010"));
  EXPECT_FALSE(HasCode(Analyze("\"a\" lt \"b\""), "XQSA010"));
  // Unknown operand types must not be flagged.
  EXPECT_FALSE(HasCode(Analyze("//a = 1"), "XQSA010"));
  // Strings parsed from node content are untyped, comparable to numbers.
  EXPECT_FALSE(HasCode(Analyze("string(//a) = \"x\""), "XQSA010"));
}

// --------------------------------------------------- update/purity pass ---

TEST(UpdatePass, UpdateInNonUpdatingContext) {
  // A binding expression is not an updating context (XQUF §5).
  AnalysisResult r = Analyze("let $x := delete nodes //a return 1");
  ASSERT_TRUE(HasCode(r, "XQSA020"));
  // Statement positions are fine in the scripting dialect.
  EXPECT_FALSE(HasCode(Analyze("delete nodes //a"), "XQSA020"));
  EXPECT_FALSE(
      HasCode(Analyze("(delete nodes //a, 1)"), "XQSA020"));
  EXPECT_FALSE(HasCode(
      Analyze("if (true()) then delete nodes //a else ()"), "XQSA020"));
  // copy-modify is a non-updating expression with contained updates.
  EXPECT_FALSE(HasCode(
      Analyze("copy $c := <a/> modify delete nodes $c//b return $c"),
      "XQSA020"));
}

TEST(UpdatePass, DeleteOrReplaceDocumentRoot) {
  EXPECT_TRUE(HasCode(Analyze("delete nodes /"), "XQSA021"));
  EXPECT_TRUE(
      HasCode(Analyze("replace node (/) with <a/>"), "XQSA021"));
  EXPECT_FALSE(HasCode(Analyze("delete nodes /a"), "XQSA021"));
}

TEST(UpdatePass, UpdateInsidePlainFunction) {
  AnalysisResult r = Analyze(
      "declare function local:bad() { delete nodes //a };\n"
      "local:bad()");
  ASSERT_TRUE(HasCode(r, "XQSA022"));
  // `declare updating function` / sequential functions are allowed.
  EXPECT_FALSE(HasCode(
      Analyze("declare updating function local:ok() { delete nodes //a };\n"
              "1"),
      "XQSA022"));
  EXPECT_FALSE(HasCode(
      Analyze("declare sequential function local:ok() { delete nodes //a; };\n"
              "1"),
      "XQSA022"));
}

TEST(PurityPass, ClassifiesFunctions) {
  auto module = ParseModule(
      "declare function local:pure($a) { $a * 2 };\n"
      "declare function local:calls-pure() { local:pure(21) };\n"
      "declare updating function local:mutates() { delete nodes //a };\n"
      "declare function local:calls-mutator() { local:mutates() };\n"
      "1");
  ASSERT_TRUE(module.ok());
  Analyzer analyzer;
  AnalysisResult r = analyzer.Analyze(**module);
  const auto& pure = r.facts.pure_functions;
  const char* kLocal = "{http://www.w3.org/2005/xquery-local-functions}";
  EXPECT_EQ(pure.count(std::string(kLocal) + "pure#1"), 1u);
  EXPECT_EQ(pure.count(std::string(kLocal) + "calls-pure#0"), 1u);
  EXPECT_EQ(pure.count(std::string(kLocal) + "mutates#0"), 0u);
  EXPECT_EQ(pure.count(std::string(kLocal) + "calls-mutator#0"), 0u);
}

// --------------------------------------------------------- lint pass ---

TEST(LintPass, UnusedVariable) {
  AnalysisResult r = Analyze("let $u := 1 return 2");
  ASSERT_TRUE(HasCode(r, "XQSA030"));
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kWarning);
  // Globals and parameters are exempt (part of the page's public API).
  EXPECT_FALSE(HasCode(Analyze("declare variable $g := 1; 2"), "XQSA030"));
  EXPECT_FALSE(HasCode(
      Analyze("declare function local:f($unused) { 1 };\nlocal:f(9)"),
      "XQSA030"));
}

TEST(LintPass, UnreachableBranch) {
  AnalysisResult r = Analyze("if (true()) then 1 else 2");
  ASSERT_TRUE(HasCode(r, "XQSA031"));
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kWarning);
  EXPECT_FALSE(HasCode(Analyze("if (//a) then 1 else 2"), "XQSA031"));
}

TEST(LintPass, UncollapsibleDescendantPath) {
  // '//x[@id]' cannot be collapsed (predicate), '//x' can.
  AnalysisResult r = Analyze("//item[@id = \"a\"]");
  ASSERT_TRUE(HasCode(r, "XQSA032"));
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kInfo);
  EXPECT_FALSE(HasCode(Analyze("//item"), "XQSA032"));
}

TEST(LintPass, BehindListenerAppliesUpdates) {
  // §4.4 "behind": an updating completion listener pins the asynchronous
  // delivery to the event-loop thread, so the parallel dispatch runtime
  // cannot move the call off-thread. The span points at the listener
  // name token, not the whole attach expression.
  AnalysisResult r = Analyze(
      "declare updating function local:done($s, $r) "
      "{ delete nodes //a };\n"
      "on event \"ready\" behind fn:string(1) attach listener local:done");
  ASSERT_TRUE(HasCode(r, "XQSA033"));
  const Diagnostic* d = nullptr;
  for (const Diagnostic& diag : r.diagnostics) {
    if (diag.code == "XQSA033") d = &diag;
  }
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.column, 54);  // the 'l' of local:done
  EXPECT_EQ(d->span.length, std::string("local:done").size());

  // A pure completion listener is deliverable off-thread: no warning.
  EXPECT_FALSE(HasCode(
      Analyze("declare function local:done($s, $r) { concat($s, $r) };\n"
              "on event \"ready\" behind fn:string(1) "
              "attach listener local:done"),
      "XQSA033"));
  // Suppressible like any warning.
  EXPECT_FALSE(HasCode(
      Analyze("declare option lint \"suppress:XQSA033\";\n"
              "declare updating function local:done($s, $r) "
              "{ delete nodes //a };\n"
              "on event \"ready\" behind fn:string(1) "
              "attach listener local:done"),
      "XQSA033"));
}

TEST(LintPass, InterferingSameEventListeners) {
  AnalysisResult r = Analyze(
      "declare updating function local:a($e, $o) "
      "{ insert node <entrya/> into /html/body/loga };\n"
      "declare updating function local:b($e, $o) "
      "{ insert node <entryb/> into /html/body/loga };\n"
      "declare function local:read($e, $o) "
      "{ count(/html/body/loga/entrya) };\n"
      "{ on event \"onclick\" at //input attach listener local:a;\n"
      "  on event \"onclick\" at //input attach listener local:b;\n"
      "  on event \"onchange\" at //input attach listener local:read; }");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"XQSA034"});
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  // Anchored on the LATER registration's listener-name token: that is
  // the attach whose placement relative to the other one matters.
  EXPECT_EQ(d.span.line, 5);
  EXPECT_EQ(d.span.column, 49);  // the 'l' of local:b
  EXPECT_EQ(d.span.length, std::string("local:b").size());
  EXPECT_NE(d.message.find("local:a"), std::string::npos);
  EXPECT_NE(d.message.find("local:b"), std::string::npos);

  // Disjoint write targets: the same pair of listeners with separate
  // logs can commute (and run in parallel) — no warning.
  AnalysisResult disjoint = Analyze(
      "declare updating function local:a($e, $o) "
      "{ insert node <entrya/> into /html/body/loga };\n"
      "declare updating function local:b($e, $o) "
      "{ insert node <entryb/> into /html/body/logb };\n"
      "declare function local:read($e, $o) { count(//entrya | //entryb) };\n"
      "{ on event \"onclick\" at //input attach listener local:a;\n"
      "  on event \"onclick\" at //input attach listener local:b; }");
  EXPECT_FALSE(HasCode(disjoint, "XQSA034"));
  // Different events never share a dispatch run.
  AnalysisResult other_event = Analyze(
      "declare updating function local:a($e, $o) "
      "{ insert node <entrya/> into /html/body/loga };\n"
      "declare updating function local:b($e, $o) "
      "{ insert node <entryb/> into /html/body/loga };\n"
      "declare function local:read($e, $o) { count(//loga) };\n"
      "{ on event \"onclick\" at //input attach listener local:a;\n"
      "  on event \"onchange\" at //input attach listener local:b; }");
  EXPECT_FALSE(HasCode(other_event, "XQSA034"));
}

TEST(LintPass, MemoizableListenerWithTopReads) {
  AnalysisResult r = Analyze(
      "declare function local:stats($e, $o) { count(//*) };\n"
      "on event \"onclick\" at //input attach listener local:stats");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"XQSA035"});
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.column, 47);  // the 'l' of local:stats
  EXPECT_EQ(d.span.length, std::string("local:stats").size());

  // A named read set memoizes fine: no warning.
  EXPECT_FALSE(HasCode(
      Analyze("declare function local:stats($e, $o) { count(//item) };\n"
              "on event \"onclick\" at //input attach listener local:stats"),
      "XQSA035"));
  // Non-memoizable listeners (an alert observes the host on every
  // event) are never served from the memo — the lint does not apply.
  EXPECT_FALSE(HasCode(
      Analyze("declare sequential function local:loud($e, $o) "
              "{ browser:alert(string(count(//*))) };\n"
              "on event \"onclick\" at //input attach listener local:loud"),
      "XQSA035"));
}

TEST(LintPass, DeadUpdate) {
  AnalysisResult r = Analyze(
      "declare updating function local:log($e, $o) {\n"
      "  insert node <logline/> into /html/body/auditlog\n"
      "};\n"
      "on event \"onclick\" at //input attach listener local:log");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"XQSA036"});
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.column, 3);  // the `insert` keyword
  EXPECT_EQ(d.span.length, std::string("insert").size());

  // Any observing read inside the write scope keeps the update alive.
  EXPECT_FALSE(HasCode(
      Analyze("declare updating function local:log($e, $o) {\n"
              "  insert node <logline/> into /html/body/auditlog\n"
              "};\n"
              "declare function local:show($e, $o) { count(//auditlog) };\n"
              "on event \"onclick\" at //input attach listener local:log"),
      "XQSA036"));
  // A ⊤ write set is not provably dead — stay quiet.
  EXPECT_FALSE(HasCode(
      Analyze("declare updating function local:log($e, $o) {\n"
              "  insert node <logline/> into $o\n"
              "};\n"
              "on event \"onclick\" at //input attach listener local:log"),
      "XQSA036"));
}

TEST(LintPass, SuppressionOption) {
  AnalysisResult r = Analyze(
      "declare option lint \"suppress:XQSA030\";\n"
      "let $u := 1 return 2");
  EXPECT_FALSE(HasCode(r, "XQSA030"));
  // Errors are not suppressible.
  AnalysisResult err = Analyze(
      "declare option lint \"suppress:XQSA001\";\n"
      "$nope");
  EXPECT_TRUE(HasCode(err, "XQSA001"));
}

// ------------------------------------------------- engine integration ---

TEST(EngineIntegration, LenientByDefaultStrictOnRequest) {
  Engine engine;
  // Lenient: compiles, diagnostics retained (runtime keeps its own
  // error behaviour for compatibility).
  auto lenient = engine.Compile("$nope");
  ASSERT_TRUE(lenient.ok());
  ASSERT_EQ((*lenient)->diagnostics().size(), 1u);
  EXPECT_EQ((*lenient)->diagnostics()[0].code, "XQSA001");
  // Strict: the same script fails to compile.
  CompileOptions options;
  options.strict = true;
  auto strict = engine.Compile("$nope", options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), "XQSA001");
}

TEST(EngineIntegration, InferredCardinalityRewrite) {
  // exists($i) on a for-variable only folds with analyzer facts: the
  // syntactic rules cannot know $i is a singleton.
  const char* query =
      "sum(for $i in 1 to 5 return (if (exists($i)) then $i else 0))";
  Engine engine;
  auto with = engine.Compile(query);
  ASSERT_TRUE(with.ok());
  EXPECT_GE((*with)->optimizer_stats().inferred_rewrites, 1);

  CompileOptions no_analysis;
  no_analysis.analyze = false;
  auto without = engine.Compile(query, no_analysis);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ((*without)->optimizer_stats().inferred_rewrites, 0);

  // Semantics must agree.
  for (auto* q : {&*with, &*without}) {
    DynamicContext ctx;
    ASSERT_TRUE((*q)->BindGlobals(ctx).ok());
    auto result = (*q)->Run(ctx);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(xdm::SequenceToString(*result), "15");
  }
}

TEST(EngineIntegration, AssignedVariablesCarryNoFacts) {
  // A variable reassigned in a loop must not fold on its initial
  // cardinality (the walker sees statements once, in textual order).
  const char* query =
      "{ declare variable $x := 1; "
      "  declare variable $n := 0; "
      "  while ($n < 2) { "
      "    set $n := $n + 1; "
      "    set $x := ($x, $x); "
      "  }; "
      "  count($x) }";
  Engine engine;
  auto q = engine.Compile(query);
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  ASSERT_TRUE((*q)->BindGlobals(ctx).ok());
  auto result = (*q)->Run(ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*result), "4");
}

// ------------------------------------------------- plug-in integration ---

class AnalyzerPluginTest : public ::testing::Test {
 protected:
  AnalyzerPluginTest()
      : services_(&fabric_, &store_),
        plugin_(&browser_, &fabric_, &services_) {
    plugin_.Install();
  }

  Status LoadPage(const std::string& source) {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/index.xhtml", source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return plugin_.last_script_error();
  }

  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  browser::Browser browser_;
  plugin::XqibPlugin plugin_;
};

TEST_F(AnalyzerPluginTest, RejectsBrokenScriptAtLoadTime) {
  const char* script = "browser:alert(string($undeclared))";
  Status st = LoadPage(
      "<html><head><script type=\"text/xquery\">" + std::string(script) +
      "</script></head><body/></html>");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), "XQSA001");
  // The load-time rejection renders exactly like xq_lint.
  LintReport lint = LintQuery(script);
  ASSERT_EQ(lint.units.size(), 1u);
  ASSERT_EQ(lint.units[0].diagnostics.size(), 1u);
  EXPECT_EQ(st.message(), lint.units[0].diagnostics[0].Render());
}

TEST_F(AnalyzerPluginTest, ListenerMayCallFunctionFromLaterScript) {
  // Scripts share one static context: script 1 attaches a listener that
  // is only declared by script 2, so analysis must be joint over all
  // page scripts, not per-script.
  Status st = LoadPage(
      "<html><head>"
      "<script type=\"text/xquery\">"
      "on event \"onclick\" at //input[@id=\"b\"] attach listener local:greet"
      "</script>"
      "<script type=\"text/xquery\">"
      "declare sequential function local:greet($evt, $obj) {"
      "  browser:alert(\"hi\") };"
      "</script>"
      "</head><body><input id=\"b\"/></body></html>");
  ASSERT_TRUE(st.ok()) << st.ToString();
  Window* w = browser_.top_window();
  browser::Event e;
  e.type = "onclick";
  plugin_.FireEvent(w->document()->GetElementById("b"), e);
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "hi");
}

TEST_F(AnalyzerPluginTest, PureListenerSkipsApplyPass) {
  Status st = LoadPage(
      "<html><head><script type=\"text/xquery\">"
      "declare function local:noop($evt, $obj) { fn:count($obj) };\n"
      "declare updating function local:mutate($evt, $obj) {\n"
      "  insert node <x/> into $obj\n"
      "};\n"
      "{ on event \"onclick\" at //div[@id=\"pure\"]"
      "    attach listener local:noop;\n"
      "  on event \"onclick\" at //div[@id=\"dirty\"]"
      "    attach listener local:mutate; }"
      "</script></head>"
      "<body><div id=\"pure\"/><div id=\"dirty\"/></body></html>");
  ASSERT_TRUE(st.ok()) << st.ToString();
  Window* w = browser_.top_window();
  xml::Node* pure = w->document()->GetElementById("pure");
  xml::Node* dirty = w->document()->GetElementById("dirty");
  ASSERT_NE(pure, nullptr);
  ASSERT_NE(dirty, nullptr);

  auto click = [&](xml::Node* target) {
    browser::Event e;
    e.type = "onclick";
    plugin_.FireEvent(target, e);
  };
  EXPECT_EQ(plugin_.pure_listener_skips(), 0u);
  click(pure);
  EXPECT_EQ(plugin_.pure_listener_skips(), 1u);
  click(dirty);
  EXPECT_EQ(plugin_.pure_listener_skips(), 1u);  // mutator not skipped
  EXPECT_EQ(dirty->children().size(), 1u);       // and its update applied
  EXPECT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
}

// -------------------------------------------------- golden examples ---

TEST(GoldenExamples, AllShippedPagesLintClean) {
  const char* pages[] = {
      "hello.xhtml",
      "mashup.xhtml",
      "multiplication_table_js.xhtml",
      "multiplication_table_xquery.xhtml",
      "shopping_cart_js.xhtml",
      "shopping_cart_xquery.xhtml",
  };
  for (const char* page : pages) {
    auto source = app::ReadPageFile(page);
    ASSERT_TRUE(source.ok()) << page << ": " << source.status().ToString();
    auto report = LintXhtml(*source);
    ASSERT_TRUE(report.ok()) << page << ": " << report.status().ToString();
    EXPECT_FALSE(report->has_errors()) << page << " has lint errors:\n"
                                       << report->ToJson();
    EXPECT_FALSE(report->has_warnings()) << page << " has lint warnings:\n"
                                         << report->ToJson();
  }
}

TEST(GoldenExamples, BehindUpdatePageWarnsExactlyOnce) {
  // behind_update.xhtml ships as the golden XQSA033 case: an updating
  // `behind` completion listener. The page must lint with exactly that
  // warning (no errors, nothing else), and xq_lint's CI loop stays
  // green because warnings exit 0.
  auto source = app::ReadPageFile("behind_update.xhtml");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto report = LintXhtml(*source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->has_errors()) << report->ToJson();
  EXPECT_TRUE(report->has_warnings()) << report->ToJson();
  std::vector<std::string> codes;
  const Diagnostic* found = nullptr;
  for (const LintUnit& unit : report->units) {
    for (const Diagnostic& d : unit.diagnostics) {
      if (d.severity == Severity::kInfo) continue;  // style notes may ride
      codes.push_back(d.code);
      if (d.code == "XQSA033") found = &d;
    }
  }
  ASSERT_EQ(codes, std::vector<std::string>{"XQSA033"}) << report->ToJson();
  // Span-accurate against the shipped source: the diagnostic highlights
  // the `local:onResult` listener-name token.
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->span.length, std::string("local:onResult").size());
  EXPECT_GT(found->span.line, 0);
}

TEST(GoldenExamples, EffectLintPagesWarnExactlyOnce) {
  // Each effect-analysis lint ships one golden page that must produce
  // exactly its warning (no errors, no other warnings), span-anchored
  // on the documented token. These pages are deliberately NOT in the
  // lint-clean list above.
  struct Case {
    const char* page;
    const char* code;
    const char* token;  // the source text the span must cover
  } cases[] = {
      {"xqsa034_interference.xhtml", "XQSA034", "local:addB"},
      {"xqsa035_top_reads.xhtml", "XQSA035", "local:stats"},
      {"xqsa036_dead_update.xhtml", "XQSA036", "insert"},
  };
  for (const Case& c : cases) {
    auto source = app::ReadPageFile(c.page);
    ASSERT_TRUE(source.ok()) << c.page << ": " << source.status().ToString();
    auto report = LintXhtml(*source);
    ASSERT_TRUE(report.ok()) << c.page << ": " << report.status().ToString();
    EXPECT_FALSE(report->has_errors()) << c.page << ":\n" << report->ToJson();
    std::vector<std::string> codes;
    const Diagnostic* found = nullptr;
    for (const LintUnit& unit : report->units) {
      for (const Diagnostic& d : unit.diagnostics) {
        if (d.severity == Severity::kInfo) continue;  // style notes may ride
        codes.push_back(d.code);
        if (d.code == c.code) found = &d;
      }
    }
    ASSERT_EQ(codes, std::vector<std::string>{c.code})
        << c.page << ":\n" << report->ToJson();
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->span.length, std::string(c.token).size()) << c.page;
    EXPECT_GT(found->span.line, 0) << c.page;
    // Span-accurate against the shipped source: the highlighted text is
    // exactly the documented token.
    EXPECT_NE(source->find(c.token), std::string::npos) << c.page;
  }
}

}  // namespace
}  // namespace xqib::xquery::analysis
