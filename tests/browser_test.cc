// Unit tests for the browser substrate: CSS style handling, the event
// system (capture/target/bubble, stopPropagation), the event loop, the
// security policy, the BOM (windows, history, materialization), and
// page script extraction.

#include <gtest/gtest.h>

#include "browser/bom.h"
#include "browser/css.h"
#include "browser/event_loop.h"
#include "browser/events.h"
#include "browser/page.h"
#include "browser/security.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqib::browser {
namespace {

// ------------------------------------------------------------------ CSS ---

TEST(Css, ParseAndSerialize) {
  auto decls = ParseStyleAttribute("color: red; margin:2px ;bad;x:");
  ASSERT_EQ(decls.size(), 2u);
  EXPECT_EQ(decls[0].first, "color");
  EXPECT_EQ(decls[0].second, "red");
  EXPECT_EQ(decls[1].first, "margin");
  EXPECT_EQ(decls[1].second, "2px");
  EXPECT_EQ(SerializeStyleAttribute(decls), "color: red; margin: 2px");
}

TEST(Css, GetSetOnElement) {
  auto doc = std::move(xml::ParseDocument("<d/>")).value();
  xml::Node* d = doc->DocumentElement();
  EXPECT_EQ(GetStyleProperty(d, "color"), "");
  SetStyleProperty(d, "color", "red");
  SetStyleProperty(d, "border-margin", "2px");
  EXPECT_EQ(GetStyleProperty(d, "color"), "red");
  EXPECT_EQ(GetStyleProperty(d, "border-margin"), "2px");
  EXPECT_EQ(d->GetAttributeValue("style"),
            "color: red; border-margin: 2px");
  // Update one property, keep the other.
  SetStyleProperty(d, "color", "blue");
  EXPECT_EQ(GetStyleProperty(d, "color"), "blue");
  EXPECT_EQ(GetStyleProperty(d, "border-margin"), "2px");
  // Removing all properties removes the attribute.
  SetStyleProperty(d, "color", "");
  SetStyleProperty(d, "border-margin", "");
  EXPECT_EQ(d->FindAttribute("style"), nullptr);
}

TEST(Css, PropertyNamesAreCaseInsensitive) {
  auto doc = std::move(xml::ParseDocument("<d style=\"Color: red\"/>"))
                 .value();
  EXPECT_EQ(GetStyleProperty(doc->DocumentElement(), "color"), "red");
}

// --------------------------------------------------------------- events ---

class EventsTest : public ::testing::Test {
 protected:
  EventsTest() {
    doc_ = std::move(
               xml::ParseDocument("<r><mid><leaf/></mid></r>"))
               .value();
    root_ = doc_->DocumentElement();
    mid_ = root_->children()[0];
    leaf_ = mid_->children()[0];
  }
  Listener Track(const std::string& id, bool capture = false) {
    Listener l;
    l.id = id;
    l.capture = capture;
    l.callback = [this, id](Event& e) {
      const char* phase = e.phase == Event::Phase::kCapture  ? "C"
                          : e.phase == Event::Phase::kTarget ? "T"
                                                             : "B";
      log_ += id + ":" + phase + " ";
    };
    return l;
  }
  std::unique_ptr<xml::Document> doc_;
  xml::Node* root_;
  xml::Node* mid_;
  xml::Node* leaf_;
  EventSystem events_;
  std::string log_;
};

TEST_F(EventsTest, CaptureTargetBubbleOrder) {
  events_.AddListener(root_, "click", Track("root-c", true));
  events_.AddListener(root_, "click", Track("root-b", false));
  events_.AddListener(mid_, "click", Track("mid-c", true));
  events_.AddListener(mid_, "click", Track("mid-b", false));
  events_.AddListener(leaf_, "click", Track("leaf", false));
  Event e;
  e.type = "click";
  size_t n = events_.Dispatch(leaf_, e);
  EXPECT_EQ(n, 5u);
  // Capture: root→target; bubble: target→root.
  EXPECT_EQ(log_, "root-c:C mid-c:C leaf:T mid-b:B root-b:B ");
}

TEST_F(EventsTest, RegistrationOrderWithinTarget) {
  events_.AddListener(leaf_, "click", Track("first"));
  events_.AddListener(leaf_, "click", Track("second"));
  Event e;
  e.type = "click";
  events_.Dispatch(leaf_, e);
  EXPECT_EQ(log_, "first:T second:T ");
}

TEST_F(EventsTest, DuplicateRegistrationIgnored) {
  events_.AddListener(leaf_, "click", Track("x"));
  events_.AddListener(leaf_, "click", Track("x"));
  EXPECT_EQ(events_.listener_count(), 1u);
}

TEST_F(EventsTest, StopPropagationHaltsBubble) {
  Listener stopper;
  stopper.id = "stopper";
  stopper.callback = [this](Event& e) {
    log_ += "stop ";
    e.stop_propagation = true;
  };
  events_.AddListener(leaf_, "click", std::move(stopper));
  events_.AddListener(root_, "click", Track("root"));
  Event e;
  e.type = "click";
  events_.Dispatch(leaf_, e);
  EXPECT_EQ(log_, "stop ");
}

TEST_F(EventsTest, RemoveListener) {
  events_.AddListener(leaf_, "click", Track("x"));
  events_.RemoveListener(leaf_, "click", "x");
  Event e;
  e.type = "click";
  EXPECT_EQ(events_.Dispatch(leaf_, e), 0u);
}

TEST_F(EventsTest, NonBubblingEvent) {
  events_.AddListener(root_, "focus", Track("root"));
  events_.AddListener(leaf_, "focus", Track("leaf"));
  Event e;
  e.type = "focus";
  e.bubbles = false;
  events_.Dispatch(leaf_, e);
  // Capture still runs; bubble does not.
  EXPECT_EQ(log_, "leaf:T ");
}

TEST_F(EventsTest, ClearDocumentDropsListeners) {
  events_.AddListener(leaf_, "click", Track("x"));
  events_.AddListener(mid_, "other", Track("y"));
  events_.ClearDocument(doc_.get());
  EXPECT_EQ(events_.listener_count(), 0u);
}

TEST_F(EventsTest, TypeIsolation) {
  events_.AddListener(leaf_, "click", Track("c"));
  events_.AddListener(leaf_, "keyup", Track("k"));
  Event e;
  e.type = "keyup";
  events_.Dispatch(leaf_, e);
  EXPECT_EQ(log_, "k:T ");
}

// ----------------------------------------------------------- event loop ---

TEST(EventLoopTest, OrderingAndSimulatedTime) {
  EventLoop loop;
  std::string log;
  loop.Post([&] { log += "a"; }, 10);
  loop.Post([&] { log += "b"; }, 5);
  loop.Post([&] { log += "c"; }, 5);  // same due time: posting order
  loop.Post([&] { log += "d"; });     // immediate
  EXPECT_EQ(loop.RunUntilIdle(), 4u);
  EXPECT_EQ(log, "dbca");
  EXPECT_DOUBLE_EQ(loop.now_ms(), 10.0);
}

TEST(EventLoopTest, TasksCanPostTasks) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) loop.Post(chain, 1);
  };
  loop.Post(chain);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(loop.now_ms(), 4.0);
}

TEST(EventLoopTest, MaxTasksGuard) {
  EventLoop loop;
  std::function<void()> forever = [&]() { loop.Post(forever); };
  loop.Post(forever);
  EXPECT_EQ(loop.RunUntilIdle(10), 10u);
  EXPECT_FALSE(loop.idle());
}

// ------------------------------------------------------------- security ---

TEST(Security, OriginParsing) {
  Origin o = OriginFromUrl("https://shop.example.com:8443/a/b?q=1");
  EXPECT_EQ(o.scheme, "https");
  EXPECT_EQ(o.host, "shop.example.com");
  EXPECT_EQ(o.EffectivePort(), 8443);
  EXPECT_EQ(OriginFromUrl("http://x.org/p").EffectivePort(), 80);
  EXPECT_EQ(OriginFromUrl("https://x.org").EffectivePort(), 443);
  EXPECT_TRUE(OriginFromUrl("about:blank").host.empty());
}

TEST(Security, SameOriginPolicy) {
  SecurityPolicy policy(SecurityPolicy::Mode::kSameOrigin);
  EXPECT_TRUE(policy.CanAccess("http://a.com/x", "http://a.com/y"));
  EXPECT_TRUE(policy.CanAccess("http://a.com:80/x", "http://a.com/y"));
  EXPECT_FALSE(policy.CanAccess("http://a.com/", "http://b.com/"));
  EXPECT_FALSE(policy.CanAccess("http://a.com/", "https://a.com/"));
  EXPECT_FALSE(policy.CanAccess("http://a.com/", "http://a.com:81/"));
  EXPECT_FALSE(policy.CanAccess("about:blank", "about:blank"));
}

TEST(Security, PolicyModes) {
  SecurityPolicy permissive(SecurityPolicy::Mode::kPermissive);
  EXPECT_TRUE(permissive.CanAccess("http://a.com/", "http://b.com/"));
  SecurityPolicy deny(SecurityPolicy::Mode::kDenyAll);
  EXPECT_FALSE(deny.CanAccess("http://a.com/", "http://a.com/"));
}

// ------------------------------------------------------------------ BOM ---

TEST(Bom, WindowTreeMaterialization) {
  Browser browser;
  browser.policy().set_mode(SecurityPolicy::Mode::kPermissive);
  Window* top = browser.top_window();
  (void)top->LoadSource("http://a.com/", "<html><body/></html>");
  Window* frame = top->CreateFrame("child1");
  (void)frame->LoadSource("http://a.com/f", "<html><body/></html>");
  top->set_status("Welcome");

  xml::Document scratch;
  Browser::BomTree tree =
      browser.MaterializeWindowTree(&scratch, "http://a.com/");
  ASSERT_NE(tree.root, nullptr);
  EXPECT_EQ(tree.root->GetAttributeValue("name"), "top_window");
  // Children per the paper's §4.2.1 shape.
  std::string serialized = xml::Serialize(tree.root);
  EXPECT_TRUE(serialized.find("<status>Welcome</status>") !=
              std::string::npos);
  EXPECT_TRUE(serialized.find("<href>http://a.com/</href>") !=
              std::string::npos);
  EXPECT_TRUE(serialized.find("name=\"child1\"") != std::string::npos);
}

TEST(Bom, SyncStatusBack) {
  Browser browser;
  browser.policy().set_mode(SecurityPolicy::Mode::kPermissive);
  (void)browser.top_window()->LoadSource("http://a.com/",
                                         "<html><body/></html>");
  xml::Document scratch;
  Browser::BomTree tree =
      browser.MaterializeWindowTree(&scratch, "http://a.com/");
  // Edit the materialized <status> and sync.
  for (xml::Node* c : tree.root->children()) {
    if (c->name().local() == "status") c->SetValue("Changed");
  }
  ASSERT_TRUE(browser.SyncFromBomTree(tree, "http://a.com/").ok());
  EXPECT_EQ(browser.top_window()->status(), "Changed");
}

TEST(Bom, DeniedWindowIsEmptyShell) {
  Browser browser;  // same-origin
  Window* top = browser.top_window();
  (void)top->LoadSource("http://a.com/", "<html><body/></html>");
  Window* foreign = top->CreateFrame("evil");
  (void)foreign->LoadSource("http://evil.com/", "<html><body/></html>");
  xml::Document scratch;
  Browser::BomTree tree =
      browser.MaterializeWindowTree(&scratch, "http://a.com/");
  // Find the foreign window element: it must have no name and no kids.
  xml::Node* frames = nullptr;
  for (xml::Node* c : tree.root->children()) {
    if (c->name().local() == "frames") frames = c;
  }
  ASSERT_NE(frames, nullptr);
  ASSERT_EQ(frames->children().size(), 1u);
  xml::Node* shell = frames->children()[0];
  EXPECT_EQ(shell->attributes().size(), 0u);
  EXPECT_EQ(shell->children().size(), 0u);
  // And resolving it yields no window.
  EXPECT_EQ(browser.ResolveWindowNode(tree, shell, "http://a.com/"),
            nullptr);
}

TEST(Bom, HistoryNavigation) {
  Browser browser;
  browser.page_fetcher = [](const std::string& url) -> Result<std::string> {
    return "<html><body><p id=\"u\">" + url + "</p></body></html>";
  };
  Window* w = browser.top_window();
  ASSERT_TRUE(w->Navigate("http://a.com/1").ok());
  ASSERT_TRUE(w->Navigate("http://a.com/2").ok());
  ASSERT_TRUE(w->Navigate("http://a.com/3").ok());
  EXPECT_EQ(w->history_length(), 3u);
  ASSERT_TRUE(w->HistoryBack().ok());
  EXPECT_EQ(w->url(), "http://a.com/2");
  ASSERT_TRUE(w->HistoryBack().ok());
  EXPECT_EQ(w->url(), "http://a.com/1");
  ASSERT_TRUE(w->HistoryForward().ok());
  EXPECT_EQ(w->url(), "http://a.com/2");
  // Out-of-range goes are silently ignored.
  ASSERT_TRUE(w->HistoryGo(99).ok());
  EXPECT_EQ(w->url(), "http://a.com/2");
  // Navigating truncates the forward branch.
  ASSERT_TRUE(w->Navigate("http://a.com/4").ok());
  ASSERT_TRUE(w->HistoryForward().ok());
  EXPECT_EQ(w->url(), "http://a.com/4");
}

TEST(Bom, WriteAppendsToBody) {
  Browser browser;
  Window* w = browser.top_window();
  (void)w->LoadSource("http://a.com/",
                      "<html><body><p>x</p></body></html>");
  w->Write("written");
  EXPECT_TRUE(xml::Serialize(w->document()->root()).find("written") !=
              std::string::npos);
}

TEST(Bom, WindowGeometry) {
  Browser browser;
  Window* w = browser.top_window();
  w->MoveTo(100, 50);
  w->MoveBy(-10, 25);
  EXPECT_EQ(w->screen_x(), 90);
  EXPECT_EQ(w->screen_y(), 75);
}

// ----------------------------------------------------------------- page ---

TEST(Page, ScriptExtraction) {
  auto doc = std::move(xml::ParseDocument(R"(<html><head>
      <script type="text/javascript">var x = 1;</script>
      <script type="text/xquery">1 + 1</script>
      <script type="text/xqueryp">{ 1; }</script>
      <script>no.type();</script>
      </head><body/></html>)"))
                 .value();
  auto scripts = ExtractScripts(doc.get());
  ASSERT_EQ(scripts.size(), 4u);
  EXPECT_EQ(scripts[0].language, ScriptLanguage::kJavaScript);
  EXPECT_EQ(scripts[1].language, ScriptLanguage::kXQuery);
  EXPECT_EQ(scripts[2].language, ScriptLanguage::kXQueryP);
  EXPECT_EQ(scripts[3].language, ScriptLanguage::kJavaScript);
}

TEST(Page, InlineHandlerExtraction) {
  auto doc = std::move(xml::ParseDocument(
                 "<html><body><input onkeyup=\"f(value)\" "
                 "onClick=\"g()\" id=\"i\"/></body></html>"))
                 .value();
  auto handlers = ExtractInlineHandlers(doc.get());
  ASSERT_EQ(handlers.size(), 2u);
  EXPECT_EQ(handlers[0].event, "onkeyup");
  EXPECT_EQ(handlers[0].code, "f(value)");
  EXPECT_EQ(handlers[1].event, "onclick");  // case-folded
}

TEST(Page, IeFoldedScriptElementsStillFound) {
  xml::ParseOptions ie;
  ie.ie_tag_folding = true;
  auto doc = std::move(xml::ParseDocument(
                 "<html><head><script type=\"text/xquery\">1"
                 "</script></head><body/></html>",
                 ie))
                 .value();
  auto scripts = ExtractScripts(doc.get());
  ASSERT_EQ(scripts.size(), 1u);  // matches SCRIPT case-insensitively
}

}  // namespace
}  // namespace xqib::browser
