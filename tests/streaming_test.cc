// Streaming-pipeline tests (pull-based ItemStream evaluation): a
// streamed-vs-materialized oracle over deterministic pseudo-random
// pages for every ablation combination, position()/last() semantics in
// streamed predicates, laziness proofs (bounded consumers stop pulling
// from huge domains), and the fn:count name-index fast path including
// its invalidation under document mutation.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::xquery {
namespace {

using xdm::Sequence;

std::string EvalWith(const std::string& query, const std::string& xml,
                     const Evaluator::EvalOptions& options,
                     Evaluator::EvalStats* stats = nullptr) {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return "PARSE-ERROR: " + compiled.status().ToString();
  (*compiled)->evaluator().set_options(options);
  DynamicContext ctx;
  std::unique_ptr<xml::Document> doc;
  if (!xml.empty()) {
    auto parsed = xml::ParseDocument(xml);
    if (!parsed.ok()) return "XML-ERROR: " + parsed.status().ToString();
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) return "BIND-ERROR: " + bound.ToString();
  auto result = (*compiled)->Run(ctx);
  if (stats != nullptr) *stats = (*compiled)->evaluator().stats();
  if (!result.ok()) return "ERROR: " + result.status().code();
  return xdm::SequenceToString(*result);
}

Evaluator::EvalOptions Eager() {
  Evaluator::EvalOptions o;
  o.stream_pipeline = false;
  return o;
}

// Deterministic pseudo-random page: nested sections with repeated
// element names at several depths, so paths produce duplicates,
// out-of-order raw axis output, and ancestor/descendant overlap.
std::string RandomPage(uint32_t seed, int sections) {
  uint32_t state = seed;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;  // numerical-recipes LCG
    return (state >> 16) & 0x7fff;
  };
  std::string xml = "<page>";
  for (int s = 0; s < sections; ++s) {
    xml += "<sec id=\"s" + std::to_string(s) + "\">";
    int items = 1 + static_cast<int>(next() % 4);
    for (int i = 0; i < items; ++i) {
      int v = static_cast<int>(next() % 100);
      xml += "<item v=\"" + std::to_string(v) + "\">";
      if (next() % 3 == 0) {
        xml += "<item v=\"" + std::to_string(v + 100) + "\"><leaf/></item>";
      }
      xml += "<leaf/></item>";
    }
    if (next() % 2 == 0) xml += "<note>n" + std::to_string(s) + "</note>";
    xml += "</sec>";
  }
  xml += "</page>";
  return xml;
}

// ------------------------------------------- streamed vs materialized ---

// The oracle: for every combination of the four ablation switches, every
// query must produce byte-identical results (document order, dedup,
// predicate semantics included). The all-off corner is the PR 2-era
// eager engine; the all-on corner is the full streaming pipeline.
TEST(StreamingOracle, AllAblationCombosAgreeOnRandomPages) {
  const char* queries[] = {
      "//item",
      "//item/@v",
      "//sec/item",
      "count(//item)",
      "count(//item/..)",       // dedup under an aggregate
      "string-join(//note, ',')",
      "exists(//leaf)",
      "empty(//missing)",
      "(//item)[1]/@v/string()",
      "(//item)[last()]/@v/string()",
      "(//item)[3]/@v/string()",
      "//item[position() = 2]/@v/string()",
      "//item[last()]/@v/string()",
      "//sec[note]/@id/string()",
      "//item[@v > 50]/@v/string()",
      "sum(//item/@v)",
      "for $i in //sec/item where $i/@v > 30 return string($i/@v)",
      "for $s in //sec, $i in $s/item return concat($s/@id, ':', $i/@v)",
      "count(//item/descendant-or-self::*/..)",
      "(//item | //note)[2]/name()",
      "some $i in //item satisfies $i/@v > 90",
      "every $i in //item satisfies $i/@v >= 0",
  };
  for (uint32_t seed : {1u, 7u, 42u}) {
    std::string page = RandomPage(seed, 8);
    for (const char* q : queries) {
      std::string reference = EvalWith(q, page, Eager());
      for (int mask = 0; mask < 16; ++mask) {
        Evaluator::EvalOptions o;
        o.stream_pipeline = (mask & 1) != 0;
        o.honor_sort_elision = (mask & 2) != 0;
        o.use_name_index = (mask & 4) != 0;
        o.bounded_eval = (mask & 8) != 0;
        EXPECT_EQ(EvalWith(q, page, o), reference)
            << "seed " << seed << " mask " << mask << " query: " << q;
      }
    }
  }
}

// --------------------------------------- focus in streamed predicates ---

TEST(StreamingFocus, PositionStreamsIncrementally) {
  std::string page = RandomPage(3, 5);
  Evaluator::EvalOptions on;  // defaults: everything on
  EXPECT_EQ(EvalWith("string-join(//sec[position() mod 2 = 1]/@id, ' ')",
                     page, on),
            EvalWith("string-join(//sec[position() mod 2 = 1]/@id, ' ')",
                     page, Eager()));
  // position() against a filtered primary re-numbers after each
  // predicate, exactly like the eager engine.
  EXPECT_EQ(EvalWith("(//item[@v >= 0])[position() = 2]/@v/string()", page,
                     on),
            EvalWith("(//item[@v >= 0])[position() = 2]/@v/string()", page,
                     Eager()));
}

TEST(StreamingFocus, LastForcesMaterializationButAgrees) {
  std::string page = RandomPage(9, 6);
  Evaluator::EvalOptions on;
  const char* queries[] = {
      "(//item)[last()]/@v/string()",
      "(//item)[last() - 1]/@v/string()",
      "//sec[last()]/@id/string()",
      "string-join(//item[position() = last()]/@v, ' ')",
  };
  for (const char* q : queries) {
    EXPECT_EQ(EvalWith(q, page, on), EvalWith(q, page, Eager()))
        << "query: " << q;
  }
}

// A user function in a predicate inherits the focus (XQIB dialect), so
// the streaming filter must fall back to materialization for it.
TEST(StreamingFocus, UserFunctionPredicateSeesTrueLast) {
  std::string page = "<page><i/><i/><i/><i/></page>";
  const std::string q =
      "declare function local:sel() { last() - 1 }; "
      "count(//i[position() = local:sel()])";
  Evaluator::EvalOptions on;
  EXPECT_EQ(EvalWith(q, page, on), "1");
  EXPECT_EQ(EvalWith(q, page, on), EvalWith(q, page, Eager()));
}

// ------------------------------------------------------------ laziness ---

TEST(StreamingLazy, HeadOfHugeFlworPullsO1) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWith("head(for $i in 1 to 1000000 return $i * 2)", "",
                     Evaluator::EvalOptions(), &stats),
            "2");
  // The range never expands: a handful of pulls, no million-item buffer.
  EXPECT_LT(stats.streams.items_pulled, 100u);
  EXPECT_LT(stats.streams.items_materialized, 100u);
  EXPECT_GT(stats.early_exits, 0u);
}

TEST(StreamingLazy, PositionalFilterOverHugeFlworStopsPulling) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(
      EvalWith("(for $i in 1 to 1000000 where $i mod 7 = 0 return $i)[3]",
               "", Evaluator::EvalOptions(), &stats),
      "21");
  EXPECT_LT(stats.streams.items_pulled, 100u);
}

TEST(StreamingLazy, WhereShortCircuitStopsClauseStreams) {
  // `where` rejects tuples before the return stream is built, and the
  // existence consumer stops at the first accepted tuple — the deeper
  // clause stream is pulled a bounded number of times.
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWith("exists(for $i in 1 to 1000000 "
                     "where $i >= 5 return $i)",
                     "", Evaluator::EvalOptions(), &stats),
            "true");
  EXPECT_LT(stats.streams.items_pulled, 100u);
}

TEST(StreamingLazy, QuantifiersStopAtWitness) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWith("some $x in 1 to 1000000 satisfies $x = 42", "",
                     Evaluator::EvalOptions(), &stats),
            "true");
  EXPECT_LT(stats.streams.items_pulled, 200u);
  EXPECT_EQ(EvalWith("every $x in 1 to 1000000 satisfies $x < 10", "",
                     Evaluator::EvalOptions(), &stats),
            "false");
  EXPECT_LT(stats.streams.items_pulled, 200u);
}

TEST(StreamingLazy, EagerBaselineMaterializesMore) {
  // The ablation axis the benchmark measures: same query, stream
  // pipeline on vs off, compared by peak intermediate materialization.
  const std::string q =
      "count(for $s in //sec, $i in $s/item return $i/leaf)";
  std::string page = RandomPage(11, 12);
  Evaluator::EvalStats on_stats, off_stats;
  std::string want = EvalWith(q, page, Eager(), &off_stats);
  EXPECT_EQ(EvalWith(q, page, Evaluator::EvalOptions(), &on_stats), want);
  EXPECT_LT(on_stats.streams.items_materialized,
            off_stats.streams.items_materialized);
}

// -------------------------------------------------- count() fast path ---

TEST(CountFastPath, AnswersFromNameIndex) {
  std::string page = RandomPage(5, 10);
  Evaluator::EvalStats stats;
  std::string want = EvalWith("count(//item)", page, Eager());
  EXPECT_EQ(EvalWith("count(//item)", page, Evaluator::EvalOptions(),
                     &stats),
            want);
  EXPECT_GT(stats.count_index_hits, 0u);
  // Disabled index -> no hit, same answer.
  Evaluator::EvalOptions no_index;
  no_index.use_name_index = false;
  EXPECT_EQ(EvalWith("count(//item)", page, no_index, &stats), want);
  EXPECT_EQ(stats.count_index_hits, 0u);
}

TEST(CountFastPath, InvalidatedByMutation) {
  // Regression: the count must be recomputed after the document mutates
  // between two statements of one block — a stale index bucket would
  // report the pre-insert count.
  const std::string q =
      "{ declare variable $before := count(//item); "
      "insert node <item v=\"999\"/> into /page/sec[1]; "
      "($before, count(//item)) }";
  std::string page = "<page><sec><item v=\"1\"/><item v=\"2\"/></sec>"
                     "<sec><item v=\"3\"/></sec></page>";
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWith(q, page, Evaluator::EvalOptions(), &stats), "3 4");
  EXPECT_GT(stats.count_index_hits, 0u);
  // Deletion invalidates too.
  const std::string q2 =
      "{ declare variable $before := count(//item); "
      "delete node (//item)[1]; "
      "($before, count(//item)) }";
  EXPECT_EQ(EvalWith(q2, page, Evaluator::EvalOptions()), "3 2");
}

}  // namespace
}  // namespace xqib::xquery
