// Integration tests for the XQIB plug-in (paper Sections 4-5): page
// initialization, browser: functions, the event grammar extension, CSS
// extension, the BOM, security, and the asynchronous "behind" construct.

#include <gtest/gtest.h>

#include "browser/css.h"
#include "net/rest.h"
#include "net/webservice.h"
#include "plugin/plugin.h"
#include "xml/serializer.h"

namespace xqib::plugin {
namespace {

using browser::Browser;
using browser::Event;
using browser::Window;

class PluginTest : public ::testing::Test {
 protected:
  PluginTest()
      : services_(&fabric_, &store_), plugin_(&browser_, &fabric_, &services_) {
    plugin_.Install();
    browser_.policy().set_mode(browser::SecurityPolicy::Mode::kSameOrigin);
    browser_.page_fetcher = [this](const std::string& url)
        -> Result<std::string> {
      auto resp = fabric_.Get(url);
      if (!resp.ok()) return resp.status();
      return resp->body;
    };
  }

  // Loads page source into the top window (as if fetched from `url`).
  Window* Load(const std::string& source,
               const std::string& url = "http://app.example.com/index.xhtml") {
    Window* w = LoadRaw(source, url);
    EXPECT_TRUE(plugin_.last_script_error().ok())
        << plugin_.last_script_error().ToString();
    return w;
  }

  // Same, but tolerates script errors (tests that expect them).
  Window* LoadRaw(const std::string& source,
                  const std::string& url =
                      "http://app.example.com/index.xhtml") {
    Status st = browser_.top_window()->LoadSource(url, source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return browser_.top_window();
  }

  xml::Node* ById(Window* w, const std::string& id) {
    return w->document()->GetElementById(id);
  }

  void Click(xml::Node* target) {
    Event e;
    e.type = "onclick";
    plugin_.FireEvent(target, e);
  }

  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  Browser browser_;
  XqibPlugin plugin_;
};

TEST_F(PluginTest, HelloWorldAlertOnLoad) {
  // The paper's §4.1 hello-world page, verbatim.
  Load(R"(<html><head>
      <title>Hello World Page</title>
      <script type="text/xquery">
      browser:alert("Hello, World!")
      </script>
      </head><body/></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "Hello, World!");
}

TEST_F(PluginTest, MainBodyCanUpdateTheDom) {
  Window* w = Load(R"(<html><body><div id="out"/>
      <script type="text/xquery">
      insert node <p>generated</p> into //div[@id="out"]
      </script></body></html>)");
  xml::Node* out = ById(w, "out");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(xml::Serialize(out), "<div id=\"out\"><p>generated</p></div>");
}

TEST_F(PluginTest, LocalMainConvention) {
  // §5.1: "the code executed when the page is loaded is put in a
  // function local:main()".
  Load(R"(<html><body><script type="text/xquery">
      declare sequential function local:main() {
        browser:alert("from main")
      };
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "from main");
}

TEST_F(PluginTest, EventAttachAndDispatch) {
  Window* w = Load(R"(<html><body>
      <input type="button" id="button" value="Go"/>
      <div id="log"/>
      <script type="text/xquery">
      declare updating function local:onClick($evt, $obj) {
        insert node <hit>{string($evt/type)}</hit>
          into //div[@id="log"]
      };
      on event "onclick" at //input[@id="button"]
        attach listener local:onClick
      </script></body></html>)");
  Click(ById(w, "button"));
  Click(ById(w, "button"));
  EXPECT_EQ(xml::Serialize(ById(w, "log")),
            "<div id=\"log\"><hit>onclick</hit><hit>onclick</hit></div>");
}

TEST_F(PluginTest, EventStatsTrackFastPaths) {
  Window* w = Load(R"(<html><body>
      <input type="button" id="b" value="Go"/>
      <div id="log"/>
      <script type="text/xquery">
      declare updating function local:onClick($evt, $obj) {
        insert node <hit n="{count(//hit) + 1}"/>
          into //div[@id="log"]
      };
      on event "onclick" at //input[@id="b"] attach listener local:onClick
      </script></body></html>)");
  Click(ById(w, "b"));
  // The dispatch ran //hit (name index) and //div[@id="log"] (elided
  // descendant step) through the fast paths.
  EXPECT_GT(plugin_.last_event_stats().sorts_elided, 0u);
  EXPECT_GT(plugin_.last_event_stats().name_index_hits, 0u);
  // The insert invalidated the name index: the second dispatch must see
  // the first <hit>.
  Click(ById(w, "b"));
  EXPECT_EQ(xml::Serialize(ById(w, "log")),
            "<div id=\"log\"><hit n=\"1\"/><hit n=\"2\"/></div>");
}

TEST_F(PluginTest, EventStatsDoNotLeakAcrossDispatches) {
  // The page evaluator's counters are cumulative, so last_event_stats()
  // must be a per-dispatch delta: two identical dispatches report
  // identical numbers, not a running total.
  Window* w = Load(R"(<html><body>
      <input type="button" id="b" value="Go"/>
      <span id="status">idle</span>
      <script type="text/xquery">
      declare updating function local:onClick($evt, $obj) {
        replace value of node //span[@id="status"]
          with string(count(//input))
      };
      on event "onclick" at //input[@id="b"] attach listener local:onClick
      </script></body></html>)");
  Click(ById(w, "b"));
  XqibPlugin::EventStats first = plugin_.last_event_stats();
  EXPECT_GT(first.name_index_hits, 0u);
  EXPECT_GT(first.items_pulled + first.items_materialized +
                first.buffers_avoided,
            0u);
  Click(ById(w, "b"));
  XqibPlugin::EventStats second = plugin_.last_event_stats();
  EXPECT_EQ(second.sorts_elided, first.sorts_elided);
  EXPECT_EQ(second.sorts_performed, first.sorts_performed);
  EXPECT_EQ(second.name_index_hits, first.name_index_hits);
  EXPECT_EQ(second.early_exits, first.early_exits);
  EXPECT_EQ(second.count_index_hits, first.count_index_hits);
  EXPECT_EQ(second.items_pulled, first.items_pulled);
  EXPECT_EQ(second.items_materialized, first.items_materialized);
  EXPECT_EQ(second.buffers_avoided, first.buffers_avoided);
}

TEST_F(PluginTest, SetEvalOptionsDisablesFastPaths) {
  Window* w = Load(R"(<html><body>
      <input type="button" id="b" value="Go"/>
      <div id="log"/>
      <script type="text/xquery">
      declare updating function local:onClick($evt, $obj) {
        insert node <hit n="{count(//hit) + 1}"/>
          into //div[@id="log"]
      };
      on event "onclick" at //input[@id="b"] attach listener local:onClick
      </script></body></html>)");
  xquery::Evaluator::EvalOptions off;
  off.honor_sort_elision = false;
  off.use_name_index = false;
  off.bounded_eval = false;
  plugin_.set_eval_options(off);
  Click(ById(w, "b"));
  EXPECT_EQ(plugin_.last_event_stats().sorts_elided, 0u);
  EXPECT_EQ(plugin_.last_event_stats().name_index_hits, 0u);
  EXPECT_EQ(plugin_.last_event_stats().early_exits, 0u);
  EXPECT_GT(plugin_.last_event_stats().sorts_performed, 0u);
  // Results are identical with the fast paths off.
  EXPECT_EQ(xml::Serialize(ById(w, "log")),
            "<div id=\"log\"><hit n=\"1\"/></div>");
}

TEST_F(PluginTest, EventListenerReceivesEventNodeAndTarget) {
  Window* w = Load(R"(<html><body>
      <input id="b" value="x"/>
      <script type="text/xquery">
      declare sequential function local:l($evt, $obj) {
        browser:alert(concat(string($evt/type), "@",
                             string($obj/@id)))
      };
      on event "onclick" at //input[@id="b"] attach listener local:l
      </script></body></html>)");
  Click(ById(w, "b"));
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "onclick@b");
}

TEST_F(PluginTest, EventDetach) {
  Window* w = Load(R"(<html><body>
      <input id="b"/><div id="log"/>
      <script type="text/xquery">
      declare updating function local:l($evt, $obj) {
        insert node <hit/> into //div[@id="log"]
      };
      declare updating function local:off($evt, $obj) {
        on event "onclick" at //input[@id="b"] detach listener local:l
      };
      { on event "onclick" at //input[@id="b"] attach listener local:l;
        on event "onoff" at //input[@id="b"] attach listener local:off; }
      </script></body></html>)");
  Click(ById(w, "b"));
  Event off;
  off.type = "onoff";
  plugin_.FireEvent(ById(w, "b"), off);
  Click(ById(w, "b"));
  EXPECT_EQ(xml::Serialize(ById(w, "log")), "<div id=\"log\"><hit/></div>");
}

TEST_F(PluginTest, TriggerEventSimulatesClick) {
  Window* w = Load(R"(<html><body>
      <input id="myButton"/><div id="log"/>
      <script type="text/xquery">
      declare updating function local:l($evt, $obj) {
        insert node <hit/> into //div[@id="log"]
      };
      { on event "onclick" at //input[@id="myButton"]
          attach listener local:l;
        trigger event "onclick" at //input[@id="myButton"]; }
      </script></body></html>)");
  plugin_.PumpEvents();
  EXPECT_EQ(xml::Serialize(ById(w, "log")), "<div id=\"log\"><hit/></div>");
}

TEST_F(PluginTest, EventsBubbleToAncestors) {
  Window* w = Load(R"(<html><body>
      <div id="outer"><input id="inner"/></div><div id="log"/>
      <script type="text/xquery">
      declare updating function local:l($evt, $obj) {
        insert node <hit at="{string($obj/@id)}"/> into //div[@id="log"]
      };
      { on event "onclick" at //div[@id="outer"] attach listener local:l;
        on event "onclick" at //input[@id="inner"] attach listener local:l; }
      </script></body></html>)");
  Click(ById(w, "inner"));
  EXPECT_EQ(xml::Serialize(ById(w, "log")),
            "<div id=\"log\"><hit at=\"inner\"/><hit at=\"outer\"/></div>");
}

TEST_F(PluginTest, SetAndGetStyle) {
  // The §4.5 examples.
  Window* w = Load(R"(<html><body>
      <table id="thistable"><tr><td>x</td></tr></table>
      <script type="text/xquery">
      { set style "border-margin" of //table[@id="thistable"] to "2px";
        browser:alert(get style "border-margin"
                      of //table[@id="thistable"]); }
      </script></body></html>)");
  EXPECT_EQ(browser::GetStyleProperty(ById(w, "thistable"), "border-margin"),
            "2px");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "2px");
}

TEST_F(PluginTest, NavigatorAndScreen) {
  browser_.navigator.app_name = "Internet Explorer";
  browser_.screen.height = 768;
  Load(R"(<html><body><script type="text/xquery">
      { if (browser:navigator()/appName ftcontains "Internet Explorer")
        then browser:alert("You are running IE") else ();
        browser:alert(string(browser:screen()/height)); }
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 2u);
  EXPECT_EQ(plugin_.alerts()[0], "You are running IE");
  EXPECT_EQ(plugin_.alerts()[1], "768");
}

TEST_F(PluginTest, BrowserTopAndWindowNavigation) {
  Window* top = browser_.top_window();
  Window* frame = top->CreateFrame("leftframe");
  (void)frame->LoadSource("http://app.example.com/frame.xhtml",
                          "<html><body/></html>");
  Load(R"(<html><body><script type="text/xquery">
      browser:alert(string(
        browser:top()//window[@name="leftframe"]/@name))
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "leftframe");
}

TEST_F(PluginTest, ReplaceStatusViaWindowNode) {
  // §4.2.1: replace value of node browser:self()/status with "Welcome".
  Load(R"(<html><body><script type="text/xquery">
      replace value of node browser:self()/status with "Welcome"
      </script></body></html>)");
  EXPECT_EQ(browser_.top_window()->status(), "Welcome");
}

TEST_F(PluginTest, LocationHrefChangeNavigates) {
  fabric_.PutResource("http://app.example.com/second.xhtml",
                      "<html><body><p id='second'>two</p></body></html>");
  Load(R"(<html><body><script type="text/xquery">
      replace value of node browser:self()/location/href
        with "http://app.example.com/second.xhtml"
      </script></body></html>)");
  EXPECT_EQ(browser_.top_window()->url(),
            "http://app.example.com/second.xhtml");
  EXPECT_NE(ById(browser_.top_window(), "second"), nullptr);
}

TEST_F(PluginTest, SecurityCrossOriginWindowIsEmpty) {
  Window* top = browser_.top_window();
  Window* foreign = top->CreateFrame("foreignframe");
  (void)foreign->LoadSource("http://evil.example.org/index.xhtml",
                            "<html><body><p id='secret'/></body></html>");
  Load(R"(<html><body><script type="text/xquery">
      { browser:alert(string(count(
          browser:top()//window[@name="foreignframe"])));
        browser:alert(string(count(
          browser:top()//window[not(@name)]/*))); }
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 2u);
  // The foreign frame has no name attribute and no children at all: the
  // accessor learns nothing (paper §4.2.1).
  EXPECT_EQ(plugin_.alerts()[0], "0");
  EXPECT_EQ(plugin_.alerts()[1], "0");
}

TEST_F(PluginTest, SecurityBrowserDocumentDeniedYieldsEmpty) {
  Window* top = browser_.top_window();
  Window* foreign = top->CreateFrame("f");
  (void)foreign->LoadSource("http://evil.example.org/x.xhtml",
                            "<html><body><p id='secret'/></body></html>");
  Load(R"(<html><body><script type="text/xquery">
      browser:alert(string(count(browser:document(
        browser:top()/frames/window[1]))))
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "0");
}

TEST_F(PluginTest, SameOriginFrameDocumentAccessible) {
  Window* top = browser_.top_window();
  Window* frame = top->CreateFrame("child");
  (void)frame->LoadSource("http://app.example.com/frame.xhtml",
                          "<html><body><p id='inframe'>hi</p></body></html>");
  Load(R"(<html><body><script type="text/xquery">
      browser:alert(string(browser:document(
        browser:self()/frames/window[1])//p[@id="inframe"]))
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "hi");
}

TEST_F(PluginTest, FnDocIsBlockedInBrowserProfile) {
  store_.MountOn(&fabric_, "http://db.example.com/");
  (void)store_.Put("/lib.xml", "<lib/>");
  LoadRaw(R"(<html><body><script type="text/xquery">
      doc("http://db.example.com/lib.xml")
      </script></body></html>)");
  // §4.2.1: fn:doc is blocked; the page reports a script error.
  EXPECT_EQ(plugin_.last_script_error().code(), "BRWS0002");
}

TEST_F(PluginTest, RestGetWorksInBrowser) {
  fabric_.PutResource("http://api.example.com/data.xml",
                      "<data><v>41</v></data>");
  // Same-origin policy applies to windows, not REST (as in the paper's
  // mash-up, which calls foreign weather services).
  Load(R"(<html><body><script type="text/xquery">
      browser:alert(string(
        http:get("http://api.example.com/data.xml")//v + 1))
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "42");
}

TEST_F(PluginTest, WebServiceImportAndCall) {
  // §3.4: a web-service module and a client that imports and calls it.
  ASSERT_TRUE(services_
                  .Deploy(R"(module namespace ex="www.example.ch" port:2001;
                     declare option fn:webservice "true";
                     declare function ex:mul($a, $b) { $a * $b };)",
                          "www.example.ch")
                  .ok());
  Window* w = Load(R"(<html><body>
      <input name="textbox" value="unset"/>
      <script type="text/xquery">
      import module namespace ab="www.example.ch"
        at "http://www.example.ch:2001/wsdl";
      replace value of node //input[@name="textbox"]/@value
        with ab:mul(2, 5)
      </script></body></html>)");
  xml::Node* input = nullptr;
  xml::VisitSubtree(w->document()->root(), [&](xml::Node* n) {
    if (n->is_element() && n->name().local() == "input") input = n;
  });
  ASSERT_NE(input, nullptr);
  EXPECT_EQ(input->GetAttributeValue("value"), "10");
  EXPECT_GE(fabric_.stats().requests, 1u);
}

TEST_F(PluginTest, BehindConstructAjaxSuggest) {
  // The §4.4 AJAX example: onkeyup calls local:showHint(value), which
  // asynchronously calls the web service "behind" and fills in the hint
  // when readyState reaches 4.
  ASSERT_TRUE(services_
                  .Deploy(R"(module namespace hints="http://example.com" port:2001;
                     declare function hints:getHint($s) {
                       concat("Did you mean ", $s, "a?") };)",
                          "example.com")
                  .ok());
  Window* w = Load(R"XQ(<html><head>
      <script type="text/xquery">
      import module namespace ab = "http://example.com"
        at "http://example.com:2001/wsdl";
      declare updating function local:showHint($str as xs:string) {
        if (string-length($str) eq 0)
        then replace value of node //*[@id="txtHint"] with ""
        else
          on event "stateChanged" behind ab:getHint($str)
          attach listener local:onResult
      };
      declare updating function local:onResult($readyState, $result) {
        if ($readyState eq 4)
        then replace value of node //*[@id="txtHint"] with $result
        else ()
      };
      </script></head><body>
      <form>First Name: <input type="text" id="text1"
        onkeyup="local:showHint(value)"/></form>
      <p>Suggestions: <span id="txtHint"/></p>
      </body></html>)XQ");
  Event keyup;
  keyup.type = "onkeyup";
  keyup.value = "Ann";
  plugin_.FireEvent(ById(w, "text1"), keyup);
  plugin_.PumpEvents();
  EXPECT_EQ(ById(w, "txtHint")->StringValue(), "Did you mean Anna?");
}

TEST_F(PluginTest, HistoryFunctions) {
  fabric_.PutResource("http://app.example.com/a.xhtml",
                      "<html><body><p id='a'/></body></html>");
  fabric_.PutResource("http://app.example.com/b.xhtml",
                      "<html><body><p id='b'/>"
                      "<script type=\"text/xquery\">"
                      "browser:historyBack()</script></body></html>");
  Window* w = browser_.top_window();
  ASSERT_TRUE(w->Navigate("http://app.example.com/a.xhtml").ok());
  ASSERT_TRUE(w->Navigate("http://app.example.com/b.xhtml").ok());
  // b's on-load script navigated back to a.
  EXPECT_EQ(w->url(), "http://app.example.com/a.xhtml");
  EXPECT_NE(ById(w, "a"), nullptr);
}

TEST_F(PluginTest, ShoppingCartXQueryOnly) {
  // The §6.3 XQuery-only shopping cart; products served via REST
  // instead of fn:doc (blocked in the browser).
  fabric_.PutResource("http://shop.example.com/products.xml",
                      "<products>"
                      "<product><name>laptop</name></product>"
                      "<product><name>mouse</name></product>"
                      "</products>");
  Window* w = Load(R"(<html><head><script type="text/xqueryp"><![CDATA[
      declare updating function local:buy($evt, $obj) {
        insert node <p>{string($obj/@id)}</p> as first
          into //div[@id="shoppingcart"]
      };
      { insert node
          <div id="productlist">{
            for $p in http:get(
              "http://shop.example.com/products.xml")//product
            return <div>{string($p/name)}
              <input type="button" value="Buy" id="{$p/name}"/>
            </div>
          }</div>
          into /html/body;
        on event "onclick" at //input attach listener local:buy; }
      ]]></script></head><body>
      <div>Shopping cart</div>
      <div id="shoppingcart"/>
      </body></html>)",
                   "http://shop.example.com/cart.xhtml");
  // Two products rendered client-side.
  xml::Node* list = ById(w, "productlist");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->children().size(), 2u);
  // Click "Buy" on the laptop.
  Click(ById(w, "laptop"));
  EXPECT_EQ(xml::Serialize(ById(w, "shoppingcart")),
            "<div id=\"shoppingcart\"><p>laptop</p></div>");
  Click(ById(w, "mouse"));
  EXPECT_EQ(xml::Serialize(ById(w, "shoppingcart")),
            "<div id=\"shoppingcart\"><p>mouse</p><p>laptop</p></div>");
}

TEST_F(PluginTest, IeTagFoldingRequiresUppercaseXPath) {
  // §5.1: IE uppercases HTML tags, so XPath must use upper-case names —
  // "XQuery code could be incompatible between browsers".
  browser_.parse_options.ie_tag_folding = true;
  Window* w = Load(R"(<html><body><div id="out"/>
      <script type="text/xquery">
      { browser:alert(string(count(//div[@id="out"])));
        browser:alert(string(count(//DIV[@id="out"])));
        insert node <hit/> into //DIV[@id="out"]; }
      </script></body></html>)");
  ASSERT_EQ(plugin_.alerts().size(), 2u);
  EXPECT_EQ(plugin_.alerts()[0], "0");  // lower-case test finds nothing
  EXPECT_EQ(plugin_.alerts()[1], "1");
  xml::Node* out = ById(w, "out");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->children().size(), 1u);
}

TEST_F(PluginTest, ScriptErrorsDoNotCrashThePage) {
  LoadRaw(R"(<html><body><script type="text/xquery">
      1 idiv 0
      </script></body></html>)");
  EXPECT_EQ(plugin_.last_script_error().code(), "FOAR0001");
}

}  // namespace
}  // namespace xqib::plugin
