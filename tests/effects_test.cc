// Tests for the static effect analysis: read/write set inference
// (including the convergence and ⊤ corner cases), the Interferes
// conflict predicate, the browser-side ListenerEffects compatibility
// matrix, deterministic rendering, and the xq_lint surfaces that expose
// the analysis (--effects lines, --json shape).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "browser/events.h"
#include "xml/interning.h"
#include "xquery/analysis/analyzer.h"
#include "xquery/analysis/lint.h"
#include "xquery/parser.h"

namespace xqib::xquery::analysis {
namespace {

constexpr const char* kLocal = "{http://www.w3.org/2005/xquery-local-functions}";

AnalysisResult Analyze(const std::string& query) {
  auto module = ParseModule(query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  Analyzer analyzer;
  return analyzer.Analyze(**module);
}

// Effect summary of `local:{name}#{arity}`, which must exist.
Effects FunctionEffects(const AnalysisResult& r, const std::string& name,
                        size_t arity) {
  const std::string key =
      std::string(kLocal) + name + "#" + std::to_string(arity);
  auto it = r.facts.function_effects.find(key);
  EXPECT_NE(it, r.facts.function_effects.end()) << "no summary for " << key;
  return it == r.facts.function_effects.end() ? Effects() : it->second;
}

bool Stageable(const AnalysisResult& r, const std::string& name,
               size_t arity) {
  const std::string key =
      std::string(kLocal) + name + "#" + std::to_string(arity);
  return r.facts.stageable_updating_functions.count(key) > 0;
}

const xml::InternedName* N(const char* local) {
  return xml::InternName("", local);
}

EffectSet Names(std::vector<const xml::InternedName*> names) {
  EffectSet s;
  for (const auto* n : names) s.AddName(n);
  return s;
}

// ------------------------------------------------------ set algebra ---

TEST(EffectSetTest, TopAbsorbsAndIntersection) {
  EffectSet s = Names({N("a"), N("b")});
  EXPECT_TRUE(s.Contains(N("a")));
  EXPECT_FALSE(s.Contains(N("c")));
  EXPECT_TRUE(s.Intersects(Names({N("b"), N("c")})));
  EXPECT_FALSE(s.Intersects(Names({N("c")})));
  // ⊤ absorbs names, intersects any non-empty set, but ⊤ ∩ ∅ is empty.
  s.MakeTop();
  EXPECT_TRUE(s.names.empty());
  EXPECT_TRUE(s.Contains(N("zzz")));
  EXPECT_TRUE(s.Intersects(Names({N("c")})));
  EXPECT_FALSE(s.Intersects(EffectSet()));
  // Adding a name to ⊤ is a no-op; union into a plain set makes it ⊤.
  s.AddName(N("a"));
  EXPECT_TRUE(s.top);
  EXPECT_TRUE(s.names.empty());
  EffectSet t = Names({N("a")});
  EXPECT_TRUE(t.AddAll(s));
  EXPECT_TRUE(t.top);
}

// ------------------------------------------------------- inference ---

TEST(EffectInference, SimplePathReads) {
  AnalysisResult r = Analyze(
      "declare function local:render() { /html/body/item };\n1");
  Effects e = FunctionEffects(r, "render", 0);
  EXPECT_FALSE(e.reads_top());
  EXPECT_TRUE(e.child_reads.Contains(N("html")));
  EXPECT_TRUE(e.child_reads.Contains(N("body")));
  EXPECT_TRUE(e.child_reads.Contains(N("item")));
  EXPECT_FALSE(e.has_update);
  EXPECT_TRUE(e.writes.empty());
}

TEST(EffectInference, RecursionConvergesBelowTop) {
  // The fixpoint over the call graph must converge to the finite union
  // of both branches' reads, not widen to ⊤.
  AnalysisResult r = Analyze(
      "declare function local:walk($n) {\n"
      "  if ($n/item) then local:walk($n/item) else $n/leaf\n"
      "};\n1");
  Effects e = FunctionEffects(r, "walk", 1);
  EXPECT_FALSE(e.reads_top());
  EXPECT_TRUE(e.child_reads.Contains(N("item")));
  std::vector<const xml::InternedName*> reads = e.ReadNames();
  EXPECT_NE(std::find(reads.begin(), reads.end(), N("leaf")), reads.end());
}

TEST(EffectInference, MutualRecursionConverges) {
  AnalysisResult r = Analyze(
      "declare function local:even($n) {\n"
      "  if ($n/stop) then 0 else local:odd($n/a)\n"
      "};\n"
      "declare function local:odd($n) {\n"
      "  if ($n/stop) then 1 else local:even($n/b)\n"
      "};\n1");
  Effects e = FunctionEffects(r, "even", 1);
  EXPECT_FALSE(e.reads_top());
  EXPECT_TRUE(e.child_reads.Contains(N("a")));
  EXPECT_TRUE(e.child_reads.Contains(N("b")));
  EXPECT_TRUE(e.child_reads.Contains(N("stop")));
}

TEST(EffectInference, WildcardStepIsTop) {
  AnalysisResult r = Analyze("declare function local:w() { //* };\n1");
  EXPECT_TRUE(FunctionEffects(r, "w", 0).reads_top());
}

TEST(EffectInference, ParentAxisIsTop) {
  AnalysisResult r = Analyze(
      "declare function local:p() { //item/parent::node() };\n1");
  EXPECT_TRUE(FunctionEffects(r, "p", 0).reads_top());
}

TEST(EffectInference, AncestorAxisIsTop) {
  AnalysisResult r = Analyze(
      "declare function local:a() { //item/ancestor::div };\n1");
  EXPECT_TRUE(FunctionEffects(r, "a", 0).reads_top());
}

TEST(EffectInference, ComputedConstructorWithDynamicNameIsTop) {
  // element {expr} {...} can materialize any name, so an insert of it
  // can write any name: writes must be ⊤.
  AnalysisResult r = Analyze(
      "declare updating function local:d($n) {\n"
      "  insert node element { name($n) } {} into /html/body\n"
      "};\n1");
  Effects e = FunctionEffects(r, "d", 1);
  EXPECT_TRUE(e.has_update);
  EXPECT_TRUE(e.writes.top);
}

TEST(EffectInference, StaticComputedConstructorStaysFinite) {
  AnalysisResult r = Analyze(
      "declare updating function local:s() {\n"
      "  insert node element entry {} into /html/body/log\n"
      "};\n1");
  Effects e = FunctionEffects(r, "s", 0);
  EXPECT_TRUE(e.has_update);
  EXPECT_FALSE(e.writes.top);
  EXPECT_TRUE(e.writes.Contains(N("entry")));
  EXPECT_TRUE(e.writes.Contains(N("log")));
}

TEST(EffectInference, CopyModifyWritesDoNotLeak) {
  // transform-with / copy-modify mutates a copy: the update never
  // reaches the document, so the summary must be non-updating with no
  // writes (the reads of the source expression still count).
  AnalysisResult r = Analyze(
      "declare function local:c() {\n"
      "  copy $c := <a><b/></a> modify delete nodes $c//b return $c\n"
      "};\n1");
  Effects e = FunctionEffects(r, "c", 0);
  EXPECT_FALSE(e.has_update);
  EXPECT_TRUE(e.writes.empty());
  EXPECT_TRUE(e.write_scope.empty());
}

TEST(EffectInference, DynamicUpdateTargetIsTopScope) {
  // Inserting into a node handed in as a parameter: the target name may
  // be knowable, but where it sits in the tree is not, so the scope
  // (every name whose content changes) must be ⊤.
  AnalysisResult r = Analyze(
      "declare updating function local:dyn($n) {\n"
      "  insert node <x/> into $n\n"
      "};\n1");
  Effects e = FunctionEffects(r, "dyn", 1);
  EXPECT_TRUE(e.has_update);
  EXPECT_TRUE(e.write_scope.top);
}

TEST(EffectInference, RootAnchoredTargetScopeIsAncestorChain) {
  AnalysisResult r = Analyze(
      "declare updating function local:log() {\n"
      "  insert node <entry/> into /html/body/loga\n"
      "};\n1");
  Effects e = FunctionEffects(r, "log", 0);
  EXPECT_FALSE(e.write_scope.top);
  EXPECT_TRUE(e.writes.Contains(N("loga")));
  EXPECT_TRUE(e.writes.Contains(N("entry")));
  EXPECT_FALSE(e.writes.Contains(N("body")));
  // scope = writes + the ancestors the insert changes the content of.
  EXPECT_TRUE(e.write_scope.Contains(N("html")));
  EXPECT_TRUE(e.write_scope.Contains(N("body")));
  EXPECT_TRUE(e.write_scope.Contains(N("loga")));
}

TEST(EffectInference, StageableClassification) {
  AnalysisResult r = Analyze(
      "declare updating function local:fine($e, $o) {\n"
      "  insert node <entry/> into /html/body/loga\n"
      "};\n"
      "declare updating function local:coarse($e, $o) {\n"
      "  insert node <entry/> into //loga\n"
      "};\n1");
  EXPECT_TRUE(Stageable(r, "fine", 2));
  // A descendant-axis target is not a root-anchored chain: scope is ⊤,
  // so the listener must stay on the serial path.
  EXPECT_FALSE(Stageable(r, "coarse", 2));
  EXPECT_TRUE(FunctionEffects(r, "coarse", 2).write_scope.top);
}

// ----------------------------------------------------- interference ---

Effects Reader(std::vector<const xml::InternedName*> child,
               std::vector<const xml::InternedName*> value = {}) {
  Effects e;
  e.child_reads = Names(std::move(child));
  e.value_reads = Names(std::move(value));
  return e;
}

Effects Writer(std::vector<const xml::InternedName*> writes,
               std::vector<const xml::InternedName*> scope) {
  Effects e;
  e.has_update = true;
  e.writes = Names(std::move(writes));
  e.write_scope = Names(scope.empty() ? writes : std::move(scope));
  return e;
}

TEST(InterferesTest, PureNeverInterferes) {
  Effects a = Reader({N("item")});
  Effects b = Reader({N("item")}, {N("item")});
  EXPECT_FALSE(Interferes(a, b));
  Effects top_reader;
  top_reader.child_reads.MakeTop();
  EXPECT_FALSE(Interferes(a, top_reader));
}

TEST(InterferesTest, WriteIntoReadSet) {
  Effects reader = Reader({N("loga")});
  Effects writer = Writer({N("loga"), N("entry")},
                          {N("html"), N("body"), N("loga"), N("entry")});
  EXPECT_TRUE(Interferes(reader, writer));
  EXPECT_TRUE(Interferes(writer, reader));  // symmetric
  // A reader of an unrelated name does not conflict.
  EXPECT_FALSE(Interferes(Reader({N("logb")}), writer));
}

TEST(InterferesTest, ScopeConflictsOnlyWithValueReads) {
  // `body` is in the writer's scope (content below it changes) but the
  // writer never touches body's direct membership — so a child_reads of
  // body (navigation) is safe, while a value_reads of body (the reader
  // serializes the subtree the insert lands in) conflicts.
  Effects writer = Writer({N("loga"), N("entry")},
                          {N("html"), N("body"), N("loga"), N("entry")});
  EXPECT_FALSE(Interferes(Reader({N("body")}), writer));
  EXPECT_TRUE(Interferes(Reader({}, {N("body")}), writer));
}

TEST(InterferesTest, DisjointUpdatersAreIndependent) {
  Effects a = Writer({N("loga"), N("entrya")},
                     {N("html"), N("body"), N("loga"), N("entrya")});
  Effects b = Writer({N("logb"), N("entryb")},
                     {N("html"), N("body"), N("logb"), N("entryb")});
  EXPECT_FALSE(Interferes(a, b));
  // Same write target: commit order decides the final node set.
  EXPECT_TRUE(Interferes(a, a));
}

TEST(InterferesTest, TopPoisons) {
  Effects writer = Writer({N("loga")}, {N("loga")});
  Effects top_reader;
  top_reader.child_reads.MakeTop();
  EXPECT_TRUE(Interferes(top_reader, writer));
  Effects top_writer;
  top_writer.has_update = true;
  top_writer.writes.MakeTop();
  top_writer.write_scope.MakeTop();
  EXPECT_TRUE(Interferes(Reader({N("x")}), top_writer));
}

// ------------------------------------------- browser compatibility ---

browser::ListenerEffects FromEffects(const Effects& e) {
  browser::ListenerEffects fx;
  fx.updating = e.has_update;
  fx.reads_top = e.reads_top();
  fx.writes_top = e.writes.top;
  fx.scope_top = e.write_scope.top;
  fx.child_reads = e.child_reads.names;
  fx.value_reads = e.value_reads.names;
  fx.writes = e.writes.names;
  fx.write_scope = e.write_scope.names;
  return fx;
}

TEST(ListenerCompatibility, MirrorsInterferes) {
  browser::ListenerEffects reader = FromEffects(Reader({N("loga")}));
  browser::ListenerEffects wa = FromEffects(
      Writer({N("loga"), N("entrya")},
             {N("html"), N("body"), N("loga"), N("entrya")}));
  browser::ListenerEffects wb = FromEffects(
      Writer({N("logb"), N("entryb")},
             {N("html"), N("body"), N("logb"), N("entryb")}));
  EXPECT_FALSE(browser::Compatible(&reader, &wa));
  EXPECT_TRUE(browser::Compatible(&wa, &wb));
  EXPECT_FALSE(browser::Compatible(&wa, &wa));
  // Unknown effects (no summary) are a conservative ⊤-reader: fine next
  // to other pure listeners, a barrier next to any updater.
  browser::ListenerEffects pure = FromEffects(Reader({N("item")}));
  EXPECT_TRUE(browser::Compatible(nullptr, &pure));
  EXPECT_FALSE(browser::Compatible(nullptr, &wa));
  EXPECT_FALSE(browser::Compatible(&wa, nullptr));
}

// -------------------------------------------------------- rendering ---

TEST(RenderTest, DeterministicLexicographicRendering) {
  AnalysisResult r = Analyze(
      "declare updating function local:log() {\n"
      "  insert node <entry/> into /html/body/loga\n"
      "};\n1");
  Effects e = FunctionEffects(r, "log", 0);
  EXPECT_EQ(RenderEffects(e),
            "reads={body html loga} writes={entry loga} "
            "scope={body entry html loga} updating");
  EffectSet top;
  top.MakeTop();
  EXPECT_EQ(RenderEffectSet(top), "TOP");
  EXPECT_EQ(RenderEffectSet(EffectSet()), "{}");
}

// ----------------------------------------------------- lint surface ---

TEST(LintSurface, EffectsLinesPerUnit) {
  LintReport report = LintQuery(
      "declare function local:render() { /html/body/item };\n1");
  std::vector<std::string> lines = report.RenderEffects();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "query: " + std::string(kLocal) +
                "render#0: reads={body html item} writes={} scope={} pure");
  EXPECT_EQ(lines[1], "query: page reads: {body html item}");
}

TEST(LintSurface, JsonShape) {
  LintReport report = LintQuery("let $u := 1 return 2");
  std::string json = report.ToJson();
  // One unit with one XQSA030 diagnostic; fields the CI tooling relies
  // on must keep their names.
  EXPECT_NE(json.find("\"unit\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"XQSA030\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":1"), std::string::npos) << json;
  // Clean input → unit with empty diagnostics array, still valid shape.
  std::string clean = LintQuery("1 + 1").ToJson();
  EXPECT_NE(clean.find("\"diagnostics\":[]"), std::string::npos) << clean;
}

}  // namespace
}  // namespace xqib::xquery::analysis
