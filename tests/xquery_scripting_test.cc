// Tests for the XQuery Scripting Extension (paper §3.3): sequential
// blocks, variable declaration and assignment, statement-boundary update
// visibility, while loops, and exit with.

#include <gtest/gtest.h>

#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::xquery {
namespace {

struct Outcome {
  std::string result;
  std::string doc;
  std::string error;
};

Outcome Exec(const std::string& query, const std::string& xml = "<a/>") {
  Outcome out;
  Engine engine;
  auto q = engine.Compile(query);
  if (!q.ok()) {
    out.error = q.status().ToString();
    return out;
  }
  auto doc = std::move(xml::ParseDocument(xml)).value();
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  Status b = (*q)->BindGlobals(ctx);
  if (!b.ok()) {
    out.error = b.ToString();
    return out;
  }
  auto r = (*q)->Run(ctx);
  if (!r.ok()) {
    out.error = r.status().ToString();
    return out;
  }
  out.result = xdm::SequenceToString(*r);
  out.doc = xml::Serialize(doc->root());
  return out;
}

TEST(Blocks, SequentialStatements) {
  Outcome r = Exec("{ declare variable $x := 1; set $x := $x + 1; $x }");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "2");
}

TEST(Blocks, AssignWithStandardSyntax) {
  Outcome r = Exec("{ declare variable $x := 5; $x := $x * 2; $x }");
  EXPECT_EQ(r.result, "10");
}

TEST(Blocks, TopLevelStatementsWithSemicolons) {
  // The main body itself can be a statement list (our main-module rule).
  Outcome r = Exec("declare variable $g := 1; "
               "set $g := $g + 10; $g");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "11");
}

TEST(Blocks, UpdatesVisibleAtStatementBoundaries) {
  // §3.3: "updates become visible during the execution of a program".
  Outcome r = Exec("{ insert node <b/> into /a; count(/a/b) }");
  EXPECT_EQ(r.result, "1");
  EXPECT_EQ(r.doc, "<a><b/></a>");
}

TEST(Blocks, PaperLibraryExample) {
  // The paper's §3.3 block: insert a book, re-read it (seeing the side
  // effect), then insert a comment into the inserted copy.
  Outcome r = Exec(
      "{ declare variable $b; "
      "  set $b := //book[title=\"starwars\"]; "
      "  insert node $b into /lib/books; "
      "  set $b := /lib/books/book[title=\"starwars\"]; "
      "  insert node <comment>6 movies</comment> into $b; }",
      "<lib><shelf><book><title>starwars</title></book></shelf>"
      "<books/></lib>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.doc,
            "<lib><shelf><book><title>starwars</title></book></shelf>"
            "<books><book><title>starwars</title>"
            "<comment>6 movies</comment></book></books></lib>");
}

TEST(Blocks, ScopingIsBlockLocal) {
  Outcome r = Exec("{ declare variable $x := 1; "
               "  { declare variable $x := 2; $x }; "
               "  $x }");
  EXPECT_EQ(r.result, "1");
}

TEST(Blocks, AssignToUndeclaredFails) {
  Outcome r = Exec("{ set $nope := 1; $nope }");
  EXPECT_TRUE(r.error.find("XPDY0002") != std::string::npos) << r.error;
}

TEST(While, CountsUp) {
  Outcome r = Exec("{ declare variable $i := 0; "
               "  while ($i < 5) { set $i := $i + 1; }; "
               "  $i }");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "5");
}

TEST(While, BuildsDocumentIncrementally) {
  Outcome r = Exec("{ declare variable $i := 0; "
               "  while ($i < 3) { "
               "    insert node <row n=\"{$i}\"/> into /a; "
               "    set $i := $i + 1; "
               "  }; "
               "  count(/a/row) }");
  EXPECT_EQ(r.result, "3");
  EXPECT_EQ(r.doc,
            "<a><row n=\"0\"/><row n=\"1\"/><row n=\"2\"/></a>");
}

TEST(ExitWith, TerminatesBlock) {
  Outcome r = Exec("{ declare variable $x := 1; "
               "  exit with 'done'; "
               "  set $x := 99; $x }");
  EXPECT_EQ(r.result, "done");
}

TEST(ExitWith, TerminatesFunctionOnly) {
  Outcome r = Exec(
      "declare sequential function local:f($n) { "
      "  if ($n > 2) then exit with 'big' else (); "
      "  'small' }; "
      "local:f(5), local:f(1)");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "big small");
}

TEST(ExitWith, InsideWhile) {
  Outcome r = Exec("{ declare variable $i := 0; "
               "  while (true()) { "
               "    set $i := $i + 1; "
               "    if ($i ge 4) then exit with $i else (); "
               "  }; "
               "  'unreached' }");
  EXPECT_EQ(r.result, "4");
}

TEST(SequentialFunction, PaperEventListenerShape) {
  // The §4.3.1 listener shape: a sequential function ending in exit with.
  Outcome r = Exec(
      "declare sequential function local:listener($evt, $obj) { "
      "  declare variable $message := <message>Event: {$evt}</message>; "
      "  exit with string($message) }; "
      "local:listener('click', 'button1')");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "Event: click");
}

TEST(Scripting, SnapshotVsScriptingContrast) {
  // In one expression (comma), the second read does NOT see the insert...
  Outcome snapshot = Exec("(insert node <b/> into /a, count(/a/b))");
  EXPECT_EQ(snapshot.result, "0");
  // ...but across block statements it does.
  Outcome scripted = Exec("{ insert node <b/> into /a; count(/a/b) }");
  EXPECT_EQ(scripted.result, "1");
}

TEST(Scripting, DeclareWithoutInitializer) {
  Outcome r = Exec("{ declare variable $x; count($x) }");
  EXPECT_EQ(r.result, "0");
}

}  // namespace
}  // namespace xqib::xquery
