// Tests for the memory layer: QName/string interning identity
// invariants, arena allocation and reset-safety under XQUF snapshots,
// and the plug-in's mutation-versioned pure-listener memo cache
// (invalidation on every DOM mutation kind, and the guarantee that
// non-memoizable listeners never hit it).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "plugin/plugin.h"
#include "xdm/arena.h"
#include "xml/interning.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib {
namespace {

using browser::Browser;
using browser::Event;
using browser::Window;
using xquery::DynamicContext;
using xquery::Engine;

// ------------------------------------------------------- interning ---

TEST(Interning, StringPoolDeduplicates) {
  const std::string* a = xml::InternString("memory-test-alpha");
  const std::string* b = xml::InternString("memory-test-alpha");
  const std::string* c = xml::InternString("memory-test-beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(*a, "memory-test-alpha");
}

TEST(Interning, NamePoolKeyedOnNamespaceAndLocal) {
  const xml::InternedName* a = xml::InternName("urn:mt", "x");
  const xml::InternedName* b = xml::InternName("urn:mt", "x");
  const xml::InternedName* c = xml::InternName("urn:other", "x");
  const xml::InternedName* d = xml::InternName("urn:mt", "y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(*a->ns, "urn:mt");
  EXPECT_EQ(*a->local, "x");
}

TEST(Interning, HitCounterAdvancesOnRepeatedInterns) {
  (void)xml::InternName("urn:mt-hits", "warm");  // ensure the miss is spent
  uint64_t hits_before = xml::GetInternStats().hits;
  (void)xml::InternName("urn:mt-hits", "warm");
  (void)xml::InternName("urn:mt-hits", "warm");
  EXPECT_GE(xml::GetInternStats().hits, hits_before + 2);
}

TEST(Interning, QNameTokenIdenticalAcrossDocuments) {
  // The same lexical element name parsed in two independent documents
  // must intern to the same token — pointer comparison IS name equality.
  auto doc1 = xml::ParseDocument("<root xmlns='urn:mt'><kid/></root>");
  auto doc2 = xml::ParseDocument("<root xmlns='urn:mt'><kid/></root>");
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  const xml::QName& n1 = (*doc1)->root()->name();
  const xml::QName& n2 = (*doc2)->root()->name();
  EXPECT_EQ(n1.token(), n2.token());
  EXPECT_EQ(n1, n2);
}

TEST(Interning, PrefixExcludedFromIdentity) {
  xml::QName a("urn:mt", "p1", "elem");
  xml::QName b("urn:mt", "p2", "elem");
  EXPECT_EQ(a, b);  // same expanded name
  EXPECT_EQ(a.token(), b.token());
  EXPECT_NE(a.prefix(), b.prefix());  // lexical prefix still preserved
  EXPECT_EQ(a.Lexical(), "p1:elem");
  EXPECT_EQ(b.Lexical(), "p2:elem");
}

// ----------------------------------------------------------- arena ---

TEST(Arena, AllocationsAlignedAndDistinct) {
  xdm::Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(16, 16);
  void* c = arena.Allocate(64, 8);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 8, 0u);
  EXPECT_GE(arena.stats().bytes_used, 3u + 16u + 64u);
}

TEST(Arena, ResetRetainsSlabsAndReusesMemory) {
  xdm::Arena arena;
  void* first = arena.Allocate(128, 8);
  arena.Reset();
  EXPECT_EQ(arena.stats().resets, 1u);
  EXPECT_EQ(arena.stats().live_bytes, 0u);
  // The slab is retained across Reset, so the next same-shaped
  // allocation lands on the same address — no heap traffic.
  void* again = arena.Allocate(128, 8);
  EXPECT_EQ(first, again);
}

TEST(Arena, OversizedAllocationGetsOwnSlab) {
  xdm::Arena arena;
  void* big = arena.Allocate(xdm::Arena::kDefaultSlabBytes * 2, 16);
  ASSERT_NE(big, nullptr);
  // Still usable afterwards.
  void* small = arena.Allocate(8, 8);
  EXPECT_NE(small, nullptr);
}

TEST(Arena, ResetSafeAcrossXqufSnapshots) {
  // An updating run builds its PUL from values produced by arena-backed
  // streams; the engine resets the arena wholesale after the apply
  // pass. Re-querying afterwards must see the applied update and a
  // fresh arena — the PUL/result must never dangle into reset memory.
  auto doc = xml::ParseDocument("<r><a v='1'/><a v='2'/></r>");
  ASSERT_TRUE(doc.ok());
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xdm::Item::Node((*doc)->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);

  Engine engine;
  auto update = engine.Compile(
      "for $a in //a where $a/@v = '1' return insert node <b/> into $a");
  ASSERT_TRUE(update.ok());
  uint64_t resets_before = (*update)->evaluator().stats().arena_resets;
  ASSERT_TRUE((*update)->Run(ctx).ok());
  EXPECT_GT((*update)->evaluator().stats().arena_resets, resets_before);

  auto count = engine.Compile("count(//b)");
  ASSERT_TRUE(count.ok());
  auto n = (*count)->Run(ctx);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(xdm::SequenceToString(*n), "1");

  // A second round on the SAME contexts reuses the reset arenas.
  ASSERT_TRUE((*update)->Run(ctx).ok());
  n = (*count)->Run(ctx);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(xdm::SequenceToString(*n), "2");
}

// ------------------------------------------------------ memo cache ---

class MemoTest : public ::testing::Test {
 protected:
  MemoTest() : services_(&fabric_, &store_), plugin_(&browser_, &fabric_,
                                                     &services_) {
    plugin_.Install();
  }

  Window* Load(const std::string& source) {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/index.xhtml", source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(plugin_.last_script_error().ok())
        << plugin_.last_script_error().ToString();
    return browser_.top_window();
  }

  xml::Node* ById(Window* w, const std::string& id) {
    return w->document()->GetElementById(id);
  }

  void Click(xml::Node* target) {
    Event e;
    e.type = "onclick";
    plugin_.FireEvent(target, e);
  }

  // A page with a memoizable listener on #peek (string of the //li
  // count) and one updating listener on #mut performing `mutation`.
  Window* LoadPeekAndMutate(const std::string& mutation) {
    return Load(R"(<html><body>
<input id="peek"/><input id="mut"/>
<ul><li id="l1">a</li><li id="l2">b</li></ul>
<script type="text/xqueryp"><![CDATA[
declare function local:peek($evt, $obj) { string(count(//li)) };
declare updating function local:mut($evt, $obj) { )" +
                mutation + R"( };
on event "onclick" at //input[@id="peek"] attach listener local:peek;
on event "onclick" at //input[@id="mut"] attach listener local:mut
]]></script></body></html>)");
  }

  // Runs the shared script: peek twice (miss then hit), mutate, peek
  // (stale entry -> invalidation, fresh result), peek (hit again).
  void ExpectInvalidationAfter(const std::string& mutation,
                               const std::string& count_before,
                               const std::string& count_after) {
    Window* w = LoadPeekAndMutate(mutation);
    xml::Node* peek = ById(w, "peek");
    xml::Node* mut = ById(w, "mut");
    ASSERT_NE(peek, nullptr);
    ASSERT_NE(mut, nullptr);
    auto s0 = plugin_.memo_stats();

    Click(peek);  // first sight: miss, recorded
    EXPECT_EQ(plugin_.last_listener_result(), count_before);
    Click(peek);  // identical payload, unmutated doc: hit
    auto s1 = plugin_.memo_stats();
    EXPECT_EQ(s1.misses, s0.misses + 1);
    EXPECT_EQ(s1.hits, s0.hits + 1);
    EXPECT_EQ(plugin_.last_listener_result(), count_before);
    EXPECT_EQ(plugin_.last_event_stats().memo_hits, 1u);

    Click(mut);  // bumps the document's mutation version
    ASSERT_TRUE(plugin_.last_script_error().ok())
        << plugin_.last_script_error().ToString();

    Click(peek);  // stale entry: invalidation + fresh evaluation
    auto s2 = plugin_.memo_stats();
    EXPECT_EQ(s2.invalidations, s1.invalidations + 1);
    EXPECT_EQ(plugin_.last_listener_result(), count_after);
    EXPECT_EQ(plugin_.last_event_stats().memo_invalidations, 1u);

    Click(peek);  // re-recorded at the new version: hit again
    auto s3 = plugin_.memo_stats();
    EXPECT_EQ(s3.hits, s2.hits + 1);
    EXPECT_EQ(plugin_.last_listener_result(), count_after);
  }

  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  Browser browser_;
  plugin::XqibPlugin plugin_;
};

TEST_F(MemoTest, InvalidatesOnInsert) {
  ExpectInvalidationAfter("insert node <li>c</li> into //ul", "2", "3");
}

TEST_F(MemoTest, InvalidatesOnDelete) {
  ExpectInvalidationAfter("delete node //li[@id=\"l2\"]", "2", "1");
}

TEST_F(MemoTest, InvalidatesOnRename) {
  ExpectInvalidationAfter("rename node //li[@id=\"l1\"] as \"item\"", "2",
                          "1");
}

TEST_F(MemoTest, InvalidatesOnReplace) {
  // The replacement has the same name and count, so the (identical)
  // result proves the invalidation came from the version bump, not
  // from a value change.
  ExpectInvalidationAfter(
      "replace node //li[@id=\"l1\"] with <li id=\"l1\">z</li>", "2", "2");
}

TEST_F(MemoTest, EntriesSurviveDisjointMutations) {
  // local:peek reads only li; local:mut writes note/aside (plus the
  // ancestor chain). With fine-grained invalidation the memo entry
  // records peek's read names at fill time and stays valid across the
  // mutation: the global version no longer matches, but every recorded
  // per-name counter does.
  //
  // Delta propagation off: with it on, the cheaper delta-skip probe
  // absorbs the disjoint mutation before the per-name counters are ever
  // consulted (covered in delta_test.cc); this test pins the PR 6
  // fine-grained survival path itself.
  xquery::Evaluator::EvalOptions opts = plugin_.eval_options();
  opts.delta_propagation = false;
  plugin_.set_eval_options(opts);
  Window* w = Load(R"(<html><body>
<input id="peek"/><input id="mut"/>
<ul><li>a</li><li>b</li></ul><aside/>
<script type="text/xqueryp"><![CDATA[
declare function local:peek($evt, $obj) { string(count(//li)) };
declare updating function local:mut($evt, $obj) {
  insert node <note/> into //aside
};
on event "onclick" at //input[@id="peek"] attach listener local:peek;
on event "onclick" at //input[@id="mut"] attach listener local:mut
]]></script></body></html>)");
  xml::Node* peek = ById(w, "peek");
  xml::Node* mut = ById(w, "mut");
  ASSERT_NE(peek, nullptr);
  ASSERT_NE(mut, nullptr);

  Click(peek);  // miss, recorded with read names {li}
  Click(mut);   // bumps the global version and note/aside/body/html
  ASSERT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
  Click(peek);  // li untouched: fine-grained survival, served from memo
  auto s = plugin_.memo_stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.fine_grained_survivals, 1u);
  EXPECT_EQ(s.invalidations, 0u);
  EXPECT_EQ(plugin_.last_listener_result(), "2");
  EXPECT_EQ(plugin_.last_event_stats().memo_fine_survivals, 1u);
  EXPECT_EQ(plugin_.last_event_stats().memo_hits, 1u);

  // The survival re-anchored the entry: another clean click is a plain
  // version-match hit, no second survival.
  Click(peek);
  auto s2 = plugin_.memo_stats();
  EXPECT_EQ(s2.hits, 2u);
  EXPECT_EQ(s2.fine_grained_survivals, 1u);
}

TEST_F(MemoTest, InvalidationCausesAreSplitByName) {
  // A mutation that DOES touch the recorded read set invalidates the
  // entry with cause "name-granular miss", not "global bump".
  Window* w = LoadPeekAndMutate("insert node <li>c</li> into //ul");
  xml::Node* peek = ById(w, "peek");
  xml::Node* mut = ById(w, "mut");
  ASSERT_NE(peek, nullptr);
  ASSERT_NE(mut, nullptr);
  Click(peek);
  Click(mut);
  Click(peek);
  auto s = plugin_.memo_stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.invalidations_name, 1u);
  EXPECT_EQ(s.invalidations_global, 0u);
  EXPECT_EQ(s.fine_grained_survivals, 0u);
  EXPECT_EQ(plugin_.last_event_stats().memo_invalidations_name, 1u);
  EXPECT_EQ(plugin_.last_listener_result(), "3");
}

TEST_F(MemoTest, AblationRestoresGlobalInvalidation) {
  // With set_fine_grained_invalidation(false), entries carry no read
  // versions: the same disjoint mutation that survives above now
  // evicts, attributed to the global version bump.
  plugin_.set_fine_grained_invalidation(false);
  Window* w = Load(R"(<html><body>
<input id="peek"/><input id="mut"/>
<ul><li>a</li><li>b</li></ul><aside/>
<script type="text/xqueryp"><![CDATA[
declare function local:peek($evt, $obj) { string(count(//li)) };
declare updating function local:mut($evt, $obj) {
  insert node <note/> into //aside
};
on event "onclick" at //input[@id="peek"] attach listener local:peek;
on event "onclick" at //input[@id="mut"] attach listener local:mut
]]></script></body></html>)");
  xml::Node* peek = ById(w, "peek");
  xml::Node* mut = ById(w, "mut");
  ASSERT_NE(peek, nullptr);
  ASSERT_NE(mut, nullptr);
  Click(peek);
  Click(mut);
  Click(peek);
  auto s = plugin_.memo_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.fine_grained_survivals, 0u);
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.invalidations_global, 1u);
  EXPECT_EQ(s.invalidations_name, 0u);
  EXPECT_EQ(plugin_.last_event_stats().memo_invalidations_global, 1u);
  EXPECT_EQ(plugin_.last_listener_result(), "2");
}

TEST_F(MemoTest, ObservableListenerNeverHitsMemo) {
  // browser:alert is DOM-pure but user-visible: the analyzer keeps the
  // listener OUT of the memoizable set, so every click re-runs it and
  // the alert fires every time.
  Window* w = Load(R"(<html><body><input id="p"/>
<script type="text/xqueryp"><![CDATA[
declare function local:shout($evt, $obj) { browser:alert("hi"), 7 };
on event "onclick" at //input[@id="p"] attach listener local:shout
]]></script></body></html>)");
  xml::Node* p = ById(w, "p");
  ASSERT_NE(p, nullptr);
  auto before = plugin_.memo_stats();
  Click(p);
  Click(p);
  Click(p);
  auto after = plugin_.memo_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(plugin_.alerts().size(), 3u);  // the alert was never skipped
}

TEST_F(MemoTest, UpdatingListenerNeverHitsMemo) {
  Window* w = Load(R"(<html><body><input id="p"/><span id="n">0</span>
<script type="text/xqueryp"><![CDATA[
declare updating function local:bump($evt, $obj) {
  replace value of node //span[@id="n"]
    with string(number(//span[@id="n"]) + 1)
};
on event "onclick" at //input[@id="p"] attach listener local:bump
]]></script></body></html>)");
  xml::Node* p = ById(w, "p");
  ASSERT_NE(p, nullptr);
  auto before = plugin_.memo_stats();
  Click(p);
  Click(p);
  auto after = plugin_.memo_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  // The listener genuinely ran twice.
  EXPECT_EQ(ById(w, "n")->StringValue(), "2");
}

TEST_F(MemoTest, DifferentPayloadsAreDifferentEntries) {
  Window* w = LoadPeekAndMutate("delete node //li[1]");
  xml::Node* peek = ById(w, "peek");
  ASSERT_NE(peek, nullptr);
  auto s0 = plugin_.memo_stats();
  Event a;
  a.type = "onclick";
  plugin_.FireEvent(peek, a);  // miss
  Event b;
  b.type = "onclick";
  b.value = "different-payload";
  plugin_.FireEvent(peek, b);  // different hash: its own miss
  plugin_.FireEvent(peek, a);  // original entry still valid: hit
  auto s1 = plugin_.memo_stats();
  EXPECT_EQ(s1.misses, s0.misses + 2);
  EXPECT_EQ(s1.hits, s0.hits + 1);
}

}  // namespace
}  // namespace xqib
