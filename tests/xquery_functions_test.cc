// Tests for the fn: built-in library and user-declared functions.

#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::xquery {
namespace {

std::string Eval(const std::string& query, const std::string& xml = "") {
  Engine engine;
  auto q = engine.Compile(query);
  if (!q.ok()) return "PARSE-ERROR: " + q.status().ToString();
  DynamicContext ctx;
  ctx.clock = []() { return std::string("2009-04-20T10:30:45"); };
  std::unique_ptr<xml::Document> doc;
  if (!xml.empty()) {
    doc = std::move(xml::ParseDocument(xml)).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  Status b = (*q)->BindGlobals(ctx);
  if (!b.ok()) return "BIND-ERROR: " + b.ToString();
  auto r = (*q)->Run(ctx);
  if (!r.ok()) return "ERROR: " + r.status().code();
  return xdm::SequenceToString(*r);
}

TEST(StringFunctions, ConcatAndJoin) {
  EXPECT_EQ(Eval("concat('a', 'b', 'c')"), "abc");
  EXPECT_EQ(Eval("concat('n=', 42)"), "n=42");
  EXPECT_EQ(Eval("string-join(('a','b','c'), '-')"), "a-b-c");
  EXPECT_EQ(Eval("string-join((), '-')"), "");
}

TEST(StringFunctions, SubstringFamily) {
  EXPECT_EQ(Eval("substring('12345', 2)"), "2345");
  EXPECT_EQ(Eval("substring('12345', 2, 3)"), "234");
  EXPECT_EQ(Eval("substring('12345', 0)"), "12345");
  EXPECT_EQ(Eval("substring-before('tuv=xyz', '=')"), "tuv");
  EXPECT_EQ(Eval("substring-after('tuv=xyz', '=')"), "xyz");
  EXPECT_EQ(Eval("substring-after('abc', 'z')"), "");
}

TEST(StringFunctions, CaseAndTests) {
  EXPECT_EQ(Eval("upper-case('abcZ')"), "ABCZ");
  EXPECT_EQ(Eval("lower-case('ABCz')"), "abcz");
  EXPECT_EQ(Eval("contains('hello world', 'lo w')"), "true");
  EXPECT_EQ(Eval("starts-with('hello', 'he')"), "true");
  EXPECT_EQ(Eval("ends-with('hello', 'lo')"), "true");
  EXPECT_EQ(Eval("contains('abc', 'x')"), "false");
}

TEST(StringFunctions, LengthNormalizeTranslate) {
  EXPECT_EQ(Eval("string-length('hello')"), "5");
  EXPECT_EQ(Eval("string-length('')"), "0");
  EXPECT_EQ(Eval("normalize-space('  a   b  ')"), "a b");
  EXPECT_EQ(Eval("translate('bar', 'abc', 'ABC')"), "BAr");
  EXPECT_EQ(Eval("translate('abcd', 'bd', 'B')"), "aBc");
}

TEST(StringFunctions, RegexFamily) {
  EXPECT_EQ(Eval("matches('abc123', '[0-9]+')"), "true");
  EXPECT_EQ(Eval("matches('abc', '^[a-z]+$')"), "true");
  EXPECT_EQ(Eval("replace('a1b2', '[0-9]', 'x')"), "axbx");
  EXPECT_EQ(Eval("string-join(tokenize('a,b,c', ','), '|')"), "a|b|c");
  EXPECT_EQ(Eval("matches('a', '[')"), "ERROR: FORX0002");
}

TEST(StringFunctions, Codepoints) {
  EXPECT_EQ(Eval("codepoints-to-string((72, 105))"), "Hi");
  EXPECT_EQ(Eval("string-to-codepoints('Hi')"), "72 105");
  EXPECT_EQ(Eval("compare('a', 'b')"), "-1");
  EXPECT_EQ(Eval("compare('b', 'b')"), "0");
}

TEST(StringFunctions, EncodeForUri) {
  EXPECT_EQ(Eval("encode-for-uri('a b/c')"), "a%20b%2Fc");
}

TEST(NumericFunctions, Rounding) {
  EXPECT_EQ(Eval("abs(-3)"), "3");
  EXPECT_EQ(Eval("ceiling(1.2)"), "2");
  EXPECT_EQ(Eval("floor(1.8)"), "1");
  EXPECT_EQ(Eval("round(1.5)"), "2");
  EXPECT_EQ(Eval("round(-1.5)"), "-1");
}

TEST(NumericFunctions, Aggregates) {
  EXPECT_EQ(Eval("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Eval("sum(())"), "0");
  EXPECT_EQ(Eval("avg((1, 2, 3))"), "2");
  EXPECT_EQ(Eval("min((3, 1, 2))"), "1");
  EXPECT_EQ(Eval("max((3, 1, 2))"), "3");
  EXPECT_EQ(Eval("min(('b', 'a', 'c'))"), "a");
  EXPECT_EQ(Eval("count((1, 2, 3))"), "3");
  EXPECT_EQ(Eval("sum(//price)", "<o><price>10</price><price>5</price></o>"),
            "15");
}

TEST(NumericFunctions, NumberFunction) {
  EXPECT_EQ(Eval("number('42') + 1"), "43");
  EXPECT_EQ(Eval("number('xyz')"), "NaN");
  EXPECT_EQ(Eval("number(())"), "NaN");
}

TEST(SequenceFunctions, EmptyExists) {
  EXPECT_EQ(Eval("empty(())"), "true");
  EXPECT_EQ(Eval("empty((1))"), "false");
  EXPECT_EQ(Eval("exists(())"), "false");
  EXPECT_EQ(Eval("exists((1))"), "true");
}

TEST(SequenceFunctions, DistinctReverseSubsequence) {
  EXPECT_EQ(Eval("distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
  EXPECT_EQ(Eval("distinct-values(('a', 'b', 'a'))"), "a b");
  EXPECT_EQ(Eval("reverse((1, 2, 3))"), "3 2 1");
  EXPECT_EQ(Eval("subsequence((1,2,3,4,5), 2, 3)"), "2 3 4");
  EXPECT_EQ(Eval("subsequence((1,2,3,4,5), 4)"), "4 5");
}

TEST(SequenceFunctions, InsertRemoveIndexOf) {
  EXPECT_EQ(Eval("insert-before((1,2,3), 2, (9))"), "1 9 2 3");
  EXPECT_EQ(Eval("insert-before((1,2), 9, (5))"), "1 2 5");
  EXPECT_EQ(Eval("remove((1,2,3), 2)"), "1 3");
  EXPECT_EQ(Eval("index-of((10, 20, 10), 10)"), "1 3");
  EXPECT_EQ(Eval("index-of((10, 20), 99)"), "");
}

TEST(SequenceFunctions, CardinalityChecks) {
  EXPECT_EQ(Eval("exactly-one((5))"), "5");
  EXPECT_EQ(Eval("exactly-one(())"), "ERROR: FORG0005");
  EXPECT_EQ(Eval("zero-or-one(())"), "");
  EXPECT_EQ(Eval("zero-or-one((1, 2))"), "ERROR: FORG0003");
  EXPECT_EQ(Eval("one-or-more(())"), "ERROR: FORG0004");
}

TEST(SequenceFunctions, DeepEqual) {
  EXPECT_EQ(Eval("deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)"), "true");
  EXPECT_EQ(Eval("deep-equal(<a><b>1</b></a>, <a><b>2</b></a>)"), "false");
  EXPECT_EQ(Eval("deep-equal((1, 'a'), (1, 'a'))"), "true");
  EXPECT_EQ(Eval("deep-equal(<a x='1'/>, <a x='1'/>)"), "true");
  EXPECT_EQ(Eval("deep-equal(<a x='1'/>, <a x='2'/>)"), "false");
}

TEST(NodeFunctions, Names) {
  EXPECT_EQ(Eval("name(<foo/>)"), "foo");
  EXPECT_EQ(Eval("local-name(<foo/>)"), "foo");
  // Trailing function-call steps are XPath 3.0; XQuery 1.0 rejects them.
  EXPECT_TRUE(Eval("//b/name()", "<a><b/></a>").find("PARSE-ERROR") == 0);
  EXPECT_EQ(Eval("for $x in //b return name($x)", "<a><b/></a>"), "b");
}

TEST(NodeFunctions, Root) {
  EXPECT_EQ(Eval("count(root(//b)/a)", "<a><b/></a>"), "1");
}

TEST(NodeFunctions, Id) {
  EXPECT_EQ(Eval("for $n in id('x') return local-name($n)",
                 "<d><p id=\"x\"/><q id=\"y\"/></d>"),
            "p");
  EXPECT_EQ(Eval("count(id('nope'))", "<d><p id=\"x\"/></d>"), "0");
}

TEST(BooleanFunctions, EffectiveBooleanValue) {
  EXPECT_EQ(Eval("boolean('')"), "false");
  EXPECT_EQ(Eval("boolean('x')"), "true");
  EXPECT_EQ(Eval("boolean(0)"), "false");
  EXPECT_EQ(Eval("not(())"), "true");
  EXPECT_EQ(Eval("boolean(//b)", "<a><b/></a>"), "true");
  EXPECT_EQ(Eval("boolean(//zz)", "<a><b/></a>"), "false");
}

TEST(DateTimeFunctions, CurrentAndComponents) {
  EXPECT_EQ(Eval("current-dateTime()"), "2009-04-20T10:30:45");
  EXPECT_EQ(Eval("current-date()"), "2009-04-20");
  EXPECT_EQ(Eval("current-time()"), "10:30:45");
  EXPECT_EQ(Eval("year-from-dateTime(current-dateTime())"), "2009");
  EXPECT_EQ(Eval("month-from-dateTime(current-dateTime())"), "4");
  EXPECT_EQ(Eval("day-from-dateTime(current-dateTime())"), "20");
  EXPECT_EQ(Eval("hours-from-dateTime(current-dateTime())"), "10");
  EXPECT_EQ(Eval("minutes-from-dateTime(current-dateTime())"), "30");
  EXPECT_EQ(Eval("seconds-from-dateTime(current-dateTime())"), "45");
  EXPECT_EQ(Eval("year-from-date(current-date())"), "2009");
  EXPECT_EQ(Eval("hours-from-time(current-time())"), "10");
}

TEST(DateTimeFunctions, DateTimeOrdering) {
  EXPECT_EQ(Eval("xs:dateTime('2008-01-01T00:00:00') lt "
                 "xs:dateTime('2009-01-01T00:00:00')"),
            "true");
}

TEST(ErrorFunction, RaisesStatus) {
  EXPECT_EQ(Eval("error('MYER0001', 'boom')"), "ERROR: MYER0001");
  EXPECT_EQ(Eval("error()"), "ERROR: FOER0000");
}

TEST(TraceFunction, PassesThroughAndLogs) {
  Engine engine;
  auto q = engine.Compile("trace(1 + 1, 'calc')");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  std::vector<std::string> log;
  ctx.trace_sink = [&](const std::string& s) { log.push_back(s); };
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "2");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "calc: 2");
}

TEST(UserFunctions, DeclarationAndCall) {
  EXPECT_EQ(Eval("declare function local:double($x) { $x * 2 }; "
                 "local:double(21)"),
            "42");
  EXPECT_EQ(Eval("declare function local:fib($n) { "
                 "if ($n < 2) then $n "
                 "else local:fib($n - 1) + local:fib($n - 2) }; "
                 "local:fib(10)"),
            "55");
}

TEST(UserFunctions, MultipleArityOverloads) {
  EXPECT_EQ(Eval("declare function local:f($x) { $x }; "
                 "declare function local:f($x, $y) { $x + $y }; "
                 "local:f(1), local:f(1, 2)"),
            "1 3");
}

TEST(UserFunctions, WebServiceStyleModule) {
  // The paper's §3.4 web-service function, run locally.
  EXPECT_EQ(Eval("declare function local:mul($a, $b) { $a * $b }; "
                 "local:mul(2, 5)"),
            "10");
}

TEST(UserFunctions, InfiniteRecursionGuard) {
  EXPECT_EQ(Eval("declare function local:loop($x) { local:loop($x) }; "
                 "local:loop(1)"),
            "ERROR: XQIB0002");
}

TEST(UserFunctions, UnknownFunctionError) {
  EXPECT_EQ(Eval("local:nothere(1)"), "ERROR: XPST0017");
  EXPECT_EQ(Eval("frobnicate(1)"), "ERROR: XPST0017");
}

TEST(GlobalVariables, DeclaredAndUsed) {
  EXPECT_EQ(Eval("declare variable $x := 10; $x * 2"), "20");
  EXPECT_EQ(Eval("declare variable $x := 2; "
                 "declare variable $y := $x * 3; $y"),
            "6");
}

TEST(Prolog, NamespaceDeclaration) {
  EXPECT_EQ(Eval("declare namespace my = 'urn:my'; "
                 "declare function my:f() { 7 }; my:f()"),
            "7");
}

TEST(Prolog, OptionDeclaration) {
  Engine engine;
  auto q = engine.Compile(
      "declare option fn:webservice 'true'; 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->static_context().option(
                "{http://www.w3.org/2005/xpath-functions}webservice"),
            "true");
}

}  // namespace
}  // namespace xqib::xquery
