// Unit tests for the XDM layer: atomic values (casts, comparisons,
// lexical forms), items, effective boolean value, atomization, and
// document-order sorting.

#include <gtest/gtest.h>

#include <cmath>

#include "xdm/item.h"
#include "xml/xml_parser.h"

namespace xqib::xdm {
namespace {

TEST(AtomicValues, XPathStringForms) {
  EXPECT_EQ(AtomicValue::Integer(42).ToXPathString(), "42");
  EXPECT_EQ(AtomicValue::Integer(-7).ToXPathString(), "-7");
  EXPECT_EQ(AtomicValue::Double(2.5).ToXPathString(), "2.5");
  EXPECT_EQ(AtomicValue::Double(1000.0).ToXPathString(), "1000");
  EXPECT_EQ(AtomicValue::Double(std::nan("")).ToXPathString(), "NaN");
  EXPECT_EQ(AtomicValue::Double(1e308 * 10).ToXPathString(), "INF");
  EXPECT_EQ(AtomicValue::Boolean(true).ToXPathString(), "true");
  EXPECT_EQ(AtomicValue::String("x").ToXPathString(), "x");
  EXPECT_EQ(AtomicValue::DayTimeDuration(90).ToXPathString(), "PT90S");
}

TEST(AtomicValues, NumericCoercion) {
  EXPECT_EQ(*AtomicValue::Untyped("42").ToDouble(), 42.0);
  EXPECT_EQ(*AtomicValue::Untyped(" 3.5 ").ToDouble(), 3.5);
  EXPECT_EQ(*AtomicValue::String("-7").ToInteger(), -7);
  EXPECT_EQ(*AtomicValue::Boolean(true).ToDouble(), 1.0);
  EXPECT_FALSE(AtomicValue::String("abc").ToDouble().ok());
  EXPECT_EQ(AtomicValue::String("abc").ToDouble().status().code(),
            "FORG0001");
  EXPECT_FALSE(AtomicValue::String("").ToInteger().ok());
  EXPECT_TRUE(std::isinf(*AtomicValue::String("INF").ToDouble()));
  EXPECT_TRUE(std::isnan(*AtomicValue::String("NaN").ToDouble()));
}

TEST(AtomicValues, Casts) {
  auto cast = [](AtomicValue v, AtomicType t) {
    auto r = v.CastTo(t);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : AtomicValue();
  };
  EXPECT_EQ(cast(AtomicValue::Integer(5), AtomicType::kString)
                .string_value(),
            "5");
  EXPECT_EQ(cast(AtomicValue::String("true"), AtomicType::kBoolean)
                .bool_value(),
            true);
  EXPECT_EQ(cast(AtomicValue::String("0"), AtomicType::kBoolean)
                .bool_value(),
            false);
  EXPECT_EQ(cast(AtomicValue::Double(3.9), AtomicType::kInteger)
                .int_value(),
            3);
  EXPECT_FALSE(
      AtomicValue::String("maybe").CastTo(AtomicType::kBoolean).ok());
}

TEST(AtomicValues, CompareNumericPromotion) {
  EXPECT_EQ(*AtomicValue::Integer(2).Compare(AtomicValue::Double(2.0)), 0);
  EXPECT_EQ(*AtomicValue::Integer(1).Compare(AtomicValue::Decimal(1.5)),
            -1);
  EXPECT_EQ(*AtomicValue::Untyped("10").Compare(AtomicValue::Integer(9)),
            1);
  // NaN is unordered: compare yields the sentinel 2.
  EXPECT_EQ(*AtomicValue::Double(std::nan("")).Compare(
                AtomicValue::Integer(1)),
            2);
}

TEST(AtomicValues, CompareStringsAndDates) {
  EXPECT_EQ(*AtomicValue::String("a").Compare(AtomicValue::String("b")),
            -1);
  EXPECT_EQ(*AtomicValue::DateTime("2008-01-01T00:00:00")
                 .Compare(AtomicValue::DateTime("2009-01-01T00:00:00")),
            -1);
  EXPECT_FALSE(AtomicValue::MakeQName(xml::QName("a"))
                   .Compare(AtomicValue::Integer(1))
                   .ok());
}

TEST(Items, NodeAtomizationIsUntyped) {
  auto doc = std::move(xml::ParseDocument("<a>12</a>")).value();
  Item item = Item::Node(doc->DocumentElement());
  AtomicValue v = item.Atomize();
  EXPECT_EQ(v.type(), AtomicType::kUntypedAtomic);
  EXPECT_EQ(v.string_value(), "12");
  EXPECT_EQ(item.StringValue(), "12");
}

TEST(EffectiveBoolean, AllCases) {
  auto ebv = [](Sequence s) {
    auto r = EffectiveBooleanValue(s);
    EXPECT_TRUE(r.ok());
    return r.ok() && *r;
  };
  EXPECT_FALSE(ebv({}));
  EXPECT_TRUE(ebv({Item::Boolean(true)}));
  EXPECT_FALSE(ebv({Item::Boolean(false)}));
  EXPECT_FALSE(ebv({Item::String("")}));
  EXPECT_TRUE(ebv({Item::String("x")}));
  EXPECT_FALSE(ebv({Item::Integer(0)}));
  EXPECT_TRUE(ebv({Item::Integer(-1)}));
  EXPECT_FALSE(ebv({Item::Double(std::nan(""))}));

  auto doc = std::move(xml::ParseDocument("<a/>")).value();
  EXPECT_TRUE(ebv({Item::Node(doc->root())}));
  // Node-first sequences of any length are true.
  EXPECT_TRUE(ebv({Item::Node(doc->root()), Item::Integer(1)}));
  // Multi-item atomic sequences raise FORG0006.
  auto bad = EffectiveBooleanValue({Item::Integer(1), Item::Integer(2)});
  EXPECT_EQ(bad.status().code(), "FORG0006");
}

TEST(Sequences, SortDocumentOrderDedup) {
  auto doc = std::move(xml::ParseDocument("<r><a/><b/><c/></r>")).value();
  xml::Node* r = doc->DocumentElement();
  Sequence seq{Item::Node(r->children()[2]), Item::Node(r->children()[0]),
               Item::Node(r->children()[2]), Item::Node(r->children()[1])};
  ASSERT_TRUE(SortDocumentOrderDedup(&seq).ok());
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].node()->name().local(), "a");
  EXPECT_EQ(seq[1].node()->name().local(), "b");
  EXPECT_EQ(seq[2].node()->name().local(), "c");
  Sequence mixed{Item::Integer(1)};
  EXPECT_FALSE(SortDocumentOrderDedup(&mixed).ok());
}

TEST(Sequences, SequenceToString) {
  EXPECT_EQ(SequenceToString({}), "");
  EXPECT_EQ(SequenceToString({Item::Integer(1), Item::String("a")}), "1 a");
}

// Property sweep: CastTo(kString) then back round-trips for values that
// have exact lexical forms.
class AtomicRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(AtomicRoundTrip, IntegerStringInteger) {
  AtomicValue v = AtomicValue::Integer(GetParam());
  auto s = v.CastTo(AtomicType::kString);
  ASSERT_TRUE(s.ok());
  auto back = s->CastTo(AtomicType::kInteger);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->int_value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, AtomicRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -9999999,
                                           1234567890123LL,
                                           -1234567890123LL));

}  // namespace
}  // namespace xqib::xdm
