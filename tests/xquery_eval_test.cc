// Core expression-evaluation tests: literals, arithmetic, comparisons,
// FLWOR, quantified expressions, paths, predicates, constructors.

#include <gtest/gtest.h>

#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::xquery {
namespace {

using xdm::Sequence;

// Evaluates `query` with an optional context document and returns the
// space-joined string value of the result.
std::string EvalToString(const std::string& query,
                         const std::string& context_xml = "") {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return "PARSE-ERROR: " + compiled.status().ToString();
  DynamicContext ctx;
  std::unique_ptr<xml::Document> doc;
  if (!context_xml.empty()) {
    auto parsed = xml::ParseDocument(context_xml);
    if (!parsed.ok()) return "XML-ERROR: " + parsed.status().ToString();
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) return "BIND-ERROR: " + bound.ToString();
  auto result = (*compiled)->Run(ctx);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return xdm::SequenceToString(*result);
}

std::string EvalError(const std::string& query,
                      const std::string& context_xml = "") {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return compiled.status().code();
  DynamicContext ctx;
  std::unique_ptr<xml::Document> doc;
  if (!context_xml.empty()) {
    doc = std::move(xml::ParseDocument(context_xml)).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) return bound.code();
  auto result = (*compiled)->Run(ctx);
  return result.ok() ? "OK" : result.status().code();
}

// ------------------------------------------------------------ literals ---

TEST(Literals, IntegerDecimalDoubleString) {
  EXPECT_EQ(EvalToString("42"), "42");
  EXPECT_EQ(EvalToString("3.5"), "3.5");
  EXPECT_EQ(EvalToString("1e3"), "1000");
  EXPECT_EQ(EvalToString("\"hi\""), "hi");
  EXPECT_EQ(EvalToString("'it''s'"), "it's");
}

TEST(Literals, EmptyAndCommaSequences) {
  EXPECT_EQ(EvalToString("()"), "");
  EXPECT_EQ(EvalToString("1, 2, 3"), "1 2 3");
  EXPECT_EQ(EvalToString("(1, (2, 3), ())"), "1 2 3");
}

TEST(Literals, RangeExpression) {
  EXPECT_EQ(EvalToString("1 to 5"), "1 2 3 4 5");
  EXPECT_EQ(EvalToString("5 to 1"), "");
  EXPECT_EQ(EvalToString("count(1 to 100)"), "100");
}

// ---------------------------------------------------------- arithmetic ---

TEST(Arithmetic, IntegerOps) {
  EXPECT_EQ(EvalToString("1 + 2 * 3"), "7");
  EXPECT_EQ(EvalToString("(1 + 2) * 3"), "9");
  EXPECT_EQ(EvalToString("7 idiv 2"), "3");
  EXPECT_EQ(EvalToString("7 mod 2"), "1");
  EXPECT_EQ(EvalToString("-5 + 2"), "-3");
  EXPECT_EQ(EvalToString("10 div 4"), "2.5");
  EXPECT_EQ(EvalToString("10 div 5"), "2");
}

TEST(Arithmetic, DoublePropagation) {
  EXPECT_EQ(EvalToString("1.5 + 1"), "2.5");
  EXPECT_EQ(EvalToString("2 * 0.5"), "1");
}

TEST(Arithmetic, DivisionByZero) {
  EXPECT_EQ(EvalError("1 div 0"), "FOAR0001");
  EXPECT_EQ(EvalError("1 idiv 0"), "FOAR0001");
  EXPECT_EQ(EvalError("1 mod 0"), "FOAR0001");
  // Double division by zero yields INF, not an error.
  EXPECT_EQ(EvalToString("1.0 div 0"), "INF");
}

TEST(Arithmetic, EmptyOperandYieldsEmpty) {
  EXPECT_EQ(EvalToString("() + 1"), "");
  EXPECT_EQ(EvalToString("1 * ()"), "");
}

TEST(Arithmetic, UntypedPromotion) {
  EXPECT_EQ(EvalToString("<a>4</a> + 1", ""), "5");
}

// ---------------------------------------------------------- comparison ---

TEST(Comparison, ValueComparisons) {
  EXPECT_EQ(EvalToString("1 eq 1"), "true");
  EXPECT_EQ(EvalToString("1 lt 2"), "true");
  EXPECT_EQ(EvalToString("'a' lt 'b'"), "true");
  EXPECT_EQ(EvalToString("() eq 1"), "");
}

TEST(Comparison, GeneralComparisonsAreExistential) {
  EXPECT_EQ(EvalToString("(1, 2, 3) = 2"), "true");
  EXPECT_EQ(EvalToString("(1, 2, 3) = 9"), "false");
  EXPECT_EQ(EvalToString("(1, 2) != (1, 2)"), "true");  // existential !=
  EXPECT_EQ(EvalToString("() = ()"), "false");
}

TEST(Comparison, NodeComparisons) {
  EXPECT_EQ(EvalToString("let $d := <a><b/><c/></a> "
                         "return $d/b << $d/c"),
            "true");
  EXPECT_EQ(EvalToString("let $d := <a><b/></a> return $d/b is $d/b"),
            "true");
  EXPECT_EQ(EvalToString("let $d := <a><b/><c/></a> "
                         "return $d/b is $d/c"),
            "false");
}

TEST(Comparison, Logical) {
  EXPECT_EQ(EvalToString("true() and false()"), "false");
  EXPECT_EQ(EvalToString("true() or false()"), "true");
  // Short-circuit: the rhs error is never reached.
  EXPECT_EQ(EvalToString("false() and (1 idiv 0 = 1)"), "false");
  EXPECT_EQ(EvalToString("true() or (1 idiv 0 = 1)"), "true");
}

// ---------------------------------------------------------------- paths ---

constexpr const char* kBooks = R"(
<books>
  <book year="2005"><title>Dogs and cats</title><price>10</price>
    <author>Ann</author></book>
  <book year="2007"><title>Query languages</title><price>50</price>
    <author>Bob</author><author>Cid</author></book>
  <book year="2008"><title>The dog barked</title><price>30</price>
    <author>Dan</author></book>
</books>)";

TEST(Paths, ChildAndDescendant) {
  EXPECT_EQ(EvalToString("count(/books/book)", kBooks), "3");
  EXPECT_EQ(EvalToString("count(//author)", kBooks), "4");
  EXPECT_EQ(EvalToString("count(//book/author)", kBooks), "4");
  EXPECT_EQ(EvalToString("/books/book[1]/title", kBooks), "Dogs and cats");
}

TEST(Paths, Attributes) {
  EXPECT_EQ(EvalToString("/books/book[1]/@year", kBooks), "2005");
  EXPECT_EQ(EvalToString("count(//@year)", kBooks), "3");
  EXPECT_EQ(EvalToString("//book[@year=2007]/title", kBooks),
            "Query languages");
}

TEST(Paths, Predicates) {
  EXPECT_EQ(EvalToString("//book[price > 20]/title", kBooks),
            "Query languages The dog barked");
  EXPECT_EQ(EvalToString("//book[author='Bob']/@year", kBooks), "2007");
  EXPECT_EQ(EvalToString("//book[2]/title", kBooks), "Query languages");
  EXPECT_EQ(EvalToString("//book[last()]/title", kBooks), "The dog barked");
  EXPECT_EQ(EvalToString("//book[position() < 3]/@year", kBooks),
            "2005 2007");
}

TEST(Paths, ReverseAndSiblingAxes) {
  EXPECT_EQ(EvalToString("//author[.='Bob']/parent::book/@year", kBooks),
            "2007");
  EXPECT_EQ(EvalToString("//price/preceding-sibling::title", kBooks),
            "Dogs and cats Query languages The dog barked");
  EXPECT_EQ(
      EvalToString("//book[2]/following-sibling::book/title", kBooks),
      "The dog barked");
  // //author[1] selects each book's first author (per-step predicate);
  // their ancestors are the three books plus the root element.
  EXPECT_EQ(EvalToString("count(//author[1]/ancestor::*)", kBooks), "4");
  EXPECT_EQ(EvalToString("count((//author)[1]/ancestor::*)", kBooks), "2");
  EXPECT_EQ(EvalToString("count(//author[.='Ann']/ancestor-or-self::*)",
                         kBooks),
            "3");
}

TEST(Paths, FollowingPrecedingAxes) {
  EXPECT_EQ(EvalToString("count(//title[.='Query languages']/"
                         "following::author)",
                         kBooks),
            "3");
  EXPECT_EQ(EvalToString("count(//title[.='Query languages']/"
                         "preceding::author)",
                         kBooks),
            "1");
}

TEST(Paths, Wildcards) {
  EXPECT_EQ(EvalToString("count(/books/*)", kBooks), "3");
  EXPECT_EQ(EvalToString("count(//book/*)", kBooks), "10");
}

TEST(Paths, DocumentOrderAndDedup) {
  // Union of overlapping paths must come back deduped, in doc order.
  EXPECT_EQ(EvalToString("count(//book | //book[1])", kBooks), "3");
  EXPECT_EQ(EvalToString("(//title | //price)[1]", kBooks),
            "Dogs and cats");
}

TEST(Paths, SetOperations) {
  EXPECT_EQ(EvalToString("count(//book intersect //book[@year=2007])",
                         kBooks),
            "1");
  EXPECT_EQ(
      EvalToString("count(//book except //book[@year=2007])", kBooks), "2");
}

TEST(Paths, PathFromAtomicFails) {
  EXPECT_EQ(EvalError("(1)/a"), "XPTY0019");
}

// ------------------------------------------------- path fast paths ---

// Evaluates `query` with explicit evaluator options (the fast-path
// ablation switches) and returns the result string; on success the
// evaluator's fast-path counters are copied into *stats if given.
std::string EvalWithOptions(const std::string& query,
                            const std::string& context_xml,
                            const Evaluator::EvalOptions& options,
                            Evaluator::EvalStats* stats = nullptr) {
  Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return "PARSE-ERROR: " + compiled.status().ToString();
  (*compiled)->evaluator().set_options(options);
  DynamicContext ctx;
  std::unique_ptr<xml::Document> doc;
  if (!context_xml.empty()) {
    auto parsed = xml::ParseDocument(context_xml);
    if (!parsed.ok()) return "XML-ERROR: " + parsed.status().ToString();
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) return "BIND-ERROR: " + bound.ToString();
  auto result = (*compiled)->Run(ctx);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  if (stats != nullptr) *stats = (*compiled)->evaluator().stats();
  return xdm::SequenceToString(*result);
}

Evaluator::EvalOptions AllFastPathsOff() {
  Evaluator::EvalOptions off;
  off.honor_sort_elision = false;
  off.use_name_index = false;
  off.bounded_eval = false;
  return off;
}

// Satellite regression: position 1 on a reverse axis is the *nearest*
// node (axis order), not the first in document order.
TEST(FastPaths, ReverseAxisPositionalPredicates) {
  EXPECT_EQ(EvalToString("//author[.='Cid']/preceding-sibling::*[1]",
                         kBooks),
            "Bob");
  EXPECT_EQ(EvalToString(
                "string((//author[.='Ann']/ancestor::*[1])/@year)", kBooks),
            "2005");
  EXPECT_EQ(EvalToString("name(//price[.='50']/ancestor::*[1])", kBooks),
            "book");
}

// Every fast path on vs every fast path off must agree — the elision
// and bounded-evaluation machinery is observationally pure.
TEST(FastPaths, AgreeWithForcedSortOracle) {
  const char* queries[] = {
      "/books/book/title",
      "//book/author",
      "count(//author)",
      "//book/@year",
      "string-join(//book/title, '|')",
      "(//author)[1]",
      "(//author)[last()]",
      "//book[price > 20]/title",
      "exists(//price)",
      "exists(//nothing)",
      "empty(//nothing)",
      "//price/preceding-sibling::title",
      "count(//author[1]/ancestor::*)",
      "(//title | //price)[1]",
      "//book/descendant-or-self::*/title",
  };
  for (const char* q : queries) {
    EXPECT_EQ(EvalWithOptions(q, kBooks, Evaluator::EvalOptions()),
              EvalWithOptions(q, kBooks, AllFastPathsOff()))
        << "query: " << q;
  }
}

TEST(FastPaths, SortElisionCounters) {
  Evaluator::EvalStats stats;
  // A pure child chain from the root never needs sorting.
  EXPECT_EQ(EvalWithOptions("/books/book/title", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "Dogs and cats Query languages The dog barked");
  EXPECT_GT(stats.sorts_elided, 0u);
  EXPECT_EQ(stats.sorts_performed, 0u);

  // With elision disabled the same query pays for every step.
  EXPECT_EQ(EvalWithOptions("/books/book/title", kBooks, AllFastPathsOff(),
                            &stats),
            "Dogs and cats Query languages The dog barked");
  EXPECT_EQ(stats.sorts_elided, 0u);
  EXPECT_GT(stats.sorts_performed, 0u);
}

TEST(FastPaths, NameIndexCounters) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWithOptions("count(//author)", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "4");
  EXPECT_GT(stats.name_index_hits, 0u);
  EXPECT_EQ(EvalWithOptions("count(//author)", kBooks, AllFastPathsOff(),
                            &stats),
            "4");
  EXPECT_EQ(stats.name_index_hits, 0u);
}

TEST(FastPaths, EarlyExitCounters) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWithOptions("exists(//author)", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "true");
  EXPECT_GT(stats.early_exits, 0u);
  EXPECT_EQ(EvalWithOptions("(//author)[1]", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "Ann");
  EXPECT_GT(stats.early_exits, 0u);
  EXPECT_EQ(EvalWithOptions("(//author)[last()]", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "Dan");
  EXPECT_GT(stats.early_exits, 0u);
}

// The index must not be consulted when the step carries a wildcard or a
// non-element test, and //name must still see mutations made upstream
// in the same query (snapshot taken per evaluation).
TEST(FastPaths, NameIndexScopeLimits) {
  Evaluator::EvalStats stats;
  EXPECT_EQ(EvalWithOptions("count(//*)", kBooks, Evaluator::EvalOptions(),
                            &stats),
            "14");
  EXPECT_EQ(stats.name_index_hits, 0u);
  // Steps from a mid-tree context node can't use the whole-doc index.
  EXPECT_EQ(EvalWithOptions("count(/books/book[1]//author)", kBooks,
                            Evaluator::EvalOptions(), &stats),
            "1");
  EXPECT_EQ(stats.name_index_hits, 0u);
}

// A user-declared function named exists() lives in its own namespace,
// so it must see the full argument sequence, never a truncated one.
TEST(FastPaths, UserExistsFunctionSeesFullSequence) {
  EXPECT_EQ(EvalToString(
                "declare namespace my='urn:m';\n"
                "declare function my:exists($x) { count($x) };\n"
                "my:exists(//author)",
                kBooks),
            "4");
}

// ---------------------------------------------------------------- FLWOR ---

TEST(FLWOR, ForReturn) {
  EXPECT_EQ(EvalToString("for $i in 1 to 3 return $i * 10"), "10 20 30");
}

TEST(FLWOR, LetAndWhere) {
  EXPECT_EQ(EvalToString("for $b in //book let $p := $b/price "
                         "where $p > 20 return $b/title",
                         kBooks),
            "Query languages The dog barked");
}

TEST(FLWOR, PositionalVariable) {
  EXPECT_EQ(EvalToString("for $x at $i in ('a','b','c') "
                         "return concat($i, ':', $x)"),
            "1:a 2:b 3:c");
}

TEST(FLWOR, OrderBy) {
  EXPECT_EQ(EvalToString("for $b in //book order by number($b/price) "
                         "return $b/price",
                         kBooks),
            "10 30 50");
  EXPECT_EQ(EvalToString("for $b in //book "
                         "order by number($b/price) descending "
                         "return $b/price",
                         kBooks),
            "50 30 10");
  EXPECT_EQ(EvalToString("for $b in //book order by $b/title "
                         "return $b/@year",
                         kBooks),
            "2005 2007 2008");
}

TEST(FLWOR, MultipleForClausesCrossProduct) {
  EXPECT_EQ(EvalToString("for $i in (1,2), $j in (10,20) return $i + $j"),
            "11 21 12 22");
}

TEST(FLWOR, NestedFLWOR) {
  EXPECT_EQ(
      EvalToString("for $i in 1 to 2 return (for $j in 1 to $i return $j)"),
      "1 1 2");
}

TEST(Quantified, SomeAndEvery) {
  EXPECT_EQ(EvalToString("some $x in (1,2,3) satisfies $x > 2"), "true");
  EXPECT_EQ(EvalToString("every $x in (1,2,3) satisfies $x > 2"), "false");
  EXPECT_EQ(EvalToString("every $x in () satisfies $x > 2"), "true");
  EXPECT_EQ(EvalToString("some $x in () satisfies $x > 2"), "false");
}

TEST(Conditional, IfThenElse) {
  EXPECT_EQ(EvalToString("if (1 < 2) then 'yes' else 'no'"), "yes");
  EXPECT_EQ(EvalToString("if (()) then 'yes' else 'no'"), "no");
}

// --------------------------------------------------------- constructors ---

TEST(Constructors, DirectElement) {
  Engine engine;
  auto q = engine.Compile("<li class=\"x\">hello</li>");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(xml::Serialize(r->at(0).node()),
            "<li class=\"x\">hello</li>");
}

TEST(Constructors, EnclosedExpressions) {
  Engine engine;
  auto q = engine.Compile("<p>{1 + 1} items</p>");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xml::Serialize(r->at(0).node()), "<p>2 items</p>");
}

TEST(Constructors, AttributeValueTemplates) {
  Engine engine;
  auto q = engine.Compile("<a href=\"page{1+1}.html\">x</a>");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0).node()->GetAttributeValue("href"), "page2.html");
}

TEST(Constructors, NestedWithIteration) {
  Engine engine;
  auto q = engine.Compile(
      "<ul>{for $i in 1 to 3 return <li>{$i}</li>}</ul>");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xml::Serialize(r->at(0).node()),
            "<ul><li>1</li><li>2</li><li>3</li></ul>");
}

TEST(Constructors, CopiedNodesAreNewNodes) {
  EXPECT_EQ(
      EvalToString("let $a := <x><y/></x> let $b := <w>{$a/y}</w> "
                   "return $b/y is $a/y"),
      "false");
}

TEST(Constructors, ComputedConstructors) {
  Engine engine;
  auto q = engine.Compile(
      "element {concat('d','iv')} { attribute id {'z'}, text {'T'} }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xml::Serialize(r->at(0).node()), "<div id=\"z\">T</div>");
}

TEST(Constructors, AdjacentAtomicsJoinWithSpace) {
  Engine engine;
  auto q = engine.Compile("<v>{1, 2, 3}</v>");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0).node()->StringValue(), "1 2 3");
}

TEST(Constructors, EntityEscapes) {
  EXPECT_EQ(EvalToString("<t>a &lt; b &amp; c</t>"), "a < b & c");
  EXPECT_EQ(EvalToString("<t>{{literal}}</t>"), "{literal}");
}

// ----------------------------------------------------- casts, instance ---

TEST(Casts, CastAs) {
  EXPECT_EQ(EvalToString("'42' cast as xs:integer"), "42");
  EXPECT_EQ(EvalToString("42 cast as xs:string"), "42");
  EXPECT_EQ(EvalToString("'true' cast as xs:boolean"), "true");
  EXPECT_EQ(EvalError("'abc' cast as xs:integer"), "FORG0001");
}

TEST(Casts, Castable) {
  EXPECT_EQ(EvalToString("'42' castable as xs:integer"), "true");
  EXPECT_EQ(EvalToString("'abc' castable as xs:integer"), "false");
}

TEST(Casts, InstanceOf) {
  EXPECT_EQ(EvalToString("1 instance of xs:integer"), "true");
  EXPECT_EQ(EvalToString("1 instance of xs:string"), "false");
  EXPECT_EQ(EvalToString("(1,2) instance of xs:integer*"), "true");
  EXPECT_EQ(EvalToString("() instance of empty-sequence()"), "true");
  EXPECT_EQ(EvalToString("<a/> instance of element()"), "true");
}

TEST(Casts, ConstructorFunctions) {
  EXPECT_EQ(EvalToString("xs:integer('7') + 1"), "8");
  EXPECT_EQ(EvalToString("xs:double('1.5') * 2"), "3");
}

// ----------------------------------------------------------- typeswitch ---

TEST(Typeswitch, DispatchesByType) {
  const char* q =
      "for $v in (1, 'x', 2.5, <e/>) return "
      "typeswitch ($v) "
      "  case xs:integer return 'int' "
      "  case xs:string return 'str' "
      "  case element() return 'elem' "
      "  default return 'other'";
  EXPECT_EQ(EvalToString(q), "int str other elem");
}

TEST(Typeswitch, CaseVariableBinding) {
  EXPECT_EQ(EvalToString("typeswitch (21) "
                         "case $i as xs:integer return $i * 2 "
                         "default return 0"),
            "42");
  EXPECT_EQ(EvalToString("typeswitch ('a') "
                         "case $i as xs:integer return $i "
                         "default $d return concat($d, '!')"),
            "a!");
}

TEST(Typeswitch, SequenceOccurrence) {
  EXPECT_EQ(EvalToString("typeswitch ((1, 2, 3)) "
                         "case xs:integer return 'one' "
                         "case xs:integer+ return 'many' "
                         "default return 'other'"),
            "many");
  EXPECT_EQ(EvalToString("typeswitch (()) "
                         "case empty-sequence() return 'empty' "
                         "default return 'other'"),
            "empty");
}

TEST(Typeswitch, RequiresCaseClause) {
  Engine engine;
  EXPECT_FALSE(engine.Compile("typeswitch (1) default return 2").ok());
}

// ------------------------------------------------------------ fulltext ---

TEST(FullText, BasicContains) {
  EXPECT_EQ(EvalToString("'The dog barked' ftcontains 'dog'"), "true");
  EXPECT_EQ(EvalToString("'The dog barked' ftcontains 'cat'"), "false");
  // Tokenized matching, not substring matching.
  EXPECT_EQ(EvalToString("'concatenation' ftcontains 'cat'"), "false");
}

TEST(FullText, Stemming) {
  EXPECT_EQ(EvalToString("'many dogs here' ftcontains "
                         "('dog' with stemming)"),
            "true");
  EXPECT_EQ(EvalToString("'running fast' ftcontains "
                         "('run' with stemming)"),
            "true");
  EXPECT_EQ(EvalToString("'many dogs here' ftcontains 'dog'"), "false");
}

TEST(FullText, FtAndOrNot) {
  EXPECT_EQ(EvalToString("'dogs and cats' ftcontains 'dogs' ftand 'cats'"),
            "true");
  EXPECT_EQ(EvalToString("'dogs only' ftcontains 'dogs' ftand 'cats'"),
            "false");
  EXPECT_EQ(EvalToString("'dogs only' ftcontains 'dogs' ftor 'cats'"),
            "true");
  EXPECT_EQ(EvalToString("'dogs only' ftcontains ftnot 'cats'"), "true");
}

TEST(FullText, PaperExample) {
  // The paper's §3.1 query shape: books whose title contains "cat" and a
  // stem of "dog".
  constexpr const char* kLib = R"(
    <books>
      <book><title>dogs and a cat</title><author>A</author></book>
      <book><title>a cat alone</title><author>B</author></book>
    </books>)";
  EXPECT_EQ(EvalToString("for $b in /books/book where $b/title ftcontains "
                         "('dog' with stemming) ftand 'cat' "
                         "return $b/author",
                         kLib),
            "A");
}

TEST(FullText, NodeSearch) {
  EXPECT_EQ(EvalToString("count(//div[. ftcontains 'love'])",
                         "<d><div>I love XML</div><div>meh</div></d>"),
            "1");
}

// ------------------------------------------- XPath conformance sweep ---

// Table-driven conformance checks against one fixed document; each row
// is (query, expected string result).
struct XPathCase {
  const char* query;
  const char* expected;
};

constexpr const char* kConformanceDoc = R"(
<site>
  <people>
    <person id="p1" age="34"><name>Ann</name><city>Zurich</city></person>
    <person id="p2" age="28"><name>Bob</name><city>Basel</city></person>
    <person id="p3" age="34"><name>Cid</name><city>Zurich</city></person>
  </people>
  <items>
    <item owner="p1" price="10"><tag/><tag/></item>
    <item owner="p2" price="30"/>
    <item owner="p1" price="20"/>
  </items>
</site>)";

class XPathConformance : public ::testing::TestWithParam<XPathCase> {};

TEST_P(XPathConformance, Evaluates) {
  const XPathCase& c = GetParam();
  EXPECT_EQ(EvalToString(c.query, kConformanceDoc), c.expected) << c.query;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XPathConformance,
    ::testing::Values(
        XPathCase{"count(//person)", "3"},
        XPathCase{"count(/site/*)", "2"},
        XPathCase{"count(/site/people/person/@id)", "3"},
        XPathCase{"//person[@id='p2']/name", "Bob"},
        XPathCase{"//person[@age = 34][2]/name", "Cid"},
        XPathCase{"(//person[@age = 34])[2]/name", "Cid"},
        XPathCase{"//person[city = 'Zurich' and @age > 30]/name",
                  "Ann Cid"},
        XPathCase{"//person[not(city = 'Basel')]/name", "Ann Cid"},
        XPathCase{"count(//item[@owner = //person[name='Ann']/@id])", "2"},
        XPathCase{"sum(//item/@price)", "60"},
        XPathCase{"avg(for $p in //item/@price return xs:integer($p))",
                  "20"},
        XPathCase{"count(//tag/parent::item)", "1"},
        XPathCase{"count(//tag/ancestor::site)", "1"},
        XPathCase{"//person[1]/following-sibling::person[1]/name", "Bob"},
        XPathCase{"//person[last()]/preceding-sibling::person[1]/name",
                  "Bob"},
        XPathCase{"count(//people/following::item)", "3"},
        XPathCase{"count(//items/preceding::person)", "3"},
        XPathCase{"string(//person[2]/..[name()='people']/person[1]/name)",
                  "Ann"},
        XPathCase{"count(//person/self::person)", "3"},
        XPathCase{"count(//node())", "23"},
        XPathCase{"count(//text())", "6"},
        XPathCase{"//person[starts-with(name, 'A')]/city", "Zurich"},
        XPathCase{"distinct-values(//person/city)", "Zurich Basel"},
        XPathCase{"string-join(//person/name, ',')", "Ann,Bob,Cid"},
        XPathCase{"count(//person[position() mod 2 = 1])", "2"},
        XPathCase{"name((//item)[1]/*[1])", "tag"},
        XPathCase{"count(//item[not(*)])", "2"},
        XPathCase{"min(for $i in //item return xs:integer($i/@price))",
                  "10"},
        XPathCase{"max(for $i in //item return xs:integer($i/@price))",
                  "30"},
        XPathCase{"//person[name = 'Ann']/@age cast as xs:integer", "34"},
        XPathCase{"count(//person[@id][city])", "3"}));

// The deliberately-invalid row above documents that trailing function
// steps are not XPath 2.0: verify it errors rather than silently passing.
TEST(XPathConformanceMeta, InvalidRowReallyErrors) {
  EXPECT_TRUE(
      EvalToString("min(//item/xs:integer(@price))", kConformanceDoc)
          .find("ERROR") != std::string::npos);
}

}  // namespace
}  // namespace xqib::xquery
