// Tests for the compiled-plan layer (xquery/plan/): golden plan-listing
// dumps (the xq_lint --plan / xq_repl :plan surface), the plans-on/off
// ablation oracle across expression shapes, the process-wide plan
// cache (warm compiles are zero; fingerprint changes invalidate), the
// memo-cache interaction (a memo hit never consults the plan layer),
// and cross-thread compile/probe races — both raw engine threads and
// staged listeners on the parallel dispatch pool.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "app/environment.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/plan/plan.h"

namespace xqib::xquery {
namespace {

using app::BrowserEnvironment;

// Evaluates `query` (optionally against `xml` as the context document)
// with compiled plans on or off and returns the serialized result.
std::string EvalPlans(const std::string& query, const std::string& xml,
                      bool plans) {
  Engine engine;
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return "<compile error>";
  Evaluator::EvalOptions options;
  options.compiled_plans = plans;
  (*compiled)->evaluator().set_options(options);
  std::unique_ptr<xml::Document> doc;
  DynamicContext ctx;
  if (!xml.empty()) {
    auto parsed = xml::ParseDocument(xml);
    EXPECT_TRUE(parsed.ok());
    doc = std::move(parsed).value();
    DynamicContext::Focus f;
    f.item = xdm::Item::Node(doc->root());
    f.position = 1;
    f.size = 1;
    f.has_item = true;
    ctx.set_focus(f);
  }
  EXPECT_TRUE((*compiled)->BindGlobals(ctx).ok());
  auto result = (*compiled)->Run(ctx);
  if (!result.ok()) return "error: " + result.status().code();
  std::string out = xdm::SequenceToString(*result);
  if (doc != nullptr) out += " | " + xml::Serialize(doc->root());
  return out;
}

// ------------------------------------------------------ golden dumps ---

TEST(PlanDump, FLWORLoweringIsDeterministic) {
  const std::string query =
      "declare function local:sum($n) { let $t := for $i in 1 to $n "
      "where $i mod 2 = 0 return $i return count($t) }; local:sum(10)";
  auto dump = plan::DumpPlansForQuery(query);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(
      *dump,
      "plan {http://www.w3.org/2005/xquery-local-functions}sum#1 "
      "regs=12 iters=1\n"
      "    0: clear         r1 <- ()  ; flwor accumulator\n"
      "    1: clear         r2 <- ()  ; flwor accumulator\n"
      "    2: load.const    r3 <- const[0]  ; 1\n"
      "    3: range         r4 <- r3 to r0\n"
      "    4: iter.init     it0 <- r4  ; for $i\n"
      "    5: iter.next     r5 <- it0 else -> 13\n"
      "    6: load.const    r6 <- const[1]  ; 2\n"
      "    7: arith.int     r7 <- r5 r6  ; mod !singleton-int\n"
      "    8: load.const    r8 <- const[2]  ; 0\n"
      "    9: compare       r9 <- r7 r8  ; = card=1:1\n"
      "   10: jump.false    r9 -> 12  ; where\n"
      "   11: append        r2 += r5\n"
      "   12: jump          -> 5\n"
      "   13: move          r10 <- r2\n"
      "   14: call.dyn      r11 <- name[0](1 args at r10)  ; dyn count#1\n"
      "   15: append        r1 += r11\n"
      "   16: return        r1\n");
  // Same source, fresh compile: byte-identical (the regression guard
  // behind xq_lint --plan golden output).
  auto again = plan::DumpPlansForQuery(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*dump, *again);
}

TEST(PlanDump, UpdatingBodyUsesIndexedPathAndReplace) {
  auto dump = plan::DumpPlansForQuery(
      "declare updating function local:bump($n) {\n"
      "  replace value of node //span with string($n + 1)\n"
      "};\n1");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(
      *dump,
      "plan {http://www.w3.org/2005/xquery-local-functions}bump#1 "
      "regs=7 iters=0 [updating]\n"
      "    0: path.indexed  r1 <- expr[0]  ; path /span [indexed, "
      "ordered dup-free]\n"
      "    1: load.const    r2 <- const[0]  ; 1\n"
      "    2: arith         r3 <- r0 r2  ; +\n"
      "    3: move          r4 <- r3\n"
      "    4: call.dyn      r5 <- name[0](1 args at r4)  ; dyn string#1\n"
      "    5: upd.replace   r1 with r5  ; value of\n"
      "    6: return        r6\n");
}

TEST(PlanDump, UnloweredBodyFallsBackToScopedEval) {
  auto dump = plan::DumpPlansForQuery(
      "declare function local:desc($x) {\n"
      "  typeswitch ($x) case xs:integer return \"int\" default return "
      "\"other\"\n};\nlocal:desc(1)");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(
      *dump,
      "plan {http://www.w3.org/2005/xquery-local-functions}desc#1 "
      "regs=2 iters=0 [env]\n"
      "    0: bind.env      name[0] <- r0\n"
      "    1: eval          r1 <- expr[0]  ; eval typeswitch\n"
      "    2: return        r1\n");
}

TEST(PlanDump, NoUserFunctions) {
  auto dump = plan::DumpPlansForQuery("1 + 1");
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(*dump, "no user-declared functions\n");
}

// ------------------------------------------------- ablation oracle ---

// The tree walker is the oracle: every shape must evaluate identically
// with plans on and off (including the DOM after updates).
TEST(PlanOracle, ShapesAgreeWithTreeWalker) {
  const std::string doc =
      "<root><item v=\"1\"/><item v=\"2\"/><item v=\"3\"/>"
      "<span>old</span></root>";
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"recursion",
       "declare function local:fib($n) { if ($n < 2) then $n else "
       "local:fib($n - 1) + local:fib($n - 2) }; local:fib(12)"},
      {"flwor-arith",
       "declare function local:s($n) { sum(for $i in 1 to $n where "
       "($i * 3 + 1) mod 7 = 3 return $i * $i mod 101) }; local:s(200)"},
      {"nested-calls",
       "declare function local:a($x) { $x + 1 };\n"
       "declare function local:b($x) { local:a($x) * local:a($x + 1) };\n"
       "local:b(5)"},
      {"paths",
       "declare function local:c() { count(//item) + "
       "sum(//item/@v) }; local:c()"},
      {"strings",
       "declare function local:j($s) { concat($s, \"-\", "
       "string-length($s)) }; local:j(\"abc\")"},
      {"fallback-typeswitch",
       "declare function local:d($x) { typeswitch ($x) case xs:integer "
       "return \"int\" default return \"other\" }; "
       "(local:d(1), local:d(\"s\"))"},
      {"updates",
       "declare updating function local:u($v) { replace value of node "
       "//span with string($v * 7) }; local:u(6)"},
      {"conditionals-logic",
       "declare function local:e($n) { if ($n > 2 and $n mod 2 = 0) "
       "then \"even>2\" else \"no\" }; "
       "(local:e(1), local:e(4), local:e(7))"},
  };
  for (const auto& [name, query] : cases) {
    EXPECT_EQ(EvalPlans(query, doc, true), EvalPlans(query, doc, false))
        << "shape: " << name;
  }
}

// ---------------------------------------------------------- caching ---

// Calls local:f#0 on a fresh engine and returns the evaluator's
// lifetime stats (plan counters included).
Evaluator::EvalStats CallOnFreshEngine(Engine& engine,
                                       const std::string& source,
                                       std::string* result) {
  auto compiled = engine.Compile(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  DynamicContext ctx;
  EXPECT_TRUE((*compiled)->BindGlobals(ctx).ok());
  auto r = (*compiled)->Call(xml::QName("http://www.w3.org/2005/xquery-local-functions", "f"), {}, ctx);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (result != nullptr && r.ok()) *result = xdm::SequenceToString(*r);
  return (*compiled)->evaluator().stats();
}

TEST(PlanCacheTest, WarmDispatchCompilesZeroPlans) {
  plan::PlanCache::Global().Clear();
  // Unique source text so no other test's cache entry can serve it.
  const std::string source =
      "declare function local:f() { sum(1 to 37) + 1000 }; local:f()";
  Engine e1;
  std::string r1;
  Evaluator::EvalStats cold = CallOnFreshEngine(e1, source, &r1);
  EXPECT_GT(cold.plan_compiles, 0u);
  EXPECT_GE(cold.plan_hits, 1u);
  EXPECT_EQ(r1, "1703");
  // Same source, fresh engine/evaluator: the plan-cache hit path must
  // perform zero compilations and still dispatch through a plan.
  Engine e2;
  std::string r2;
  Evaluator::EvalStats warm = CallOnFreshEngine(e2, source, &r2);
  EXPECT_EQ(warm.plan_compiles, 0u);
  EXPECT_EQ(warm.plan_invalidations, 0u);
  EXPECT_GE(warm.plan_hits, 1u);
  EXPECT_EQ(r2, r1);
  EXPECT_EQ(plan::PlanCache::Global().size(), 1u);
}

TEST(PlanCacheTest, ChangedLibraryBodyInvalidates) {
  plan::PlanCache::Global().Clear();
  // Identical main-module text; the imported library's body changes, so
  // the source hash matches but the fingerprint must not.
  const std::string main_src =
      "import module namespace m = \"urn:plantest:lib\";\n"
      "declare function local:f() { m:g() + 100 }; local:f()";
  const char* lib_v1 =
      "module namespace m = \"urn:plantest:lib\";\n"
      "declare function m:g() { 1 };";
  const char* lib_v2 =
      "module namespace m = \"urn:plantest:lib\";\n"
      "declare function m:g() { 2 };";
  Engine e1;
  ASSERT_TRUE(e1.LoadLibrary(lib_v1).ok());
  std::string r1;
  Evaluator::EvalStats s1 = CallOnFreshEngine(e1, main_src, &r1);
  EXPECT_EQ(r1, "101");
  EXPECT_GT(s1.plan_compiles, 0u);
  Engine e2;
  ASSERT_TRUE(e2.LoadLibrary(lib_v2).ok());
  std::string r2;
  Evaluator::EvalStats s2 = CallOnFreshEngine(e2, main_src, &r2);
  // The stale v1 plans must not serve the v2 page: invalidation fired,
  // a recompile happened, and the result reflects the new library.
  EXPECT_EQ(r2, "102");
  EXPECT_EQ(s2.plan_invalidations, 1u);
  EXPECT_GT(s2.plan_compiles, 0u);
}

TEST(PlanCacheTest, ChangedLibraryOptionsAndNamespacesInvalidate) {
  plan::PlanCache::Global().Clear();
  const std::string main_src =
      "import module namespace m = \"urn:plantest:opt\";\n"
      "declare function local:f() { m:g() }; local:f()";
  // Same functions; only a namespace declaration / option differs.
  const char* lib_v1 =
      "module namespace m = \"urn:plantest:opt\";\n"
      "declare namespace aux = \"urn:aux:v1\";\n"
      "declare function m:g() { 7 };";
  const char* lib_v2 =
      "module namespace m = \"urn:plantest:opt\";\n"
      "declare namespace aux = \"urn:aux:v2\";\n"
      "declare function m:g() { 7 };";
  Engine e1;
  ASSERT_TRUE(e1.LoadLibrary(lib_v1).ok());
  std::string r1;
  CallOnFreshEngine(e1, main_src, &r1);
  Engine e2;
  ASSERT_TRUE(e2.LoadLibrary(lib_v2).ok());
  std::string r2;
  Evaluator::EvalStats s2 = CallOnFreshEngine(e2, main_src, &r2);
  EXPECT_EQ(s2.plan_invalidations, 1u);
  EXPECT_EQ(r2, r1);
}

TEST(PlanCacheTest, AblationOffNeverTouchesTheCache) {
  plan::PlanCache::Global().Clear();
  const std::string source =
      "declare function local:f() { 41 + 1 }; local:f()";
  Engine engine;
  auto compiled = engine.Compile(source);
  ASSERT_TRUE(compiled.ok());
  Evaluator::EvalOptions off;
  off.compiled_plans = false;
  (*compiled)->evaluator().set_options(off);
  DynamicContext ctx;
  ASSERT_TRUE((*compiled)->BindGlobals(ctx).ok());
  auto r = (*compiled)->Call(xml::QName("http://www.w3.org/2005/xquery-local-functions", "f"), {}, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
  const Evaluator::EvalStats& stats = (*compiled)->evaluator().stats();
  EXPECT_EQ(stats.plan_compiles, 0u);
  EXPECT_EQ(stats.plan_hits, 0u);
  EXPECT_EQ(stats.plan_misses, 0u);
  EXPECT_EQ(plan::PlanCache::Global().size(), 0u);
}

// ------------------------------------------------ memo interaction ---

TEST(PlanMemoInteraction, MemoHitNeverConsultsThePlanLayer) {
  BrowserEnvironment env;
  Status st = env.LoadPage(
      "http://plans.example.com/",
      "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      "declare function local:c($evt, $obj) {\n"
      "  concat(\"n=\", string(count(//item)))\n"
      "};\n"
      "on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:c\n"
      "]]></script></head><body><input id=\"btn\"/>"
      "<item/><item/><item/></body></html>");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(env.ScriptErrors().empty()) << env.ScriptErrors();
  xml::Node* btn = env.ById("btn");
  ASSERT_NE(btn, nullptr);
  auto click = [&] {
    browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(btn, e);
  };
  // Cold click: a memo miss that dispatches through a plan.
  click();
  const auto& cold = env.plugin().last_event_stats();
  EXPECT_EQ(cold.memo_hits, 0u);
  EXPECT_GE(cold.plan_hits, 1u);
  // Warm click: served from the memo cache — the dispatch must not
  // consult the plan layer at all (no hits, no misses, no compiles).
  click();
  const auto& warm = env.plugin().last_event_stats();
  EXPECT_GE(warm.memo_hits, 1u);
  EXPECT_EQ(warm.plan_hits, 0u);
  EXPECT_EQ(warm.plan_misses, 0u);
  EXPECT_EQ(warm.plan_compiles, 0u);
}

// -------------------------------------------------- concurrency ---

TEST(PlanCacheTest, RacingEnginesAgreeAndShareOneEntry) {
  plan::PlanCache::Global().Clear();
  const std::string source =
      "declare function local:f() { sum(for $i in 1 to 50 return $i * $i) "
      "}; local:f()";
  constexpr int kThreads = 8;
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Engine engine;
      CallOnFreshEngine(engine, source, &results[t]);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], "42925") << "thread " << t;
  }
  // Racing compilers may all have compiled, but exactly one Insert won.
  EXPECT_EQ(plan::PlanCache::Global().size(), 1u);
}

TEST(PlanCacheTest, StagedPoolListenersDispatchThroughPlans) {
  // Four pure listeners on a 4-worker pool with the memo disabled, so
  // every staged run executes its plan on a worker-slot evaluator —
  // concurrent probes of the page plans and the global cache.
  std::string script;
  for (int l = 0; l < 4; ++l) {
    script += "declare function local:p" + std::to_string(l) +
              "($evt, $obj) { browser:alert(concat(\"p" +
              std::to_string(l) + "=\", string(count(//item) + " +
              std::to_string(l) + "))) };\n";
  }
  script += "{ ";
  for (int l = 0; l < 4; ++l) {
    script += "on event \"onclick\" at //input[@id=\"btn\"] "
              "attach listener local:p" + std::to_string(l) + ";\n";
  }
  script += "() }";
  const std::string page =
      "<html><head><script type=\"text/xqueryp\"><![CDATA[\n" + script +
      "\n]]></script></head><body><input id=\"btn\"/>"
      "<item/><item/></body></html>";

  BrowserEnvironment env;
  env.plugin().set_memo_enabled(false);
  env.plugin().EnableParallelDispatch(4);
  ASSERT_TRUE(env.LoadPage("http://plans.example.com/", page).ok());
  ASSERT_TRUE(env.ScriptErrors().empty()) << env.ScriptErrors();
  xml::Node* btn = env.ById("btn");
  ASSERT_NE(btn, nullptr);
  for (int c = 0; c < 3; ++c) {
    browser::Event e;
    e.type = "onclick";
    (void)env.plugin().FireEvent(btn, e);
  }
  ASSERT_TRUE(env.ScriptErrors().empty()) << env.ScriptErrors();
  const std::vector<std::string> expected = {"p0=2", "p1=3", "p2=4", "p3=5",
                                             "p0=2", "p1=3", "p2=4", "p3=5",
                                             "p0=2", "p1=3", "p2=4", "p3=5"};
  EXPECT_EQ(env.plugin().alerts(), expected);
  // Every staged listener call executed through a plan; the warm
  // dispatches compiled nothing.
  const auto& stats = env.plugin().last_event_stats();
  EXPECT_GE(stats.plan_hits, 1u);
  EXPECT_EQ(stats.plan_compiles, 0u);
}

}  // namespace
}  // namespace xqib::xquery
