// Unit tests for the base layer: Status/Result and string utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "base/result.h"
#include "base/status.h"
#include "base/strings.h"

namespace xqib {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  EXPECT_EQ(ok.code(), "");

  Status err = Status::Error("XPST0003", "bad syntax");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), "XPST0003");
  EXPECT_EQ(err.message(), "bad syntax");
  EXPECT_EQ(err.ToString(), "[XPST0003] bad syntax");
  EXPECT_TRUE(err.IsSyntaxError());
  EXPECT_FALSE(Status::TypeError("x").IsSyntaxError());
}

TEST(StatusTest, CopySharesRep) {
  Status a = Status::Error("E", "m");
  Status b = a;
  EXPECT_EQ(b.code(), "E");
  EXPECT_EQ(b.message(), "m");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.ValueOr(-1), 42);

  Result<int> err(Status::TypeError("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), "XPTY0004");
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MacrosPropagate) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Error("E1", "inner");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    XQ_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), "E1");

  auto st_fn = [&](bool fail) -> Status {
    XQ_RETURN_NOT_OK(outer(fail).status());
    return Status();
  };
  EXPECT_TRUE(st_fn(false).ok());
  EXPECT_FALSE(st_fn(true).ok());
}

TEST(Strings, TrimAndNormalize) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(NormalizeSpace(" a \n\t b   c "), "a b c");
  EXPECT_EQ(NormalizeSpace("   "), "");
}

TEST(Strings, SplitChar) {
  auto parts = SplitChar("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitChar("", ',').size(), 1u);
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(AsciiToUpper("aBc-1"), "ABC-1");
  EXPECT_EQ(AsciiToLower("AbC-1"), "abc-1");
  EXPECT_TRUE(AsciiEqualsIgnoreCase("Script", "sCRIPT"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("a", "ab"));
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(Contains("hello", "ell"));
}

TEST(Strings, Utf8RoundTrip) {
  // "héllo 🌍" — 2-byte, 4-byte sequences.
  std::string s = "h\xC3\xA9llo \xF0\x9F\x8C\x8D";
  auto cps = Utf8ToCodepoints(s);
  ASSERT_EQ(cps.size(), 7u);
  EXPECT_EQ(cps[1], 0xE9u);
  EXPECT_EQ(cps[6], 0x1F30Du);
  EXPECT_EQ(CodepointsToUtf8(cps), s);
  EXPECT_EQ(Utf8Length(s), 7u);
}

TEST(Strings, InvalidUtf8YieldsReplacement) {
  std::string bad = "a\xFFz";
  auto cps = Utf8ToCodepoints(bad);
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], 0xFFFDu);
}

TEST(Strings, NCNames) {
  EXPECT_TRUE(IsValidNCName("abc"));
  EXPECT_TRUE(IsValidNCName("_a-b.c1"));
  EXPECT_FALSE(IsValidNCName("1abc"));
  EXPECT_FALSE(IsValidNCName(""));
  EXPECT_FALSE(IsValidNCName("-x"));
}

TEST(Strings, DoubleToXPathString) {
  EXPECT_EQ(DoubleToXPathString(0.0), "0");
  EXPECT_EQ(DoubleToXPathString(-0.0), "-0");
  EXPECT_EQ(DoubleToXPathString(2.0), "2");
  EXPECT_EQ(DoubleToXPathString(2.5), "2.5");
  EXPECT_EQ(DoubleToXPathString(-1e15), "-1e+15");
  EXPECT_EQ(DoubleToXPathString(std::nan("")), "NaN");
  EXPECT_EQ(DoubleToXPathString(-1.0 / 0.0), "-INF");
}

}  // namespace
}  // namespace xqib
