// Tests for the rewrite optimizer: every rule must preserve semantics
// (checked by evaluating both forms) and fire where expected.

#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/optimizer.h"
#include "xquery/parser.h"

namespace xqib::xquery {
namespace {

OptimizerStats Optimize(const std::string& query, ExprPtr* out = nullptr) {
  auto module = ParseModule(query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  OptimizerStats stats = OptimizeModule(module->get(), OptimizerOptions());
  if (out != nullptr) *out = std::move((*module)->body);
  return stats;
}

// Evaluates a query with and without optimization; both results must
// agree (semantic preservation).
std::string EvalBoth(const std::string& query, const std::string& xml = "") {
  std::string results[2];
  for (int pass = 0; pass < 2; ++pass) {
    Engine engine;
    CompileOptions options;
    options.optimize = pass == 1;
    auto q = engine.Compile(query, options);
    if (!q.ok()) return "PARSE-ERROR " + q.status().ToString();
    DynamicContext ctx;
    std::unique_ptr<xml::Document> doc;
    if (!xml.empty()) {
      doc = std::move(xml::ParseDocument(xml)).value();
      DynamicContext::Focus f;
      f.item = xdm::Item::Node(doc->root());
      f.position = 1;
      f.size = 1;
      f.has_item = true;
      ctx.set_focus(f);
    }
    Status b = (*q)->BindGlobals(ctx);
    if (!b.ok()) return "BIND-ERROR";
    auto r = (*q)->Run(ctx);
    results[pass] = r.ok() ? xdm::SequenceToString(*r)
                           : "ERROR " + r.status().code();
  }
  EXPECT_EQ(results[0], results[1]) << "optimizer changed semantics of: "
                                    << query;
  return results[1];
}

TEST(ConstantFolding, Arithmetic) {
  EXPECT_GE(Optimize("1 + 2").folded_constants, 1);
  EXPECT_GE(Optimize("2 * 3 + 4").folded_constants, 2);
  EXPECT_GE(Optimize("-(5)").folded_constants, 1);
  EXPECT_EQ(EvalBoth("1 + 2 * 3"), "7");
  EXPECT_EQ(EvalBoth("7 idiv 2 + 7 mod 2"), "4");
}

TEST(ConstantFolding, DivisionByZeroIsNotFolded) {
  // The runtime error must survive.
  EXPECT_EQ(Optimize("1 idiv 0").folded_constants, 0);
  EXPECT_EQ(EvalBoth("1 idiv 0"), "ERROR FOAR0001");
}

TEST(ConstantFolding, InexactDivisionIsNotFoldedToInteger) {
  EXPECT_EQ(EvalBoth("10 div 4"), "2.5");
}

TEST(ConstantFolding, Comparisons) {
  EXPECT_GE(Optimize("1 < 2").folded_constants, 1);
  EXPECT_GE(Optimize("'a' eq 'a'").folded_constants, 1);
  EXPECT_EQ(EvalBoth("3 >= 4"), "false");
}

TEST(BranchElimination, ConstantIf) {
  EXPECT_GE(Optimize("if (true()) then 1 else 2").eliminated_branches, 0);
  // Folding happens through fn:true() only when the comparison feeding
  // the branch is itself literal:
  ExprPtr body;
  OptimizerStats stats = Optimize("if (1 < 2) then 'a' else 'b'", &body);
  EXPECT_GE(stats.folded_constants, 1);
  EXPECT_GE(stats.eliminated_branches, 1);
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->kind, ExprKind::kLiteral);
  EXPECT_EQ(EvalBoth("if (1 < 2) then 'a' else 'b'"), "a");
}

TEST(BranchElimination, LogicalOperators) {
  EXPECT_GE(Optimize("1 = 1 and 2 = 2").eliminated_branches, 1);
  EXPECT_GE(Optimize("1 = 2 or 3 = 3").eliminated_branches, 1);
  EXPECT_EQ(EvalBoth("1 = 1 and 2 = 3"), "false");
  EXPECT_EQ(EvalBoth("1 = 2 or 3 = 3"), "true");
}

TEST(BranchElimination, FLWORWhereConstant) {
  EXPECT_GE(Optimize("for $x in (1, 2) where 1 = 2 return $x")
                .eliminated_branches,
            1);
  EXPECT_EQ(EvalBoth("for $x in (1, 2) where 1 = 2 return $x"), "");
  EXPECT_EQ(EvalBoth("for $x in (1, 2) where 1 = 1 return $x"), "1 2");
}

TEST(CardinalityRewrites, CountComparisons) {
  EXPECT_EQ(Optimize("count(//a) = 0").cardinality_rewritten, 1);
  EXPECT_EQ(Optimize("count(//a) > 0").cardinality_rewritten, 1);
  EXPECT_EQ(Optimize("count(//a) != 0").cardinality_rewritten, 1);
  EXPECT_EQ(Optimize("count(//a) >= 1").cardinality_rewritten, 1);
  EXPECT_EQ(Optimize("0 = count(//a)").cardinality_rewritten, 1);
  EXPECT_EQ(Optimize("0 < count(//a)").cardinality_rewritten, 1);
  // Not rewritten: exact counts.
  EXPECT_EQ(Optimize("count(//a) = 3").cardinality_rewritten, 0);
}

TEST(CardinalityRewrites, PreservesSemantics) {
  const char* doc = "<r><a/><a/></r>";
  EXPECT_EQ(EvalBoth("count(//a) = 0", doc), "false");
  EXPECT_EQ(EvalBoth("count(//a) > 0", doc), "true");
  EXPECT_EQ(EvalBoth("count(//b) = 0", doc), "true");
  EXPECT_EQ(EvalBoth("0 < count(//a)", doc), "true");
  EXPECT_EQ(EvalBoth("count(//a) = 2", doc), "true");
}

TEST(BooleanSimplification, NotChains) {
  EXPECT_EQ(Optimize("not(not(//a))").boolean_simplified, 1);
  EXPECT_EQ(Optimize("not(empty(//a))").boolean_simplified, 1);
  EXPECT_EQ(Optimize("not(exists(//a))").boolean_simplified, 1);
  const char* doc = "<r><a/></r>";
  EXPECT_EQ(EvalBoth("not(not(//a))", doc), "true");
  EXPECT_EQ(EvalBoth("not(empty(//a))", doc), "true");
  EXPECT_EQ(EvalBoth("not(exists(//b))", doc), "true");
}

TEST(Optimizer, RewritesInsideFLWORAndFunctions) {
  OptimizerStats stats = Optimize(
      "declare function local:f($x) { $x + (1 + 2) }; "
      "for $i in 1 to 3 where count(//a) > 0 return local:f($i * (2 + 3))");
  EXPECT_GE(stats.folded_constants, 2);
  EXPECT_EQ(stats.cardinality_rewritten, 1);
}

TEST(Optimizer, RewritesInsideConstructors) {
  OptimizerStats stats = Optimize("<a x=\"{1 + 2}\">{3 * 4}</a>");
  EXPECT_GE(stats.folded_constants, 2);
  EXPECT_EQ(EvalBoth("string(<a x=\"{1 + 2}\">{3 * 4}</a>/@x)"), "3");
}

TEST(PathCollapsing, DescendantChildFuses) {
  ExprPtr body;
  OptimizerStats stats = Optimize("//a/b", &body);
  EXPECT_EQ(stats.paths_collapsed, 1);  // only the predicate-free //a
  ASSERT_EQ(body->kind, ExprKind::kPath);
  // //a collapsed to descendant::a; /b stays child::b.
  ASSERT_EQ(body->steps.size(), 2u);
  EXPECT_EQ(body->steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(body->steps[1].axis, Axis::kChild);
}

TEST(PathCollapsing, PositionalPredicatesBlockFusion) {
  ExprPtr body;
  OptimizerStats stats = Optimize("//a[1]", &body);
  EXPECT_EQ(stats.paths_collapsed, 0);
  ASSERT_EQ(body->steps.size(), 2u);
  EXPECT_EQ(body->steps[0].axis, Axis::kDescendantOrSelf);
}

TEST(PathCollapsing, PreservesSemantics) {
  const char* doc = "<r><a><b/><a><b/><b/></a></a><b/></r>";
  EXPECT_EQ(EvalBoth("count(//a)", doc), "2");
  EXPECT_EQ(EvalBoth("count(//b)", doc), "4");
  EXPECT_EQ(EvalBoth("count(//a/b)", doc), "3");
  // The positional case the fusion must NOT change: each a's first b.
  EXPECT_EQ(EvalBoth("count(//a/b[1])", doc), "2");
  EXPECT_EQ(EvalBoth("count(//b[1])", doc), "3");
}

TEST(Optimizer, DisabledRulesDoNothing) {
  auto module = ParseModule("1 + 2");
  ASSERT_TRUE(module.ok());
  OptimizerOptions off;
  off.constant_folding = false;
  off.branch_elimination = false;
  off.cardinality_rewrites = false;
  off.boolean_simplification = false;
  off.path_collapsing = false;
  off.ordering_elision = false;
  OptimizerStats stats = OptimizeModule(module->get(), off);
  EXPECT_EQ(stats.total(), 0);
}

TEST(OrderingElision, ChildChainsFullyElide) {
  // Root-anchored child chains stay sorted at every step.
  EXPECT_EQ(Optimize("/a/b/c").sort_elisions, 3);
  EXPECT_EQ(Optimize("/a/@id").sort_elisions, 2);
  // After a descendant step, a child step can interleave: only the
  // first two steps are provably ordered ("//b" collapses to one
  // descendant step from the root).
  EXPECT_EQ(Optimize("//b/c").sort_elisions, 1);
}

TEST(OrderingElision, ReverseAxesNeverElide) {
  EXPECT_EQ(Optimize("/a/b/ancestor::*").sort_elisions, 2);
  EXPECT_EQ(Optimize("/a/b/preceding-sibling::*").sort_elisions, 2);
  EXPECT_EQ(Optimize("/a/b/preceding::*").sort_elisions, 2);
}

TEST(OrderingElision, AttributesElideEvenAfterDescendant) {
  // Attribute keys sort between their element and its first child, and
  // attributes of distinct elements never collide — elidable even from
  // a context with ancestor pairs.
  EXPECT_EQ(Optimize("//@p").sort_elisions, 2);
}

TEST(OrderingElision, UnknownContextBlocksElision) {
  // Without analyzer facts, $x has unproven cardinality, so $x/b must
  // sort; the only elision is "//a" (collapsed to one descendant step).
  EXPECT_EQ(Optimize("for $x in //a return $x/b").sort_elisions, 1);
}

TEST(OrderingElision, DisabledFlagLeavesStepsUnannotated) {
  OptimizerOptions off;
  off.ordering_elision = false;
  auto module = ParseModule("/a/b/c");
  ASSERT_TRUE(module.ok());
  OptimizerStats stats = OptimizeModule(module->get(), off);
  EXPECT_EQ(stats.sort_elisions, 0);
}

TEST(OrderingElision, PreservesSemantics) {
  const char* xml = "<r><a p='1'><b/><b/></a><a p='2'><b/></a></r>";
  EXPECT_EQ(EvalBoth("/r/a/b", xml), EvalBoth("/r/a/b", xml));
  EXPECT_EQ(EvalBoth("count(//a/b)", xml), "3");
  EXPECT_EQ(EvalBoth("//a/@p", xml), "1 2");
  EXPECT_EQ(EvalBoth("string-join(for $x in //b return 'b', '')", xml),
            "bbb");
}

// Property-style sweep: the optimizer must preserve results on a corpus
// of mixed queries.
class OptimizerPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerPropertyTest, OptimizedResultMatchesUnoptimized) {
  EvalBoth(GetParam(), "<r><a p='1'>x</a><a p='2'>y</a><b>z</b></r>");
}

INSTANTIATE_TEST_SUITE_P(
    QueryCorpus, OptimizerPropertyTest,
    ::testing::Values(
        "1 + 2 * 3 - 4 idiv 2",
        "for $x in //a return string($x/@p)",
        "if (count(//a) > 0) then 'yes' else 'no'",
        "count(//a) = 0 or count(//b) != 0",
        "not(not(//a[@p = '1']))",
        "for $x in //a where 1 = 1 order by $x/@p descending return $x",
        "some $x in //a satisfies $x = 'x'",
        "string-join(for $i in 1 to 5 return string($i * (1 + 1)), ',')",
        "(//a | //b)[2]",
        "<out n=\"{2 + 3}\">{for $a in //a return <i>{$a/text()}</i>}</out>"
        "/@n",
        "every $x in //a satisfies exists($x/@p)",
        "count(//a[not(empty(@p))])"));

}  // namespace
}  // namespace xqib::xquery
