// Cross-module integration tests: multi-page flows, frames, repeated
// event rounds, multi-script pages, and longer-running stateful
// interactions — the "whole browser session" level above plugin_test.

#include <gtest/gtest.h>

#include <sstream>

#include "app/environment.h"
#include "xml/serializer.h"

namespace xqib {
namespace {

using app::BrowserEnvironment;

TEST(Integration, MultiPageNavigationRunsEachPagesScripts) {
  BrowserEnvironment env;
  for (int i = 1; i <= 3; ++i) {
    env.fabric().PutResource(
        "http://site.example.com/p" + std::to_string(i),
        "<html><body><p id=\"n\">" + std::to_string(i) +
            "</p><script type=\"text/xquery\">browser:alert(string(//p["
            "@id=\"n\"]))</script></body></html>");
  }
  ASSERT_TRUE(env.Navigate("http://site.example.com/p1").ok());
  ASSERT_TRUE(env.Navigate("http://site.example.com/p2").ok());
  ASSERT_TRUE(env.Navigate("http://site.example.com/p3").ok());
  ASSERT_EQ(env.plugin().alerts().size(), 3u);
  EXPECT_EQ(env.plugin().alerts()[0], "1");
  EXPECT_EQ(env.plugin().alerts()[2], "3");
  // History works across the whole session.
  ASSERT_TRUE(env.window()->HistoryBack().ok());
  EXPECT_EQ(env.window()->url(), "http://site.example.com/p2");
}

TEST(Integration, OldPageListenersDieOnNavigation) {
  BrowserEnvironment env;
  env.fabric().PutResource("http://site.example.com/a",
                           R"(<html><body><input id="b"/>
      <script type="text/xquery">
      declare updating function local:l($e, $o) {
        insert node <hit/> into /html/body
      };
      on event "onclick" at //input[@id="b"] attach listener local:l
      </script></body></html>)");
  env.fabric().PutResource("http://site.example.com/b",
                           "<html><body/></html>");
  ASSERT_TRUE(env.Navigate("http://site.example.com/a").ok());
  EXPECT_GE(env.browser().events().listener_count(), 1u);
  ASSERT_TRUE(env.Navigate("http://site.example.com/b").ok());
  EXPECT_EQ(env.browser().events().listener_count(), 0u);
}

TEST(Integration, HundredEventRoundsAccumulateState) {
  BrowserEnvironment env;
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><body><input id="inc"/><span id="n">0</span>
    <script type="text/xqueryp"><![CDATA[
      declare updating function local:inc($e, $o) {
        replace value of //span[@id="n"]
          with xs:integer(string(//span[@id="n"])) + 1
      };
      on event "onclick" at //input[@id="inc"] attach listener local:inc
    ]]></script></body></html>)")
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(env.ClickId("inc").ok()) << "round " << i;
  }
  EXPECT_EQ(env.ById("n")->StringValue(), "100");
}

TEST(Integration, MultipleXQueryScriptsShareContext) {
  // Script 1 declares a function and a global; script 2 uses both.
  BrowserEnvironment env;
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><head>
    <script type="text/xquery">
      declare variable $greeting := "Hello";
      declare function local:shout($s) { upper-case($s) };
    </script>
    <script type="text/xquery">
      browser:alert(local:shout(concat($greeting, " world")))
    </script>
    </head><body/></html>)")
                  .ok());
  ASSERT_EQ(env.plugin().alerts().size(), 1u);
  EXPECT_EQ(env.plugin().alerts()[0], "HELLO WORLD");
}

TEST(Integration, FramesWithDifferentPagesAndCrossFrameQuery) {
  BrowserEnvironment env;
  browser::Window* left = env.window()->CreateFrame("left");
  browser::Window* right = env.window()->CreateFrame("right");
  ASSERT_TRUE(left->LoadSource("http://app.example.com/left",
                               "<html><body><p id='x'>L</p></body></html>")
                  .ok());
  ASSERT_TRUE(right
                  ->LoadSource("http://app.example.com/right",
                               "<html><body><p id='x'>R</p></body></html>")
                  .ok());
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><body><script type="text/xquery">
    browser:alert(string-join(
      for $w in browser:self()/frames/window
      return string(browser:document($w)//p[@id="x"]), "+"))
    </script></body></html>)")
                  .ok())
      << env.ScriptErrors();
  ASSERT_EQ(env.plugin().alerts().size(), 1u);
  EXPECT_EQ(env.plugin().alerts()[0], "L+R");
}

TEST(Integration, ServiceBackedFormRoundTrip) {
  // A form whose submit button calls a deployed web service and writes
  // the response into the page — the full §3.4 + §4.3 stack in one flow.
  BrowserEnvironment env;
  ASSERT_TRUE(env.services()
                  .Deploy(R"(module namespace calc="urn:calc" port:2001;
                     declare function calc:add($a, $b) {
                       xs:integer($a) + xs:integer($b) };)",
                          "calc.example.com")
                  .ok());
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><head><script type="text/xqueryp"><![CDATA[
    import module namespace calc = "urn:calc"
      at "http://calc.example.com:2001/wsdl";
    declare updating function local:go($e, $o) {
      replace value of //span[@id="out"]
        with calc:add(string(//input[@id="a"]/@value),
                      string(//input[@id="b"]/@value))
    };
    on event "onclick" at //input[@id="go"] attach listener local:go
    ]]></script></head><body>
    <input id="a" value="19"/><input id="b" value="23"/>
    <input type="button" id="go"/><span id="out">?</span>
    </body></html>)")
                  .ok())
      << env.ScriptErrors();
  uint64_t before = env.fabric().stats().requests;
  ASSERT_TRUE(env.ClickId("go").ok()) << env.ScriptErrors();
  EXPECT_EQ(env.ById("out")->StringValue(), "42");
  EXPECT_EQ(env.fabric().stats().requests, before + 1);
}

TEST(Integration, LargePageManySmallUpdates) {
  // Stress: a 2 000-row page, a listener that touches one row per event,
  // 50 events. Exercises id cache invalidation + PUL + dispatch together.
  std::ostringstream page;
  page << R"(<html><body><input id="step"/><table id="t">)";
  for (int i = 0; i < 2000; ++i) {
    page << "<tr id=\"r" << i << "\"><td>0</td></tr>";
  }
  page << R"(</table>
    <script type="text/xqueryp"><![CDATA[
    declare variable $cursor := 0;
    declare updating function local:step($e, $o) {
      replace value of //tr[@id=concat("r", string($cursor * 40))]/td
        with "1";
      set $cursor := $cursor + 1;
    };
    on event "onclick" at //input[@id="step"] attach listener local:step
    ]]></script></body></html>)";
  BrowserEnvironment env;
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", page.str()).ok())
      << env.ScriptErrors();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(env.ClickId("step").ok()) << env.ScriptErrors();
  }
  // Rows 0, 40, 80, ... 1960 flipped to 1.
  EXPECT_EQ(env.ById("r40")->StringValue(), "1");
  EXPECT_EQ(env.ById("r1960")->StringValue(), "1");
  EXPECT_EQ(env.ById("r41")->StringValue(), "0");
}

TEST(Integration, PromptAndConfirmResponders) {
  BrowserEnvironment env;
  env.plugin().prompt_responder = [](const std::string& q) {
    return q == "Your name?" ? "Ada" : "?";
  };
  env.plugin().confirm_responder = [](const std::string&) { return false; };
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><body><script type="text/xquery">
    ( browser:alert(concat("hi ", browser:prompt("Your name?"))),
      browser:alert(string(browser:confirm("Sure?"))) )
    </script></body></html>)")
                  .ok());
  ASSERT_EQ(env.plugin().alerts().size(), 2u);
  EXPECT_EQ(env.plugin().alerts()[0], "hi Ada");
  EXPECT_EQ(env.plugin().alerts()[1], "false");
}

}  // namespace
}  // namespace xqib
