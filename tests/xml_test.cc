// Unit tests for the XML substrate: parser, DOM mutation, document
// order, serialization round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "xml/dom.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqib::xml {
namespace {

std::unique_ptr<Document> Parse(const std::string& s) {
  auto r = ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(XmlParser, BasicStructure) {
  auto doc = Parse("<a><b x=\"1\"/><c>text</c></a>");
  Node* a = doc->DocumentElement();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name().local(), "a");
  ASSERT_EQ(a->children().size(), 2u);
  EXPECT_EQ(a->children()[0]->GetAttributeValue("x"), "1");
  EXPECT_EQ(a->children()[1]->StringValue(), "text");
}

TEST(XmlParser, EntitiesDecoded) {
  auto doc = Parse("<a x=\"&lt;&amp;&quot;\">&lt;tag&gt; &#65;&#x42;</a>");
  Node* a = doc->DocumentElement();
  EXPECT_EQ(a->GetAttributeValue("x"), "<&\"");
  EXPECT_EQ(a->StringValue(), "<tag> AB");
}

TEST(XmlParser, CdataCommentsAndPis) {
  auto doc = Parse(
      "<a><![CDATA[<raw> & stuff]]><!--note--><?target data?></a>");
  Node* a = doc->DocumentElement();
  ASSERT_EQ(a->children().size(), 3u);
  EXPECT_EQ(a->children()[0]->kind(), NodeKind::kText);
  EXPECT_EQ(a->children()[0]->value(), "<raw> & stuff");
  EXPECT_EQ(a->children()[1]->kind(), NodeKind::kComment);
  EXPECT_EQ(a->children()[1]->value(), "note");
  EXPECT_EQ(a->children()[2]->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(a->children()[2]->name().local(), "target");
}

TEST(XmlParser, Namespaces) {
  auto doc = Parse(
      "<a xmlns=\"urn:d\" xmlns:p=\"urn:p\"><b/><p:c p:at=\"v\"/></a>");
  Node* a = doc->DocumentElement();
  EXPECT_EQ(a->name().ns(), "urn:d");
  EXPECT_EQ(a->children()[0]->name().ns(), "urn:d");
  EXPECT_EQ(a->children()[1]->name().ns(), "urn:p");
  // Unprefixed attributes stay in no namespace.
  EXPECT_EQ(a->children()[1]->FindAttribute("urn:p", "at")->value(), "v");
}

TEST(XmlParser, UndeclaredPrefixFails) {
  EXPECT_FALSE(ParseDocument("<p:a/>").ok());
}

TEST(XmlParser, MismatchedTagsFail) {
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

TEST(XmlParser, DoctypeAndXmlDeclSkipped) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE html PUBLIC \"x\" \"y\"><a/>");
  EXPECT_EQ(doc->DocumentElement()->name().local(), "a");
}

TEST(XmlParser, WhitespaceOnlyTextDroppedByDefault) {
  auto doc = Parse("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(doc->DocumentElement()->children().size(), 2u);
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  auto doc2 = ParseDocument("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ((*doc2)->DocumentElement()->children().size(), 3u);
}

TEST(XmlParser, ScriptContentIsRawText) {
  auto doc = Parse(
      "<html><script type=\"text/xquery\">if (1 &gt; 0) then <b/> else "
      "2</script></html>");
  Node* script = doc->DocumentElement()->children()[0];
  ASSERT_EQ(script->children().size(), 1u);
  EXPECT_EQ(script->children()[0]->kind(), NodeKind::kText);
  // Content is literal — the <b/> was NOT parsed as an element and
  // entities are NOT decoded inside scripts.
  EXPECT_TRUE(script->StringValue().find("<b/>") != std::string::npos);
}

TEST(XmlParser, ScriptCdataWrapperStripped) {
  auto doc = Parse("<html><script><![CDATA[1 < 2 && 3 > 2]]></script>"
                   "</html>");
  EXPECT_EQ(doc->DocumentElement()->children()[0]->StringValue(),
            "1 < 2 && 3 > 2");
}

TEST(XmlParser, IeTagFoldingUppercasesNames) {
  ParseOptions ie;
  ie.ie_tag_folding = true;
  auto doc = ParseDocument("<html><body><div id=\"d\"/></body></html>", ie);
  ASSERT_TRUE(doc.ok());
  Node* html = (*doc)->DocumentElement();
  EXPECT_EQ(html->name().local(), "HTML");
  EXPECT_EQ(html->children()[0]->name().local(), "BODY");
  // Attributes are not folded.
  EXPECT_EQ(html->children()[0]->children()[0]->GetAttributeValue("id"),
            "d");
}

TEST(XmlParser, FragmentParsing) {
  Document doc;
  Node* host = doc.CreateElement(QName("host"));
  doc.root()->AppendChild(host);
  Status st = ParseFragmentInto("<x/>text<y a=\"1\"/>", host,
                                ParseOptions());
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(host->children().size(), 3u);
  EXPECT_EQ(host->children()[1]->value(), "text");
}

// ---------------------------------------------------------------- DOM ---

TEST(Dom, MutationAndStringValue) {
  Document doc;
  Node* root = doc.CreateElement(QName("root"));
  doc.root()->AppendChild(root);
  Node* a = doc.CreateElement(QName("a"));
  root->AppendChild(a);
  a->AppendChild(doc.CreateText("hello"));
  Node* b = doc.CreateElement(QName("b"));
  root->InsertBefore(b, a);
  EXPECT_EQ(Serialize(root), "<root><b/><a>hello</a></root>");
  root->RemoveChild(b);
  EXPECT_EQ(Serialize(root), "<root><a>hello</a></root>");
  EXPECT_EQ(root->StringValue(), "hello");
}

TEST(Dom, SetValueOnElementReplacesContent) {
  auto doc = Parse("<a><b/><c/>tail</a>");
  Node* a = doc->DocumentElement();
  a->SetValue("fresh");
  EXPECT_EQ(Serialize(a), "<a>fresh</a>");
}

TEST(Dom, AttributeLifecycle) {
  auto doc = Parse("<a/>");
  Node* a = doc->DocumentElement();
  a->SetAttribute(QName("k"), "v1");
  EXPECT_EQ(a->GetAttributeValue("k"), "v1");
  a->SetAttribute(QName("k"), "v2");  // replace, not duplicate
  EXPECT_EQ(a->attributes().size(), 1u);
  EXPECT_EQ(a->GetAttributeValue("k"), "v2");
  a->RemoveAttribute("", "k");
  EXPECT_EQ(a->attributes().size(), 0u);
}

TEST(Dom, DocumentOrderAcrossMutations) {
  auto doc = Parse("<r><a/><b/><c/></r>");
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* c = r->children()[2];
  EXPECT_LT(a->CompareDocumentOrder(c), 0);
  // Move c before a: order flips.
  r->RemoveChild(c);
  r->InsertBefore(c, a);
  EXPECT_GT(a->CompareDocumentOrder(c), 0);
}

TEST(Dom, AttributesOrderAfterOwnerBeforeChildren) {
  auto doc = Parse("<r x=\"1\"><a/></r>");
  Node* r = doc->DocumentElement();
  Node* x = r->FindAttribute("x");
  Node* a = r->children()[0];
  EXPECT_LT(r->CompareDocumentOrder(x), 0);
  EXPECT_LT(x->CompareDocumentOrder(a), 0);
}

TEST(Dom, ImportCopyIsDeepAndDetached) {
  auto doc1 = Parse("<a x=\"1\"><b><c>t</c></b></a>");
  Document doc2;
  Node* copy = doc2.ImportCopy(doc1->DocumentElement());
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_EQ(Serialize(copy), "<a x=\"1\"><b><c>t</c></b></a>");
  // Mutating the copy leaves the original untouched.
  copy->SetAttribute(QName("x"), "2");
  EXPECT_EQ(doc1->DocumentElement()->GetAttributeValue("x"), "1");
}

TEST(Dom, GetElementById) {
  auto doc = Parse("<r><a id=\"one\"/><b><c id=\"two\"/></b></r>");
  EXPECT_EQ(doc->GetElementById("one")->name().local(), "a");
  EXPECT_EQ(doc->GetElementById("two")->name().local(), "c");
  EXPECT_EQ(doc->GetElementById("zzz"), nullptr);
  // Detached elements are not found.
  Node* a = doc->GetElementById("one");
  a->Detach();
  EXPECT_EQ(doc->GetElementById("one"), nullptr);
}

// ---------------------------------------------- element-name index ---

TEST(Dom, ElementsByNameFindsInDocumentOrder) {
  auto doc = Parse("<r><p/><q><p/><r/></q><p/></r>");
  const std::vector<Node*>& ps = doc->ElementsByName(QName("p"));
  ASSERT_EQ(ps.size(), 3u);
  // Strictly ascending document order.
  EXPECT_LT(ps[0]->CompareDocumentOrder(ps[1]), 0);
  EXPECT_LT(ps[1]->CompareDocumentOrder(ps[2]), 0);
  EXPECT_EQ(doc->ElementsByName(QName("zzz")).size(), 0u);
  // The index keys on expanded names, not local names.
  auto doc2 = Parse("<a xmlns:n=\"urn:n\"><n:p/><p/></a>");
  EXPECT_EQ(doc2->ElementsByName(QName("urn:n", "p")).size(), 1u);
  EXPECT_EQ(doc2->ElementsByName(QName("p")).size(), 1u);
}

TEST(Dom, ElementsByNameIsLazyAndCached) {
  auto doc = Parse("<r><a/><a/></r>");
  EXPECT_EQ(doc->name_index_builds(), 0u);
  EXPECT_EQ(doc->ElementsByName(QName("a")).size(), 2u);
  EXPECT_EQ(doc->name_index_builds(), 1u);
  // Repeated lookups (any name) reuse the build.
  doc->ElementsByName(QName("a"));
  doc->ElementsByName(QName("r"));
  EXPECT_EQ(doc->name_index_builds(), 1u);
}

TEST(Dom, ElementsByNameInvalidatedByMutation) {
  auto doc = Parse("<r><a/><b><a/></b></r>");
  Node* r = doc->DocumentElement();
  ASSERT_EQ(doc->ElementsByName(QName("a")).size(), 2u);

  // Insert: the new element must be visible.
  r->AppendChild(doc->CreateElement(QName("a")));
  EXPECT_EQ(doc->ElementsByName(QName("a")).size(), 3u);

  // Detach: removing a subtree removes its elements from the index.
  Node* b = r->children()[1];
  b->Detach();
  EXPECT_EQ(doc->ElementsByName(QName("a")).size(), 2u);

  // Rename: the element moves between buckets.
  r->children()[0]->Rename(QName("c"));
  EXPECT_EQ(doc->ElementsByName(QName("a")).size(), 1u);
  EXPECT_EQ(doc->ElementsByName(QName("c")).size(), 1u);

  // Each mutation forced exactly one rebuild on next lookup.
  EXPECT_EQ(doc->name_index_builds(), 4u);
}

TEST(Dom, ElementsByNameSeesImportCopyAttach) {
  auto doc1 = Parse("<x><a/><a/></x>");
  auto doc2 = Parse("<r><a/></r>");
  ASSERT_EQ(doc2->ElementsByName(QName("a")).size(), 1u);
  Node* copy = doc2->ImportCopy(doc1->DocumentElement());
  // A detached copy is not indexed until attached.
  EXPECT_EQ(doc2->ElementsByName(QName("a")).size(), 1u);
  doc2->DocumentElement()->AppendChild(copy);
  EXPECT_EQ(doc2->ElementsByName(QName("a")).size(), 3u);
}

TEST(Dom, AppendStringValueMatchesStringValue) {
  auto doc = Parse("<a>one<b>two<c/>three</b><!--x-->four</a>");
  Node* a = doc->DocumentElement();
  EXPECT_EQ(a->StringValue(), "onetwothreefour");
  std::string out = "pre:";
  a->AppendStringValue(&out);
  EXPECT_EQ(out, "pre:onetwothreefour");
  // Attribute and comment nodes append their value verbatim.
  a->SetAttribute(QName("k"), "v");
  std::string attr;
  a->FindAttribute("k")->AppendStringValue(&attr);
  EXPECT_EQ(attr, "v");
}

TEST(Dom, MutationHooksFire) {
  auto doc = Parse("<r/>");
  int calls = 0;
  doc->AddMutationHook([&](Node*) { ++calls; });
  Node* r = doc->DocumentElement();
  r->SetAttribute(QName("a"), "1");
  r->AppendChild(doc->CreateText("t"));
  r->SetValue("x");
  EXPECT_GE(calls, 3);
}

// ------------------------------------------------------- serialization ---

TEST(Serializer, Escaping) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go>");
}

TEST(Serializer, NamespaceDeclarationsEmitted) {
  auto doc = Parse("<a xmlns=\"urn:x\"><b/></a>");
  EXPECT_EQ(Serialize(doc->DocumentElement()),
            "<a xmlns=\"urn:x\"><b/></a>");
  auto doc2 = Parse("<p:a xmlns:p=\"urn:y\"><p:b/></p:a>");
  EXPECT_EQ(Serialize(doc2->DocumentElement()),
            "<p:a xmlns:p=\"urn:y\"><p:b/></p:a>");
}

// Round-trip property: parse(serialize(parse(x))) == parse(x).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, SerializeParseStable) {
  auto doc1 = Parse(GetParam());
  std::string s1 = Serialize(doc1->root());
  auto doc2 = Parse(s1);
  std::string s2 = Serialize(doc2->root());
  EXPECT_EQ(s1, s2);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "<a/>",
        "<a x=\"1\" y=\"2\"><b/>text<c><d/></c></a>",
        "<a>&lt;escaped&gt; &amp; more</a>",
        "<a><!--comment--><?pi data?>text</a>",
        "<a xmlns=\"urn:n\"><b at=\"&quot;q&quot;\"/></a>",
        "<r><book year=\"2008\"><title>The dog &amp; cat</title>"
        "</book></r>",
        "<table border=\"1\"><tr><td>1</td><td>2</td></tr></table>"));

// Synthetic-tree property: document order keys are strictly increasing
// along a DFS, stable under unrelated mutations.
TEST(DomProperty, OrderKeysFollowDfs) {
  std::ostringstream src;
  src << "<r>";
  for (int i = 0; i < 20; ++i) {
    src << "<n i=\"" << i << "\"><x/><y><z/></y></n>";
  }
  src << "</r>";
  auto doc = Parse(src.str());
  std::vector<const Node*> dfs;
  std::function<void(Node*)> visit = [&](Node* n) {
    dfs.push_back(n);
    for (Node* c : n->children()) visit(c);
  };
  visit(doc->root());
  for (size_t i = 1; i < dfs.size(); ++i) {
    EXPECT_LT(dfs[i - 1]->CompareDocumentOrder(dfs[i]), 0)
        << "order violated at " << i;
  }
}

}  // namespace
}  // namespace xqib::xml
