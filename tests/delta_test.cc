// Tests for delta propagation (PERFORMANCE.md §8): the structured
// DomDelta emitted by PUL application, name-index bucket splicing in
// place of full rebuilds, gap-based order keys that survive inserts
// without wholesale recomputation, and the plug-in dispatch layer's
// listener skip.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "plugin/plugin.h"
#include "xml/interning.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/update.h"

namespace xqib {
namespace {

using browser::Browser;
using browser::Event;
using browser::Window;

const xml::InternedName* Tok(const char* local) {
  return xml::InternName("", local);
}

// Compiles and runs `query` against `doc` WITHOUT the engine's own
// update application, then applies the PUL through the delta-capturing
// overload so the test can inspect the structured write set.
Status RunUpdateCapturing(const std::string& query, xml::Document* doc,
                          xml::DomDelta* delta) {
  xquery::Engine engine;
  auto q = engine.Compile(query);
  if (!q.ok()) return q.status();
  xquery::DynamicContext ctx;
  xquery::DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  XQ_RETURN_NOT_OK((*q)->BindGlobals(ctx));
  auto r = (*q)->Run(ctx, /*apply_updates=*/false);
  if (!r.ok()) return r.status();
  return ctx.pul().ApplyAll(delta);
}

// ------------------------------------------- PUL delta edge cases ---

TEST(PulDelta, ReplaceValueOfAttribute) {
  auto doc = std::move(xml::ParseDocument("<a><b v=\"1\"/></a>")).value();
  doc->set_fine_grained_versions(true);
  xml::DomDelta delta;
  Status st = RunUpdateCapturing("replace value of node /a/b/@v with \"9\"",
                                 doc.get(), &delta);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(xml::Serialize(doc->root()), "<a><b v=\"9\"/></a>");

  // Exactly the attribute name plus the ancestor element chain; a value
  // edit changes no bucket membership.
  EXPECT_FALSE(delta.whole_tree);
  EXPECT_EQ(delta.mutations, 1u);
  EXPECT_TRUE(delta.element_ops.empty());
  EXPECT_EQ(delta.touched.size(), 3u);
  EXPECT_EQ(delta.touched.count(Tok("v")), 1u);
  EXPECT_EQ(delta.touched.count(Tok("b")), 1u);
  EXPECT_EQ(delta.touched.count(Tok("a")), 1u);

  // The per-name counters moved for the same names and no others — they
  // are a derived view of the delta.
  EXPECT_EQ(doc->name_version(Tok("v")), 1u);
  EXPECT_EQ(doc->name_version(Tok("b")), 1u);
  EXPECT_EQ(doc->name_version(Tok("a")), 1u);
  EXPECT_EQ(doc->name_version(Tok("other")), 0u);
}

TEST(PulDelta, InsertBeforeAndAfterSiblingOrdering) {
  auto doc = std::move(
                 xml::ParseDocument("<a><b i=\"1\"/><b i=\"3\"/></a>"))
                 .value();
  doc->set_fine_grained_versions(true);
  xml::DomDelta delta;
  Status st = RunUpdateCapturing(
      "insert node <b i=\"0\"/> before /a/b[1],"
      "insert node <b i=\"2\"/> after /a/b[1]",
      doc.get(), &delta);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(xml::Serialize(doc->root()),
            "<a><b i=\"0\"/><b i=\"1\"/><b i=\"2\"/><b i=\"3\"/></a>");

  EXPECT_FALSE(delta.whole_tree);
  EXPECT_EQ(delta.mutations, 2u);
  // Both inserted <b> elements appear as membership insertions under
  // their name; the pre-existing siblings do not.
  ASSERT_EQ(delta.element_ops.count(Tok("b")), 1u);
  const auto& b_ops = delta.element_ops.at(Tok("b"));
  EXPECT_EQ(b_ops.size(), 2u);
  for (const auto& [node, inserted] : b_ops) {
    EXPECT_TRUE(inserted);
    EXPECT_EQ(node->name().token(), Tok("b"));
  }
  EXPECT_EQ(delta.touched.count(Tok("b")), 1u);
  EXPECT_EQ(delta.touched.count(Tok("a")), 1u);
  EXPECT_EQ(delta.touched.count(Tok("i")), 1u);  // attrs in the subtrees
}

TEST(PulDelta, DeleteOfAncestorOfPendingInsertTarget) {
  // XQUF applies inserts before deletes: <d/> lands inside /a/b/c, then
  // the delete detaches the whole <b> subtree including it. Last op
  // wins, so every element resolves to "removed".
  auto doc = std::move(xml::ParseDocument("<a><b><c/></b></a>")).value();
  doc->set_fine_grained_versions(true);
  xml::Node* b = doc->DocumentElement()->children()[0];
  xml::Node* c = b->children()[0];
  xml::DomDelta delta;
  Status st = RunUpdateCapturing(
      "insert node <d/> into /a/b/c, delete node /a/b", doc.get(), &delta);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(xml::Serialize(doc->root()), "<a/>");

  EXPECT_FALSE(delta.whole_tree);
  EXPECT_EQ(delta.mutations, 2u);  // one insert, one delete
  ASSERT_EQ(delta.element_ops.count(Tok("b")), 1u);
  ASSERT_EQ(delta.element_ops.count(Tok("c")), 1u);
  ASSERT_EQ(delta.element_ops.count(Tok("d")), 1u);
  EXPECT_FALSE(delta.element_ops.at(Tok("b")).at(b));
  EXPECT_FALSE(delta.element_ops.at(Tok("c")).at(c));
  const auto& d_ops = delta.element_ops.at(Tok("d"));
  ASSERT_EQ(d_ops.size(), 1u);
  EXPECT_FALSE(d_ops.begin()->second);  // inserted, then swept out
  EXPECT_EQ(delta.touched.count(Tok("a")), 1u);
  EXPECT_EQ(delta.touched.size(), 4u);

  // Counters: the insert bumped d/c/b/a, the delete bumped b/c/d (the
  // detached subtree) and a (the site chain).
  EXPECT_EQ(doc->name_version(Tok("a")), 2u);
  EXPECT_EQ(doc->name_version(Tok("b")), 2u);
  EXPECT_EQ(doc->name_version(Tok("c")), 2u);
  EXPECT_EQ(doc->name_version(Tok("d")), 2u);
}

// ------------------------------------------------ index splicing ---

TEST(IndexSplice, InsertSplicesInsteadOfRebuilding) {
  auto doc = std::move(
                 xml::ParseDocument("<a><b i=\"1\"/><x/><b i=\"2\"/></a>"))
                 .value();
  doc->set_delta_tracking(true);
  doc->root()->OrderKey();  // compute order once; inserts gap-assign after
  const uint64_t rebuilds = doc->order_rebuilds();

  const auto& bucket0 = doc->ElementsByName(xml::QName("b"));
  ASSERT_EQ(bucket0.size(), 2u);
  EXPECT_EQ(doc->name_index_builds(), 1u);

  // DOM-level insert between the two <b>s (inside <x/> stays disjoint).
  xml::Node* a = doc->DocumentElement();
  xml::Node* nb = doc->CreateElement(xml::QName("b"));
  nb->SetAttribute(xml::QName("i"), "1.5");
  a->InsertBefore(nb, a->children()[2]);

  const auto& bucket1 = doc->ElementsByName(xml::QName("b"));
  ASSERT_EQ(bucket1.size(), 3u);
  EXPECT_EQ(doc->name_index_builds(), 1u);  // spliced, not rebuilt
  EXPECT_GE(doc->bucket_rebuilds_avoided(), 1u);
  EXPECT_GE(doc->index_splices(), 1u);
  EXPECT_EQ(bucket1[0]->GetAttributeValue("i"), "1");
  EXPECT_EQ(bucket1[1]->GetAttributeValue("i"), "1.5");  // document order
  EXPECT_EQ(bucket1[2]->GetAttributeValue("i"), "2");

  // The insert was absorbed by gap keys: no wholesale order recompute.
  EXPECT_EQ(doc->order_rebuilds(), rebuilds);
}

TEST(IndexSplice, RemovalAndUntouchedBucketsSpliceToo) {
  auto doc = std::move(xml::ParseDocument(
                           "<a><b i=\"1\"/><c/><b i=\"2\"/><c/></a>"))
                 .value();
  doc->set_delta_tracking(true);
  doc->root()->OrderKey();
  ASSERT_EQ(doc->ElementsByName(xml::QName("b")).size(), 2u);
  ASSERT_EQ(doc->ElementsByName(xml::QName("c")).size(), 2u);
  EXPECT_EQ(doc->name_index_builds(), 1u);

  xml::Node* a = doc->DocumentElement();
  a->RemoveChild(a->children()[0]);  // drop <b i="1"/>

  const auto& b = doc->ElementsByName(xml::QName("b"));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0]->GetAttributeValue("i"), "2");
  // The <c> bucket was untouched by the delta and survived verbatim.
  EXPECT_EQ(doc->ElementsByName(xml::QName("c")).size(), 2u);
  EXPECT_EQ(doc->name_index_builds(), 1u);
}

TEST(IndexSplice, RenameMovesNodeBetweenBuckets) {
  auto doc = std::move(xml::ParseDocument("<a><b/><b/></a>")).value();
  doc->set_delta_tracking(true);
  doc->root()->OrderKey();
  ASSERT_EQ(doc->ElementsByName(xml::QName("b")).size(), 2u);

  xml::Node* a = doc->DocumentElement();
  a->children()[0]->Rename(xml::QName("z"));

  EXPECT_EQ(doc->ElementsByName(xml::QName("b")).size(), 1u);
  EXPECT_EQ(doc->ElementsByName(xml::QName("z")).size(), 1u);
  EXPECT_EQ(doc->name_index_builds(), 1u);
}

TEST(IndexSplice, GapKeysKeepDocumentOrderWithoutRebuilds) {
  auto doc = std::move(xml::ParseDocument("<a><b/><b/></a>")).value();
  doc->root()->OrderKey();
  const uint64_t rebuilds = doc->order_rebuilds();
  xml::Node* a = doc->DocumentElement();
  xml::Node* first = a->children()[0];
  xml::Node* last = a->children()[1];

  // A run of inserts at both ends and the middle, all absorbed by the
  // neighbor-gap assignment.
  for (int i = 0; i < 8; ++i) {
    xml::Node* n = doc->CreateElement(xml::QName("m"));
    a->InsertBefore(n, a->children()[a->children().size() / 2]);
  }
  EXPECT_EQ(doc->order_rebuilds(), rebuilds);
  EXPECT_LT(first->CompareDocumentOrder(last), 0);
  const std::vector<xml::Node*>& kids = a->children();
  for (size_t i = 1; i < kids.size(); ++i) {
    EXPECT_LT(kids[i - 1]->CompareDocumentOrder(kids[i]), 0)
        << "children out of order at " << i;
  }
}

// --------------------------------------------- dispatch skipping ---

class DeltaDispatchTest : public ::testing::Test {
 protected:
  DeltaDispatchTest()
      : services_(&fabric_, &store_),
        plugin_(&browser_, &fabric_, &services_) {
    plugin_.Install();
  }

  Window* Load(const std::string& source) {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/index.xhtml", source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(plugin_.last_script_error().ok())
        << plugin_.last_script_error().ToString();
    return browser_.top_window();
  }

  void Click(xml::Node* target) {
    Event e;
    e.type = "onclick";
    plugin_.FireEvent(target, e);
  }

  // A memoizable reader of //li and an updating writer of `mutation`.
  Window* LoadPeekAndMutate(const std::string& mutation) {
    return Load(R"(<html><body>
<input id="peek"/><input id="mut"/>
<ul><li>a</li><li>b</li></ul><aside/>
<script type="text/xqueryp"><![CDATA[
declare function local:peek($evt, $obj) { string(count(//li)) };
declare updating function local:mut($evt, $obj) { )" +
                mutation + R"( };
on event "onclick" at //input[@id="peek"] attach listener local:peek;
on event "onclick" at //input[@id="mut"] attach listener local:mut
]]></script></body></html>)");
  }

  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  Browser browser_;
  plugin::XqibPlugin plugin_;
};

TEST_F(DeltaDispatchTest, DisjointWriteSkipsListenerWithoutEvaluation) {
  Window* w = LoadPeekAndMutate("insert node <note/> into //aside");
  xml::Node* peek = w->document()->GetElementById("peek");
  xml::Node* mut = w->document()->GetElementById("mut");
  ASSERT_NE(peek, nullptr);
  ASSERT_NE(mut, nullptr);

  Click(peek);  // miss: fills the memo entry, stamps the delta seq
  EXPECT_EQ(plugin_.last_listener_result(), "2");
  Click(mut);  // writes note/aside — disjoint from peek's read set
  ASSERT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
  EXPECT_EQ(plugin_.last_event_stats().delta_emitted, 1u);
  EXPECT_GE(plugin_.delta_stats().emitted, 1u);

  Click(peek);  // delta skip: replay with ZERO evaluation
  EXPECT_EQ(plugin_.last_listener_result(), "2");
  EXPECT_EQ(plugin_.last_event_stats().memo_hits, 1u);
  EXPECT_EQ(plugin_.last_event_stats().delta_listeners_skipped, 1u);
  EXPECT_EQ(plugin_.delta_stats().listeners_skipped, 1u);
  // The skip happened BEFORE the per-name probes: no fine survival.
  EXPECT_EQ(plugin_.memo_stats().fine_grained_survivals, 0u);
  EXPECT_EQ(plugin_.memo_stats().hits, 1u);
  EXPECT_EQ(plugin_.memo_stats().invalidations, 0u);
}

TEST_F(DeltaDispatchTest, IntersectingWriteStillRuns) {
  Window* w = LoadPeekAndMutate("insert node <li>c</li> into //ul");
  xml::Node* peek = w->document()->GetElementById("peek");
  xml::Node* mut = w->document()->GetElementById("mut");
  Click(peek);
  Click(mut);  // li is in peek's read set: must NOT be skipped
  Click(peek);
  EXPECT_EQ(plugin_.last_listener_result(), "3");
  EXPECT_EQ(plugin_.last_event_stats().delta_listeners_skipped, 0u);
  EXPECT_EQ(plugin_.delta_stats().listeners_skipped, 0u);
  EXPECT_EQ(plugin_.memo_stats().invalidations, 1u);
}

TEST_F(DeltaDispatchTest, AblationFallsBackToFineGrainedProbes) {
  // delta_propagation off: the PR 6 per-name counter probe must absorb
  // the same disjoint mutation (the survive-or-recompute oracle).
  xquery::Evaluator::EvalOptions opts = plugin_.eval_options();
  opts.delta_propagation = false;
  plugin_.set_eval_options(opts);
  Window* w = LoadPeekAndMutate("insert node <note/> into //aside");
  xml::Node* peek = w->document()->GetElementById("peek");
  xml::Node* mut = w->document()->GetElementById("mut");
  Click(peek);
  Click(mut);
  Click(peek);
  EXPECT_EQ(plugin_.last_listener_result(), "2");
  EXPECT_EQ(plugin_.delta_stats().listeners_skipped, 0u);
  EXPECT_EQ(plugin_.memo_stats().fine_grained_survivals, 1u);
  EXPECT_EQ(plugin_.memo_stats().hits, 1u);
}

TEST_F(DeltaDispatchTest, SecondSkipAfterReanchorStillWorks) {
  // The serial skip re-anchors the entry (doc version + fill seq), so a
  // second disjoint write and click skip again rather than degrade.
  Window* w = LoadPeekAndMutate("insert node <note/> into //aside");
  xml::Node* peek = w->document()->GetElementById("peek");
  xml::Node* mut = w->document()->GetElementById("mut");
  Click(peek);
  Click(mut);
  Click(peek);
  Click(mut);
  Click(peek);
  EXPECT_EQ(plugin_.last_listener_result(), "2");
  EXPECT_EQ(plugin_.delta_stats().listeners_skipped, 2u);
  EXPECT_EQ(plugin_.memo_stats().hits, 2u);
  EXPECT_EQ(plugin_.memo_stats().invalidations, 0u);
}

}  // namespace
}  // namespace xqib
