// Multi-tenant page server tests (PERFORMANCE.md §9, DESIGN.md "Server
// architecture"): session lifecycle and event dispatch, the HTTP front
// end, the sharing/isolation split (sessions share the plan cache but
// never each other's memo entries or DOMs), racing sessions on the
// shared pool (the TSan target), and per-service web-service
// serialization.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "server/server.h"
#include "xdm/item.h"
#include "xquery/plan/plan.h"

namespace xqib {
namespace {

using server::PageServer;
using server::Session;
using server::SessionEvent;

constexpr const char* kProductsUrl = "http://shop.example.com/products.xml";
constexpr const char* kProducts =
    "<products>"
    "<product><name>laptop</name><price>1200</price></product>"
    "<product><name>mouse</name><price>25</price></product>"
    "<product><name>keyboard</name><price>49</price></product>"
    "</products>";

// The paper's §6.3 shopping cart, inlined so the tests don't depend on
// the examples/pages directory.
constexpr const char* kCartPage =
    "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
    "declare updating function local:buy($evt, $obj) {\n"
    "  insert node <p>{string($obj/@id)}</p> as first\n"
    "    into //div[@id=\"shoppingcart\"]\n"
    "};\n"
    "insert node\n"
    "  <div id=\"productlist\">{\n"
    "    for $p in http:get(\"http://shop.example.com/products.xml\")"
    "//product\n"
    "    return <div>{string($p/name)}"
    "      <input type=\"button\" value=\"Buy\" id=\"{$p/name}\"/>\n"
    "    </div>\n"
    "  }</div>\n"
    "  into /html/body;\n"
    "on event \"onclick\" at //div[@id=\"productlist\"]//input\n"
    "  attach listener local:buy\n"
    "]]></script>\n"
    "</head><body>\n"
    "<div id=\"shoppingcart\"/>\n"
    "</body></html>";

std::unique_ptr<PageServer> MakeCartServer(size_t workers) {
  PageServer::Options options;
  options.workers = workers;
  auto srv = std::make_unique<PageServer>(options);
  srv->backend().PutResource(kProductsUrl, kProducts);
  return srv;
}

SessionEvent Buy(const std::string& id) {
  SessionEvent ev;
  ev.target_id = id;
  return ev;
}

// ----------------------------------------------------------- smoke ---

TEST(ServerSmoke, SessionDispatchUpdatesDom) {
  auto srv = MakeCartServer(0);
  auto session = srv->CreateSessionFromSource(
      "http://shop.example.com/cart.xhtml", kCartPage);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(srv->session_count(), 1u);
  EXPECT_EQ((*session)->id(), "s1");

  Status seen;
  ASSERT_TRUE(srv->SubmitEvent("s1", Buy("laptop"),
                               [&](const Status& st, double) { seen = st; })
                  .ok());
  srv->DrainAll();
  EXPECT_TRUE(seen.ok()) << seen.ToString();
  std::string dom = (*session)->SerializeDom();
  EXPECT_NE(dom.find("<p>laptop</p>"), std::string::npos) << dom;
  Session::StatsSnapshot stats = (*session)->stats();
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServerSmoke, MissingTargetIsAnErrorNotAFatality) {
  auto srv = MakeCartServer(0);
  auto session = srv->CreateSessionFromSource(
      "http://shop.example.com/cart.xhtml", kCartPage);
  ASSERT_TRUE(session.ok());

  Status seen;
  (*session)->Submit(Buy("no-such-button"),
                     [&](const Status& st, double) { seen = st; });
  srv->DrainAll();
  EXPECT_EQ(seen.code(), "SRVR0404");
  EXPECT_EQ((*session)->stats().errors, 1u);

  // The session survives: the next event dispatches normally.
  (*session)->Submit(Buy("mouse"));
  srv->DrainAll();
  EXPECT_NE((*session)->SerializeDom().find("<p>mouse</p>"),
            std::string::npos);
}

TEST(ServerSmoke, UnknownSessionAndCloseLifecycle) {
  auto srv = MakeCartServer(0);
  EXPECT_EQ(srv->SubmitEvent("s999", Buy("laptop")).code(), "SRVR0404");
  auto session = srv->CreateSessionFromSource(
      "http://shop.example.com/cart.xhtml", kCartPage);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(srv->CloseSession((*session)->id()).ok());
  EXPECT_EQ(srv->session_count(), 0u);
  EXPECT_EQ(srv->SubmitEvent((*session)->id(), Buy("laptop")).code(),
            "SRVR0404");
  EXPECT_EQ(srv->CloseSession((*session)->id()).code(), "SRVR0404");
}

TEST(ServerSmoke, HttpFrontEndRoundTrip) {
  auto srv = MakeCartServer(0);
  srv->InstallHttpFrontEnd(&srv->backend(), "http://server.local");
  net::HttpFabric& web = srv->backend();

  // Create from posted page source.
  auto created = web.Perform(
      {"POST", "http://server.local/sessions", kCartPage});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->status, 201);
  EXPECT_EQ(created->body, "<session id=\"s1\"/>");

  // Fire an event; the response is synchronous and carries latency.
  auto fired = web.Perform({"POST", "http://server.local/sessions/s1/events",
                            "<event type=\"onclick\" target=\"keyboard\"/>"});
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(fired->status, 200);
  EXPECT_NE(fired->body.find("<ok latency-us="), std::string::npos);

  // The DOM endpoint shows the click's effect.
  auto dom = web.Get("http://server.local/sessions/s1/dom");
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom->status, 200);
  EXPECT_NE(dom->body.find("<p>keyboard</p>"), std::string::npos);

  // The report lists the session and the shared substrate.
  auto report = web.Get("http://server.local/sessions");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->body.find("s1: url="), std::string::npos);
  EXPECT_NE(report->body.find("plan cache:"), std::string::npos);

  // Error mapping: bad event body, unknown session, then close.
  auto bad = web.Perform({"POST", "http://server.local/sessions/s1/events",
                          "<event type=\"onclick\"/>"});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  auto missing = web.Get("http://server.local/sessions/s404/dom");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto closed = web.Perform(
      {"POST", "http://server.local/sessions/s1/close", ""});
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->status, 200);
  EXPECT_EQ(srv->session_count(), 0u);
}

// ---------------------------------------------- sharing vs isolation ---

TEST(ServerSharing, SecondSessionHitsTheSharedPlanCache) {
  // A page source unique to this test so the first load really
  // compiles (the global cache outlives tests in this binary).
  const std::string page =
      "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      "declare updating function local:sharing_probe($evt, $obj) {\n"
      "  insert node <hit/> into //div[@id=\"out\"]\n"
      "};\n"
      "on event \"onclick\" at //input[@id=\"btn\"]\n"
      "  attach listener local:sharing_probe\n"
      "]]></script></head><body>"
      "<input id=\"btn\"/><div id=\"out\"/></body></html>";

  auto srv = MakeCartServer(0);
  using xquery::plan::PlanCache;
  auto a = srv->CreateSessionFromSource("http://app.example.com/a.xhtml",
                                        page);
  auto b = srv->CreateSessionFromSource("http://app.example.com/a.xhtml",
                                        page);
  ASSERT_TRUE(a.ok() && b.ok());

  // Plans compile lazily, at the first dispatch that needs them: A's
  // first click stores the module's plans in the process-wide cache.
  PlanCache::Stats before = PlanCache::Global().stats();
  (*a)->Submit(Buy("btn"));
  srv->DrainAll();
  PlanCache::Stats after_a = PlanCache::Global().stats();
  EXPECT_GT(after_a.inserts, before.inserts) << "first dispatch must compile";
  EXPECT_GT((*a)->plugin().last_event_stats().plan_compiles, 0u);

  // One compile serves N sessions: B's dispatch stores nothing new,
  // probes the entry A filled, and executes the identical plan objects.
  (*b)->Submit(Buy("btn"));
  srv->DrainAll();
  PlanCache::Stats after_b = PlanCache::Global().stats();
  EXPECT_EQ(after_b.inserts, after_a.inserts);
  EXPECT_GT(after_b.hits, after_a.hits);
  const auto& stats = (*b)->plugin().last_event_stats();
  EXPECT_EQ(stats.plan_compiles, 0u);
  EXPECT_GT(stats.plan_hits, 0u);
}

TEST(ServerIsolation, MemoEntriesStayPerSession) {
  // A pure, memoizable listener: within one session the second click
  // is a memo hit; a fresh session must miss — the cache is state of
  // the session's plugin, never shared.
  const std::string page =
      "<html><head><script type=\"text/xqueryp\"><![CDATA[\n"
      "declare function local:pure($evt, $obj) {\n"
      "  concat(\"n=\", string(count(//item)))\n"
      "};\n"
      "on event \"onclick\" at //input[@id=\"btn\"]\n"
      "  attach listener local:pure\n"
      "]]></script></head><body>"
      "<input id=\"btn\"/><item/><item/></body></html>";

  auto srv = MakeCartServer(0);
  auto a = srv->CreateSessionFromSource("http://app.example.com/m.xhtml",
                                        page);
  auto b = srv->CreateSessionFromSource("http://app.example.com/m.xhtml",
                                        page);
  ASSERT_TRUE(a.ok() && b.ok());

  (*a)->Submit(Buy("btn"));
  (*a)->Submit(Buy("btn"));
  srv->DrainAll();
  EXPECT_GE((*a)->plugin().memo_stats().misses, 1u);
  EXPECT_GE((*a)->plugin().memo_stats().hits, 1u);

  // B fires the byte-identical listener on the byte-identical DOM; if
  // memo entries leaked across sessions this would be a hit.
  (*b)->Submit(Buy("btn"));
  srv->DrainAll();
  EXPECT_GE((*b)->plugin().memo_stats().misses, 1u);
  EXPECT_EQ((*b)->plugin().memo_stats().hits, 0u);
}

TEST(ServerIsolation, DomMutationsNeverCrossSessions) {
  auto srv = MakeCartServer(0);
  auto a = srv->CreateSessionFromSource(
      "http://shop.example.com/cart.xhtml", kCartPage);
  auto b = srv->CreateSessionFromSource(
      "http://shop.example.com/cart.xhtml", kCartPage);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string b_before = (*b)->SerializeDom();

  for (int i = 0; i < 3; ++i) (*a)->Submit(Buy("laptop"));
  srv->DrainAll();

  EXPECT_NE((*a)->SerializeDom().find("<p>laptop</p>"), std::string::npos);
  EXPECT_EQ((*b)->SerializeDom(), b_before);
  EXPECT_EQ((*b)->stats().dispatched, 0u);
}

// --------------------------------------------------- racing sessions ---

// The TSan target: many sessions racing on the shared pool, then every
// DOM compared byte-for-byte against the serial run. Exercises the
// shared intern pool, plan cache, backend fabric, and pool queues from
// concurrent session strands.
TEST(ServerRacing, ConcurrentSessionsMatchSerialDoms) {
  constexpr size_t kSessions = 6;
  constexpr int kEvents = 25;
  constexpr const char* kIds[] = {"laptop", "mouse", "keyboard"};

  auto run = [&](size_t workers) {
    auto srv = MakeCartServer(workers);
    std::vector<std::shared_ptr<Session>> sessions;
    for (size_t s = 0; s < kSessions; ++s) {
      auto created = srv->CreateSessionFromSource(
          "http://shop.example.com/cart.xhtml", kCartPage);
      EXPECT_TRUE(created.ok()) << created.status().ToString();
      sessions.push_back(*created);
    }
    // Per-session FIFO: submission order is dispatch order, so the
    // same scripts must yield the same DOMs at any pool size.
    for (int e = 0; e < kEvents; ++e) {
      for (size_t s = 0; s < kSessions; ++s) {
        sessions[s]->Submit(Buy(kIds[(s + static_cast<size_t>(e)) % 3]));
      }
    }
    srv->DrainAll();
    std::vector<std::string> doms;
    for (auto& session : sessions) {
      EXPECT_EQ(session->stats().dispatched,
                static_cast<uint64_t>(kEvents));
      EXPECT_EQ(session->stats().errors, 0u);
      doms.push_back(session->SerializeDom());
    }
    return doms;
  };

  std::vector<std::string> serial = run(0);
  for (size_t workers : {2u, 4u}) {
    std::vector<std::string> pooled = run(workers);
    ASSERT_EQ(pooled.size(), serial.size());
    for (size_t s = 0; s < serial.size(); ++s) {
      EXPECT_EQ(pooled[s], serial[s])
          << "session " << s << " diverged at pool " << workers;
    }
  }
}

// ------------------------------------------------- web services ---

// PR 9 scoped web-service serialization per deployed service (it was
// host-global): concurrent invokes of two services must both be safe
// and correct. Under TSan this also proves the per-service mutex
// actually covers the evaluator.
TEST(ServerRacing, WebServiceInvokesSerializePerService) {
  net::HttpFabric fabric;
  net::XmlStore store;
  net::ServiceHost host(&fabric, &store);
  ASSERT_TRUE(host.Deploy("module namespace ma=\"urn:ma\" port:2001;\n"
                          "declare function ma:mul($a, $b) { $a * $b };",
                          "a.example.com")
                  .ok());
  ASSERT_TRUE(host.Deploy("module namespace mb=\"urn:mb\" port:2002;\n"
                          "declare function mb:add($a, $b) { $a + $b };",
                          "b.example.com")
                  .ok());

  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const bool use_a = t % 2 == 0;
      xml::QName fn = use_a ? xml::QName("urn:ma", "ma", "mul")
                            : xml::QName("urn:mb", "mb", "add");
      for (int i = 0; i < 50; ++i) {
        auto r = host.Invoke(use_a ? "urn:ma" : "urn:mb", fn,
                             {xdm::Sequence{xdm::Item::Integer(i)},
                              xdm::Sequence{xdm::Item::Integer(3)}});
        const std::string want =
            std::to_string(use_a ? i * 3 : i + 3);
        if (!r.ok() || xdm::SequenceToString(*r) != want) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace xqib
