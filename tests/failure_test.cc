// Failure-injection tests: errors in services, listeners, updates, and
// navigation must degrade gracefully — a browser never crashes because a
// page is broken.

#include <gtest/gtest.h>

#include "app/environment.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/update.h"

namespace xqib {
namespace {

using app::BrowserEnvironment;

TEST(FailureInjection, BehindWithFailingServiceDeliversReadyState4) {
  // The remote call fails; the listener still receives readyState 4 with
  // an empty result, and the script error is recorded.
  BrowserEnvironment env;
  Status st = env.LoadPage("http://app.example.com/", R"(
    <html><body><span id="state">none</span>
    <script type="text/xqueryp"><![CDATA[
      declare updating function local:onResult($readyState, $result) {
        replace value of //span[@id="state"]
          with concat("state-", string($readyState))
      };
      on event "stateChanged" behind http:get("http://down.example.com/x")
        attach listener local:onResult
    ]]></script></body></html>)");
  // The attach itself succeeds; failures happen asynchronously.
  ASSERT_TRUE(st.ok()) << st.ToString();
  env.plugin().PumpEvents();
  EXPECT_EQ(env.ById("state")->StringValue(), "state-4");
  EXPECT_EQ(env.plugin().last_script_error().code(), "NETW0404");
}

TEST(FailureInjection, ListenerErrorDoesNotBlockOtherListeners) {
  BrowserEnvironment env;
  Status st = env.LoadPage("http://app.example.com/", R"(
    <html><body><input id="b"/><div id="log"/>
    <script type="text/xqueryp"><![CDATA[
      declare updating function local:bad($evt, $obj) {
        replace value of //div[@id="nonexistent"] with "x"
      };
      declare updating function local:good($evt, $obj) {
        insert node <ok/> into //div[@id="log"]
      };
      on event "onclick" at //input[@id="b"] attach listener local:bad;
      on event "onclick" at //input[@id="b"] attach listener local:good
    ]]></script></body></html>)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  browser::Event e;
  e.type = "onclick";
  (void)env.plugin().FireEvent(env.ById("b"), e);
  // The bad listener errored (XUTY0008: empty target)...
  EXPECT_FALSE(env.plugin().last_script_error().ok());
  // ...but the good one still ran.
  EXPECT_EQ(env.ById("log")->children().size(), 1u);
}

TEST(FailureInjection, PulApplicationIsAllOrNothing) {
  // One primitive in the snapshot is incompatible (two value-replaces of
  // the same node, XUDY0017); nothing at all must be applied — including
  // the perfectly valid insert that precedes it.
  auto doc = std::move(xml::ParseDocument("<r><a/><b/></r>")).value();
  xquery::Engine engine;
  auto q = engine.Compile(
      "insert node <x/> into /r, "
      "replace value of node /r/a with '1', "
      "replace value of node /r/a with '2'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  xquery::DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  auto r = (*q)->Run(ctx);
  EXPECT_EQ(r.status().code(), "XUDY0017");
  // The insert was NOT applied even though it preceded the conflict.
  EXPECT_EQ(xml::Serialize(doc->root()), "<r><a/><b/></r>");
}

TEST(FailureInjection, NavigationToMissingPageFails) {
  BrowserEnvironment env;
  Status st = env.Navigate("http://nowhere.example.com/");
  EXPECT_EQ(st.code(), "NETW0404");
  // The old document survives a failed navigation.
  EXPECT_NE(env.window()->document(), nullptr);
}

TEST(FailureInjection, MalformedPageFailsToLoadCleanly) {
  BrowserEnvironment env;
  Status st = env.LoadPage("http://app.example.com/",
                           "<html><body><div></body></html>");
  EXPECT_FALSE(st.ok());
}

TEST(FailureInjection, MalformedScriptReportsButKeepsPage) {
  BrowserEnvironment env;
  Status st = env.LoadPage("http://app.example.com/",
                           "<html><body><p id=\"keep\">x</p>"
                           "<script type=\"text/xquery\">1 +++</script>"
                           "</body></html>");
  EXPECT_EQ(st.code(), "BRWS0005");
  // The DOM itself loaded fine.
  EXPECT_NE(env.ById("keep"), nullptr);
}

TEST(FailureInjection, MalformedJsReportsButKeepsPage) {
  BrowserEnvironment env;
  Status st = env.LoadPage("http://app.example.com/",
                           "<html><body><p id=\"keep\">x</p>"
                           "<script type=\"text/javascript\">function {"
                           "</script></body></html>");
  EXPECT_EQ(st.code(), "BRWS0005");
  EXPECT_NE(env.ById("keep"), nullptr);
}

TEST(FailureInjection, ServiceFunctionErrorPropagatesToClient) {
  BrowserEnvironment env;
  ASSERT_TRUE(env.services()
                  .Deploy("module namespace f=\"urn:f\" port:2001;\n"
                          "declare function f:boom() { 1 idiv 0 };",
                          "f.example.com")
                  .ok());
  Status st = env.LoadPage("http://app.example.com/", R"(
    <html><body><script type="text/xquery">
    import module namespace f = "urn:f" at "http://f.example.com/wsdl";
    browser:alert(string(f:boom()))
    </script></body></html>)");
  EXPECT_EQ(st.code(), "BRWS0005");
  EXPECT_TRUE(env.ScriptErrors().find("FOAR0001") != std::string::npos)
      << env.ScriptErrors();
}

TEST(FailureInjection, DetachedWindowNodeGoesDeadAfterNavigation) {
  // Paper §4.2.1: a captured window node becomes useless once the policy
  // no longer allows access ("the user navigated to another domain").
  BrowserEnvironment env;
  env.fabric().PutResource("http://other-origin.example.net/page",
                           "<html><body/></html>");
  browser::Window* frame = env.window()->CreateFrame("f");
  ASSERT_TRUE(frame
                  ->LoadSource("http://app.example.com/frame",
                               "<html><body/></html>")
                  .ok());
  ASSERT_TRUE(env.LoadPage("http://app.example.com/", R"(
    <html><body><span id="count1">-</span><span id="count2">-</span>
    <script type="text/xqueryp"><![CDATA[
      declare variable $win := browser:self()/frames/window[1];
      replace value of //span[@id="count1"]
        with string(count($win/*));
      replace value of node $win/location/href
        with "http://other-origin.example.net/page";
      replace value of //span[@id="count2"]
        with string(count(browser:top()//window[not(@name)]/*))
    ]]></script></body></html>)")
                  .ok())
      << env.ScriptErrors();
  // Before navigation the frame had visible children; afterwards the
  // re-materialized window is an empty shell.
  EXPECT_NE(env.ById("count1")->StringValue(), "0");
  EXPECT_EQ(env.ById("count2")->StringValue(), "0");
}

TEST(FailureInjection, ClosedFrameDropsItsPageStateSafely) {
  // A behind-completion queued by a frame's script must become a no-op
  // when the frame is closed before the loop drains.
  BrowserEnvironment env;
  env.fabric().PutResource("http://app.example.com/slow.xml", "<r/>");
  env.fabric().latency.base_ms = 100;  // completion stays queued
  browser::Window* frame = env.window()->CreateFrame("f");
  ASSERT_TRUE(frame
                  ->LoadSource("http://app.example.com/frame", R"(
    <html><body><span id="s">-</span>
    <script type="text/xqueryp"><![CDATA[
      declare updating function local:done($state, $result) {
        replace value of //span[@id="s"] with "done"
      };
      on event "stateChanged"
        behind http:get("http://app.example.com/slow.xml")
        attach listener local:done
    ]]></script></body></html>)")
                  .ok())
      << env.ScriptErrors();
  ASSERT_GT(env.browser().loop().pending(), 0u);
  env.window()->CloseFrame(frame);  // frame (and its document) die
  // Draining the loop must not crash or touch freed state.
  env.plugin().PumpEvents();
  SUCCEED();
}

TEST(FailureInjection, FnSerializeRoundtrip) {
  xquery::Engine engine;
  auto q = engine.Compile("serialize(<a x=\"1\"><b/></a>)");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "<a x=\"1\"><b/></a>");
}

}  // namespace
}  // namespace xqib
