// Tests for the XQuery Update Facility (paper §3.2): insert / delete /
// replace / rename primitives, snapshot semantics, compatibility errors,
// and the transform (copy-modify-return) expression.

#include <gtest/gtest.h>

#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::xquery {
namespace {

struct Outcome {
  std::string result;   // string value of the query result
  std::string doc;      // serialized document after updates
  std::string error;    // error code, empty if OK
};

Outcome Exec(const std::string& query, const std::string& xml) {
  Outcome out;
  Engine engine;
  auto q = engine.Compile(query);
  if (!q.ok()) {
    out.error = q.status().code();
    return out;
  }
  auto doc = std::move(xml::ParseDocument(xml)).value();
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  Status b = (*q)->BindGlobals(ctx);
  if (!b.ok()) {
    out.error = b.code();
    return out;
  }
  auto r = (*q)->Run(ctx);
  if (!r.ok()) {
    out.error = r.status().code();
    return out;
  }
  out.result = xdm::SequenceToString(*r);
  out.doc = xml::Serialize(doc->root());
  return out;
}

TEST(Insert, IntoAppends) {
  Outcome r = Exec("insert node <c/> into /a", "<a><b/></a>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.doc, "<a><b/><c/></a>");
}

TEST(Insert, AsFirstInto) {
  Outcome r = Exec("insert node <c/> as first into /a", "<a><b/></a>");
  EXPECT_EQ(r.doc, "<a><c/><b/></a>");
}

TEST(Insert, AsLastInto) {
  Outcome r = Exec("insert node <c/> as last into /a", "<a><b/></a>");
  EXPECT_EQ(r.doc, "<a><b/><c/></a>");
}

TEST(Insert, BeforeAndAfter) {
  EXPECT_EQ(Exec("insert node <x/> before /a/b[2]",
                 "<a><b i='1'/><b i='2'/></a>")
                .doc,
            "<a><b i=\"1\"/><x/><b i=\"2\"/></a>");
  EXPECT_EQ(Exec("insert node <x/> after /a/b[1]",
                 "<a><b i='1'/><b i='2'/></a>")
                .doc,
            "<a><b i=\"1\"/><x/><b i=\"2\"/></a>");
}

TEST(Insert, MultipleNodesKeepOrder) {
  Outcome r = Exec("insert nodes (<x/>, <y/>) into /a", "<a/>");
  EXPECT_EQ(r.doc, "<a><x/><y/></a>");
  Outcome r2 = Exec("insert nodes (<x/>, <y/>) after /a/b", "<a><b/></a>");
  EXPECT_EQ(r2.doc, "<a><b/><x/><y/></a>");
}

TEST(Insert, AttributeNode) {
  Outcome r = Exec("insert node attribute cls {'hot'} into /a", "<a/>");
  EXPECT_EQ(r.doc, "<a cls=\"hot\"/>");
}

TEST(Insert, SourceIsCopiedNotMoved) {
  // Inserting an existing node must copy it: the original stays.
  Outcome r = Exec("insert node /a/b into /a/c", "<a><b/><c/></a>");
  EXPECT_EQ(r.doc, "<a><b/><c><b/></c></a>");
}

TEST(Insert, SnapshotSemantics) {
  // Both inserts see the original tree; neither sees the other's effect
  // (paper: "instructions do not see the side effects of former
  // instructions").
  Outcome r = Exec("insert node <x/> into /a, insert node <y/> into /a",
               "<a/>");
  EXPECT_EQ(r.doc, "<a><x/><y/></a>");
}

TEST(Insert, PaperExampleBookIntoLibrary) {
  Outcome r = Exec("insert node <book title=\"Starwars\"/> into /books",
               "<books><book title=\"Dune\"/></books>");
  EXPECT_EQ(r.doc,
            "<books><book title=\"Dune\"/><book title=\"Starwars\"/>"
            "</books>");
}

TEST(Insert, TargetMustBeSingleNode) {
  EXPECT_EQ(Exec("insert node <x/> into /a/b", "<a><b/><b/></a>").error,
            "XUTY0008");
  EXPECT_EQ(Exec("insert node <x/> into ()", "<a/>").error, "XUTY0008");
}

TEST(Insert, IntoTextNodeFails) {
  EXPECT_EQ(Exec("insert node <x/> into /a/text()", "<a>t</a>").error,
            "XUTY0005");
}

TEST(Delete, SingleAndMultiple) {
  EXPECT_EQ(Exec("delete node /a/b", "<a><b/><c/></a>").doc, "<a><c/></a>");
  EXPECT_EQ(Exec("delete nodes //b", "<a><b/><c/><b/></a>").doc,
            "<a><c/></a>");
}

TEST(Delete, Attribute) {
  EXPECT_EQ(Exec("delete node /a/@x", "<a x='1' y='2'/>").doc,
            "<a y=\"2\"/>");
}

TEST(Delete, NonNodeFails) {
  EXPECT_EQ(Exec("delete node (1)", "<a/>").error, "XUTY0007");
}

TEST(ReplaceValue, TextOfElement) {
  // The paper's bill example: replace value of a price.
  Outcome r = Exec(
      "replace value of node /bill/items[@id=\"computer\"]/price "
      "with 1500",
      "<bill><items id=\"computer\"><price>1000</price></items></bill>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.doc,
            "<bill><items id=\"computer\"><price>1500</price></items>"
            "</bill>");
}

TEST(ReplaceValue, Attribute) {
  EXPECT_EQ(Exec("replace value of node /a/@x with 'new'", "<a x='old'/>")
                .doc,
            "<a x=\"new\"/>");
}

TEST(ReplaceValue, WithEmptySequenceClearsContent) {
  EXPECT_EQ(Exec("replace value of node /a/b with ()", "<a><b>t</b></a>")
                .doc,
            "<a><b/></a>");
}

TEST(ReplaceNode, ElementReplaced) {
  EXPECT_EQ(
      Exec("replace node /a/b with <z/>", "<a><b/><c/></a>").doc,
      "<a><z/><c/></a>");
}

TEST(ReplaceNode, WithMultipleNodes) {
  EXPECT_EQ(
      Exec("replace node /a/b with (<x/>, <y/>)", "<a><b/><c/></a>").doc,
      "<a><x/><y/><c/></a>");
}

TEST(Rename, Element) {
  EXPECT_EQ(Exec("rename node /a/b as 'z'", "<a><b/></a>").doc,
            "<a><z/></a>");
}

TEST(Rename, Attribute) {
  EXPECT_EQ(Exec("rename node /a/@x as 'y'", "<a x='1'/>").doc,
            "<a y=\"1\"/>");
}

TEST(Compatibility, DoubleRenameFails) {
  EXPECT_EQ(Exec("rename node /a/b as 'x', rename node /a/b as 'y'",
                 "<a><b/></a>")
                .error,
            "XUDY0015");
}

TEST(Compatibility, DoubleReplaceFails) {
  EXPECT_EQ(Exec("replace node /a/b with <x/>, replace node /a/b with <y/>",
                 "<a><b/></a>")
                .error,
            "XUDY0016");
  EXPECT_EQ(Exec("replace value of node /a/b with '1', "
                 "replace value of node /a/b with '2'",
                 "<a><b/></a>")
                .error,
            "XUDY0017");
}

TEST(Compatibility, InsertPlusDeleteIsFine) {
  Outcome r = Exec("insert node <x/> into /a/b, delete node /a/b",
               "<a><b/></a>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.doc, "<a/>");
}

TEST(UpdatesInFLWOR, BulkUpdate) {
  Outcome r = Exec("for $b in //b return insert node <k/> into $b",
               "<a><b/><b/></a>");
  EXPECT_EQ(r.doc, "<a><b><k/></b><b><k/></b></a>");
}

TEST(UpdatesInConditional, OnlyTakenBranchRuns) {
  Outcome r = Exec("if (count(//b) > 5) then delete node /a/b "
               "else insert node <c/> into /a",
               "<a><b/></a>");
  EXPECT_EQ(r.doc, "<a><b/><c/></a>");
}

TEST(Transform, CopyModifyReturn) {
  Outcome r = Exec(
      "copy $c := /a modify insert node <n/> into $c return $c",
      "<a><b/></a>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.result, "");
  // The original document is untouched by transform.
  EXPECT_EQ(r.doc, "<a><b/></a>");
}

TEST(Transform, ReturnsModifiedCopy) {
  Engine engine;
  auto q = engine.Compile(
      "copy $c := <a><b>1</b></a> "
      "modify replace value of node $c/b with '2' return $c");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xml::Serialize(r->at(0).node()), "<a><b>2</b></a>");
}

TEST(UpdatingFunction, DeclaredAndCalled) {
  Outcome r = Exec(
      "declare updating function local:add($t) { "
      "insert node <n/> into $t }; "
      "local:add(/a)",
      "<a/>");
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.doc, "<a><n/></a>");
}

}  // namespace
}  // namespace xqib::xquery
