// Tests for the query profiler (§7 future-work tooling).

#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xquery/engine.h"
#include "xquery/parser.h"
#include "xquery/profiler.h"

namespace xqib::xquery {
namespace {

TEST(Profiler, CountsEvaluations) {
  Engine engine;
  CompileOptions no_opt;
  no_opt.optimize = false;  // keep the AST as written
  auto q = engine.Compile("for $i in 1 to 100 return $i * 2", no_opt);
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  Profiler profiler;
  ctx.profiler = &profiler;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  // The multiply evaluates once per binding; the profiler saw it.
  bool found_mul = false;
  for (const Profiler::Entry& e : profiler.HotSpots()) {
    if (e.expr->kind == ExprKind::kArith) {
      EXPECT_EQ(e.count, 100u);
      found_mul = true;
    }
  }
  EXPECT_TRUE(found_mul);
  EXPECT_GT(profiler.total_evaluations(), 200u);  // var refs etc.
}

TEST(Profiler, SelfTimeNeverExceedsTotal) {
  Engine engine;
  auto q = engine.Compile(
      "sum(for $i in 1 to 50 return $i) + count(1 to 20)");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  Profiler profiler;
  ctx.profiler = &profiler;
  ASSERT_TRUE((*q)->Run(ctx).ok());
  for (const Profiler::Entry& e : profiler.HotSpots()) {
    EXPECT_LE(e.self_us, e.total_us + 1e-6) << DescribeExpr(*e.expr);
    EXPECT_GE(e.self_us, -1e-6);
  }
}

TEST(Profiler, ReportMentionsHotExpressions) {
  Engine engine;
  auto q = engine.Compile(
      "count(//item[xs:integer(string(.)) > 50])");
  ASSERT_TRUE(q.ok());
  std::string xml = "<r>";
  for (int i = 0; i < 100; ++i) {
    xml += "<item>" + std::to_string(i) + "</item>";
  }
  xml += "</r>";
  auto doc = std::move(xml::ParseDocument(xml)).value();
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  Profiler profiler;
  ctx.profiler = &profiler;
  ASSERT_TRUE((*q)->Run(ctx).ok());
  std::string report = profiler.Report(10);
  EXPECT_NE(report.find("call"), std::string::npos);
  EXPECT_NE(report.find("count"), std::string::npos);
}

TEST(Profiler, DescribeExprLabels) {
  auto check = [](const std::string& query, const std::string& expect) {
    auto m = ParseExpression(query);
    ASSERT_TRUE(m.ok());
    EXPECT_NE(DescribeExpr(*(*m)->body).find(expect), std::string::npos)
        << query;
  };
  check("count(//a)", "call count#1");
  check("//a/b", "path //a/b");
  check("<x/>", "element-constructor <x>");
  check("42", "literal 42");
}

TEST(Profiler, ClearResets) {
  Engine engine;
  auto q = engine.Compile("1 + 1");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  Profiler profiler;
  ctx.profiler = &profiler;
  ASSERT_TRUE((*q)->Run(ctx).ok());
  EXPECT_GT(profiler.total_evaluations(), 0u);
  profiler.Clear();
  EXPECT_EQ(profiler.total_evaluations(), 0u);
}

TEST(Profiler, TracksPathFastPathCounters) {
  Engine engine;
  auto q = engine.Compile("count(//a) + count(/r/a) + number(exists(//b))");
  ASSERT_TRUE(q.ok());
  auto doc =
      std::move(xml::ParseDocument("<r><a/><b/><a/><b/></r>")).value();
  DynamicContext ctx;
  DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  Profiler profiler;
  ctx.profiler = &profiler;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "5");
  EXPECT_GT(profiler.fast_path().sorts_elided, 0u);
  EXPECT_GT(profiler.fast_path().name_index_hits, 0u);
  EXPECT_GT(profiler.fast_path().early_exits, 0u);
  EXPECT_NE(profiler.Report().find("path fast path"), std::string::npos);
  profiler.Clear();
  EXPECT_EQ(profiler.fast_path().sorts_elided, 0u);
}

TEST(Profiler, NoProfilerMeansNoOverheadPath) {
  // Smoke: evaluation without a profiler still works (the common path).
  Engine engine;
  auto q = engine.Compile("sum(1 to 1000)");
  ASSERT_TRUE(q.ok());
  DynamicContext ctx;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "500500");
}

}  // namespace
}  // namespace xqib::xquery
