// Parser-focused tests: grammar coverage of the extensions, error codes
// for malformed input, and AST shapes for the browser grammar.

#include <gtest/gtest.h>

#include "xquery/parser.h"

namespace xqib::xquery {
namespace {

std::string ParseErrorCode(const std::string& query) {
  auto m = ParseModule(query);
  return m.ok() ? "OK" : m.status().code();
}

const Expr* Body(const std::unique_ptr<Module>& m) {
  return m->body.get();
}

TEST(ParserErrors, Syntax) {
  EXPECT_EQ(ParseErrorCode("1 +"), "XPST0003");
  EXPECT_EQ(ParseErrorCode("for $x in"), "XPST0003");
  EXPECT_EQ(ParseErrorCode("if (1) then 2"), "XPST0003");  // missing else
  EXPECT_EQ(ParseErrorCode("<a><b></a>"), "XPST0003");
  EXPECT_EQ(ParseErrorCode("'unterminated"), "XPST0003");
  EXPECT_EQ(ParseErrorCode("1 2"), "XPST0003");  // trailing content
  EXPECT_EQ(ParseErrorCode("declare variable $x 1; $x"), "XPST0003");
}

TEST(ParserErrors, MessagesCarryExactLineAndColumn) {
  // Every parser/lexer error embeds the position of the offending token.
  auto message = [](const std::string& query) {
    auto m = ParseModule(query);
    return m.ok() ? std::string("OK") : m.status().message();
  };
  EXPECT_EQ(message("'unterminated"),
            "unterminated string literal (at line 1, column 1)");
  EXPECT_EQ(message("let $x := 1\nreturn $$"),
            "expected variable name after '$' (at line 2, column 8)");
  EXPECT_EQ(message("1 2"),
            "unexpected trailing content (at line 1, column 3, near '2')");
  EXPECT_EQ(message("if (1)\nthen 2"),
            "expected 'else' (at line 2, column 7, near '')");
}

TEST(ParserErrors, UndeclaredPrefix) {
  EXPECT_EQ(ParseErrorCode("zz:func(1)"), "XPST0081");
  EXPECT_EQ(ParseErrorCode("//zz:elem"), "XPST0081");
}

TEST(ParserErrors, UnsupportedFeaturesAreCleanErrors) {
  // typeswitch without a case clause is rejected cleanly.
  EXPECT_EQ(ParseErrorCode("typeswitch (1) default return 2"), "XPST0003");
  EXPECT_EQ(ParseErrorCode(
                "typeswitch (1) case xs:integer return 1 default return 2"),
            "OK");
}

TEST(ParserAst, EventAttachShape) {
  auto m = ParseModule(
      "on event \"onclick\" at //input attach listener local:f");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  const Expr* e = Body(*m);
  ASSERT_EQ(e->kind, ExprKind::kEventAttach);
  EXPECT_FALSE(e->behind);
  EXPECT_EQ(e->qname.local(), "f");
  EXPECT_EQ(e->qname.ns(), "http://www.w3.org/2005/xquery-local-functions");
  ASSERT_EQ(e->kids.size(), 2u);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kPath);
}

TEST(ParserAst, EventDetachShape) {
  auto m = ParseModule(
      "on event \"onclick\" at //input detach listener local:f");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(Body(*m)->kind, ExprKind::kEventDetach);
}

TEST(ParserAst, EventBehindShape) {
  auto m = ParseModule(
      "on event \"stateChanged\" behind local:call(1) "
      "attach listener local:done");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  const Expr* e = Body(*m);
  ASSERT_EQ(e->kind, ExprKind::kEventAttach);
  EXPECT_TRUE(e->behind);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kFunctionCall);
}

TEST(ParserAst, TriggerShape) {
  auto m = ParseModule("trigger event \"onclick\" at //input[@id=\"b\"]");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(Body(*m)->kind, ExprKind::kEventTrigger);
}

TEST(ParserAst, StyleShapes) {
  auto set = ParseModule("set style \"color\" of //d to \"red\"");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(Body(*set)->kind, ExprKind::kSetStyle);
  EXPECT_EQ(Body(*set)->kids.size(), 3u);
  auto get = ParseModule("get style \"color\" of //d");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(Body(*get)->kind, ExprKind::kGetStyle);
}

TEST(ParserAst, SetStyleTargetDoesNotEatRangeTo) {
  // "to" binds to the style production, not a range expression.
  auto m = ParseModule("set style \"a\" of //x[1] to \"b\"");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(Body(*m)->kind, ExprKind::kSetStyle);
}

TEST(ParserAst, ModulePortExtension) {
  auto m = ParseModule(
      "module namespace ex = \"www.example.ch\" port:2001;\n"
      "declare option fn:webservice \"true\";\n"
      "declare function ex:mul($a, $b) { $a * $b };");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE((*m)->is_library);
  EXPECT_EQ((*m)->module_ns, "www.example.ch");
  EXPECT_EQ((*m)->service_port, 2001);
  ASSERT_EQ((*m)->functions.size(), 1u);
  EXPECT_EQ((*m)->functions[0]->params.size(), 2u);
}

TEST(ParserAst, FunctionAnnotations) {
  auto m = ParseModule(
      "declare updating function local:u($x) { delete node $x };\n"
      "declare sequential function local:s() { 1 };\n"
      "1");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE((*m)->functions[0]->updating);
  EXPECT_FALSE((*m)->functions[0]->sequential);
  EXPECT_TRUE((*m)->functions[1]->sequential);
}

TEST(ParserAst, ImportRecordsLocation) {
  auto m = ParseModule(
      "import module namespace ab = \"http://example.com\" "
      "at \"http://localhost:2001/wsdl\";\n"
      "ab:f()");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ((*m)->imports.size(), 1u);
  EXPECT_EQ((*m)->imports[0].ns, "http://example.com");
  EXPECT_EQ((*m)->imports[0].location, "http://localhost:2001/wsdl");
}

TEST(ParserAst, PathSteps) {
  auto m = ParseModule("/a/b//c/@d");
  ASSERT_TRUE(m.ok());
  const Expr* e = Body(*m);
  ASSERT_EQ(e->kind, ExprKind::kPath);
  EXPECT_TRUE(e->root_anchored);
  // a, b, descendant-or-self, c, @d
  ASSERT_EQ(e->steps.size(), 5u);
  EXPECT_EQ(e->steps[2].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(e->steps[4].axis, Axis::kAttribute);
}

TEST(ParserAst, ExplicitAxes) {
  const char* axes[] = {
      "child", "descendant", "descendant-or-self", "self", "attribute",
      "parent", "ancestor", "ancestor-or-self", "following-sibling",
      "preceding-sibling", "following", "preceding"};
  for (const char* axis : axes) {
    auto m = ParseModule("//x/" + std::string(axis) + "::node()");
    EXPECT_TRUE(m.ok()) << axis << ": " << m.status().ToString();
  }
  EXPECT_EQ(ParseErrorCode("//x/sideways::node()"), "XPST0003");
}

TEST(ParserAst, CommentsAreSkippedAndNest) {
  auto m = ParseModule("1 (: outer (: inner :) still :) + 2");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(Body(*m)->kind, ExprKind::kArith);
}

TEST(ParserAst, WildcardNameTests) {
  EXPECT_EQ(ParseErrorCode("//*"), "OK");
  EXPECT_EQ(ParseErrorCode("//*:local"), "OK");
  EXPECT_EQ(ParseErrorCode("declare namespace p = 'urn:p'; //p:*"), "OK");
}

TEST(ParserAst, StringEscapes) {
  auto m = ParseModule(R"("say ""hi""")");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(Body(*m)->atom.string_value(), "say \"hi\"");
  auto m2 = ParseModule("'it''s'");
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(Body(*m2)->atom.string_value(), "it's");
}

TEST(ParserAst, PaperSyntaxVariants) {
  // The paper writes `declare variable $message = <...>` (with '=').
  EXPECT_EQ(ParseErrorCode(
                "{ declare variable $m = <message>hi</message>; $m }"),
            "OK");
  // And `do replace ... with ...` (XQueryP-style "do" prefix).
  EXPECT_EQ(ParseErrorCode("do replace value of //a with 1"), "OK");
  EXPECT_EQ(ParseErrorCode("do insert node <x/> into //a"), "OK");
}

TEST(ParserAst, DirectConstructorEdgeCases) {
  EXPECT_EQ(ParseErrorCode("<a b=\"{1}{2}\"/>"), "OK");  // two encl. parts
  EXPECT_EQ(ParseErrorCode("<a>{{ }}</a>"), "OK");       // escaped braces
  EXPECT_EQ(ParseErrorCode("<a><![CDATA[<x>]]></a>"), "OK");
  EXPECT_EQ(ParseErrorCode("<a><!-- c --><?pi d?></a>"), "OK");
  EXPECT_EQ(ParseErrorCode("<a xmlns:p=\"urn:x\"><p:b/></a>"), "OK");
  EXPECT_EQ(ParseErrorCode("<a>{</a>"), "XPST0003");
  EXPECT_EQ(ParseErrorCode("<a x=1/>"), "XPST0003");  // unquoted attr
}

TEST(ParserAst, NestedEnclosedExpressions) {
  EXPECT_EQ(ParseErrorCode(
                "<t>{ for $i in 1 to 2 return <u v=\"{$i}\">{"
                "if ($i = 1) then <w/> else 'x'}</u> }</t>"),
            "OK");
}

}  // namespace
}  // namespace xqib::xquery
