// Tests for MiniJS — the coexisting JavaScript engine (paper §2.1/§2.2)
// — and for JavaScript–XQuery coexistence on one page (§6.2).

#include <gtest/gtest.h>

#include "browser/css.h"
#include "minijs/dom_binding.h"
#include "minijs/js_parser.h"
#include "net/http.h"
#include "net/webservice.h"
#include "plugin/plugin.h"
#include "xml/serializer.h"

namespace xqib::minijs {
namespace {

using browser::Browser;
using browser::Event;
using browser::Window;

class MiniJsTest : public ::testing::Test {
 protected:
  MiniJsTest() : js_(&browser_) {
    browser_.policy().set_mode(browser::SecurityPolicy::Mode::kPermissive);
  }

  Window* LoadBlank() {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/", "<html><body/></html>");
    EXPECT_TRUE(st.ok());
    return browser_.top_window();
  }

  Window* Load(const std::string& body_xml) {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/",
        "<html><body>" + body_xml + "</body></html>");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return browser_.top_window();
  }

  std::string Run(const std::string& js) {
    Window* w = browser_.top_window();
    Status st = js_.Execute(w, js);
    if (!st.ok()) return "ERROR: " + st.ToString();
    return js_.alerts().empty() ? "" : js_.alerts().back();
  }

  Browser browser_;
  DomBinding js_;
};

TEST_F(MiniJsTest, ArithmeticAndStrings) {
  LoadBlank();
  EXPECT_EQ(Run("alert(1 + 2 * 3);"), "7");
  EXPECT_EQ(Run("alert('a' + 1);"), "a1");
  EXPECT_EQ(Run("alert(10 % 3);"), "1");
  EXPECT_EQ(Run("alert((5 - 2) / 2);"), "1.5");
}

TEST_F(MiniJsTest, VariablesAndControlFlow) {
  LoadBlank();
  EXPECT_EQ(Run("var x = 0; for (var i = 1; i <= 10; i++) { x += i; } "
                "alert(x);"),
            "55");
  EXPECT_EQ(Run("var n = 5; var f = 1; while (n > 1) { f = f * n; n--; } "
                "alert(f);"),
            "120");
  EXPECT_EQ(Run("var a = 3; if (a > 2) { alert('big'); } "
                "else { alert('small'); }"),
            "big");
}

TEST_F(MiniJsTest, FunctionsAndClosures) {
  LoadBlank();
  EXPECT_EQ(Run("function add(a, b) { return a + b; } alert(add(2, 3));"),
            "5");
  EXPECT_EQ(Run("function counter() { var n = 0; "
                "return function() { n++; return n; }; } "
                "var c = counter(); c(); c(); alert(c());"),
            "3");
  EXPECT_EQ(Run("function fib(n) { if (n < 2) return n; "
                "return fib(n-1) + fib(n-2); } alert(fib(10));"),
            "55");
}

TEST_F(MiniJsTest, ObjectsAndArrays) {
  LoadBlank();
  EXPECT_EQ(Run("var o = {a: 1, b: 'x'}; alert(o.a + o.b);"), "1x");
  EXPECT_EQ(Run("var a = [10, 20, 30]; alert(a[1] + a.length);"), "23");
  EXPECT_EQ(Run("var a = []; a[2] = 9; alert(a.length);"), "3");
}

TEST_F(MiniJsTest, Equality) {
  LoadBlank();
  EXPECT_EQ(Run("alert(1 == '1');"), "true");
  EXPECT_EQ(Run("alert(1 === '1');"), "false");
  EXPECT_EQ(Run("alert(null == undefined);"), "true");
  EXPECT_EQ(Run("alert(typeof 'x');"), "string");
}

TEST_F(MiniJsTest, StringMethods) {
  LoadBlank();
  EXPECT_EQ(Run("alert('hello'.length);"), "5");
  EXPECT_EQ(Run("alert('hello'.indexOf('ll'));"), "2");
  EXPECT_EQ(Run("alert('hello'.indexOf('z'));"), "-1");
  EXPECT_EQ(Run("alert('hello'.charAt(1));"), "e");
  EXPECT_EQ(Run("alert('hello'.substring(1, 3));"), "el");
  EXPECT_EQ(Run("alert('hello'.substring(3));"), "lo");
  EXPECT_EQ(Run("alert('a,b,c'.split(',').length);"), "3");
  EXPECT_EQ(Run("alert('a,b,c'.split(',')[1]);"), "b");
  EXPECT_EQ(Run("alert('abc'.toUpperCase());"), "ABC");
  EXPECT_EQ(Run("alert('AbC'.toLowerCase());"), "abc");
}

TEST_F(MiniJsTest, StringMethodsOnVariables) {
  LoadBlank();
  EXPECT_EQ(Run("var s = 'xy' + 'z'; alert(s.length + s.indexOf('z'));"),
            "5");
}

TEST_F(MiniJsTest, DomGetElementByIdAndTextContent) {
  Load("<p id=\"msg\">old</p>");
  Run("document.getElementById('msg').textContent = 'new';");
  EXPECT_EQ(browser_.top_window()->document()->GetElementById("msg")
                ->StringValue(),
            "new");
}

TEST_F(MiniJsTest, DomCreateAndAppend) {
  Load("<div id=\"root\"/>");
  Run("var e = document.createElement('span');"
      "e.appendChild(document.createTextNode('hi'));"
      "e.setAttribute('class', 'x');"
      "document.getElementById('root').appendChild(e);");
  EXPECT_EQ(xml::Serialize(
                browser_.top_window()->document()->GetElementById("root")),
            "<div id=\"root\"><span class=\"x\">hi</span></div>");
}

TEST_F(MiniJsTest, DomNavigation) {
  Load("<ul id=\"l\"><li>a</li><li>b</li></ul>");
  EXPECT_EQ(Run("var l = document.getElementById('l');"
                "alert(l.firstChild.textContent + "
                "l.firstChild.nextSibling.textContent);"),
            "ab");
  EXPECT_EQ(Run("alert(document.getElementById('l').childNodes.length);"),
            "2");
}

TEST_F(MiniJsTest, StyleProperty) {
  Load("<div id=\"d\"/>");
  Run("document.getElementById('d').style.color = 'red';");
  EXPECT_EQ(browser::GetStyleProperty(
                browser_.top_window()->document()->GetElementById("d"),
                "color"),
            "red");
}

TEST_F(MiniJsTest, InnerHtmlParsesFragment) {
  Load("<div id=\"d\"/>");
  Run("document.getElementById('d').innerHTML = '<b>bold</b> text';");
  EXPECT_EQ(xml::Serialize(
                browser_.top_window()->document()->GetElementById("d")),
            "<div id=\"d\"><b>bold</b> text</div>");
}

TEST_F(MiniJsTest, DocumentEvaluateXPathSnapshot) {
  // The paper's §2.2 embedded-XPath example shape.
  Load("<div>I love XML</div><div>meh</div>");
  EXPECT_EQ(
      Run("var r = document.evaluate(\"//div[contains(., 'love')]\", "
          "document, null, XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);"
          "alert(r.snapshotLength);"),
      "1");
  Run("var r = document.evaluate(\"//div[contains(., 'love')]\", "
      "document, null, XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);"
      "if (r.snapshotLength > 0) {"
      "  var e = document.createElement('img');"
      "  e.src = 'http://x/heart.gif';"
      "  document.body.insertBefore(e, document.body.firstChild);"
      "}");
  xml::Node* body = nullptr;
  xml::VisitSubtree(browser_.top_window()->document()->root(),
                    [&](xml::Node* n) {
                      if (n->is_element() && n->name().local() == "body") {
                        body = n;
                      }
                    });
  ASSERT_NE(body, nullptr);
  ASSERT_FALSE(body->children().empty());
  EXPECT_EQ(body->children()[0]->name().local(), "img");
  EXPECT_EQ(body->children()[0]->GetAttributeValue("src"),
            "http://x/heart.gif");
}

TEST_F(MiniJsTest, AddEventListenerAndDispatch) {
  Load("<input id=\"b\"/><p id=\"out\">0</p>");
  Run("var count = 0;"
      "document.getElementById('b').addEventListener('onclick', "
      "function(e) { count++; "
      "document.getElementById('out').textContent = String(count); }, "
      "false);");
  Event e;
  e.type = "onclick";
  browser_.events().Dispatch(
      browser_.top_window()->document()->GetElementById("b"), e);
  browser_.events().Dispatch(
      browser_.top_window()->document()->GetElementById("b"), e);
  EXPECT_EQ(browser_.top_window()->document()->GetElementById("out")
                ->StringValue(),
            "2");
}

TEST_F(MiniJsTest, RemoveEventListener) {
  Load("<input id=\"b\"/><p id=\"out\">0</p>");
  Run("function bump(e) { "
      "  var o = document.getElementById('out');"
      "  o.textContent = String(Number(o.textContent) + 1); }"
      "var b = document.getElementById('b');"
      "b.addEventListener('onclick', bump, false);");
  Event e;
  e.type = "onclick";
  browser_.events().Dispatch(
      browser_.top_window()->document()->GetElementById("b"), e);
  Run("b.removeEventListener('onclick', bump, false);");
  browser_.events().Dispatch(
      browser_.top_window()->document()->GetElementById("b"), e);
  EXPECT_EQ(browser_.top_window()->document()->GetElementById("out")
                ->StringValue(),
            "1");
}

TEST_F(MiniJsTest, WindowObjectStatusAndNavigator) {
  LoadBlank();
  Run("self.status = 'Welcome';");
  EXPECT_EQ(browser_.top_window()->status(), "Welcome");
  browser_.navigator.app_name = "Mozilla";
  EXPECT_EQ(Run("alert(navigator.appName);"), "Mozilla");
}

TEST_F(MiniJsTest, SetTimeoutRunsOnLoop) {
  Load("<p id=\"out\">no</p>");
  Run("setTimeout(function() { "
      "document.getElementById('out').textContent = 'yes'; }, 100);");
  EXPECT_EQ(browser_.top_window()->document()->GetElementById("out")
                ->StringValue(),
            "no");
  browser_.loop().RunUntilIdle();
  EXPECT_EQ(browser_.top_window()->document()->GetElementById("out")
                ->StringValue(),
            "yes");
}

// ------------------------------------------------- coexistence (§6.2) ---

class CoexistenceTest : public ::testing::Test {
 protected:
  CoexistenceTest()
      : services_(&fabric_, nullptr),
        plugin_(&browser_, &fabric_, &services_),
        js_(&browser_) {
    plugin_.Install();
    plugin_.set_foreign_engine(&js_);
    browser_.policy().set_mode(browser::SecurityPolicy::Mode::kPermissive);
  }

  net::HttpFabric fabric_;
  net::ServiceHost services_;
  Browser browser_;
  plugin::XqibPlugin plugin_;
  DomBinding js_;
};

TEST_F(CoexistenceTest, BothEnginesHandleTheSameEvent) {
  // The Figure 3 mash-up property: JavaScript and XQuery code listen to
  // the same click; the browser serializes them in registration order.
  Status st = browser_.top_window()->LoadSource(
      "http://mashup.example.com/",
      R"(<html><body>
      <input id="search"/><div id="jslog"/><div id="xqlog"/>
      <script type="text/javascript">
        document.getElementById('search').addEventListener('onclick',
          function(e) {
            var d = document.createElement('js-hit');
            document.getElementById('jslog').appendChild(d);
          }, false);
      </script>
      <script type="text/xquery">
        declare updating function local:onSearch($evt, $obj) {
          insert node <xq-hit/> into //div[@id="xqlog"]
        };
        on event "onclick" at //input[@id="search"]
          attach listener local:onSearch
      </script></body></html>)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
  ASSERT_TRUE(js_.last_error().ok()) << js_.last_error().ToString();

  xml::Node* button =
      browser_.top_window()->document()->GetElementById("search");
  Event e;
  e.type = "onclick";
  plugin_.FireEvent(button, e);

  xml::Document* doc = browser_.top_window()->document();
  EXPECT_EQ(doc->GetElementById("jslog")->children().size(), 1u);
  EXPECT_EQ(doc->GetElementById("xqlog")->children().size(), 1u);
}

TEST_F(CoexistenceTest, BothEnginesShareTheDomDatabase) {
  // §6.2: "the Web page serves like a database and both JavaScript and
  // XQuery code can access and update it".
  Status st = browser_.top_window()->LoadSource(
      "http://mashup.example.com/",
      R"(<html><body><div id="shared"/>
      <script type="text/javascript">
        var d = document.createElement('from-js');
        document.getElementById('shared').appendChild(d);
      </script>
      <script type="text/xquery">
        { insert node <from-xquery/> into //div[@id="shared"];
          browser:alert(string(count(//div[@id="shared"]/*))); }
      </script></body></html>)");
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
  // XQuery (running after JS, §4.1) sees the JS-created element.
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "2");
  xml::Node* shared =
      browser_.top_window()->document()->GetElementById("shared");
  EXPECT_EQ(shared->children()[0]->name().local(), "from-js");
  EXPECT_EQ(shared->children()[1]->name().local(), "from-xquery");
}

TEST_F(CoexistenceTest, JavaScriptRunsBeforeXQuery) {
  // §4.1: "Currently, JavaScript is executed first, then XQuery" — even
  // if the XQuery script element comes first in the page.
  Status st = browser_.top_window()->LoadSource(
      "http://mashup.example.com/",
      R"(<html><body><div id="order"/>
      <script type="text/xquery">
        insert node <second/> into //div[@id="order"]
      </script>
      <script type="text/javascript">
        var d = document.createElement('first');
        document.getElementById('order').appendChild(d);
      </script></body></html>)");
  ASSERT_TRUE(st.ok());
  xml::Node* order =
      browser_.top_window()->document()->GetElementById("order");
  ASSERT_EQ(order->children().size(), 2u);
  EXPECT_EQ(order->children()[0]->name().local(), "first");
  EXPECT_EQ(order->children()[1]->name().local(), "second");
}

}  // namespace
}  // namespace xqib::minijs
