// Unit tests for the full-text substrate: word tokenization, the
// suffix-stripping stemmer, phrase matching — plus the XQuery lexer.

#include <gtest/gtest.h>

#include "xquery/fulltext.h"
#include "xquery/lexer.h"

namespace xqib::xquery {
namespace {

TEST(Tokenizer, SplitsOnNonWordChars) {
  auto t = TokenizeWords("The dog-house, and 2 cats!");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "dog");
  EXPECT_EQ(t[2], "house");
  EXPECT_EQ(t[5], "cats");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords(" .,;! ").empty());
}

TEST(Stemmer, PluralForms) {
  EXPECT_EQ(StemWord("dogs"), StemWord("dog"));
  EXPECT_EQ(StemWord("queries"), "queri");  // Porter-style -ies -> -i
  EXPECT_EQ(StemWord("classes"), "class");
  EXPECT_EQ(StemWord("class"), "class");  // -ss is not a plural
}

TEST(Stemmer, VerbForms) {
  EXPECT_EQ(StemWord("running"), "run");
  EXPECT_EQ(StemWord("barked"), "bark");
  EXPECT_EQ(StemWord("agreed"), "agree");
}

TEST(Stemmer, CaseInsensitive) {
  EXPECT_EQ(StemWord("Dogs"), StemWord("dog"));
}

TEST(Stemmer, Idempotent) {
  for (const char* w : {"dogs", "running", "classes", "quickly",
                        "movement", "darkness"}) {
    std::string once = StemWord(w);
    EXPECT_EQ(StemWord(once), once) << w;
  }
}

TEST(PhraseMatch, ConsecutiveTokensRequired) {
  auto tokens = TokenizeWords("the quick brown fox");
  EXPECT_TRUE(ContainsPhrase(tokens, "quick brown", false));
  EXPECT_FALSE(ContainsPhrase(tokens, "quick fox", false));
  EXPECT_TRUE(ContainsPhrase(tokens, "THE QUICK", false));  // case-folded
  EXPECT_FALSE(ContainsPhrase(tokens, "", false));
}

TEST(PhraseMatch, StemmingBridgesMorphology) {
  auto tokens = TokenizeWords("dogs barked loudly");
  EXPECT_FALSE(ContainsPhrase(tokens, "dog", false));
  EXPECT_TRUE(ContainsPhrase(tokens, "dog", true));
  EXPECT_TRUE(ContainsPhrase(tokens, "dogs bark", true));
}

// ------------------------------------------------------------- lexer ---

std::vector<Token> LexAll(const std::string& in) {
  Lexer lex(in);
  std::vector<Token> out;
  while (lex.Peek().kind != TokKind::kEof) out.push_back(lex.Next());
  EXPECT_TRUE(lex.status().ok()) << lex.status().ToString();
  return out;
}

TEST(LexerTest, NumbersAndNames) {
  auto t = LexAll("12 3.5 1e3 .5 abc p:q xs:integer");
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0].kind, TokKind::kInteger);
  EXPECT_EQ(t[1].kind, TokKind::kDecimal);
  EXPECT_EQ(t[2].kind, TokKind::kDouble);
  EXPECT_EQ(t[3].kind, TokKind::kDecimal);
  EXPECT_EQ(t[4].kind, TokKind::kName);
  EXPECT_EQ(t[5].text, "p:q");
  EXPECT_EQ(t[6].text, "xs:integer");
}

TEST(LexerTest, RangeDotsDoNotEatNumbers) {
  auto t = LexAll("1..2");
  // "1" ".." "2" — the number must not swallow the path dots.
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].text, "..");
}

TEST(LexerTest, AxisColonsStaySeparate) {
  auto t = LexAll("child::a");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].text, "child");
  EXPECT_EQ(t[1].text, "::");
  EXPECT_EQ(t[2].text, "a");
}

TEST(LexerTest, Variables) {
  auto t = LexAll("$x $p:y");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].kind, TokKind::kVariable);
  EXPECT_EQ(t[0].text, "x");
  EXPECT_EQ(t[1].text, "p:y");
}

TEST(LexerTest, MultiCharSymbols) {
  auto t = LexAll(":= != <= >= << >> // .. ::");
  for (const Token& tok : t) EXPECT_EQ(tok.kind, TokKind::kSymbol);
  ASSERT_EQ(t.size(), 9u);
  EXPECT_EQ(t[0].text, ":=");
  EXPECT_EQ(t[6].text, "//");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lex("'abc");
  lex.Peek();
  EXPECT_FALSE(lex.status().ok());
}

TEST(LexerTest, PeekAheadIsStable) {
  Lexer lex("a b c d");
  const Token& t0 = lex.Peek(0);
  const Token& t3 = lex.Peek(3);
  // Deque-backed buffer: earlier references stay valid across peeks.
  EXPECT_EQ(t0.text, "a");
  EXPECT_EQ(t3.text, "d");
  EXPECT_EQ(lex.Next().text, "a");
  EXPECT_EQ(lex.Peek().text, "b");
}

TEST(LexerTest, RawSeekRestartsTokenization) {
  Lexer lex("abc def");
  EXPECT_EQ(lex.Peek().text, "abc");
  size_t pos = lex.Peek().pos;
  lex.Next();
  EXPECT_EQ(lex.Peek().text, "def");
  lex.RawSeek(pos);
  EXPECT_EQ(lex.Peek().text, "abc");
}

}  // namespace
}  // namespace xqib::xquery
