// Unit tests for the simulated network: HTTP fabric (resources,
// handlers, latency accounting, async), the XML store, REST functions,
// and XQuery-module web services.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "browser/event_loop.h"
#include "net/http.h"
#include "net/prefetch.h"
#include "net/response_cache.h"
#include "net/rest.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xqib::net {
namespace {

TEST(HttpFabric, StaticResources) {
  HttpFabric fabric;
  fabric.PutResource("http://a.com/x.xml", "<x/>");
  auto r = fabric.Get("http://a.com/x.xml");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->body, "<x/>");
  EXPECT_FALSE(fabric.Get("http://a.com/missing").ok());
  EXPECT_EQ(fabric.Get("http://a.com/missing").status().code(), "NETW0404");
}

TEST(HttpFabric, HandlersLongestPrefixWins) {
  HttpFabric fabric;
  fabric.SetHandler("http://a.com/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{200, "root", "text/plain"});
  });
  fabric.SetHandler("http://a.com/api/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{200, "api", "text/plain"});
  });
  EXPECT_EQ(fabric.Get("http://a.com/other")->body, "root");
  EXPECT_EQ(fabric.Get("http://a.com/api/v1")->body, "api");
  // Static resources shadow handlers.
  fabric.PutResource("http://a.com/api/static", "fixed");
  EXPECT_EQ(fabric.Get("http://a.com/api/static")->body, "fixed");
}

TEST(HttpFabric, StatsAndLatencyModel) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 1;
  fabric.PutResource("http://a.com/k", std::string(2048, 'x'));
  (void)fabric.Get("http://a.com/k");
  (void)fabric.Get("http://a.com/k");
  EXPECT_EQ(fabric.stats().requests, 2u);
  EXPECT_EQ(fabric.stats().bytes_served, 4096u);
  EXPECT_DOUBLE_EQ(fabric.stats().simulated_latency_ms, 2 * (10 + 2));
  fabric.ResetStats();
  EXPECT_EQ(fabric.stats().requests, 0u);
}

TEST(HttpFabric, FailedRequestsStillCounted) {
  HttpFabric fabric;
  (void)fabric.Get("http://nowhere/");
  EXPECT_EQ(fabric.stats().requests, 1u);
}

TEST(HttpFabric, PutStoresResource) {
  HttpFabric fabric;
  auto r = fabric.Put("http://a.com/doc", "<doc/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 201);
  EXPECT_EQ(fabric.Get("http://a.com/doc")->body, "<doc/>");
}

TEST(HttpFabric, AsyncDeliversOnLoopAfterLatency) {
  HttpFabric fabric;
  fabric.latency.base_ms = 25;
  fabric.PutResource("http://a.com/x", "payload");
  browser::EventLoop loop;
  std::string got;
  fabric.GetAsync("http://a.com/x", &loop, [&](Result<HttpResponse> r) {
    if (r.ok()) got = r->body;
  });
  EXPECT_EQ(got, "");  // not yet delivered
  loop.RunUntilIdle();
  EXPECT_EQ(got, "payload");
  EXPECT_GE(loop.now_ms(), 25.0);
}

TEST(XmlStoreTest, PutGetSerialize) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/lib.xml", "<lib><b/></lib>").ok());
  auto root = store.Get("/lib.xml");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(xml::Serialize(*root), "<lib><b/></lib>");
  EXPECT_FALSE(store.Get("/nope.xml").ok());
  EXPECT_TRUE(store.Has("/lib.xml"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(XmlStoreTest, LiveDocumentMutationVisibleInSerialization) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/d.xml", "<d/>").ok());
  xml::Node* root = *store.Get("/d.xml");
  xml::Node* elem = root->document()->CreateElement(xml::QName("new"));
  root->document()->DocumentElement()->AppendChild(elem);
  EXPECT_EQ(*store.Serialize("/d.xml"), "<d><new/></d>");
}

TEST(XmlStoreTest, MountOnFabricServesAndWrites) {
  XmlStore store;
  HttpFabric fabric;
  ASSERT_TRUE(store.Put("/a.xml", "<a/>").ok());
  store.MountOn(&fabric, "http://db.example.com");
  EXPECT_EQ(fabric.Get("http://db.example.com/a.xml")->body, "<a/>");
  HttpRequest put;
  put.method = "PUT";
  put.url = "http://db.example.com/b.xml";
  put.body = "<b/>";
  ASSERT_TRUE(fabric.Perform(put).ok());
  EXPECT_TRUE(store.Has("/b.xml"));
}

TEST(XmlStoreTest, DocResolverBlocksMissing) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/x.xml", "<x/>").ok());
  auto resolver = store.MakeDocResolver();
  EXPECT_TRUE(resolver("/x.xml").ok());
  EXPECT_EQ(resolver("/y.xml").status().code(), "FODC0002");
}

// ------------------------------------------------------------------ REST ---

TEST(Rest, GetParsesXml) {
  HttpFabric fabric;
  fabric.PutResource("http://api/x", "<v>41</v>");
  xquery::Engine engine;
  auto q = engine.Compile("http:get(\"http://api/x\")//v + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
}

TEST(Rest, GetTextReturnsRawBody) {
  HttpFabric fabric;
  fabric.PutResource("http://api/t", "plain payload", "text/plain");
  xquery::Engine engine;
  auto q = engine.Compile("http:get-text(\"http://api/t\")");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "plain payload");
}

TEST(Rest, PutWritesNode) {
  HttpFabric fabric;
  xquery::Engine engine;
  auto q = engine.Compile("http:put(\"http://api/out\", <data v=\"1\"/>)");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "201");
  EXPECT_EQ(fabric.Get("http://api/out")->body, "<data v=\"1\"/>");
}

TEST(Rest, ErrorsPropagate) {
  HttpFabric fabric;
  xquery::Engine engine;
  auto q = engine.Compile("http:get(\"http://api/missing\")");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  EXPECT_EQ((*q)->Run(ctx).status().code(), "NETW0404");
}

// ------------------------------------------------------------ services ---

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : host_(&fabric_, &store_) {}
  HttpFabric fabric_;
  XmlStore store_;
  ServiceHost host_;
};

TEST_F(ServiceTest, DeployPublishesWsdl) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  EXPECT_EQ(host_.ServiceUrl("urn:svc"), "http://svc.example.com:2001/");
  auto wsdl = fabric_.Get("http://svc.example.com:2001/wsdl");
  ASSERT_TRUE(wsdl.ok());
  EXPECT_TRUE(wsdl->body.find("name=\"mul\"") != std::string::npos);
}

TEST_F(ServiceTest, InvokeRunsServerSide) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  xml::QName mul("urn:svc", "ex", "mul");
  auto r = host_.Invoke("urn:svc", mul,
                        {xdm::Sequence{xdm::Item::Integer(2)},
                         xdm::Sequence{xdm::Item::Integer(5)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "10");
}

TEST_F(ServiceTest, ServiceFunctionsCanUseTheXmlStore) {
  ASSERT_TRUE(store_.Put("/inventory.xml",
                         "<inv><item>5</item><item>7</item></inv>")
                  .ok());
  ASSERT_TRUE(host_
                  .Deploy("module namespace inv=\"urn:inv\" port:2002;\n"
                          "declare function inv:total() { "
                          "sum(doc(\"/inventory.xml\")//item) };",
                          "inv.example.com")
                  .ok());
  xml::QName total("urn:inv", "inv", "total");
  auto r = host_.Invoke("urn:inv", total, {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "12");
}

TEST_F(ServiceTest, ClientStubsAccountRoundTrips) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  xquery::Engine engine;
  auto q = engine.Compile(
      "import module namespace ab=\"urn:svc\" at \"http://svc/wsdl\";\n"
      "ab:mul(6, 7)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  ASSERT_TRUE(host_.RegisterClientStubs("urn:svc", &ctx).ok());
  uint64_t before = fabric_.stats().requests;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
  EXPECT_EQ(fabric_.stats().requests, before + 1);  // one RPC round trip
}

TEST_F(ServiceTest, ServiceFunctionsCanWriteWithFnPut) {
  ASSERT_TRUE(store_.Put("/log.xml", "<log/>").ok());
  ASSERT_TRUE(host_
                  .Deploy("module namespace w=\"urn:w\" port:2003;\n"
                          "declare function w:save($v) { "
                          "put(<saved>{$v}</saved>, \"/out.xml\") };",
                          "w.example.com")
                  .ok());
  xml::QName save("urn:w", "w", "save");
  auto r = host_.Invoke("urn:w", save,
                        {xdm::Sequence{xdm::Item::Integer(7)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*store_.Serialize("/out.xml"), "<saved>7</saved>");
}

TEST_F(ServiceTest, UnknownServiceFails) {
  EXPECT_EQ(host_.Invoke("urn:none", xml::QName("f"), {}).status().code(),
            "NETW0404");
  xquery::DynamicContext ctx;
  EXPECT_EQ(host_.RegisterClientStubs("urn:none", &ctx).code(), "NETW0404");
}

// ------------------------------------------------- async federation ---

TEST(HttpFabric, PutRoutesToLongestMatchingHandler) {
  HttpFabric fabric;
  std::string root_hits, api_hits;
  fabric.SetHandler("http://a.com/", [&](const HttpRequest& req) {
    root_hits += req.method;
    return Result<HttpResponse>(HttpResponse{200, "root", "text/plain"});
  });
  fabric.SetHandler("http://a.com/api/", [&](const HttpRequest& req) {
    api_hits += req.method;
    return Result<HttpResponse>(HttpResponse{204, "api", "text/plain"});
  });
  // The PUT must reach the /api/ handler (longest prefix), not whichever
  // handler the table happens to iterate first.
  auto r = fabric.Put("http://a.com/api/doc", "<doc/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 204);
  EXPECT_EQ(api_hits, "PUT");
  EXPECT_EQ(root_hits, "");
  EXPECT_EQ(fabric.Put("http://a.com/top", "<t/>")->status, 200);
  EXPECT_EQ(root_hits, "PUT");
  // Outside every handler prefix a PUT stores a plain resource.
  EXPECT_EQ(fabric.Put("http://b.com/doc", "<doc/>")->status, 201);
  EXPECT_EQ(fabric.Get("http://b.com/doc")->body, "<doc/>");
}

TEST(HttpFabric, HandlerStatus404IsDataNotTransportError) {
  HttpFabric fabric;
  HttpResponseCache cache;
  fabric.set_response_cache(&cache);
  fabric.SetHandler("http://a.com/api/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{404, "gone", "text/plain"});
  });
  // A handler may answer 404 as data: the response is delivered...
  auto r = fabric.Get("http://a.com/api/x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
  // ...while an unresolvable URL is a transport-level NETW0404.
  EXPECT_EQ(fabric.Get("http://a.com/other").status().code(), "NETW0404");
  // Neither outcome may populate the response cache.
  (void)fabric.Get("http://a.com/api/x");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(HttpFabric, ConcurrentMutationAndTraffic) {
  HttpFabric fabric;
  fabric.PutResource("http://a.com/seed", "<x/>");
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fabric, &errors, t] {
      for (int i = 0; i < kOps; ++i) {
        if (t % 2 == 0) {
          // Writers mutate the tables while readers are in Perform.
          fabric.PutResource("http://a.com/w" + std::to_string(t) + "/" +
                                 std::to_string(i),
                             "<y/>");
        } else {
          auto r = fabric.Get("http://a.com/seed");
          if (!r.ok() || r->body != "<x/>") errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(fabric.stats().requests, uint64_t{kThreads / 2} * kOps);
}

TEST(HttpFabric, FetchOverlapsInOneWindow) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 0;
  for (int i = 0; i < 4; ++i) {
    fabric.PutResource("http://a.com/" + std::to_string(i), "x");
  }
  std::vector<HttpFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(fabric.FetchGet("http://a.com/" + std::to_string(i)));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_DOUBLE_EQ(f.latency_ms(), 10.0);
    auto r = f.Await();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->body, "x");
  }
  // Sum semantics are untouched; the wall clock collapses to one RTT.
  EXPECT_DOUBLE_EQ(fabric.stats().simulated_latency_ms, 40.0);
  EXPECT_DOUBLE_EQ(fabric.stats().makespan_ms, 10.0);
  EXPECT_DOUBLE_EQ(fabric.stats().overlapped_ms, 30.0);
  EXPECT_EQ(fabric.stats().inflight_peak, 4u);
  // Serial traffic after the window pays its full latency again.
  ASSERT_TRUE(fabric.Get("http://a.com/0").ok());
  EXPECT_DOUBLE_EQ(fabric.stats().makespan_ms, 20.0);
}

TEST(HttpFabric, FutureThenCompletesInLatencyOrder) {
  HttpFabric fabric;
  fabric.latency.base_ms = 5;
  fabric.latency.per_kb_ms = 1;
  fabric.PutResource("http://a.com/small", "x");
  fabric.PutResource("http://a.com/big", std::string(8192, 'x'));
  browser::EventLoop loop;
  std::vector<std::string> order;
  // Issue the slow fetch first: completion follows simulated latency,
  // not issue order.
  fabric.FetchGet("http://a.com/big").Then(&loop, [&](Result<HttpResponse> r) {
    ASSERT_TRUE(r.ok());
    order.push_back("big");
  });
  fabric.FetchGet("http://a.com/small")
      .Then(&loop, [&](Result<HttpResponse> r) {
        ASSERT_TRUE(r.ok());
        order.push_back("small");
      });
  loop.RunUntilIdle();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "small");
  EXPECT_EQ(order[1], "big");
  EXPECT_DOUBLE_EQ(loop.now_ms(), 13.0);  // 5 + 8192/1024 * 1
}

TEST(ResponseCache, HitsAreFreeAndNotRequests) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 0;
  HttpResponseCache cache;
  fabric.set_response_cache(&cache);
  fabric.PutResource("http://a.com/x", "<v>1</v>");
  EXPECT_EQ(fabric.Get("http://a.com/x")->body, "<v>1</v>");  // miss + insert
  EXPECT_EQ(fabric.Get("http://a.com/x")->body, "<v>1</v>");  // hit
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_misses, 1u);
  // The hit cost no latency and was not a request.
  EXPECT_EQ(fabric.stats().requests, 1u);
  EXPECT_DOUBLE_EQ(fabric.stats().simulated_latency_ms, 10.0);
}

TEST(ResponseCache, WritesInvalidate) {
  HttpFabric fabric;
  HttpResponseCache cache;
  fabric.set_response_cache(&cache);
  fabric.PutResource("http://a.com/x", "<v>1</v>");
  EXPECT_EQ(fabric.Get("http://a.com/x")->body, "<v>1</v>");
  // A write through the fabric drops the entry: the next read must see
  // the new value, never the cached one.
  fabric.PutResource("http://a.com/x", "<v>2</v>");
  EXPECT_EQ(fabric.Get("http://a.com/x")->body, "<v>2</v>");
  // PUT requests invalidate too.
  ASSERT_TRUE(fabric.Put("http://a.com/x", "<v>3</v>").ok());
  EXPECT_EQ(fabric.Get("http://a.com/x")->body, "<v>3</v>");
  // Installing a handler invalidates its whole prefix.
  EXPECT_EQ(cache.size(), 1u);
  fabric.SetHandler("http://a.com/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{200, "live", "text/plain"});
  });
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.stats().invalidations, 3u);
}

TEST(ResponseCache, TtlExpiresOnVirtualClock) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 0;
  HttpResponseCache cache;
  cache.set_ttl_ms(25);
  fabric.set_response_cache(&cache);
  fabric.PutResource("http://a.com/x", "<x/>");
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());  // stored at vnow = 10
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());  // hit, clock unchanged
  EXPECT_EQ(cache.stats().hits, 1u);
  // Unrelated serial traffic advances the virtual clock past the TTL
  // (distinct URLs: a repeat of one URL would itself hit the cache and
  // leave the clock alone).
  for (int i = 0; i < 3; ++i) {
    std::string url = "http://a.com/other" + std::to_string(i);
    fabric.PutResource(url, "<o/>");
    ASSERT_TRUE(fabric.Get(url).ok());  // vnow = 20, 30, 40
  }
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());  // 40 - 10 > 25: expired
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);  // no new hit
}

TEST(ResponseCache, PerUrlStatsSnapshot) {
  HttpFabric fabric;
  HttpResponseCache cache;
  fabric.set_response_cache(&cache);
  fabric.PutResource("http://a.com/x", "<x/>");
  fabric.PutResource("http://a.com/y", "<y/>");
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());
  ASSERT_TRUE(fabric.Get("http://a.com/x").ok());
  ASSERT_TRUE(fabric.Get("http://a.com/y").ok());
  auto per_url = cache.UrlStatsSnapshot();
  ASSERT_EQ(per_url.size(), 2u);
  EXPECT_EQ(per_url["http://a.com/x"].misses, 1u);
  EXPECT_EQ(per_url["http://a.com/x"].hits, 2u);
  EXPECT_EQ(per_url["http://a.com/y"].misses, 1u);
  EXPECT_EQ(per_url["http://a.com/y"].hits, 0u);
}

TEST(Prefetch, DedupTakeAndDrain) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 0;
  fabric.PutResource("http://a.com/x", "<x/>");
  fabric.PutResource("http://a.com/y", "<y/>");
  HttpPrefetcher prefetcher(&fabric);
  prefetcher.Prefetch("http://a.com/x");
  prefetcher.Prefetch("http://a.com/x");  // already in flight: not re-issued
  prefetcher.Prefetch("http://a.com/y");
  EXPECT_EQ(prefetcher.stats().issued, 2u);
  EXPECT_EQ(prefetcher.pending(), 2u);
  HttpFuture future;
  ASSERT_TRUE(prefetcher.Take("http://a.com/x", &future));
  EXPECT_FALSE(prefetcher.Take("http://a.com/x", &future));  // consumed
  auto r = future.Await();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "<x/>");
  EXPECT_EQ(prefetcher.stats().hits, 1u);
  // Drain settles and drops the unconsumed future at the dispatch edge.
  EXPECT_EQ(prefetcher.Drain(), 1u);
  EXPECT_EQ(prefetcher.pending(), 0u);
  // Both fetches shared one in-flight window.
  EXPECT_DOUBLE_EQ(fabric.stats().makespan_ms, 10.0);
  EXPECT_DOUBLE_EQ(fabric.stats().overlapped_ms, 10.0);
}

TEST(Rest, GetConsumesPrefetchedFuture) {
  HttpFabric fabric;
  fabric.PutResource("http://api/x", "<v>41</v>");
  HttpPrefetcher prefetcher(&fabric);
  prefetcher.Prefetch("http://api/x");
  xquery::Engine engine;
  auto q = engine.Compile("http:get(\"http://api/x\")//v + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric, &prefetcher);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
  // The call consumed the scattered future instead of a fresh round trip.
  EXPECT_EQ(prefetcher.stats().hits, 1u);
  EXPECT_EQ(prefetcher.pending(), 0u);
  EXPECT_EQ(fabric.stats().requests, 1u);
}

}  // namespace
}  // namespace xqib::net
