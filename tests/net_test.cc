// Unit tests for the simulated network: HTTP fabric (resources,
// handlers, latency accounting, async), the XML store, REST functions,
// and XQuery-module web services.

#include <gtest/gtest.h>

#include "browser/event_loop.h"
#include "net/http.h"
#include "net/rest.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xqib::net {
namespace {

TEST(HttpFabric, StaticResources) {
  HttpFabric fabric;
  fabric.PutResource("http://a.com/x.xml", "<x/>");
  auto r = fabric.Get("http://a.com/x.xml");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->body, "<x/>");
  EXPECT_FALSE(fabric.Get("http://a.com/missing").ok());
  EXPECT_EQ(fabric.Get("http://a.com/missing").status().code(), "NETW0404");
}

TEST(HttpFabric, HandlersLongestPrefixWins) {
  HttpFabric fabric;
  fabric.SetHandler("http://a.com/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{200, "root", "text/plain"});
  });
  fabric.SetHandler("http://a.com/api/", [](const HttpRequest&) {
    return Result<HttpResponse>(HttpResponse{200, "api", "text/plain"});
  });
  EXPECT_EQ(fabric.Get("http://a.com/other")->body, "root");
  EXPECT_EQ(fabric.Get("http://a.com/api/v1")->body, "api");
  // Static resources shadow handlers.
  fabric.PutResource("http://a.com/api/static", "fixed");
  EXPECT_EQ(fabric.Get("http://a.com/api/static")->body, "fixed");
}

TEST(HttpFabric, StatsAndLatencyModel) {
  HttpFabric fabric;
  fabric.latency.base_ms = 10;
  fabric.latency.per_kb_ms = 1;
  fabric.PutResource("http://a.com/k", std::string(2048, 'x'));
  (void)fabric.Get("http://a.com/k");
  (void)fabric.Get("http://a.com/k");
  EXPECT_EQ(fabric.stats().requests, 2u);
  EXPECT_EQ(fabric.stats().bytes_served, 4096u);
  EXPECT_DOUBLE_EQ(fabric.stats().simulated_latency_ms, 2 * (10 + 2));
  fabric.ResetStats();
  EXPECT_EQ(fabric.stats().requests, 0u);
}

TEST(HttpFabric, FailedRequestsStillCounted) {
  HttpFabric fabric;
  (void)fabric.Get("http://nowhere/");
  EXPECT_EQ(fabric.stats().requests, 1u);
}

TEST(HttpFabric, PutStoresResource) {
  HttpFabric fabric;
  auto r = fabric.Put("http://a.com/doc", "<doc/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 201);
  EXPECT_EQ(fabric.Get("http://a.com/doc")->body, "<doc/>");
}

TEST(HttpFabric, AsyncDeliversOnLoopAfterLatency) {
  HttpFabric fabric;
  fabric.latency.base_ms = 25;
  fabric.PutResource("http://a.com/x", "payload");
  browser::EventLoop loop;
  std::string got;
  fabric.GetAsync("http://a.com/x", &loop, [&](Result<HttpResponse> r) {
    if (r.ok()) got = r->body;
  });
  EXPECT_EQ(got, "");  // not yet delivered
  loop.RunUntilIdle();
  EXPECT_EQ(got, "payload");
  EXPECT_GE(loop.now_ms(), 25.0);
}

TEST(XmlStoreTest, PutGetSerialize) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/lib.xml", "<lib><b/></lib>").ok());
  auto root = store.Get("/lib.xml");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(xml::Serialize(*root), "<lib><b/></lib>");
  EXPECT_FALSE(store.Get("/nope.xml").ok());
  EXPECT_TRUE(store.Has("/lib.xml"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(XmlStoreTest, LiveDocumentMutationVisibleInSerialization) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/d.xml", "<d/>").ok());
  xml::Node* root = *store.Get("/d.xml");
  xml::Node* elem = root->document()->CreateElement(xml::QName("new"));
  root->document()->DocumentElement()->AppendChild(elem);
  EXPECT_EQ(*store.Serialize("/d.xml"), "<d><new/></d>");
}

TEST(XmlStoreTest, MountOnFabricServesAndWrites) {
  XmlStore store;
  HttpFabric fabric;
  ASSERT_TRUE(store.Put("/a.xml", "<a/>").ok());
  store.MountOn(&fabric, "http://db.example.com");
  EXPECT_EQ(fabric.Get("http://db.example.com/a.xml")->body, "<a/>");
  HttpRequest put;
  put.method = "PUT";
  put.url = "http://db.example.com/b.xml";
  put.body = "<b/>";
  ASSERT_TRUE(fabric.Perform(put).ok());
  EXPECT_TRUE(store.Has("/b.xml"));
}

TEST(XmlStoreTest, DocResolverBlocksMissing) {
  XmlStore store;
  ASSERT_TRUE(store.Put("/x.xml", "<x/>").ok());
  auto resolver = store.MakeDocResolver();
  EXPECT_TRUE(resolver("/x.xml").ok());
  EXPECT_EQ(resolver("/y.xml").status().code(), "FODC0002");
}

// ------------------------------------------------------------------ REST ---

TEST(Rest, GetParsesXml) {
  HttpFabric fabric;
  fabric.PutResource("http://api/x", "<v>41</v>");
  xquery::Engine engine;
  auto q = engine.Compile("http:get(\"http://api/x\")//v + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
}

TEST(Rest, GetTextReturnsRawBody) {
  HttpFabric fabric;
  fabric.PutResource("http://api/t", "plain payload", "text/plain");
  xquery::Engine engine;
  auto q = engine.Compile("http:get-text(\"http://api/t\")");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "plain payload");
}

TEST(Rest, PutWritesNode) {
  HttpFabric fabric;
  xquery::Engine engine;
  auto q = engine.Compile("http:put(\"http://api/out\", <data v=\"1\"/>)");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(xdm::SequenceToString(*r), "201");
  EXPECT_EQ(fabric.Get("http://api/out")->body, "<data v=\"1\"/>");
}

TEST(Rest, ErrorsPropagate) {
  HttpFabric fabric;
  xquery::Engine engine;
  auto q = engine.Compile("http:get(\"http://api/missing\")");
  ASSERT_TRUE(q.ok());
  xquery::DynamicContext ctx;
  RegisterRestFunctions(&ctx, &fabric);
  EXPECT_EQ((*q)->Run(ctx).status().code(), "NETW0404");
}

// ------------------------------------------------------------ services ---

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : host_(&fabric_, &store_) {}
  HttpFabric fabric_;
  XmlStore store_;
  ServiceHost host_;
};

TEST_F(ServiceTest, DeployPublishesWsdl) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  EXPECT_EQ(host_.ServiceUrl("urn:svc"), "http://svc.example.com:2001/");
  auto wsdl = fabric_.Get("http://svc.example.com:2001/wsdl");
  ASSERT_TRUE(wsdl.ok());
  EXPECT_TRUE(wsdl->body.find("name=\"mul\"") != std::string::npos);
}

TEST_F(ServiceTest, InvokeRunsServerSide) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  xml::QName mul("urn:svc", "ex", "mul");
  auto r = host_.Invoke("urn:svc", mul,
                        {xdm::Sequence{xdm::Item::Integer(2)},
                         xdm::Sequence{xdm::Item::Integer(5)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "10");
}

TEST_F(ServiceTest, ServiceFunctionsCanUseTheXmlStore) {
  ASSERT_TRUE(store_.Put("/inventory.xml",
                         "<inv><item>5</item><item>7</item></inv>")
                  .ok());
  ASSERT_TRUE(host_
                  .Deploy("module namespace inv=\"urn:inv\" port:2002;\n"
                          "declare function inv:total() { "
                          "sum(doc(\"/inventory.xml\")//item) };",
                          "inv.example.com")
                  .ok());
  xml::QName total("urn:inv", "inv", "total");
  auto r = host_.Invoke("urn:inv", total, {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "12");
}

TEST_F(ServiceTest, ClientStubsAccountRoundTrips) {
  ASSERT_TRUE(host_
                  .Deploy("module namespace ex=\"urn:svc\" port:2001;\n"
                          "declare function ex:mul($a, $b) { $a * $b };",
                          "svc.example.com")
                  .ok());
  xquery::Engine engine;
  auto q = engine.Compile(
      "import module namespace ab=\"urn:svc\" at \"http://svc/wsdl\";\n"
      "ab:mul(6, 7)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  xquery::DynamicContext ctx;
  ASSERT_TRUE(host_.RegisterClientStubs("urn:svc", &ctx).ok());
  uint64_t before = fabric_.stats().requests;
  auto r = (*q)->Run(ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xdm::SequenceToString(*r), "42");
  EXPECT_EQ(fabric_.stats().requests, before + 1);  // one RPC round trip
}

TEST_F(ServiceTest, ServiceFunctionsCanWriteWithFnPut) {
  ASSERT_TRUE(store_.Put("/log.xml", "<log/>").ok());
  ASSERT_TRUE(host_
                  .Deploy("module namespace w=\"urn:w\" port:2003;\n"
                          "declare function w:save($v) { "
                          "put(<saved>{$v}</saved>, \"/out.xml\") };",
                          "w.example.com")
                  .ok());
  xml::QName save("urn:w", "w", "save");
  auto r = host_.Invoke("urn:w", save,
                        {xdm::Sequence{xdm::Item::Integer(7)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*store_.Serialize("/out.xml"), "<saved>7</saved>");
}

TEST_F(ServiceTest, UnknownServiceFails) {
  EXPECT_EQ(host_.Invoke("urn:none", xml::QName("f"), {}).status().code(),
            "NETW0404");
  xquery::DynamicContext ctx;
  EXPECT_EQ(host_.RegisterClientStubs("urn:none", &ctx).code(), "NETW0404");
}

}  // namespace
}  // namespace xqib::net
