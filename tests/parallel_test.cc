// Parallel dispatch runtime tests (PERFORMANCE.md §5): thread-pool
// basics, the event loop's off-thread batching, the parallel predicate
// operator's agreement with the serial path, the memo cache under
// concurrent staged probes, off-thread `behind` completions, and the
// dispatch-determinism oracle — randomized pages dispatched at pool
// sizes {0, 1, 4, 8} must produce identical DOMs and identical
// observable output in identical order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "browser/bom.h"
#include "browser/event_loop.h"
#include "net/http.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "plugin/plugin.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib {
namespace {

using base::ThreadPool;
using browser::EventLoop;

// ------------------------------------------------------- thread pool ---

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  for (int spin = 0; spin < 5000 && count.load() < 64; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(pool.stats().submitted, 64u);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int count = 0;
  pool.Submit([&count] { ++count; });
  // No threads: the task already ran when Submit returned.
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesAtEveryPoolSize) {
  for (size_t workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    const size_t n = 1000;
    std::vector<std::atomic<int>> marks(n);
    for (auto& m : marks) m.store(0);
    pool.ParallelFor(n, [&](size_t i) {
      marks[i].fetch_add(1, std::memory_order_relaxed);
    });
    size_t sum = 0;
    for (auto& m : marks) sum += static_cast<size_t>(m.load());
    EXPECT_EQ(sum, n) << "workers=" << workers;  // each index exactly once
    EXPECT_EQ(pool.stats().parallel_fors, 1u);
  }
}

TEST(ThreadPoolTest, ParallelForBalancesUnevenWork) {
  // A few expensive indices among many cheap ones: dynamic claiming must
  // still complete everything (a static partition would, too — this
  // guards against lost indices under contention).
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(256, [&](size_t i) {
    uint64_t acc = 0;
    uint64_t reps = (i % 64 == 0) ? 20000 : 50;
    for (uint64_t k = 0; k < reps; ++k) acc += k * k + i;
    total.fetch_add(acc == 0 ? 1 : 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 256u);
}

// ------------------------------------------- event loop, off-thread ---

TEST(EventLoopOffThread, EqualDueEntriesFormOneBatch) {
  EventLoop loop;
  ThreadPool pool(4);
  loop.set_thread_pool(&pool);
  int committed = 0;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.PostOffThread(
        [&committed, &order, i]() -> EventLoop::Task {
          int seen = committed;  // batch-start state: commits not yet run
          return [&committed, &order, i, seen] {
            order.push_back(i * 100 + seen);
            ++committed;
          };
        },
        0.0);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(loop.offthread_tasks(), 8u);
  EXPECT_EQ(loop.offthread_batches(), 1u);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    // Posting order preserved, and every work saw committed == 0.
    EXPECT_EQ(order[static_cast<size_t>(i)], i * 100);
  }
}

TEST(EventLoopOffThread, PlainTaskSplitsTheBatch) {
  EventLoop loop;
  ThreadPool pool(2);
  loop.set_thread_pool(&pool);
  std::vector<std::string> order;
  auto off = [&loop, &order](const std::string& tag) {
    loop.PostOffThread(
        [&order, tag]() -> EventLoop::Task {
          return [&order, tag] { order.push_back(tag); };
        },
        0.0);
  };
  off("A");
  off("B");
  loop.Post([&order] { order.push_back("C"); }, 0.0);
  off("D");
  off("E");
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<std::string>{"A", "B", "C", "D", "E"}));
  // The plain task is a barrier: {A,B} and {D,E} are separate batches.
  EXPECT_EQ(loop.offthread_batches(), 2u);
  EXPECT_EQ(loop.offthread_tasks(), 4u);
}

TEST(EventLoopOffThread, LaterDueTimesNeverJoinTheBatch) {
  EventLoop loop;
  ThreadPool pool(2);
  loop.set_thread_pool(&pool);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    loop.PostOffThread(
        [&order, i]() -> EventLoop::Task {
          return [&order, i] { order.push_back(i); };
        },
        i < 2 ? 0.0 : 5.0);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.offthread_batches(), 2u);
}

TEST(EventLoopOffThread, SerialBaselineBehavesIdentically) {
  // No pool attached: works still run before their batch's commits, so
  // the observable interleaving is the same as with 8 workers.
  EventLoop loop;
  int committed = 0;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    loop.PostOffThread(
        [&committed, &order, i]() -> EventLoop::Task {
          int seen = committed;
          return [&committed, &order, i, seen] {
            order.push_back(i * 100 + seen);
            ++committed;
          };
        },
        0.0);
  }
  loop.RunUntilIdle();
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i * 100);
  }
}

TEST(EventLoopOffThread, PostIsThreadSafe) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&loop, &ran] {
      for (int i = 0; i < 50; ++i) {
        loop.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : posters) t.join();
  loop.RunUntilIdle();
  EXPECT_EQ(ran.load(), 200);
}

// ------------------------------------- parallel predicate evaluation ---

std::string BigItems(size_t n) {
  uint32_t state = 12345;
  std::string xml = "<page>";
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    xml += "<item v=\"" + std::to_string((state >> 16) % 1000) + "\"/>";
  }
  xml += "</page>";
  return xml;
}

std::string EvalWithPool(const std::string& query, const std::string& xml,
                         const xquery::Evaluator::EvalOptions& options,
                         ThreadPool* pool,
                         xquery::Evaluator::EvalStats* stats = nullptr) {
  xquery::Engine engine;
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return "PARSE-ERROR: " + compiled.status().ToString();
  (*compiled)->evaluator().set_options(options);
  (*compiled)->evaluator().set_thread_pool(pool);
  xquery::DynamicContext ctx;
  auto parsed = xml::ParseDocument(xml);
  if (!parsed.ok()) return "XML-ERROR: " + parsed.status().ToString();
  std::unique_ptr<xml::Document> doc = std::move(parsed).value();
  xquery::DynamicContext::Focus f;
  f.item = xdm::Item::Node(doc->root());
  f.position = 1;
  f.size = 1;
  f.has_item = true;
  ctx.set_focus(f);
  Status bound = (*compiled)->BindGlobals(ctx);
  if (!bound.ok()) return "BIND-ERROR: " + bound.ToString();
  auto result = (*compiled)->Run(ctx);
  if (stats != nullptr) *stats = (*compiled)->evaluator().stats();
  if (!result.ok()) return "ERROR: " + result.status().code();
  return xdm::SequenceToString(*result);
}

TEST(ParallelPredicates, AgreeWithSerialAcrossQueryShapes) {
  // Value predicates partition across workers; `//item[pred]` is the
  // uncollapsed descendant-or-self::node()/child::item form, and the
  // explicit /descendant::item form is the single-origin collapsed one.
  const char* partitioned[] = {
      "string-join(//item[@v > 500]/@v, \",\")",
      "count(//item[@v > 500])",
      "string-join(//item[@v > 300][@v < 600]/@v, \",\")",  // chained
      "sum(//item[@v < 100]/@v)",
      "count(/descendant::item[@v > 500])",
      // Single-origin form: bucket positions ARE the spec positions, so
      // a numeric predicate partitions and selects by global index.
      "string-join(/descendant::item[17]/@v, \",\")",
  };
  // Positional predicates over the uncollapsed form must NOT partition:
  // positions are per-parent there, and fn:position/fn:last are
  // excluded statically everywhere. They still have to agree with
  // serial via the sequential fallback.
  const char* positional[] = {
      "string-join(//item[17]/@v, \",\")",     // numeric → runtime abandon
      "string-join(//item[position() = 1234]/@v, \",\")",
      "string-join(//item[last()]/@v, \",\")",  // needs the real size
  };
  ThreadPool pool(4);
  const std::string page = BigItems(3000);
  auto run = [&](const char* q, xquery::Evaluator::EvalStats* stats) {
    xquery::Evaluator::EvalOptions par;
    par.parallel_cutoff = 64;
    return EvalWithPool(q, page, par, &pool, stats);
  };
  auto run_serial = [&](const char* q) {
    xquery::Evaluator::EvalOptions serial;
    serial.parallel_streams = false;
    return EvalWithPool(q, page, serial, nullptr);
  };
  for (const char* q : partitioned) {
    xquery::Evaluator::EvalStats stats;
    std::string got = run(q, &stats);
    EXPECT_EQ(got.rfind("ERROR", 0), std::string::npos) << q;
    EXPECT_EQ(got, run_serial(q)) << q;
    EXPECT_GT(stats.parallel_predicate_chunks, 0u) << q;
  }
  for (const char* q : positional) {
    xquery::Evaluator::EvalStats stats;
    std::string got = run(q, &stats);
    EXPECT_EQ(got.rfind("ERROR", 0), std::string::npos) << q;
    EXPECT_EQ(got, run_serial(q)) << q;
    EXPECT_EQ(stats.parallel_predicate_chunks, 0u) << q;
  }
}

TEST(ParallelPredicates, CutoffKeepsSmallBucketsSequential) {
  ThreadPool pool(4);
  xquery::Evaluator::EvalOptions par;
  par.parallel_cutoff = 1u << 20;  // far above the bucket size
  xquery::Evaluator::EvalStats stats;
  std::string got = EvalWithPool("count(//item[@v > 500])", BigItems(500),
                                 par, &pool, &stats);
  EXPECT_EQ(stats.parallel_predicate_chunks, 0u);

  xquery::Evaluator::EvalOptions serial;
  serial.parallel_streams = false;
  EXPECT_EQ(got, EvalWithPool("count(//item[@v > 500])", BigItems(500),
                              serial, nullptr));
}

TEST(ParallelPredicates, ErrorsSurfaceLikeSerial) {
  ThreadPool pool(4);
  xquery::Evaluator::EvalOptions par;
  par.parallel_cutoff = 64;
  std::string parallel =
      EvalWithPool("//item[@v idiv 0 = 1]", BigItems(1000), par, &pool);
  xquery::Evaluator::EvalOptions serial;
  serial.parallel_streams = false;
  std::string reference =
      EvalWithPool("//item[@v idiv 0 = 1]", BigItems(1000), serial, nullptr);
  EXPECT_EQ(parallel, reference);
  EXPECT_EQ(parallel, "ERROR: FOAR0001");
}

// -------------------------------------------- plugin dispatch oracle ---

// Deterministic pseudo-random page: a data div with LCG-sized content,
// eight parallel-safe listeners (pure, alerting — alerts are buffered
// worker-side and replayed at commit) and one updating listener at an
// LCG-chosen registration slot, so staged runs split around a serial
// barrier differently per seed.
std::string RandomDispatchPage(uint32_t seed) {
  uint32_t state = seed;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) & 0x7fff;
  };
  std::string items;
  int n = 10 + static_cast<int>(next() % 20);
  for (int i = 0; i < n; ++i) {
    items += "<item v=\"" + std::to_string(next() % 100) + "\"/>";
  }
  std::string script;
  for (int l = 0; l < 8; ++l) {
    int threshold = static_cast<int>(next() % 100);
    script += "declare function local:p" + std::to_string(l) +
              "($evt, $obj) { browser:alert(concat(\"p" + std::to_string(l) +
              "=\", string(count(//item[@v > " + std::to_string(threshold) +
              "])))) };\n";
  }
  script +=
      "declare updating function local:mut($evt, $obj) {\n"
      "  insert node <item v=\"" + std::to_string(next() % 100) +
      "\"/> into //div[@id=\"data\"]\n"
      "};\n{ ";
  // Attach the 8 pure listeners with the mutator spliced in at a
  // seed-dependent slot (a serialization barrier inside the run).
  int mut_slot = static_cast<int>(next() % 9);
  int attached = 0;
  for (int slot = 0; slot < 9; ++slot) {
    std::string fn = slot == mut_slot
                         ? "local:mut"
                         : "local:p" + std::to_string(attached++);
    script += "on event \"onclick\" at //input[@id=\"btn\"] "
              "attach listener " + fn + ";\n";
  }
  script += "() }";
  return "<html><head><script type=\"text/xqueryp\"><![CDATA[\n" + script +
         "\n]]></script></head><body>"
         "<input type=\"button\" id=\"btn\" value=\"Go\"/>"
         "<div id=\"data\">" + items + "</div>"
         "</body></html>";
}

struct DispatchOutcome {
  std::vector<std::string> alerts;
  std::string dom;
  size_t fallbacks = 0;
  uint64_t staged = 0;
};

DispatchOutcome RunDispatchScenario(size_t workers, uint32_t seed,
                                    int clicks, bool compiled_plans = true,
                                    bool delta_propagation = true) {
  net::HttpFabric fabric;
  net::XmlStore store;
  net::ServiceHost services(&fabric, &store);
  browser::Browser browser;
  plugin::XqibPlugin plugin(&browser, &fabric, &services);
  plugin.Install();
  plugin.EnableParallelDispatch(workers);
  if (!compiled_plans || !delta_propagation) {
    xquery::Evaluator::EvalOptions options;
    options.compiled_plans = compiled_plans;
    options.delta_propagation = delta_propagation;
    plugin.set_eval_options(options);
  }
  Status st = browser.top_window()->LoadSource(
      "http://app.example.com/index.xhtml", RandomDispatchPage(seed));
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(plugin.last_script_error().ok())
      << plugin.last_script_error().ToString();
  xml::Node* btn = browser.top_window()->document()->GetElementById("btn");
  EXPECT_NE(btn, nullptr);
  for (int c = 0; c < clicks; ++c) {
    browser::Event e;
    e.type = "onclick";
    plugin.FireEvent(btn, e);
  }
  DispatchOutcome out;
  out.alerts = plugin.alerts();
  out.dom = xml::Serialize(browser.top_window()->document()->root());
  out.fallbacks = plugin.parallel_fallbacks();
  out.staged = browser.events().staged_invocations();
  return out;
}

TEST(DispatchDeterminism, PoolSizeIsUnobservable) {
  for (uint32_t seed : {1u, 7u, 42u}) {
    DispatchOutcome reference = RunDispatchScenario(0, seed, 3);
    EXPECT_EQ(reference.staged, 0u);  // no pool, no staging
    ASSERT_EQ(reference.alerts.size(), 24u) << "seed " << seed;
    for (size_t workers : {1u, 4u, 8u}) {
      DispatchOutcome got = RunDispatchScenario(workers, seed, 3);
      EXPECT_EQ(got.alerts, reference.alerts)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(got.dom, reference.dom)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(got.fallbacks, 0u)
          << "seed " << seed << " workers " << workers;
      // The pure listeners actually took the staged path.
      EXPECT_GT(got.staged, 0u)
          << "seed " << seed << " workers " << workers;
    }
  }
}

// The compiled-plan ablation crossed with every pool size: the
// tree-walking serial run is the oracle, and neither the plan layer nor
// the worker pool (nor their combination) may change what the page
// observes.
TEST(DispatchDeterminism, PlanAblationIsUnobservableAtEveryPoolSize) {
  for (uint32_t seed : {1u, 7u, 42u}) {
    DispatchOutcome reference =
        RunDispatchScenario(0, seed, 3, /*compiled_plans=*/false);
    ASSERT_EQ(reference.alerts.size(), 24u) << "seed " << seed;
    for (bool plans : {false, true}) {
      for (size_t workers : {0u, 1u, 4u, 8u}) {
        if (!plans && workers == 0) continue;  // that's the reference
        DispatchOutcome got = RunDispatchScenario(workers, seed, 3, plans);
        EXPECT_EQ(got.alerts, reference.alerts)
            << "seed " << seed << " workers " << workers
            << " plans " << plans;
        EXPECT_EQ(got.dom, reference.dom)
            << "seed " << seed << " workers " << workers
            << " plans " << plans;
        EXPECT_EQ(got.fallbacks, 0u)
            << "seed " << seed << " workers " << workers
            << " plans " << plans;
      }
    }
  }
}

// The delta-propagation ablation crossed with every pool size: the
// delta-off serial run (PR 6 survive-or-recompute behavior) is the
// oracle. Index splicing, listener skipping and the dirty-seq protocol
// are pure caching — neither they nor any pool size may change one byte
// of what the page observes.
TEST(DispatchDeterminism, DeltaAblationIsUnobservableAtEveryPoolSize) {
  for (uint32_t seed : {1u, 7u, 42u}) {
    DispatchOutcome reference = RunDispatchScenario(
        0, seed, 3, /*compiled_plans=*/true, /*delta_propagation=*/false);
    ASSERT_EQ(reference.alerts.size(), 24u) << "seed " << seed;
    for (bool delta : {false, true}) {
      for (size_t workers : {0u, 1u, 4u, 8u}) {
        if (!delta && workers == 0) continue;  // that's the reference
        DispatchOutcome got = RunDispatchScenario(
            workers, seed, 3, /*compiled_plans=*/true, delta);
        EXPECT_EQ(got.alerts, reference.alerts)
            << "seed " << seed << " workers " << workers
            << " delta " << delta;
        EXPECT_EQ(got.dom, reference.dom)
            << "seed " << seed << " workers " << workers
            << " delta " << delta;
        EXPECT_EQ(got.fallbacks, 0u)
            << "seed " << seed << " workers " << workers
            << " delta " << delta;
      }
    }
  }
}

// -------------------------------- disjoint updating listeners, staged ---

// Two updating listeners plus a reader on one button. In the disjoint
// variant addA/addB write separate logs (loga vs logb): the effect
// analysis proves the pair commutes, so both may leave the serial
// barrier and evaluate concurrently against the run-start DOM, with
// their pending update lists committed in registration order. In the
// interfering variant both write loga — the conflict matrix must keep
// every run at size one (fully serial). The tally reader observes both
// entry names, so it always ends the updaters' run and sees their
// committed state.
std::string UpdaterPage(bool interfering) {
  std::string target_b = interfering ? "loga" : "logb";
  std::string script =
      "declare updating function local:addA($evt, $obj) {\n"
      "  insert node <entrya/> into /html/body/loga\n"
      "};\n"
      "declare updating function local:addB($evt, $obj) {\n"
      "  insert node <entryb/> into /html/body/" + target_b + "\n"
      "};\n"
      "declare function local:tally($evt, $obj) {\n"
      "  browser:alert(concat(\"t=\", string(count(//entrya)), \":\", "
      "string(count(//entryb))))\n"
      "};\n"
      "{ on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:addA;\n"
      "  on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:addB;\n"
      "  on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:tally; }";
  return "<html><head><script type=\"text/xqueryp\"><![CDATA[\n" + script +
         "\n]]></script></head><body>"
         "<input id=\"btn\"/><loga/><logb/></body></html>";
}

DispatchOutcome RunUpdaterScenario(size_t workers, bool interfering,
                                   bool fine_grained, int clicks) {
  net::HttpFabric fabric;
  net::XmlStore store;
  net::ServiceHost services(&fabric, &store);
  browser::Browser browser;
  plugin::XqibPlugin plugin(&browser, &fabric, &services);
  plugin.Install();
  plugin.set_fine_grained_invalidation(fine_grained);
  plugin.EnableParallelDispatch(workers);
  Status st = browser.top_window()->LoadSource(
      "http://app.example.com/index.xhtml", UpdaterPage(interfering));
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(plugin.last_script_error().ok())
      << plugin.last_script_error().ToString();
  xml::Node* btn = browser.top_window()->document()->GetElementById("btn");
  EXPECT_NE(btn, nullptr);
  for (int c = 0; c < clicks; ++c) {
    browser::Event e;
    e.type = "onclick";
    plugin.FireEvent(btn, e);
  }
  EXPECT_TRUE(plugin.last_script_error().ok())
      << plugin.last_script_error().ToString();
  DispatchOutcome out;
  out.alerts = plugin.alerts();
  out.dom = xml::Serialize(browser.top_window()->document()->root());
  out.fallbacks = plugin.parallel_fallbacks();
  out.staged = browser.events().staged_invocations();
  return out;
}

// The async-federation ablation crossed with every pool size: the
// scatter-off serial run is the oracle. Prefetched futures must carry
// exactly the bytes the in-line round trips would have seen — neither
// the listener-level scatter, the FLWOR template scatter, nor any pool
// size may change one byte of what the page observes.

std::string FederatedMashupPage() {
  std::string script =
      "declare function local:fan($evt, $obj) {\n"
      "  browser:alert(string-join((\n"
      "    string(http:get(\"http://w0.example.com/api\")//summary),\n"
      "    string(http:get(\"http://w1.example.com/api\")//summary),\n"
      "    string(http:get(\"http://w2.example.com/api\")//summary),\n"
      "    string(http:get(\"http://w3.example.com/api\")//summary)\n"
      "  ), \";\"))\n"
      "};\n"
      "declare function local:loop($evt, $obj) {\n"
      "  browser:alert(string-join(\n"
      "    for $s in (\"0\", \"1\", \"2\", \"3\")\n"
      "    return string(http:get(concat(\"http://w\", $s,\n"
      "        \".example.com/api\"))//summary), \",\"))\n"
      "};\n"
      "{ on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:fan;\n"
      "  on event \"onclick\" at //input[@id=\"btn\"] "
      "attach listener local:loop; () }";
  return "<html><head><script type=\"text/xqueryp\"><![CDATA[\n" + script +
         "\n]]></script></head><body>"
         "<input type=\"button\" id=\"btn\" value=\"Go\"/>"
         "</body></html>";
}

struct FederationOutcome {
  std::vector<std::string> alerts;
  std::string dom;
};

FederationOutcome RunFederationScenario(size_t workers,
                                        bool async_federation, int clicks) {
  net::HttpFabric fabric;
  for (int s = 0; s < 4; ++s) {
    fabric.PutResource(
        "http://w" + std::to_string(s) + ".example.com/api",
        "<weather><summary>w" + std::to_string(s) + "</summary></weather>");
  }
  net::XmlStore store;
  net::ServiceHost services(&fabric, &store);
  browser::Browser browser;
  plugin::XqibPlugin plugin(&browser, &fabric, &services);
  plugin.Install();
  plugin.EnableParallelDispatch(workers);
  xquery::Evaluator::EvalOptions options;
  options.async_federation = async_federation;
  plugin.set_eval_options(options);
  Status st = browser.top_window()->LoadSource(
      "http://app.example.com/index.xhtml", FederatedMashupPage());
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(plugin.last_script_error().ok())
      << plugin.last_script_error().ToString();
  xml::Node* btn = browser.top_window()->document()->GetElementById("btn");
  EXPECT_NE(btn, nullptr);
  for (int c = 0; c < clicks; ++c) {
    browser::Event e;
    e.type = "onclick";
    plugin.FireEvent(btn, e);
  }
  FederationOutcome out;
  out.alerts = plugin.alerts();
  out.dom = xml::Serialize(browser.top_window()->document()->root());
  return out;
}

TEST(DispatchDeterminism, AsyncFederationIsUnobservableAtEveryPoolSize) {
  FederationOutcome reference =
      RunFederationScenario(0, /*async_federation=*/false, 2);
  ASSERT_EQ(reference.alerts.size(), 4u);  // 2 listeners x 2 clicks
  EXPECT_EQ(reference.alerts[0], "w0;w1;w2;w3");
  EXPECT_EQ(reference.alerts[1], "w0,w1,w2,w3");
  for (bool async_fed : {false, true}) {
    for (size_t workers : {0u, 1u, 4u, 8u}) {
      if (!async_fed && workers == 0) continue;  // that's the reference
      FederationOutcome got = RunFederationScenario(workers, async_fed, 2);
      EXPECT_EQ(got.alerts, reference.alerts)
          << "workers " << workers << " async " << async_fed;
      EXPECT_EQ(got.dom, reference.dom)
          << "workers " << workers << " async " << async_fed;
    }
  }
}

TEST(DispatchDeterminism, DisjointUpdatersStageBitIdentically) {
  const std::vector<std::string> expected_alerts{"t=1:1", "t=2:2", "t=3:3"};
  DispatchOutcome reference = RunUpdaterScenario(0, false, true, 3);
  EXPECT_EQ(reference.staged, 0u);  // no pool, no staging
  EXPECT_EQ(reference.alerts, expected_alerts);
  for (size_t workers : {1u, 4u, 8u}) {
    DispatchOutcome got = RunUpdaterScenario(workers, false, true, 3);
    EXPECT_EQ(got.alerts, reference.alerts) << "workers " << workers;
    EXPECT_EQ(got.dom, reference.dom) << "workers " << workers;
    EXPECT_EQ(got.fallbacks, 0u) << "workers " << workers;
    // The [addA, addB] pair genuinely left the serial barrier: one
    // staged run of two per click (tally ends the run and stays serial
    // in a size-one run).
    EXPECT_EQ(got.staged, 6u) << "workers " << workers;
  }
}

TEST(DispatchDeterminism, InterferingUpdatersStaySerial) {
  // Both updaters write loga: the conflict matrix (writes ∩ writes)
  // must veto staging entirely — every run collapses to size one.
  DispatchOutcome reference = RunUpdaterScenario(0, true, true, 3);
  for (size_t workers : {4u, 8u}) {
    DispatchOutcome got = RunUpdaterScenario(workers, true, true, 3);
    EXPECT_EQ(got.alerts, reference.alerts) << "workers " << workers;
    EXPECT_EQ(got.dom, reference.dom) << "workers " << workers;
    EXPECT_EQ(got.staged, 0u) << "workers " << workers;
  }
}

TEST(DispatchDeterminism, AblationKeepsUpdatersOnTheSerialPath) {
  // set_fine_grained_invalidation(false) restores the pre-effect-
  // analysis behavior: updating listeners never stage, results
  // unchanged.
  DispatchOutcome reference = RunUpdaterScenario(0, false, true, 3);
  DispatchOutcome got = RunUpdaterScenario(4, false, false, 3);
  EXPECT_EQ(got.alerts, reference.alerts);
  EXPECT_EQ(got.dom, reference.dom);
  EXPECT_EQ(got.staged, 0u);
}

// ------------------------------------------ memo under staged probes ---

class ParallelPluginTest : public ::testing::Test {
 protected:
  ParallelPluginTest()
      : services_(&fabric_, &store_),
        plugin_(&browser_, &fabric_, &services_) {
    plugin_.Install();
  }

  browser::Window* Load(const std::string& source) {
    Status st = browser_.top_window()->LoadSource(
        "http://app.example.com/index.xhtml", source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(plugin_.last_script_error().ok())
        << plugin_.last_script_error().ToString();
    return browser_.top_window();
  }

  void Click(xml::Node* target) {
    browser::Event e;
    e.type = "onclick";
    plugin_.FireEvent(target, e);
  }

  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  browser::Browser browser_;
  plugin::XqibPlugin plugin_;
};

TEST_F(ParallelPluginTest, StagedListenersRaceTheMemoCacheSafely) {
  // Eight memoizable listeners (pure, silent) on one node: staged
  // concurrently, they probe the memo cache from pool workers under the
  // shared lock. The first click misses for all eight, the second click
  // (no mutation in between) answers all eight from cache.
  plugin_.EnableParallelDispatch(4);
  std::string script;
  for (int l = 0; l < 8; ++l) {
    script += "declare function local:m" + std::to_string(l) +
              "($evt, $obj) { concat(\"m" + std::to_string(l) +
              ":\", string(count(//item))) };\n";
  }
  script += "{ ";
  for (int l = 0; l < 8; ++l) {
    script += "on event \"onclick\" at //input[@id=\"btn\"] "
              "attach listener local:m" + std::to_string(l) + ";\n";
  }
  script += "() }";
  browser::Window* w = Load(
      "<html><head><script type=\"text/xqueryp\"><![CDATA[\n" + script +
      "\n]]></script></head><body>"
      "<input id=\"btn\"/><item/><item/><item/>"
      "</body></html>");
  xml::Node* btn = w->document()->GetElementById("btn");
  ASSERT_NE(btn, nullptr);

  Click(btn);
  EXPECT_GE(plugin_.memo_stats().misses, 8u);
  EXPECT_EQ(plugin_.memo_stats().hits, 0u);
  EXPECT_EQ(plugin_.last_listener_result(), "m7:3");

  Click(btn);
  EXPECT_GE(plugin_.memo_stats().hits, 8u);
  EXPECT_EQ(plugin_.last_listener_result(), "m7:3");
  EXPECT_EQ(plugin_.parallel_fallbacks(), 0u);
}

TEST_F(ParallelPluginTest, BehindCompletionRunsOffThread) {
  // A `behind` call to an analyzer-proven parallel-safe local function is
  // delivered as an off-thread unit; the pure completion listener alerts
  // from the loop-thread commit. Observable result matches the serial
  // AJAX-suggest behaviour.
  plugin_.EnableParallelDispatch(4);
  browser::Window* w = Load(R"XQ(<html><head>
      <script type="text/xquery"><![CDATA[
      declare function local:compute($s) { concat("hint for ", $s) };
      declare function local:onResult($readyState, $result) {
        if ($readyState eq 4)
        then browser:alert(string($result))
        else ()
      };
      declare updating function local:go($evt, $obj) {
        on event "stateChanged" behind local:compute("Ann")
        attach listener local:onResult
      };
      on event "onclick" at //input[@id="btn"] attach listener local:go
      ]]></script></head><body>
      <input id="btn"/>
      </body></html>)XQ");
  xml::Node* btn = w->document()->GetElementById("btn");
  ASSERT_NE(btn, nullptr);
  Click(btn);
  plugin_.PumpEvents();
  ASSERT_EQ(plugin_.alerts().size(), 1u);
  EXPECT_EQ(plugin_.alerts()[0], "hint for Ann");
  // The completion actually went through the off-thread queue.
  EXPECT_GE(browser_.loop().offthread_tasks(), 1u);
  EXPECT_TRUE(plugin_.last_script_error().ok())
      << plugin_.last_script_error().ToString();
}

}  // namespace
}  // namespace xqib
