// End-to-end tests over the assembled stack (BrowserEnvironment): the
// example pages from examples/pages/, the Elsevier migration scenario,
// and the cross-implementation equivalence behind the T1 LoC claim.

#include <gtest/gtest.h>

#include "app/elsevier.h"
#include "app/environment.h"
#include "xml/serializer.h"

namespace xqib::app {
namespace {

TEST(Environment, LoadsHelloPage) {
  BrowserEnvironment env;
  auto page = ReadPageFile("hello.xhtml");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  ASSERT_TRUE(env.LoadPage("http://demo.example.com/", *page).ok());
  ASSERT_EQ(env.plugin().alerts().size(), 1u);
  EXPECT_EQ(env.plugin().alerts()[0], "Hello, World!");
}

TEST(Environment, ClickIdReportsMissingElement) {
  BrowserEnvironment env;
  ASSERT_TRUE(
      env.LoadPage("http://demo.example.com/", "<html><body/></html>")
          .ok());
  EXPECT_EQ(env.ClickId("ghost").code(), "BRWS0006");
}

TEST(Environment, ScriptErrorsSurfaceOnLoad) {
  BrowserEnvironment env;
  Status st = env.LoadPage("http://demo.example.com/",
                           "<html><body><script type=\"text/xquery\">"
                           "1 idiv 0</script></body></html>");
  EXPECT_EQ(st.code(), "BRWS0005");
}

// ------------------------------------------- multiplication table (T1) ---

class TableEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TableEquivalenceTest, JsAndXQueryProduceTheSameTable) {
  int size = GetParam();
  std::string outputs[2];
  const char* files[2] = {"multiplication_table_js.xhtml",
                          "multiplication_table_xquery.xhtml"};
  for (int v = 0; v < 2; ++v) {
    BrowserEnvironment env;
    auto page = ReadPageFile(files[v]);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_TRUE(env.LoadPage("http://demo.example.com/", *page).ok());
    env.ById("n")->SetAttribute(xml::QName("value"), std::to_string(size));
    ASSERT_TRUE(env.ClickId("go").ok()) << env.ScriptErrors();
    xml::Node* out = env.ById("out");
    ASSERT_NE(out, nullptr);
    ASSERT_FALSE(out->children().empty());
    outputs[v] = xml::Serialize(out->children()[0]);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  // Sanity: the table really contains size*size products.
  EXPECT_NE(outputs[1].find("<td>" + std::to_string(size * size) + "</td>"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableEquivalenceTest,
                         ::testing::Values(1, 2, 5, 9));

TEST(TableRegeneration, SecondClickReplacesTable) {
  BrowserEnvironment env;
  auto page = ReadPageFile("multiplication_table_xquery.xhtml");
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(env.LoadPage("http://demo.example.com/", *page).ok());
  ASSERT_TRUE(env.ClickId("go").ok());
  env.ById("n")->SetAttribute(xml::QName("value"), "2");
  ASSERT_TRUE(env.ClickId("go").ok());
  // Only one table, the 2x2 one.
  EXPECT_EQ(env.ById("out")->children().size(), 1u);
  EXPECT_EQ(env.ById("out")->StringValue().find("100"), std::string::npos);
}

// ------------------------------------------------------ shopping cart ---

TEST(ShoppingCart, XQueryOnlyVariantWorksFromPageFile) {
  BrowserEnvironment env;
  env.fabric().PutResource(
      "http://shop.example.com/products.xml",
      "<products><product><name>laptop</name><price>1200</price>"
      "</product><product><name>mouse</name><price>25</price>"
      "</product></products>");
  auto page = ReadPageFile("shopping_cart_xquery.xhtml");
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(env.LoadPage("http://shop.example.com/cart.xhtml", *page)
                  .ok());
  ASSERT_TRUE(env.ClickId("laptop").ok()) << env.ScriptErrors();
  EXPECT_EQ(xml::Serialize(env.ById("shoppingcart")),
            "<div id=\"shoppingcart\"><p>laptop</p></div>");
}

TEST(ShoppingCart, JsVariantProducesTheSameCart) {
  BrowserEnvironment env;
  auto page = ReadPageFile("shopping_cart_js.xhtml");
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(env.LoadPage("http://shop.example.com/cart.xhtml", *page)
                  .ok());
  ASSERT_TRUE(env.ClickId("laptop").ok()) << env.ScriptErrors();
  ASSERT_TRUE(env.ClickId("mouse").ok()) << env.ScriptErrors();
  EXPECT_EQ(xml::Serialize(env.ById("shoppingcart")),
            "<div id=\"shoppingcart\"><p>mouse</p><p>laptop</p></div>");
}

// ------------------------------------------------------------- mash-up ---

TEST(Mashup, BothEnginesReactToOneSearch) {
  BrowserEnvironment env;
  env.fabric().SetHandler(
      "http://weather.example.com/api",
      [](const net::HttpRequest&) -> Result<net::HttpResponse> {
        return net::HttpResponse{
            200, "<weather><summary>sunny</summary></weather>",
            "application/xml"};
      });
  env.fabric().SetHandler(
      "http://webcams.example.com/api",
      [](const net::HttpRequest&) -> Result<net::HttpResponse> {
        return net::HttpResponse{
            200, "<cams><cam url=\"u1\"/><cam url=\"u2\"/></cams>",
            "application/xml"};
      });
  auto page = ReadPageFile("mashup.xhtml");
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(env.LoadPage("http://mashup.example.com/", *page).ok())
      << env.ScriptErrors();
  ASSERT_TRUE(env.ClickId("searchbtn").ok()) << env.ScriptErrors();
  EXPECT_EQ(env.ById("map")->StringValue(), "Map of Zurich");
  EXPECT_EQ(env.ById("weather")->StringValue(), "sunny");
  EXPECT_EQ(env.ById("webcams")->children().size(), 1u);  // the <ul>
  EXPECT_EQ(env.fabric().stats().requests, 2u);
}

// ------------------------------------------------------------ Elsevier ---

class ElsevierTest : public ::testing::Test {
 protected:
  ElsevierTest() {
    corpus_.journals = 2;
    corpus_.volumes = 1;
    corpus_.issues = 1;
    corpus_.articles_per_issue = 3;
  }
  elsevier::CorpusOptions corpus_;
};

TEST_F(ElsevierTest, ServerAndClientRenderTheSameStatistics) {
  std::string titles[2], nrefs[2];
  for (int mode = 0; mode < 2; ++mode) {
    BrowserEnvironment env;
    ASSERT_TRUE(elsevier::BuildCorpus(&env.store(), corpus_).ok());
    ASSERT_TRUE(elsevier::DeployServer(&env.store(), &env.fabric()).ok());
    auto deployment = mode == 0 ? elsevier::Deployment::kServerSide
                                : elsevier::Deployment::kClientSide;
    auto report = elsevier::RunSession(&env, deployment, corpus_, 3);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    titles[mode] = report->last_title;
    nrefs[mode] = env.ById("nrefs")->StringValue();
  }
  EXPECT_EQ(titles[0], titles[1]);
  EXPECT_EQ(nrefs[0], nrefs[1]);
  EXPECT_FALSE(titles[0].empty());
}

TEST_F(ElsevierTest, ClientSideOffloadsTheServer) {
  // Figure 2's quantitative claim, as a hard invariant: server-side
  // requests grow with interactions; client-side requests do not.
  for (int interactions : {3, 9}) {
    BrowserEnvironment server_env, client_env;
    for (BrowserEnvironment* env : {&server_env, &client_env}) {
      ASSERT_TRUE(elsevier::BuildCorpus(&env->store(), corpus_).ok());
      ASSERT_TRUE(
          elsevier::DeployServer(&env->store(), &env->fabric()).ok());
    }
    auto server = elsevier::RunSession(
        &server_env, elsevier::Deployment::kServerSide, corpus_,
        interactions);
    auto client = elsevier::RunSession(
        &client_env, elsevier::Deployment::kClientSide, corpus_,
        interactions);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_EQ(server->requests, static_cast<uint64_t>(interactions));
    EXPECT_EQ(client->requests, 2u);  // page + corpus, then cache hits
  }
}

TEST_F(ElsevierTest, CorpusIsDeterministic) {
  net::XmlStore s1, s2;
  ASSERT_TRUE(elsevier::BuildCorpus(&s1, corpus_).ok());
  ASSERT_TRUE(elsevier::BuildCorpus(&s2, corpus_).ok());
  EXPECT_EQ(*s1.Serialize("/corpus.xml"), *s2.Serialize("/corpus.xml"));
}

TEST_F(ElsevierTest, ArticleIdsMatchCorpus) {
  auto ids = elsevier::ArticleIds(corpus_);
  EXPECT_EQ(ids.size(), 6u);
  net::XmlStore store;
  ASSERT_TRUE(elsevier::BuildCorpus(&store, corpus_).ok());
  std::string corpus = *store.Serialize("/corpus.xml");
  for (const std::string& id : ids) {
    EXPECT_NE(corpus.find("id=\"" + id + "\""), std::string::npos);
  }
}

}  // namespace
}  // namespace xqib::app
