#include "net/xml_store.h"

#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqib::net {

Status XmlStore::Put(const std::string& uri, const std::string& xml_source) {
  xml::ParseOptions options;
  options.document_uri = uri;
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                      xml::ParseDocument(xml_source, options));
  docs_[uri] = std::move(doc);
  return Status();
}

Result<xml::Node*> XmlStore::Get(const std::string& uri) {
  auto it = docs_.find(uri);
  if (it == docs_.end()) {
    return Status::Error("FODC0002", "document not found in store: " + uri);
  }
  return it->second->root();
}

Result<std::string> XmlStore::Serialize(const std::string& uri) const {
  auto it = docs_.find(uri);
  if (it == docs_.end()) {
    return Status::Error("FODC0002", "document not found in store: " + uri);
  }
  return xml::Serialize(it->second->root());
}

xquery::DynamicContext::DocResolver XmlStore::MakeDocResolver() {
  return [this](const std::string& uri) { return Get(uri); };
}

xquery::DynamicContext::DocWriter XmlStore::MakeDocWriter() {
  return [this](const std::string& uri, const xml::Node* node) {
    return Put(uri, xml::Serialize(node));
  };
}

void XmlStore::MountOn(HttpFabric* fabric, const std::string& prefix) {
  fabric->SetHandler(
      prefix, [this, prefix](const HttpRequest& request)
                  -> Result<HttpResponse> {
        std::string uri = request.url.substr(prefix.size());
        if (request.method == "PUT") {
          XQ_RETURN_NOT_OK(Put(uri, request.body));
          return HttpResponse{201, "", "text/plain"};
        }
        XQ_ASSIGN_OR_RETURN(std::string body, Serialize(uri));
        return HttpResponse{200, std::move(body), "application/xml"};
      });
}

}  // namespace xqib::net
