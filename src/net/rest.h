// REST support for XQuery (paper §3.4 / §5.1 "Zorba chose to first
// support REST, synchronous REST calls are possible"): http:get and
// friends in the http: namespace, registered as external functions on a
// DynamicContext and backed by the simulated fabric.

#ifndef XQIB_NET_REST_H_
#define XQIB_NET_REST_H_

#include "net/http.h"
#include "net/prefetch.h"
#include "xquery/context.h"

namespace xqib::net {

// Registers on `ctx`:
//   http:get($uri)        -> document node of the parsed XML response
//   http:get-text($uri)   -> response body as xs:string
//   http:put($uri, $body) -> stores a serialized node or string
// When `prefetcher` is non-null, the GET externals first claim a
// scattered in-flight future for the URI (async federation) and only
// fall back to a fresh serial round trip on a prefetch miss.
void RegisterRestFunctions(xquery::DynamicContext* ctx, HttpFabric* fabric,
                           HttpPrefetcher* prefetcher = nullptr);

}  // namespace xqib::net

#endif  // XQIB_NET_REST_H_
