#include "net/rest.h"

#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqib::net {

using xdm::Item;
using xdm::Sequence;
using xquery::DynamicContext;

namespace {

// One GET round trip: consume the scattered in-flight future when the
// federation pass issued one for this URI, otherwise perform a fresh
// serial round trip. Awaiting the future advances the fabric's virtual
// clock to the fetch's completion — latency the scatter already
// overlapped with the other outstanding fetches.
Result<HttpResponse> ResolveGet(HttpFabric* fabric,
                                HttpPrefetcher* prefetcher,
                                const std::string& uri) {
  if (prefetcher != nullptr) {
    HttpFuture future;
    if (prefetcher->Take(uri, &future)) return future.Await();
  }
  return fabric->Get(uri);
}

}  // namespace

void RegisterRestFunctions(DynamicContext* ctx, HttpFabric* fabric,
                           HttpPrefetcher* prefetcher) {
  xml::QName get_name(std::string(xml::kHttpNamespace), "http", "get");
  ctx->RegisterExternal(
      get_name, 1,
      [fabric, prefetcher](std::vector<Sequence>& args,
                           DynamicContext& c) -> Result<Sequence> {
        std::string uri = xdm::SequenceToString(args[0]);
        XQ_ASSIGN_OR_RETURN(HttpResponse resp,
                            ResolveGet(fabric, prefetcher, uri));
        xml::ParseOptions options;
        options.document_uri = uri;
        XQ_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                            xml::ParseDocument(resp.body, options));
        return Sequence{Item::Node(c.AdoptDocument(std::move(doc)))};
      });

  xml::QName get_text(std::string(xml::kHttpNamespace), "http", "get-text");
  ctx->RegisterExternal(
      get_text, 1,
      [fabric, prefetcher](std::vector<Sequence>& args,
                           DynamicContext&) -> Result<Sequence> {
        std::string uri = xdm::SequenceToString(args[0]);
        XQ_ASSIGN_OR_RETURN(HttpResponse resp,
                            ResolveGet(fabric, prefetcher, uri));
        return Sequence{Item::String(std::move(resp.body))};
      });

  xml::QName put_name(std::string(xml::kHttpNamespace), "http", "put");
  ctx->RegisterExternal(
      put_name, 2,
      [fabric](std::vector<Sequence>& args,
               DynamicContext&) -> Result<Sequence> {
        std::string uri = xdm::SequenceToString(args[0]);
        std::string body;
        if (!args[1].empty() && args[1][0].is_node()) {
          body = xml::Serialize(args[1][0].node());
        } else {
          body = xdm::SequenceToString(args[1]);
        }
        XQ_ASSIGN_OR_RETURN(HttpResponse resp,
                            fabric->Put(uri, std::move(body)));
        return Sequence{Item::Integer(resp.status)};
      });
}

}  // namespace xqib::net
