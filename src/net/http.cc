#include "net/http.h"

#include <algorithm>

namespace xqib::net {

bool HttpFuture::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

double HttpFuture::latency_ms() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->latency_ms;
}

Result<HttpResponse> HttpFuture::Await() {
  if (state_ == nullptr) {
    return Status::Error("NETW0000", "await on an empty HttpFuture");
  }
  State* s = state_.get();
  std::unique_lock<std::mutex> lock(s->mu);
  s->cv.wait(lock, [s] { return s->ready; });
  if (!s->clock_settled) {
    s->clock_settled = true;
    if (s->fabric != nullptr) s->fabric->SettleFetch(s->complete_ms);
  }
  return s->response;
}

void HttpFuture::Then(browser::EventLoop* loop,
                      std::function<void(Result<HttpResponse>)> callback) {
  // The completion is an off-thread unit: a pool worker materializes the
  // delivery (the shared state is this completion's private payload) and
  // the loop thread commits by running the callback — callbacks may
  // mutate the DOM, so they stay on the loop thread. Without a pool the
  // work runs serially at the same queue position: identical observable
  // behaviour at every pool size.
  std::shared_ptr<State> st = state_;
  loop->PostOffThread(
      [st, cb = std::move(callback)]() -> browser::EventLoop::Task {
        return [st, cb]() {
          {
            std::lock_guard<std::mutex> lock(st->mu);
            if (!st->clock_settled) {
              st->clock_settled = true;
              if (st->fabric != nullptr) {
                st->fabric->SettleFetch(st->complete_ms);
              }
            }
          }
          cb(st->response);
        };
      },
      latency_ms());
}

void HttpFabric::PutResource(const std::string& url, std::string body,
                             std::string content_type) {
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    resources_[url] = Resource{std::move(body), std::move(content_type)};
  }
  if (cache_ != nullptr) cache_->InvalidateUrl(url);
}

bool HttpFabric::HasResource(const std::string& url) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  return resources_.count(url) > 0;
}

void HttpFabric::SetHandler(const std::string& url_prefix, Handler handler) {
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    handlers_[url_prefix] = std::move(handler);
  }
  if (cache_ != nullptr) cache_->InvalidatePrefix(url_prefix);
}

bool HttpFabric::FindHandler(const std::string& url, Handler* out) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  const Handler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : handlers_) {
    if (url.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best == nullptr) return false;
  *out = *best;  // copy out: callers invoke with the lock released
  return true;
}

Result<HttpResponse> HttpFabric::Resolve(const HttpRequest& request) {
  if (request.method == "GET") {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = resources_.find(request.url);
    if (it != resources_.end()) {
      return HttpResponse{200, it->second.body, it->second.content_type};
    }
  }
  Handler handler;
  if (FindHandler(request.url, &handler)) return handler(request);
  return Status::Error("NETW0404", "no resource or handler for " +
                                       request.url);
}

bool HttpFabric::CacheLookup(const HttpRequest& request, HttpResponse* out) {
  if (cache_ == nullptr || request.method != "GET") return false;
  if (cache_->Lookup(request.url, VirtualNow(), out)) {
    ++stats_.cache_hits;
    return true;
  }
  ++stats_.cache_misses;
  return false;
}

void HttpFabric::CacheStore(const HttpRequest& request,
                            const Result<HttpResponse>& response) {
  if (cache_ == nullptr || request.method != "GET") return;
  if (response.ok() && response->status == 200) {
    cache_->Insert(request.url, *response, VirtualNow());
  }
}

void HttpFabric::AccountSerial(double latency_ms, size_t bytes) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  ++stats_.requests;
  stats_.bytes_served += bytes;
  stats_.simulated_latency_ms += latency_ms;
  double start = virtual_now_ms_;
  double complete = start + latency_ms;
  double covered =
      std::max(0.0, std::min(window_end_ms_, complete) - start);
  stats_.overlapped_ms += covered;
  stats_.makespan_ms += latency_ms - covered;
  virtual_now_ms_ = complete;
  window_end_ms_ = std::max(window_end_ms_, complete);
}

void HttpFabric::AccountFetch(double latency_ms, size_t bytes,
                              HttpFuture::State* s) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  ++stats_.requests;
  stats_.bytes_served += bytes;
  stats_.simulated_latency_ms += latency_ms;
  // Issue at the current clock without advancing it: the next fetch
  // issues at the same instant and its latency hides under this one.
  double start = virtual_now_ms_;
  double complete = start + latency_ms;
  double covered =
      std::max(0.0, std::min(window_end_ms_, complete) - start);
  stats_.overlapped_ms += covered;
  stats_.makespan_ms += latency_ms - covered;
  window_end_ms_ = std::max(window_end_ms_, complete);
  ++inflight_;
  if (static_cast<uint64_t>(inflight_) > stats_.inflight_peak.value()) {
    stats_.inflight_peak = static_cast<uint64_t>(inflight_);
  }
  s->issue_ms = start;
  s->complete_ms = complete;
  s->latency_ms = latency_ms;
}

void HttpFabric::SettleFetch(double complete_ms) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  virtual_now_ms_ = std::max(virtual_now_ms_, complete_ms);
  if (inflight_ > 0) --inflight_;
}

double HttpFabric::VirtualNow() const {
  std::lock_guard<std::mutex> lock(clock_mu_);
  return virtual_now_ms_;
}

void HttpFabric::ResetStats() {
  std::lock_guard<std::mutex> lock(clock_mu_);
  stats_ = Stats();
  // Close any open window so old in-flight traffic cannot absorb the
  // next measurement interval's makespan.
  window_end_ms_ = virtual_now_ms_;
  stats_.inflight_peak = static_cast<uint64_t>(inflight_);
}

Result<HttpResponse> HttpFabric::Perform(const HttpRequest& request) {
  HttpResponse cached;
  if (CacheLookup(request, &cached)) return cached;
  Result<HttpResponse> response = Resolve(request);
  size_t bytes = response.ok() ? response->body.size() : 0;
  AccountSerial(LatencyForBytes(bytes), bytes);
  CacheStore(request, response);
  return response;
}

HttpFuture HttpFabric::Fetch(const HttpRequest& request) {
  auto state = std::make_shared<HttpFuture::State>();
  state->fabric = this;
  HttpResponse cached;
  if (CacheLookup(request, &cached)) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(cached);
    double now = VirtualNow();
    state->issue_ms = now;
    state->complete_ms = now;  // a hit costs no simulated latency
    state->ready = true;
    state->cv.notify_all();
    return HttpFuture(std::move(state));
  }
  // Resolve now (the server's state at request time); only the virtual
  // clock treats the round trip as still in flight.
  Result<HttpResponse> response = Resolve(request);
  size_t bytes = response.ok() ? response->body.size() : 0;
  AccountFetch(LatencyForBytes(bytes), bytes, state.get());
  CacheStore(request, response);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(response);
    state->ready = true;
  }
  state->cv.notify_all();
  return HttpFuture(std::move(state));
}

Result<HttpResponse> HttpFabric::Put(const std::string& url,
                                     std::string body) {
  HttpRequest req;
  req.method = "PUT";
  req.url = url;
  req.body = std::move(body);
  AccountSerial(LatencyForBytes(req.body.size()), req.body.size());
  if (cache_ != nullptr) cache_->InvalidateUrl(url);
  // Longest matching prefix, same precedence as Resolve; PUT with no
  // handler stores the resource directly.
  Handler handler;
  if (FindHandler(url, &handler)) return handler(req);
  PutResource(url, std::move(req.body));
  return HttpResponse{201, "", "text/plain"};
}

double HttpFabric::RecordRoundTrip(size_t bytes) {
  double delay = LatencyForBytes(bytes);
  AccountSerial(delay, bytes);
  return delay;
}

void HttpFabric::GetAsync(const std::string& url, browser::EventLoop* loop,
                          std::function<void(Result<HttpResponse>)> callback) {
  FetchGet(url).Then(loop, std::move(callback));
}

}  // namespace xqib::net
