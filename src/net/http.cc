#include "net/http.h"

namespace xqib::net {

void HttpFabric::PutResource(const std::string& url, std::string body,
                             std::string content_type) {
  resources_[url] = Resource{std::move(body), std::move(content_type)};
}

bool HttpFabric::HasResource(const std::string& url) const {
  return resources_.count(url) > 0;
}

void HttpFabric::SetHandler(const std::string& url_prefix, Handler handler) {
  handlers_[url_prefix] = std::move(handler);
}

Result<HttpResponse> HttpFabric::Resolve(const HttpRequest& request) {
  if (request.method == "GET") {
    auto it = resources_.find(request.url);
    if (it != resources_.end()) {
      return HttpResponse{200, it->second.body, it->second.content_type};
    }
  }
  // Longest matching prefix handler.
  const Handler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : handlers_) {
    if (request.url.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) return (*best)(request);
  return Status::Error("NETW0404", "no resource or handler for " +
                                       request.url);
}

Result<HttpResponse> HttpFabric::Perform(const HttpRequest& request) {
  ++stats_.requests;
  Result<HttpResponse> response = Resolve(request);
  size_t bytes = response.ok() ? response->body.size() : 0;
  stats_.bytes_served += bytes;
  stats_.simulated_latency_ms += LatencyForBytes(bytes);
  return response;
}

Result<HttpResponse> HttpFabric::Put(const std::string& url,
                                     std::string body) {
  HttpRequest req;
  req.method = "PUT";
  req.url = url;
  req.body = std::move(body);
  // PUT with no handler stores the resource directly.
  ++stats_.requests;
  stats_.bytes_served += req.body.size();
  stats_.simulated_latency_ms += LatencyForBytes(req.body.size());
  for (const auto& [prefix, handler] : handlers_) {
    if (url.compare(0, prefix.size(), prefix) == 0) return handler(req);
  }
  PutResource(url, std::move(req.body));
  return HttpResponse{201, "", "text/plain"};
}

double HttpFabric::RecordRoundTrip(size_t bytes) {
  ++stats_.requests;
  stats_.bytes_served += bytes;
  double delay = LatencyForBytes(bytes);
  stats_.simulated_latency_ms += delay;
  return delay;
}

void HttpFabric::GetAsync(const std::string& url, browser::EventLoop* loop,
                          std::function<void(Result<HttpResponse>)> callback) {
  // Resolve now (the server's state at request time), deliver later.
  ++stats_.requests;
  Result<HttpResponse> response = Resolve(HttpRequest{"GET", url, ""});
  size_t bytes = response.ok() ? response->body.size() : 0;
  stats_.bytes_served += bytes;
  double delay = LatencyForBytes(bytes);
  stats_.simulated_latency_ms += delay;
  // The completion is an off-thread unit: a pool worker materializes the
  // delivery (the captured response is this completion's private copy,
  // so the work touches nothing shared) and the loop thread commits by
  // running the callback — callbacks may mutate the DOM, so they stay on
  // the loop thread. Without a pool the work runs serially at the same
  // queue position: identical observable behaviour at every pool size.
  loop->PostOffThread(
      [cb = std::move(callback),
       resp = std::move(response)]() -> browser::EventLoop::Task {
        return [cb, resp]() { cb(resp); };
      },
      delay);
}

}  // namespace xqib::net
