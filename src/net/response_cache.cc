#include "net/response_cache.h"

#include "net/http.h"

namespace xqib::net {

HttpResponseCache* HttpResponseCache::Global() {
  static HttpResponseCache* cache = new HttpResponseCache();
  return cache;
}

double HttpResponseCache::ttl_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ttl_ms_;
}

void HttpResponseCache::set_ttl_ms(double ttl_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ttl_ms_ = ttl_ms;
}

bool HttpResponseCache::Lookup(const std::string& url, double now_ms,
                               HttpResponse* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end() && ttl_ms_ > 0 &&
      now_ms - it->second.stored_ms > ttl_ms_) {
    entries_.erase(it);
    it = entries_.end();
    ++stats_.expirations;
  }
  if (it == entries_.end()) {
    ++stats_.misses;
    ++url_stats_[url].misses;
    return false;
  }
  ++stats_.hits;
  ++url_stats_[url].hits;
  out->status = it->second.status;
  out->body = it->second.body;
  out->content_type = it->second.content_type;
  return true;
}

void HttpResponseCache::Insert(const std::string& url,
                               const HttpResponse& response, double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[url] =
      Entry{response.status, response.body, response.content_type, now_ms};
  ++stats_.inserts;
}

void HttpResponseCache::InvalidateUrl(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(url) > 0) ++stats_.invalidations;
}

size_t HttpResponseCache::InvalidatePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

void HttpResponseCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  url_stats_.clear();
}

size_t HttpResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void HttpResponseCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats();
  url_stats_.clear();
}

std::map<std::string, HttpResponseCache::UrlStats>
HttpResponseCache::UrlStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {url_stats_.begin(), url_stats_.end()};
}

}  // namespace xqib::net
