// A simulated HTTP fabric. The paper's applications talk to REST
// services (weather, web cams, the Elsevier MarkLogic XML database); we
// have no network, so requests resolve against in-process resources and
// handlers, with a configurable latency model and per-request accounting
// — exactly what the Figure 2 off-loading experiment needs to measure.

#ifndef XQIB_NET_HTTP_H_
#define XQIB_NET_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "base/counters.h"
#include "base/result.h"
#include "browser/event_loop.h"

namespace xqib::net {

struct HttpRequest {
  std::string method = "GET";
  std::string url;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/xml";
};

class HttpFabric {
 public:
  using Handler = std::function<Result<HttpResponse>(const HttpRequest&)>;

  struct LatencyModel {
    double base_ms = 20.0;    // per-request round-trip floor
    double per_kb_ms = 0.5;   // transfer cost
  };

  // Relaxed atomics: with a worker pool on the event loop, GetAsync
  // resolves on pool threads, so concurrent completions account here.
  struct Stats {
    base::RelaxedCounter requests;
    base::RelaxedCounter bytes_served;
    base::RelaxedDouble simulated_latency_ms;  // sum over all requests
  };

  // Registers a static resource.
  void PutResource(const std::string& url, std::string body,
                   std::string content_type = "application/xml");
  bool HasResource(const std::string& url) const;

  // Registers a dynamic handler for all URLs starting with `url_prefix`.
  // Longest matching prefix wins; static resources take priority.
  void SetHandler(const std::string& url_prefix, Handler handler);

  // Synchronous round trip (simulated latency is accounted in stats).
  Result<HttpResponse> Perform(const HttpRequest& request);
  Result<HttpResponse> Get(const std::string& url) {
    return Perform(HttpRequest{"GET", url, ""});
  }
  Result<HttpResponse> Put(const std::string& url, std::string body);

  // Asynchronous round trip: the callback fires on `loop` after the
  // simulated latency elapses (drives the paper's "behind" construct).
  void GetAsync(const std::string& url, browser::EventLoop* loop,
                std::function<void(Result<HttpResponse>)> callback);

  double LatencyForBytes(size_t bytes) const {
    return latency.base_ms +
           latency.per_kb_ms * (static_cast<double>(bytes) / 1024.0);
  }

  // Accounts one request/response of `bytes` without resolving anything
  // (used by the web-service layer, whose payloads are in-process).
  // Returns the simulated latency charged.
  double RecordRoundTrip(size_t bytes);

  LatencyModel latency;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  Result<HttpResponse> Resolve(const HttpRequest& request);

  struct Resource {
    std::string body;
    std::string content_type;
  };
  std::unordered_map<std::string, Resource> resources_;
  // Ordered map so the longest matching prefix can be found reliably.
  std::map<std::string, Handler> handlers_;
  Stats stats_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_HTTP_H_
