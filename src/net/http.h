// A simulated HTTP fabric. The paper's applications talk to REST
// services (weather, web cams, the Elsevier MarkLogic XML database); we
// have no network, so requests resolve against in-process resources and
// handlers, with a configurable latency model and per-request accounting
// — exactly what the Figure 2 off-loading experiment needs to measure.
//
// Two clock views coexist in the stats. `simulated_latency_ms` is the
// classic sum over every round trip (what a fully serial client pays).
// `makespan_ms` is the virtual wall clock: requests issued through
// `Fetch` while earlier fetches are still outstanding land inside the
// open in-flight window, so only the portion extending past the window
// adds makespan — the rest accrues to `overlapped_ms`. Eight concurrent
// fetches of equal latency L cost 8L of summed latency but only ~L of
// makespan, which is the fig3 mash-up speedup this fabric exists to
// measure.

#ifndef XQIB_NET_HTTP_H_
#define XQIB_NET_HTTP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "base/counters.h"
#include "base/result.h"
#include "browser/event_loop.h"
#include "net/response_cache.h"

namespace xqib::net {

class HttpFabric;

struct HttpRequest {
  std::string method = "GET";
  std::string url;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/xml";
};

// An awaitable, composable handle to an in-flight fabric request.
// `Await` blocks until the response is ready and advances the fabric's
// virtual clock to the request's completion time (idempotently — the
// first settle wins); `Then` routes the completion through the event
// loop's off-thread machinery instead, like the paper's `behind`
// construct. Copyable: copies share one completion state.
class HttpFuture {
 public:
  HttpFuture() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const;
  // Simulated round-trip latency of this request (0 for a cache hit).
  double latency_ms() const;

  Result<HttpResponse> Await();

  // Delivers the response on `loop` after the simulated latency elapses.
  // The callback runs on the loop thread (it may mutate the DOM).
  void Then(browser::EventLoop* loop,
            std::function<void(Result<HttpResponse>)> callback);

 private:
  friend class HttpFabric;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    // Whether this future's completion already advanced the fabric's
    // virtual clock (Await and Then race benignly; first settle wins).
    bool clock_settled = false;
    Result<HttpResponse> response = Status::Error("NETW0000", "pending");
    double issue_ms = 0;
    double complete_ms = 0;
    double latency_ms = 0;
    HttpFabric* fabric = nullptr;
  };

  explicit HttpFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class HttpFabric {
 public:
  using Handler = std::function<Result<HttpResponse>(const HttpRequest&)>;

  struct LatencyModel {
    double base_ms = 20.0;    // per-request round-trip floor
    double per_kb_ms = 0.5;   // transfer cost
  };

  // Relaxed atomics: with a worker pool on the event loop, completions
  // account from pool threads; window accounting itself is guarded by
  // the fabric's clock mutex and only published through these.
  struct Stats {
    base::RelaxedCounter requests;
    base::RelaxedCounter bytes_served;
    base::RelaxedDouble simulated_latency_ms;  // sum over all requests
    // Virtual wall clock: latency that could not hide inside an open
    // in-flight window. Serial traffic: makespan == latency sum.
    base::RelaxedDouble makespan_ms;
    // Latency absorbed by overlapping an already-open window.
    base::RelaxedDouble overlapped_ms;
    base::RelaxedCounter inflight_peak;  // max concurrently outstanding
    // Response-cache traffic (0 unless a cache is attached). Hits cost
    // zero latency and do not count as requests.
    base::RelaxedCounter cache_hits;
    base::RelaxedCounter cache_misses;
  };

  // Registers a static resource.
  void PutResource(const std::string& url, std::string body,
                   std::string content_type = "application/xml");
  bool HasResource(const std::string& url) const;

  // Registers a dynamic handler for all URLs starting with `url_prefix`.
  // Longest matching prefix wins; static resources take priority.
  void SetHandler(const std::string& url_prefix, Handler handler);

  // Synchronous round trip (simulated latency is accounted in stats).
  Result<HttpResponse> Perform(const HttpRequest& request);
  Result<HttpResponse> Get(const std::string& url) {
    return Perform(HttpRequest{"GET", url, ""});
  }
  Result<HttpResponse> Put(const std::string& url, std::string body);

  // Issues a request whose latency overlaps other outstanding fetches on
  // the virtual clock (see the file comment). The response is resolved
  // against the fabric's state at issue time; `Await`/`Then` on the
  // returned future deliver it and settle the clock.
  HttpFuture Fetch(const HttpRequest& request);
  HttpFuture FetchGet(const std::string& url) {
    return Fetch(HttpRequest{"GET", url, ""});
  }

  // Asynchronous round trip: the callback fires on `loop` after the
  // simulated latency elapses (drives the paper's "behind" construct).
  // Implemented as Fetch(...).Then(...), so concurrent GetAsyncs overlap
  // on the virtual clock.
  void GetAsync(const std::string& url, browser::EventLoop* loop,
                std::function<void(Result<HttpResponse>)> callback);

  double LatencyForBytes(size_t bytes) const {
    return latency.base_ms +
           latency.per_kb_ms * (static_cast<double>(bytes) / 1024.0);
  }

  // Accounts one request/response of `bytes` without resolving anything
  // (used by the web-service layer, whose payloads are in-process).
  // Returns the simulated latency charged.
  double RecordRoundTrip(size_t bytes);

  // Attaches a response cache (e.g. HttpResponseCache::Global()); null
  // detaches. Successful GETs populate it, PUT/PutResource invalidate
  // the written URL, SetHandler invalidates its whole prefix.
  void set_response_cache(HttpResponseCache* cache) { cache_ = cache; }
  HttpResponseCache* response_cache() const { return cache_; }

  // The fabric's virtual clock (advances with simulated round trips).
  double VirtualNow() const;

  LatencyModel latency;
  const Stats& stats() const { return stats_; }
  void ResetStats();

 private:
  friend class HttpFuture;

  Result<HttpResponse> Resolve(const HttpRequest& request);
  // The one longest-prefix lookup shared by Resolve and Put: copies the
  // winning handler out under the shared lock so callers invoke it
  // unlocked (handlers may re-enter the fabric, e.g. PutResource).
  bool FindHandler(const std::string& url, Handler* out) const;

  // Cache probe/populate around a GET; returns true on a hit.
  bool CacheLookup(const HttpRequest& request, HttpResponse* out);
  void CacheStore(const HttpRequest& request,
                  const Result<HttpResponse>& response);

  // Serial round trip of latency L: advances the virtual clock, charges
  // makespan for whatever part of L extends past the open window.
  void AccountSerial(double latency_ms, size_t bytes);
  // Overlapping fetch: issues at the current virtual clock *without*
  // advancing it; fills the future's issue/completion times.
  void AccountFetch(double latency_ms, size_t bytes, HttpFuture::State* s);
  // Completion of a fetch issued earlier: virtual clock catches up to
  // the completion time, in-flight count drops.
  void SettleFetch(double complete_ms);

  struct Resource {
    std::string body;
    std::string content_type;
  };
  // REST handlers running on pool workers mutate these tables (e.g. a
  // PUT handler calling PutResource) while other workers and server
  // sessions resolve concurrently.
  mutable std::shared_mutex tables_mu_;
  std::unordered_map<std::string, Resource> resources_;
  // Ordered map so the longest matching prefix can be found reliably.
  std::map<std::string, Handler> handlers_;

  // Virtual-clock window state (see the file comment).
  mutable std::mutex clock_mu_;
  double virtual_now_ms_ = 0;
  double window_end_ms_ = 0;
  int inflight_ = 0;

  HttpResponseCache* cache_ = nullptr;
  Stats stats_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_HTTP_H_
