#include "net/webservice.h"

#include "net/rest.h"

namespace xqib::net {

using xdm::Sequence;
using xquery::DynamicContext;

Status ServiceHost::Deploy(const std::string& source,
                           const std::string& host) {
  auto service = std::make_unique<Service>();
  XQ_ASSIGN_OR_RETURN(std::string ns, service->engine.LoadLibrary(source));
  const xquery::Module* module = service->engine.FindLibrary(ns);
  service->module = module;

  int port = module->service_port != 0 ? module->service_port : 80;
  service->url = "http://" + host + ":" + std::to_string(port) + "/";

  // A main module that only imports the library gives us a compiled
  // query whose static context contains the service functions.
  XQ_ASSIGN_OR_RETURN(
      service->compiled,
      service->engine.Compile("import module namespace svc = \"" + ns +
                              "\" at \"" + service->url + "wsdl\"; ()"));

  // Expose a WSDL-ish descriptor on the fabric so clients can probe it.
  std::string descriptor = "<service namespace=\"" + ns + "\">";
  for (const auto& fn : module->functions) {
    descriptor += "<function name=\"" + fn->name.local() + "\" arity=\"" +
                  std::to_string(fn->params.size()) + "\"/>";
  }
  descriptor += "</service>";
  fabric_->PutResource(service->url + "wsdl", descriptor);

  std::unique_lock<std::shared_mutex> lk(services_mu_);
  services_[ns] = std::move(service);
  return Status();
}

Result<Sequence> ServiceHost::Invoke(const std::string& ns,
                                     const xml::QName& function,
                                     std::vector<Sequence> args) {
  Service* found = nullptr;
  {
    std::shared_lock<std::shared_mutex> lk(services_mu_);
    auto it = services_.find(ns);
    if (it == services_.end()) {
      return Status::Error("NETW0404", "no service deployed for " + ns);
    }
    found = it->second.get();
  }
  // Serialization is per deployed service (per host): concurrent
  // sessions invoking different services proceed in parallel.
  Service& service = *found;
  std::lock_guard<std::mutex> lk(service.invoke_mu);
  // Fresh server-side context per call (stateless service semantics);
  // fn:doc resolves against the XML store, REST against the fabric.
  DynamicContext ctx;
  if (store_ != nullptr) {
    ctx.doc_resolver = store_->MakeDocResolver();
    ctx.doc_writer = store_->MakeDocWriter();
  }
  RegisterRestFunctions(&ctx, fabric_);
  XQ_RETURN_NOT_OK(service.compiled->BindGlobals(ctx));
  return service.compiled->Call(function, std::move(args), ctx);
}

Status ServiceHost::RegisterClientStubs(const std::string& ns,
                                        DynamicContext* ctx) {
  std::shared_lock<std::shared_mutex> lk(services_mu_);
  auto it = services_.find(ns);
  if (it == services_.end()) {
    return Status::Error("NETW0404", "no service deployed for " + ns);
  }
  Service& service = *it->second;
  for (const auto& fn : service.module->functions) {
    xml::QName name = fn->name;
    size_t arity = fn->params.size();
    HttpFabric* fabric = fabric_;
    ServiceHost* host = this;
    std::string service_ns = ns;
    ctx->RegisterExternal(
        name, arity,
        [host, fabric, service_ns, name](
            std::vector<Sequence>& args,
            DynamicContext&) -> Result<Sequence> {
          // One simulated round trip per remote call: request carries the
          // serialized arguments, response the serialized result.
          size_t request_bytes = 64;  // envelope
          for (const Sequence& a : args) {
            request_bytes += xdm::SequenceToString(a).size();
          }
          XQ_ASSIGN_OR_RETURN(Sequence result,
                              host->Invoke(service_ns, name, args));
          fabric->RecordRoundTrip(request_bytes +
                                  xdm::SequenceToString(result).size());
          return result;
        });
  }
  return Status();
}

void ServiceHost::RegisterStubsForImports(const xquery::Module& module,
                                          DynamicContext* ctx) {
  for (const auto& imp : module.imports) {
    Status st = RegisterClientStubs(imp.ns, ctx);
    (void)st;  // unknown imports may be satisfied elsewhere
  }
}

std::string ServiceHost::ServiceUrl(const std::string& ns) const {
  std::shared_lock<std::shared_mutex> lk(services_mu_);
  auto it = services_.find(ns);
  return it == services_.end() ? std::string() : it->second->url;
}

}  // namespace xqib::net
