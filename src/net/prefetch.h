// Scatter-gather prefetch over the HTTP fabric: the evaluator's async
// federation pass hands every statically-known remote GET URL here
// before the tuple loop / listener body runs, each becomes one
// HttpFabric::Fetch, and their simulated latencies overlap inside one
// in-flight window. The http:get externals then consume the issued
// futures instead of performing fresh serial round trips. One instance
// per page; dispatch boundaries call Drain so a stale response can
// never satisfy a later dispatch.

#ifndef XQIB_NET_PREFETCH_H_
#define XQIB_NET_PREFETCH_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "base/counters.h"
#include "net/http.h"
#include "xquery/context.h"

namespace xqib::net {

class HttpPrefetcher : public xquery::UrlPrefetcher {
 public:
  struct Stats {
    base::RelaxedCounter issued;  // fetches scattered ahead of need
    base::RelaxedCounter hits;    // consumed by a later http:get
  };

  explicit HttpPrefetcher(HttpFabric* fabric) : fabric_(fabric) {}

  // Issues one overlapping fetch for `url`; a URL already in flight is
  // not re-issued. Safe from pool workers.
  void Prefetch(const std::string& url) override;

  // Claims the in-flight future for `url` (each issue satisfies exactly
  // one consumer). Returns false when nothing was prefetched.
  bool Take(const std::string& url, HttpFuture* out);

  // Settles and drops every unconsumed future — called at dispatch
  // boundaries so responses resolved against an earlier fabric state
  // cannot leak into the next dispatch. Returns how many were dropped.
  size_t Drain();

  size_t pending() const;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  HttpFabric* fabric_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, HttpFuture> pending_;
  Stats stats_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_PREFETCH_H_
