#include "net/prefetch.h"

#include <utility>
#include <vector>

namespace xqib::net {

void HttpPrefetcher::Prefetch(const std::string& url) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.count(url) > 0) return;
  }
  // Issue outside the lock: Fetch runs the handler and takes the fabric
  // locks. Two racing prefetches of one URL cost one duplicate fetch at
  // worst; the second insert below loses and settles its future.
  HttpFuture future = fabric_->FetchGet(url);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted = pending_.emplace(url, future).second;
  }
  if (inserted) {
    ++stats_.issued;
  } else {
    future.Await();
  }
}

bool HttpPrefetcher::Take(const std::string& url, HttpFuture* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(url);
  if (it == pending_.end()) return false;
  *out = std::move(it->second);
  pending_.erase(it);
  ++stats_.hits;
  return true;
}

size_t HttpPrefetcher::Drain() {
  std::vector<HttpFuture> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.reserve(pending_.size());
    for (auto& [url, future] : pending_) orphans.push_back(std::move(future));
    pending_.clear();
  }
  // Settle each orphan so the virtual clock still waits out the issued
  // round trips (a wasted prefetch is latency spent, just overlapped).
  for (HttpFuture& future : orphans) future.Await();
  return orphans.size();
}

size_t HttpPrefetcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace xqib::net
