// XQuery-module-as-web-service (paper §3.4): a library module declared
// with `module namespace ex="uri" port:2001;` and the option
// `declare option fn:webservice "true";` is deployed on the service
// host. Clients that `import module namespace ab="uri" at "...wsdl"` get
// stub functions that cross the simulated network (one fabric round trip
// per call) and evaluate the function server-side.

#ifndef XQIB_NET_WEBSERVICE_H_
#define XQIB_NET_WEBSERVICE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "net/http.h"
#include "net/xml_store.h"
#include "xquery/engine.h"

namespace xqib::net {

class ServiceHost {
 public:
  // `fabric` accounts the per-call round trips; `store` (optional) backs
  // fn:doc on the server side.
  ServiceHost(HttpFabric* fabric, XmlStore* store)
      : fabric_(fabric), store_(store) {}

  // Deploys a library module as a service on `host` (e.g.
  // "www.example.ch"). The service URL is http://host:port/.
  Status Deploy(const std::string& source, const std::string& host);

  // Server-side invocation of a deployed function.
  Result<xdm::Sequence> Invoke(const std::string& ns,
                               const xml::QName& function,
                               std::vector<xdm::Sequence> args);

  // Registers client stubs on `ctx` for every function of the service
  // with namespace `ns`: calling a stub performs one fabric round trip
  // and returns the server-side result. Returns NETW0404 if no such
  // service is deployed.
  Status RegisterClientStubs(const std::string& ns,
                             xquery::DynamicContext* ctx);

  // Convenience: register stubs for every import of a compiled module.
  // Imports that match no deployed service are skipped (they may be
  // satisfied by other external functions).
  void RegisterStubsForImports(const xquery::Module& module,
                               xquery::DynamicContext* ctx);

  // By value: a reference into the services map could dangle across a
  // concurrent Deploy replacing the entry.
  std::string ServiceUrl(const std::string& ns) const;

 private:
  struct Service {
    std::string url;  // http://host:port/
    xquery::Engine engine;
    std::unique_ptr<xquery::CompiledQuery> compiled;
    const xquery::Module* module = nullptr;
    // Client stubs may be called from pool workers (staged listeners)
    // and from many hosted page sessions at once; each Invoke shares
    // THIS service's compiled query, so execution serializes per
    // deployed service (per host) — the single-threaded server of the
    // paper's model — instead of across the whole host: one session's
    // slow call to service A never stalls another session's call to
    // service B.
    std::mutex invoke_mu;
  };
  std::unordered_map<std::string, std::unique_ptr<Service>> services_;
  // Deploys are rare, invokes are hot: the map itself is read-mostly.
  mutable std::shared_mutex services_mu_;
  HttpFabric* fabric_;
  XmlStore* store_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_WEBSERVICE_H_
