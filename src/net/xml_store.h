// An in-memory XML document store — the stand-in for the XML database
// behind the paper's applications (MarkLogic in the Elsevier Reference
// 2.0 deployment, §6.1; "products.xml" in the shopping cart, §6.3).
// Serves parsed documents to server-side XQuery (fn:doc) and raw bodies
// to the HTTP fabric (REST).

#ifndef XQIB_NET_XML_STORE_H_
#define XQIB_NET_XML_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "base/result.h"
#include "net/http.h"
#include "xml/dom.h"
#include "xquery/context.h"

namespace xqib::net {

class XmlStore {
 public:
  // Parses and stores a document under `uri`. Replaces any previous one.
  Status Put(const std::string& uri, const std::string& xml_source);

  // The live parsed document (server-side XQuery updates mutate it).
  Result<xml::Node*> Get(const std::string& uri);
  bool Has(const std::string& uri) const { return docs_.count(uri) > 0; }

  // Serializes the current state of a stored document.
  Result<std::string> Serialize(const std::string& uri) const;

  size_t size() const { return docs_.size(); }

  // A fn:doc resolver bound to this store (server-side contexts).
  xquery::DynamicContext::DocResolver MakeDocResolver();
  // A fn:put writer bound to this store (server-side contexts).
  xquery::DynamicContext::DocWriter MakeDocWriter();

  // Mounts the store on an HTTP fabric: GET <prefix><uri-suffix> serves
  // the serialized document "/<uri-suffix>"; PUT writes it back.
  void MountOn(HttpFabric* fabric, const std::string& prefix);

 private:
  std::unordered_map<std::string, std::unique_ptr<xml::Document>> docs_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_XML_STORE_H_
