// Process-wide HTTP response cache (the remote-data analogue of
// PlanCache): successful GET responses are stored under their URL with a
// TTL measured on the fabric's virtual clock, and writes through the
// fabric (PUT, PutResource, SetHandler) invalidate the affected entries.
// One instance is shared by every PageServer session — like
// PlanCache::Global(), the first session to fetch a source warms all of
// them.

#ifndef XQIB_NET_RESPONSE_CACHE_H_
#define XQIB_NET_RESPONSE_CACHE_H_

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/counters.h"

namespace xqib::net {

struct HttpResponse;

class HttpResponseCache {
 public:
  struct Stats {
    base::RelaxedCounter hits;
    base::RelaxedCounter misses;
    base::RelaxedCounter inserts;
    base::RelaxedCounter invalidations;
    base::RelaxedCounter expirations;
  };
  struct UrlStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // The process-wide instance every fabric can attach (opt-in; a fabric
  // without an attached cache behaves exactly as before).
  static HttpResponseCache* Global();

  // Entry lifetime on the fabric's virtual clock; <= 0 disables expiry.
  double ttl_ms() const;
  void set_ttl_ms(double ttl_ms);

  // Copies the cached response into `*out` and returns true on a live
  // hit; expired entries are dropped (counted as expirations + misses).
  bool Lookup(const std::string& url, double now_ms, HttpResponse* out);
  void Insert(const std::string& url, const HttpResponse& response,
              double now_ms);

  void InvalidateUrl(const std::string& url);
  // Drops every entry whose URL starts with `prefix`; returns the count.
  size_t InvalidatePrefix(const std::string& prefix);
  // Drops all entries and per-URL stats (lifetime counters survive; use
  // ResetStats for those).
  void Clear();

  size_t size() const;
  const Stats& stats() const { return stats_; }
  void ResetStats();

  // Per-URL hit/miss tallies, sorted by URL for deterministic dumps.
  std::map<std::string, UrlStats> UrlStatsSnapshot() const;

 private:
  struct Entry {
    // Stored out-of-line so this header needs only a forward declaration
    // of HttpResponse (http.h includes this header).
    int status = 200;
    std::string body;
    std::string content_type;
    double stored_ms = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, UrlStats> url_stats_;
  double ttl_ms_ = 60'000.0;
  Stats stats_;
};

}  // namespace xqib::net

#endif  // XQIB_NET_RESPONSE_CACHE_H_
