// The XQIB plug-in (paper Section 5, Figure 1): the glue between the
// browser and the XQuery engine.
//
// Pipeline per page load:
//   1. the browser parses the XHTML document and renders (headless here),
//   2. the plug-in extracts <script> elements and inline on* handlers,
//   3. foreign-language scripts (JavaScript) run first — "this is the way
//      browsers do it because JavaScript is supported natively" (§4.1),
//   4. each XQuery script's prolog is compiled, globals are bound, and
//      the main body runs (registering event listeners),
//   5. the plug-in then loops: browser events are dispatched to the
//      registered XQuery listeners (and to JavaScript listeners on the
//      same targets, serialized in registration order, §6.2).
//
// The plug-in implements the BrowserBinding interface (the grammar
// extensions "on event …", "set style …") and provides the browser:
// function namespace of §4.2 (alert, top, self, screen, navigator,
// document, window/history functions, write).

#ifndef XQIB_PLUGIN_PLUGIN_H_
#define XQIB_PLUGIN_PLUGIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "browser/bom.h"
#include "browser/page.h"
#include "xml/interning.h"
#include "net/http.h"
#include "net/webservice.h"
#include "xquery/analysis/analyzer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace xqib::plugin {

// Interface for a coexisting script engine (MiniJS implements this).
class ForeignScriptEngine {
 public:
  virtual ~ForeignScriptEngine() = default;
  virtual bool Handles(browser::ScriptLanguage language) const = 0;
  virtual Status RunScript(browser::Window* window,
                           const browser::Script& script) = 0;
  virtual Status RegisterInlineHandler(
      browser::Window* window, const browser::InlineHandler& handler) = 0;
};

class XqibPlugin : public xquery::BrowserBinding {
 public:
  // `fabric` and `services` are optional (REST / web-service support).
  XqibPlugin(browser::Browser* browser, net::HttpFabric* fabric,
             net::ServiceHost* services);
  ~XqibPlugin() override;

  // Wires this plug-in into browser->on_page_loaded.
  void Install();

  // Coexisting engine for text/javascript scripts (may be null).
  void set_foreign_engine(ForeignScriptEngine* engine) {
    foreign_engine_ = engine;
  }

  // Figure 1 steps 2-4 for a freshly loaded window.
  Status InitializePage(browser::Window* window);

  // Queues a user-interaction event on the loop and pumps it.
  Status FireEvent(xml::Node* target, browser::Event event);
  // Runs queued tasks (event dispatches, async completions) to idle.
  size_t PumpEvents();

  // --- user-visible channels ---
  const std::vector<std::string>& alerts() const { return alerts_; }
  void ClearAlerts() { alerts_.clear(); }
  // prompt()/confirm() responders (tests script them).
  std::function<std::string(const std::string&)> prompt_responder;
  std::function<bool(const std::string&)> confirm_responder;

  // Diagnostics for benchmarks: per-page-load phase timings.
  struct InitTiming {
    double extract_us = 0;
    double foreign_us = 0;
    double compile_us = 0;
    double bind_globals_us = 0;
    double run_main_us = 0;
    size_t xquery_scripts = 0;
    size_t listeners_registered = 0;
  };
  const InitTiming& last_init_timing() const { return last_init_timing_; }

  // Status of the last script error (pages must not crash the browser).
  const Status& last_script_error() const { return last_script_error_; }

  // Static-analysis diagnostics from the last page load (all scripts,
  // warnings included). A page whose scripts carry error-severity
  // diagnostics is rejected at load time: InitializePage fails with the
  // first error, rendered exactly as xq_lint renders it.
  const std::vector<xquery::analysis::Diagnostic>& last_diagnostics() const {
    return last_diagnostics_;
  }

  // Number of listener invocations whose post-run apply/re-render pass
  // was skipped because the analyzer proved the listener DOM-pure.
  size_t pure_listener_skips() const { return pure_listener_skips_; }

  // Memo cache over pure listeners: dispatches answered from cache
  // without re-running the listener body, cache misses (first sight of a
  // (listener, payload) pair), and stale entries discarded because the
  // document mutated since they were recorded.
  struct MemoStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };
  const MemoStats& memo_stats() const { return memo_stats_; }

  // Ablation switch for benchmarks: with the memo disabled every
  // dispatch re-runs the listener even when the analyzer proved it
  // memoizable.
  void set_memo_enabled(bool enabled) { memo_enabled_ = enabled; }
  bool memo_enabled() const { return memo_enabled_; }

  // Serialized value of the most recent listener invocation (whether
  // evaluated or replayed from the memo cache). Tests compare replayed
  // dispatches against fresh ones through this channel.
  const std::string& last_listener_result() const {
    return last_listener_result_;
  }

  // Path fast-path work done by the most recent listener invocation
  // (delta of the page evaluator's counters across the call). Benchmarks
  // assert the per-event dispatch actually hit the fast paths.
  struct EventStats {
    uint64_t sorts_elided = 0;
    uint64_t sorts_performed = 0;
    uint64_t name_index_hits = 0;
    uint64_t early_exits = 0;
    uint64_t count_index_hits = 0;
    // Streaming-pipeline deltas for the dispatch.
    uint64_t items_pulled = 0;
    uint64_t items_materialized = 0;
    uint64_t buffers_avoided = 0;
    // Memory-layer deltas for the dispatch: arena bytes/resets from the
    // page evaluator, intern-pool hits across the call (process-wide
    // pool, so deltas are only meaningful single-threaded), and memo
    // cache traffic.
    uint64_t arena_bytes_used = 0;
    uint64_t arena_resets = 0;
    uint64_t intern_hits = 0;
    uint64_t memo_hits = 0;
    uint64_t memo_misses = 0;
    uint64_t memo_invalidations = 0;
  };
  const EventStats& last_event_stats() const { return last_event_stats_; }

  // Applies `options` to every live page evaluator and to evaluators of
  // pages loaded later (benchmark ablations flip the fast paths off).
  void set_eval_options(const xquery::Evaluator::EvalOptions& options);
  const xquery::Evaluator::EvalOptions& eval_options() const {
    return eval_options_;
  }

  // --- BrowserBinding (grammar extensions §4.3-4.5) ---
  Status AttachListener(const std::string& event_name,
                        const xdm::Sequence& targets,
                        const xml::QName& listener,
                        xquery::DynamicContext& ctx) override;
  Status DetachListener(const std::string& event_name,
                        const xdm::Sequence& targets,
                        const xml::QName& listener,
                        xquery::DynamicContext& ctx) override;
  Status TriggerEvent(const std::string& event_name,
                      const xdm::Sequence& targets,
                      xquery::DynamicContext& ctx) override;
  Status AttachBehind(const std::string& event_name,
                      const xquery::Expr& call_expr,
                      const xml::QName& listener,
                      xquery::DynamicContext& ctx) override;
  Status SetStyle(const std::string& property, const xdm::Sequence& targets,
                  const std::string& value,
                  xquery::DynamicContext& ctx) override;
  Result<std::string> GetStyle(const std::string& property,
                               const xdm::Sequence& target,
                               xquery::DynamicContext& ctx) override;

  browser::Browser* browser() { return browser_; }

 private:
  // Everything the plug-in keeps per loaded page.
  struct PageContext {
    browser::Window* window = nullptr;
    std::vector<std::unique_ptr<xquery::Module>> modules;  // page scripts
    std::vector<std::unique_ptr<xquery::Module>> handler_modules;
    std::unique_ptr<xquery::StaticContext> sctx;
    std::unique_ptr<xquery::Evaluator> evaluator;
    std::unique_ptr<xquery::DynamicContext> ctx;
    std::vector<browser::Browser::BomTree> bom_trees;
    // Declared functions ("Clark#arity") the analyzer proved DOM-pure;
    // listener calls resolving to one of these skip the apply pass.
    std::unordered_set<std::string> pure_functions;
    // The memoizable subset: pure AND free of observable host calls
    // (alert/prompt/confirm, fn:trace). Only these may be replayed from
    // the memo cache instead of re-evaluated. Keyed on the interned
    // name + arity so the per-dispatch eligibility check allocates
    // nothing (no Clark-string rebuild on the memo-hit fast path).
    struct ListenerKey {
      const xml::InternedName* name = nullptr;
      size_t arity = 0;
      bool operator==(const ListenerKey& o) const {
        return name == o.name && arity == o.arity;
      }
    };
    struct ListenerKeyHash {
      size_t operator()(const ListenerKey& k) const {
        return std::hash<const void*>()(k.name) * 1315423911u + k.arity;
      }
    };
    std::unordered_set<ListenerKey, ListenerKeyHash> memoizable_functions;

    // Mutation-versioned memo cache for pure listeners. Keyed on the
    // interned listener name (pointer identity), arity, and a hash of
    // the full event payload (including target node identities). An
    // entry is valid only while the page document's mutation version
    // matches — any insert/delete/rename/replace bumps the version and
    // strands the entry, which is discarded (counted as invalidation)
    // on next lookup.
    struct MemoKey {
      const xml::InternedName* name = nullptr;
      size_t arity = 0;
      uint64_t payload_hash = 0;
      bool operator==(const MemoKey& o) const {
        return name == o.name && arity == o.arity &&
               payload_hash == o.payload_hash;
      }
    };
    struct MemoKeyHash {
      size_t operator()(const MemoKey& k) const {
        size_t h = std::hash<const void*>()(k.name);
        h = h * 1315423911u + k.arity;
        h = h * 1315423911u + static_cast<size_t>(k.payload_hash);
        return h;
      }
    };
    struct MemoEntry {
      uint64_t doc_version = 0;
      std::string serialized;  // SequenceToString of the listener result
    };
    std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> memo_cache;
  };

  std::shared_ptr<PageContext> FindPageShared(const browser::Window* window);
  PageContext* FindPage(const browser::Window* window);
  PageContext* FindPageByContext(const xquery::DynamicContext& ctx);
  PageContext* FindPageByDocument(const xml::Document* doc);

  void RegisterBrowserFunctions(PageContext* page);
  // Installs an already-parsed (and analyzed) script module: optimizes
  // it (using the analyzer's `facts` when given), adds its declarations
  // to the static context, binds globals, runs the body.
  Status RunXQueryModule(PageContext* page,
                         std::unique_ptr<xquery::Module> module,
                         const xquery::analysis::AnalysisFacts* facts);
  Status RegisterXQueryInlineHandler(PageContext* page,
                                     const browser::InlineHandler& handler);

  // Calls an XQuery listener function with ($evt, $obj), applying the
  // PUL and syncing the BOM afterwards.
  void InvokeListener(PageContext* page, const xml::QName& function,
                      const browser::Event& event);
  Status ApplyAfterRun(PageContext* page);

  // Builds the <event> element passed as $evt (paper §4.3.2).
  xml::Node* MaterializeEvent(PageContext* page,
                              const browser::Event& event);

  static std::string ListenerId(const xml::QName& fn) {
    return "xquery:" + fn.Clark();
  }

  browser::Browser* browser_;
  net::HttpFabric* fabric_;
  net::ServiceHost* services_;
  ForeignScriptEngine* foreign_engine_ = nullptr;
  std::unordered_map<const browser::Window*, std::shared_ptr<PageContext>>
      pages_;
  std::vector<std::string> alerts_;
  InitTiming last_init_timing_;
  Status last_script_error_;
  std::vector<xquery::analysis::Diagnostic> last_diagnostics_;
  size_t pure_listener_skips_ = 0;
  bool memo_enabled_ = true;
  MemoStats memo_stats_;
  std::string last_listener_result_;
  EventStats last_event_stats_;
  xquery::Evaluator::EvalOptions eval_options_;
};

}  // namespace xqib::plugin

#endif  // XQIB_PLUGIN_PLUGIN_H_
