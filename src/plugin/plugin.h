// The XQIB plug-in (paper Section 5, Figure 1): the glue between the
// browser and the XQuery engine.
//
// Pipeline per page load:
//   1. the browser parses the XHTML document and renders (headless here),
//   2. the plug-in extracts <script> elements and inline on* handlers,
//   3. foreign-language scripts (JavaScript) run first — "this is the way
//      browsers do it because JavaScript is supported natively" (§4.1),
//   4. each XQuery script's prolog is compiled, globals are bound, and
//      the main body runs (registering event listeners),
//   5. the plug-in then loops: browser events are dispatched to the
//      registered XQuery listeners (and to JavaScript listeners on the
//      same targets, serialized in registration order, §6.2).
//
// The plug-in implements the BrowserBinding interface (the grammar
// extensions "on event …", "set style …") and provides the browser:
// function namespace of §4.2 (alert, top, self, screen, navigator,
// document, window/history functions, write).

#ifndef XQIB_PLUGIN_PLUGIN_H_
#define XQIB_PLUGIN_PLUGIN_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/counters.h"
#include "base/thread_pool.h"
#include "browser/bom.h"
#include "browser/events.h"
#include "browser/page.h"
#include "xml/interning.h"
#include "net/http.h"
#include "net/prefetch.h"
#include "net/webservice.h"
#include "xquery/analysis/analyzer.h"
#include "xquery/evaluator.h"
#include "xquery/federation.h"
#include "xquery/parser.h"

namespace xqib::plugin {

// Interface for a coexisting script engine (MiniJS implements this).
class ForeignScriptEngine {
 public:
  virtual ~ForeignScriptEngine() = default;
  virtual bool Handles(browser::ScriptLanguage language) const = 0;
  virtual Status RunScript(browser::Window* window,
                           const browser::Script& script) = 0;
  virtual Status RegisterInlineHandler(
      browser::Window* window, const browser::InlineHandler& handler) = 0;
};

class XqibPlugin : public xquery::BrowserBinding {
 public:
  // `fabric` and `services` are optional (REST / web-service support).
  XqibPlugin(browser::Browser* browser, net::HttpFabric* fabric,
             net::ServiceHost* services);
  ~XqibPlugin() override;

  // Wires this plug-in into browser->on_page_loaded.
  void Install();

  // Coexisting engine for text/javascript scripts (may be null).
  void set_foreign_engine(ForeignScriptEngine* engine) {
    foreign_engine_ = engine;
  }

  // Figure 1 steps 2-4 for a freshly loaded window.
  Status InitializePage(browser::Window* window);

  // Queues a user-interaction event on the loop and pumps it.
  Status FireEvent(xml::Node* target, browser::Event event);
  // Runs queued tasks (event dispatches, async completions) to idle.
  size_t PumpEvents();

  // --- user-visible channels ---
  const std::vector<std::string>& alerts() const { return alerts_; }
  void ClearAlerts() { alerts_.clear(); }
  // prompt()/confirm() responders (tests script them).
  std::function<std::string(const std::string&)> prompt_responder;
  std::function<bool(const std::string&)> confirm_responder;

  // Diagnostics for benchmarks: per-page-load phase timings.
  struct InitTiming {
    double extract_us = 0;
    double foreign_us = 0;
    double compile_us = 0;
    double bind_globals_us = 0;
    double run_main_us = 0;
    size_t xquery_scripts = 0;
    size_t listeners_registered = 0;
  };
  const InitTiming& last_init_timing() const { return last_init_timing_; }

  // Status of the last script error (pages must not crash the browser).
  const Status& last_script_error() const { return last_script_error_; }
  // Resets the sticky error channel; the page server clears it before
  // every dispatch so one bad event cannot poison later ones' reports.
  void ClearScriptError() { last_script_error_ = Status(); }

  // Static-analysis diagnostics from the last page load (all scripts,
  // warnings included). A page whose scripts carry error-severity
  // diagnostics is rejected at load time: InitializePage fails with the
  // first error, rendered exactly as xq_lint renders it.
  const std::vector<xquery::analysis::Diagnostic>& last_diagnostics() const {
    return last_diagnostics_;
  }

  // Number of listener invocations whose post-run apply/re-render pass
  // was skipped because the analyzer proved the listener DOM-pure.
  size_t pure_listener_skips() const { return pure_listener_skips_; }

  // Memo cache over pure listeners: dispatches answered from cache
  // without re-running the listener body, cache misses (first sight of a
  // (listener, payload) pair), and stale entries discarded because the
  // document mutated since they were recorded.
  struct MemoStats {
    base::RelaxedCounter hits;
    base::RelaxedCounter misses;
    base::RelaxedCounter invalidations;  // total: global + name causes
    // Cause split: entries killed by the whole-document version moving
    // with no per-name record to consult, vs entries whose recorded
    // read names were actually touched by a mutation.
    base::RelaxedCounter invalidations_global;
    base::RelaxedCounter invalidations_name;
    // Globally-stale entries rescued (and counted as hits) because none
    // of the name counters they recorded at fill time moved.
    base::RelaxedCounter fine_grained_survivals;
  };
  const MemoStats& memo_stats() const { return memo_stats_; }

  // Ablation switch for benchmarks: with the memo disabled every
  // dispatch re-runs the listener even when the analyzer proved it
  // memoizable.
  void set_memo_enabled(bool enabled) { memo_enabled_ = enabled; }
  bool memo_enabled() const { return memo_enabled_; }

  // Delta propagation (PERFORMANCE.md §8): structured PUL deltas drive
  // the index splice inside the Document; here they drive skip-dispatch
  // — a memoized listener whose static read names miss every name the
  // delta wrote replays its cached result without probing versions at
  // all. Counted across all pages.
  struct DeltaStats {
    base::RelaxedCounter emitted;            // structured PUL deltas
    base::RelaxedCounter listeners_skipped;  // replays via delta check
  };
  const DeltaStats& delta_stats() const { return delta_stats_; }

  // Ablation switch for name-granular invalidation (PERFORMANCE.md §6).
  // Off restores the pre-effect-analysis behavior exactly: the memo
  // cache and the element-name index validate against the whole-document
  // version only, and updating listeners never take the staged path.
  // Applies to live pages and pages loaded later.
  void set_fine_grained_invalidation(bool on);
  bool fine_grained_invalidation() const {
    return fine_grained_invalidation_;
  }

  // Serialized value of the most recent listener invocation (whether
  // evaluated or replayed from the memo cache). Tests compare replayed
  // dispatches against fresh ones through this channel.
  const std::string& last_listener_result() const {
    return last_listener_result_;
  }

  // Path fast-path work done by the most recent listener invocation
  // (delta of the page evaluator's counters across the call). Benchmarks
  // assert the per-event dispatch actually hit the fast paths.
  struct EventStats {
    base::RelaxedCounter sorts_elided;
    base::RelaxedCounter sorts_performed;
    base::RelaxedCounter name_index_hits;
    base::RelaxedCounter early_exits;
    base::RelaxedCounter count_index_hits;
    // Streaming-pipeline deltas for the dispatch.
    base::RelaxedCounter items_pulled;
    base::RelaxedCounter items_materialized;
    base::RelaxedCounter buffers_avoided;
    // Memory-layer deltas for the dispatch: arena bytes/resets from the
    // evaluator that ran the listener, intern-pool hits across the call,
    // and memo cache traffic. Staged listeners evaluate on private
    // worker-slot evaluators, so these deltas stay exact per listener
    // under the pool too (intern hits aside: the pool is process-wide,
    // so concurrent listeners' hits land in whichever dispatch window is
    // open — totals remain accurate).
    base::RelaxedCounter arena_bytes_used;
    base::RelaxedCounter arena_resets;
    base::RelaxedCounter intern_hits;
    base::RelaxedCounter memo_hits;
    base::RelaxedCounter memo_misses;
    base::RelaxedCounter memo_invalidations;
    // Cause split of memo_invalidations (see MemoStats), plus hits that
    // were only possible through per-name counters.
    base::RelaxedCounter memo_invalidations_global;
    base::RelaxedCounter memo_invalidations_name;
    base::RelaxedCounter memo_fine_survivals;
    // Compiled-plan deltas for the dispatch: calls executed through a
    // register plan, compiled_plans-on calls that tree-walked instead,
    // and compilation work (zero on every warm dispatch — a memo hit
    // never even consults the plan layer).
    base::RelaxedCounter plan_hits;
    base::RelaxedCounter plan_misses;
    base::RelaxedCounter plan_compiles;
    base::RelaxedCounter plan_invalidations;
    // Delta-propagation work for the dispatch: structured PUL deltas
    // emitted by the apply pass, index splices / avoided rebuilds the
    // listener's own lookups triggered (staged listeners report 0 here,
    // like intern_hits: the Document counters are process-shared), and
    // whether this dispatch was answered by the delta skip check.
    base::RelaxedCounter delta_emitted;
    base::RelaxedCounter delta_index_splices;
    base::RelaxedCounter delta_bucket_rebuilds_avoided;
    base::RelaxedCounter delta_listeners_skipped;
    // Async-federation deltas for the dispatch: fabric round trips the
    // listener issued, response-cache traffic, scatter-gather prefetches
    // (issued before the body ran / consumed by http:get inside it), and
    // the virtual-time cost split — makespan (wall-clock charged) vs
    // latency overlapped away by in-flight concurrency.
    base::RelaxedCounter http_requests;
    base::RelaxedCounter http_cache_hits;
    base::RelaxedCounter http_cache_misses;
    base::RelaxedCounter http_prefetch_issued;
    base::RelaxedCounter http_prefetch_hits;
    base::RelaxedDouble http_makespan_ms;
    base::RelaxedDouble http_overlapped_ms;
  };
  const EventStats& last_event_stats() const { return last_event_stats_; }

  // --- parallel dispatch runtime (PERFORMANCE.md §5) ---
  // Creates a worker pool of `workers` threads and wires it into the
  // event loop (off-thread `behind` completions), the event system
  // (staged parallel listeners) and every page evaluator (parallel
  // stream operators). workers == 0 tears the pool down: the serial
  // baseline, observably identical by construction.
  void EnableParallelDispatch(size_t workers);
  // Wires an externally owned pool instead (the multi-tenant page
  // server's one-pool-N-sessions substrate, PERFORMANCE.md §9): same
  // wiring as EnableParallelDispatch, but the pool is shared across
  // plug-ins and never torn down here. nullptr restores the serial
  // baseline. Any previously owned pool is destroyed.
  void UseSharedThreadPool(base::ThreadPool* pool);
  base::ThreadPool* thread_pool() { return active_pool_; }
  size_t parallel_dispatch_workers() const {
    return active_pool_ != nullptr ? active_pool_->size() : 0;
  }
  // Listener stagings that fell back to serial re-execution (worker-side
  // error or a PUL that slipped past the analyzer's proof).
  size_t parallel_fallbacks() const { return parallel_fallbacks_; }

  // Applies `options` to every live page evaluator and to evaluators of
  // pages loaded later (benchmark ablations flip the fast paths off).
  void set_eval_options(const xquery::Evaluator::EvalOptions& options);
  const xquery::Evaluator::EvalOptions& eval_options() const {
    return eval_options_;
  }

  // --- BrowserBinding (grammar extensions §4.3-4.5) ---
  Status AttachListener(const std::string& event_name,
                        const xdm::Sequence& targets,
                        const xml::QName& listener,
                        xquery::DynamicContext& ctx) override;
  Status DetachListener(const std::string& event_name,
                        const xdm::Sequence& targets,
                        const xml::QName& listener,
                        xquery::DynamicContext& ctx) override;
  Status TriggerEvent(const std::string& event_name,
                      const xdm::Sequence& targets,
                      xquery::DynamicContext& ctx) override;
  Status AttachBehind(const std::string& event_name,
                      const xquery::Expr& call_expr,
                      const xml::QName& listener,
                      xquery::DynamicContext& ctx) override;
  Status SetStyle(const std::string& property, const xdm::Sequence& targets,
                  const std::string& value,
                  xquery::DynamicContext& ctx) override;
  Result<std::string> GetStyle(const std::string& property,
                               const xdm::Sequence& target,
                               xquery::DynamicContext& ctx) override;

  browser::Browser* browser() { return browser_; }

 private:
  // Everything the plug-in keeps per loaded page.
  struct PageContext {
    browser::Window* window = nullptr;
    std::vector<std::unique_ptr<xquery::Module>> modules;  // page scripts
    std::vector<std::unique_ptr<xquery::Module>> handler_modules;
    std::unique_ptr<xquery::StaticContext> sctx;
    std::unique_ptr<xquery::Evaluator> evaluator;
    std::unique_ptr<xquery::DynamicContext> ctx;
    std::vector<browser::Browser::BomTree> bom_trees;
    // Declared functions ("Clark#arity") the analyzer proved DOM-pure;
    // listener calls resolving to one of these skip the apply pass.
    std::unordered_set<std::string> pure_functions;
    // The memoizable subset: pure AND free of observable host calls
    // (alert/prompt/confirm, fn:trace). Only these may be replayed from
    // the memo cache instead of re-evaluated. Keyed on the interned
    // name + arity so the per-dispatch eligibility check allocates
    // nothing (no Clark-string rebuild on the memo-hit fast path).
    struct ListenerKey {
      const xml::InternedName* name = nullptr;
      size_t arity = 0;
      bool operator==(const ListenerKey& o) const {
        return name == o.name && arity == o.arity;
      }
    };
    struct ListenerKeyHash {
      size_t operator()(const ListenerKey& k) const {
        return std::hash<const void*>()(k.name) * 1315423911u + k.arity;
      }
    };
    std::unordered_set<ListenerKey, ListenerKeyHash> memoizable_functions;
    // The parallel-safe superset: pure AND free of *interactive* host
    // calls (prompt/confirm block on the user; alert and fn:trace only
    // emit, so their output can be buffered worker-side and replayed in
    // registration order at commit). Only these listeners are staged on
    // the worker pool.
    std::unordered_set<ListenerKey, ListenerKeyHash> parallel_safe_functions;
    // Updating listeners with fully analyzed effect sets: not pure, but
    // safe to evaluate on a worker against the DOM snapshot (the PUL
    // transfers to the page context and applies at commit) whenever the
    // dispatcher's interference check admits them into a staged run.
    std::unordered_set<ListenerKey, ListenerKeyHash>
        stageable_updating_functions;
    // Static effect summaries (from AnalysisFacts::function_effects),
    // attached to registered listeners for staged-run admission.
    std::unordered_map<ListenerKey,
                       std::shared_ptr<const browser::ListenerEffects>,
                       ListenerKeyHash>
        listener_effects;
    // For memoizable listeners whose read set the analyzer fully named:
    // the names whose counters a memo entry records at fill time.
    std::unordered_map<ListenerKey, std::vector<const xml::InternedName*>,
                       ListenerKeyHash>
        listener_read_names;
    // Analyzer facts merged across all page scripts, shared with the
    // page evaluator and every worker-slot evaluator so compiled-plan
    // specialization sees one facts object (cardinality entries key on
    // AST nodes owned by `modules`).
    std::shared_ptr<const xquery::analysis::AnalysisFacts> facts;

    // Scatter-gather federation (PERFORMANCE.md §10): the page-level
    // prefetcher http:get consults (serial dispatch and the main body),
    // and per-listener static fetch plans cached by declaration. Plans
    // are computed lazily under fetch_plans_mu — staged listeners probe
    // from pool workers.
    std::unique_ptr<net::HttpPrefetcher> prefetcher;
    std::unordered_map<const void*,
                       std::shared_ptr<const xquery::federation::
                                           StaticFetchPlan>>
        listener_fetch_plans;
    std::mutex fetch_plans_mu;

    // Mutation-versioned memo cache for pure listeners. Keyed on the
    // interned listener name (pointer identity), arity, and a hash of
    // the full event payload (including target node identities). An
    // entry is valid only while the page document's mutation version
    // matches — any insert/delete/rename/replace bumps the version and
    // strands the entry, which is discarded (counted as invalidation)
    // on next lookup.
    struct MemoKey {
      const xml::InternedName* name = nullptr;
      size_t arity = 0;
      uint64_t payload_hash = 0;
      bool operator==(const MemoKey& o) const {
        return name == o.name && arity == o.arity &&
               payload_hash == o.payload_hash;
      }
    };
    struct MemoKeyHash {
      size_t operator()(const MemoKey& k) const {
        size_t h = std::hash<const void*>()(k.name);
        h = h * 1315423911u + k.arity;
        h = h * 1315423911u + static_cast<size_t>(k.payload_hash);
        return h;
      }
    };
    struct MemoEntry {
      uint64_t doc_version = 0;
      std::string serialized;  // SequenceToString of the listener result
      // Name-granular validity (PERFORMANCE.md §6): the per-name
      // mutation counter of every name the listener reads, captured at
      // fill time on the loop thread. A globally-stale entry whose
      // counters all still match is provably exact — served as a hit
      // (a fine_grained_survival) instead of being discarded.
      bool fine_grained = false;
      std::vector<std::pair<const xml::InternedName*, uint64_t>>
          read_versions;
      // Delta-skip validity (PERFORMANCE.md §8): the page's delta_seq at
      // fill time. The entry is exact iff the listener was not dirtied
      // by any delta batch after this sequence number. 0 = the listener's
      // read set was not fully named (⊤ reads) — never delta-skipped.
      uint64_t delta_fill_seq = 0;
    };
    // Guarded by memo_mu: staged listeners probe concurrently from pool
    // workers (shared lock); inserts and invalidations run exclusively
    // on the loop thread's commit slot.
    std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> memo_cache;
    mutable std::shared_mutex memo_mu;

    // --- Delta-skip dispatch state (PERFORMANCE.md §8) ----------------
    // Batches of document mutations are drained from the Document's
    // dispatch delta window at every sync point (PropagateDelta); each
    // non-empty batch bumps delta_seq and marks every listener whose
    // read names intersect the batch's write names dirty at that
    // sequence. A memo entry filled at delta_fill_seq is provably exact
    // while max(all_dirty_seq, dirty_seq[listener]) <= delta_fill_seq
    // AND delta_synced_version still matches the document — the second
    // check catches mutations that happened after the last sync point
    // (the skip path then disables itself; the PR 6 per-name probe is
    // the always-sound fallback). Written on the loop thread; workers
    // read while the loop thread is barriered (same discipline as the
    // name-version map).
    uint64_t delta_seq = 1;
    uint64_t all_dirty_seq = 0;  // ⊤ batch: every listener dirty
    std::unordered_map<ListenerKey, uint64_t, ListenerKeyHash> dirty_seq;
    uint64_t delta_synced_version = 0;

    // One worker slot per concurrently staged listener: a private
    // DynamicContext + Evaluator (own arena, own stats, own scratch
    // documents) that evaluates against the shared read-only DOM
    // snapshot. Slots are pooled so steady-state dispatch allocates
    // nothing; the environment is re-copied from the page context per
    // staging (globals may rebind between events).
    struct WorkerSlot {
      std::unique_ptr<xquery::DynamicContext> ctx;
      std::unique_ptr<xquery::Evaluator> evaluator;
      // Slot-private prefetcher: staged listeners scatter and drain
      // without racing prefetches issued by concurrently staged peers.
      std::unique_ptr<net::HttpPrefetcher> prefetcher;
      std::vector<std::string> alerts;  // buffered browser:alert output
      std::vector<std::string> traces;  // buffered fn:trace output
    };
    // shared_ptr because the staged commit closure (a copyable
    // std::function) carries the slot from the worker to the loop thread.
    std::vector<std::shared_ptr<WorkerSlot>> free_slots;
    std::mutex slots_mu;
  };

  std::shared_ptr<PageContext> FindPageShared(const browser::Window* window);
  PageContext* FindPage(const browser::Window* window);
  PageContext* FindPageByContext(const xquery::DynamicContext& ctx);
  PageContext* FindPageByDocument(const xml::Document* doc);

  void RegisterBrowserFunctions(PageContext* page);
  // Installs an already-parsed (and analyzed) script module: optimizes
  // it (using the analyzer's `facts` when given), adds its declarations
  // to the static context, binds globals, runs the body.
  Status RunXQueryModule(PageContext* page,
                         std::unique_ptr<xquery::Module> module,
                         const xquery::analysis::AnalysisFacts* facts);
  Status RegisterXQueryInlineHandler(PageContext* page,
                                     const browser::InlineHandler& handler);

  // Calls an XQuery listener function with ($evt, $obj), applying the
  // PUL and syncing the BOM afterwards.
  void InvokeListener(PageContext* page, const xml::QName& function,
                      const browser::Event& event);
  // Builds a memo entry for a clean run of `function`, recording the
  // per-name mutation counters of its read set when fine-grained
  // invalidation is on and the analyzer fully named the reads. Runs on
  // the loop thread (the name-version map is loop-thread-only).
  PageContext::MemoEntry MakeMemoEntry(PageContext* page,
                                       const PageContext::ListenerKey& key,
                                       uint64_t doc_version,
                                       std::string serialized) const;
  Status ApplyAfterRun(PageContext* page);

  // Drains the page document's dispatch delta window and folds it into
  // the page's dirty-listener state (delta_seq/dirty_seq). Called at
  // every dispatch sync point on the loop thread. No-op when delta
  // propagation is off.
  void PropagateDelta(PageContext* page);
  // The skip-dispatch probe: true when `entry` provably cannot have
  // been dirtied by any delta batch since it was filled. Read-only —
  // safe from pool workers while the loop thread is barriered.
  static bool DeltaSkipValid(const PageContext* page,
                             const PageContext::ListenerKey& key,
                             const PageContext::MemoEntry& entry,
                             uint64_t doc_version);

  // The parallel path of InvokeListener: runs on a pool worker against
  // the DOM snapshot (the loop thread is barriered inside the dispatch
  // batch, so the snapshot cannot move) and returns the commit closure
  // the dispatcher runs on the loop thread in registration order. Any
  // worker-side surprise (error, non-empty PUL, interactive call) makes
  // the commit fall back to a serial InvokeListener re-run — semantics
  // are InvokeListener's by construction.
  std::function<void()> StageListener(std::shared_ptr<PageContext> page,
                                      const xml::QName& function,
                                      const browser::Event& event);
  // Worker-slot pool management (PageContext::free_slots). Acquire may
  // run on a pool worker (slot creation is self-contained); Release runs
  // wherever the commit closure is destroyed.
  std::shared_ptr<PageContext::WorkerSlot> AcquireWorkerSlot(
      PageContext* page);
  void ReleaseWorkerSlot(PageContext* page,
                         std::shared_ptr<PageContext::WorkerSlot> slot);

  // Scatter-gather prefetch (PERFORMANCE.md §10): resolves `function`'s
  // static fetch plan (cached per declaration) and, when the listener
  // body is provably fabric-read-only, issues every statically known GET
  // through `prefetcher` before the body runs — the fetches overlap in
  // the fabric's virtual-time window instead of serializing. Safe from
  // pool workers (plan cache is mutex-guarded, fabric/prefetcher are
  // thread-safe).
  void ScatterListenerPrefetch(PageContext* page,
                               net::HttpPrefetcher* prefetcher,
                               const xml::QName& function, size_t arity);

  // Builds the <event> element passed as $evt (paper §4.3.2) in `ctx`'s
  // scratch document — the page context serially, a worker slot's
  // context when staged.
  xml::Node* MaterializeEvent(xquery::DynamicContext* ctx,
                              const browser::Event& event);

  // Points the event loop, event system, and every page evaluator at
  // `pool` (null = serial) and records it as the active pool.
  void WireThreadPool(base::ThreadPool* pool);

  static std::string ListenerId(const xml::QName& fn) {
    return "xquery:" + fn.Clark();
  }

  browser::Browser* browser_;
  net::HttpFabric* fabric_;
  net::ServiceHost* services_;
  ForeignScriptEngine* foreign_engine_ = nullptr;
  std::unordered_map<const browser::Window*, std::shared_ptr<PageContext>>
      pages_;
  std::vector<std::string> alerts_;
  InitTiming last_init_timing_;
  Status last_script_error_;
  std::vector<xquery::analysis::Diagnostic> last_diagnostics_;
  size_t pure_listener_skips_ = 0;
  bool memo_enabled_ = true;
  bool fine_grained_invalidation_ = true;
  MemoStats memo_stats_;
  DeltaStats delta_stats_;
  std::string last_listener_result_;
  EventStats last_event_stats_;
  xquery::Evaluator::EvalOptions eval_options_;
  // Owned pool (EnableParallelDispatch mode). In shared mode
  // (UseSharedThreadPool) this stays null and active_pool_ points at
  // the caller's pool; all wiring goes through active_pool_.
  std::unique_ptr<base::ThreadPool> pool_;
  base::ThreadPool* active_pool_ = nullptr;
  size_t parallel_fallbacks_ = 0;
};

}  // namespace xqib::plugin

#endif  // XQIB_PLUGIN_PLUGIN_H_
