#include "plugin/plugin.h"

#include <chrono>

#include "base/strings.h"
#include "browser/css.h"
#include "net/rest.h"
#include "xquery/analysis/effects.h"
#include "xquery/optimizer.h"
#include "xquery/profiler.h"
#include "xquery/update.h"

namespace xqib::plugin {

using browser::Browser;
using browser::Event;
using browser::InlineHandler;
using browser::LooksLikeXQueryHandler;
using browser::RewriteInlineHandler;
using browser::Script;
using browser::ScriptLanguage;
using browser::Window;
using xdm::Item;
using xdm::Sequence;
using xquery::DynamicContext;
using xquery::Expr;

namespace {

double NowMicros() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

xml::QName BrowserQName(const char* local) {
  return xml::QName(std::string(xml::kBrowserNamespace), "browser", local);
}

Result<xml::Node*> SingleNodeArg(const Sequence& seq, const char* what) {
  if (seq.size() != 1 || !seq[0].is_node()) {
    return Status::TypeError(std::string(what) +
                             " expects exactly one node argument");
  }
  return seq[0].node();
}

// FNV-1a over the complete event payload a listener can observe through
// $evt/$obj: every field MaterializeEvent serializes plus the identities
// of the target and current-target nodes. Two events with equal hashes
// and an unchanged document version are indistinguishable to a
// memoizable listener.
// Inverts AnalysisFacts::FunctionKey ("{ns}local#arity" or
// "local#arity") back into the interned name + arity, so listener
// eligibility checks compare tokens instead of rebuilding strings.
const xml::InternedName* ParseFunctionKeyToken(const std::string& key,
                                               size_t* arity) {
  size_t hash = key.rfind('#');
  if (hash == std::string::npos) return nullptr;
  *arity = static_cast<size_t>(std::atoi(key.c_str() + hash + 1));
  std::string_view clark(key.data(), hash);
  std::string_view ns, local;
  if (!clark.empty() && clark.front() == '{') {
    size_t close = clark.find('}');
    if (close == std::string_view::npos) return nullptr;
    ns = clark.substr(1, close - 1);
    local = clark.substr(close + 1);
  } else {
    local = clark;
  }
  return xml::InternName(ns, local);
}

uint64_t HashEventPayload(const Event& event) {
  uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_str = [&](const std::string& s) {
    mix_bytes(s.data(), s.size());
    h ^= 0xff;  // length/field separator
    h *= 1099511628211ull;
  };
  mix_str(event.type);
  unsigned char flags = (event.alt_key ? 1 : 0) | (event.ctrl_key ? 2 : 0) |
                        (event.shift_key ? 4 : 0);
  mix_bytes(&flags, 1);
  int button = event.button;
  mix_bytes(&button, sizeof(button));
  mix_str(event.value);
  int phase = static_cast<int>(event.phase);
  mix_bytes(&phase, sizeof(phase));
  const xml::Node* target = event.target;
  mix_bytes(&target, sizeof(target));
  const xml::Node* current = event.current_target;
  mix_bytes(&current, sizeof(current));
  return h;
}

}  // namespace

XqibPlugin::XqibPlugin(Browser* browser, net::HttpFabric* fabric,
                       net::ServiceHost* services)
    : browser_(browser), fabric_(fabric), services_(services) {
  confirm_responder = [](const std::string&) { return true; };
  prompt_responder = [](const std::string&) { return std::string(); };
}

XqibPlugin::~XqibPlugin() = default;

void XqibPlugin::Install() {
  browser_->on_page_loaded = [this](Window* window) {
    Status st = InitializePage(window);
    if (!st.ok()) last_script_error_ = st;
  };
  // Dropping the shared PageContext here makes queued async tasks
  // (behind-completions, triggers) no-ops via their weak_ptr.
  browser_->on_window_closed = [this](Window* window) {
    pages_.erase(window);
  };
}

XqibPlugin::PageContext* XqibPlugin::FindPage(const Window* window) {
  auto it = pages_.find(window);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::shared_ptr<XqibPlugin::PageContext> XqibPlugin::FindPageShared(
    const Window* window) {
  auto it = pages_.find(window);
  return it == pages_.end() ? nullptr : it->second;
}

XqibPlugin::PageContext* XqibPlugin::FindPageByContext(
    const DynamicContext& ctx) {
  for (auto& [window, page] : pages_) {
    if (page->ctx.get() == &ctx) return page.get();
  }
  return nullptr;
}

XqibPlugin::PageContext* XqibPlugin::FindPageByDocument(
    const xml::Document* doc) {
  for (auto& [window, page] : pages_) {
    if (page->window->document() == doc) return page.get();
  }
  return nullptr;
}

Status XqibPlugin::InitializePage(Window* window) {
  last_init_timing_ = InitTiming();
  auto page = std::make_shared<PageContext>();
  page->window = window;
  page->sctx = std::make_unique<xquery::StaticContext>();
  page->ctx = std::make_unique<DynamicContext>();
  page->ctx->browser_profile = true;  // fn:doc blocked (§4.2.1)
  page->ctx->browser_binding = this;
  DynamicContext::Focus focus;
  focus.item = Item::Node(window->document()->root());
  focus.position = 1;
  focus.size = 1;
  focus.has_item = true;
  page->ctx->set_focus(focus);
  RegisterBrowserFunctions(page.get());
  if (fabric_ != nullptr) {
    page->prefetcher = std::make_unique<net::HttpPrefetcher>(fabric_);
    page->ctx->prefetcher = page->prefetcher.get();
    net::RegisterRestFunctions(page->ctx.get(), fabric_,
                               page->prefetcher.get());
  }
  pages_[window] = page;
  window->document()->set_fine_grained_versions(fine_grained_invalidation_);
  window->document()->set_delta_tracking(eval_options_.delta_propagation);

  // Step 2: extract scripts and inline handlers.
  double t0 = NowMicros();
  std::vector<Script> scripts = browser::ExtractScripts(window->document());
  std::vector<InlineHandler> handlers =
      browser::ExtractInlineHandlers(window->document());
  last_init_timing_.extract_us = NowMicros() - t0;

  // Step 3: foreign (JavaScript) scripts first, per §4.1.
  t0 = NowMicros();
  for (const Script& script : scripts) {
    if (script.language == ScriptLanguage::kXQuery ||
        script.language == ScriptLanguage::kXQueryP) {
      continue;
    }
    if (foreign_engine_ != nullptr &&
        foreign_engine_->Handles(script.language)) {
      XQ_RETURN_NOT_OK(foreign_engine_->RunScript(window, script));
    }
  }
  last_init_timing_.foreign_us = NowMicros() - t0;

  // Step 4a: parse ALL XQuery scripts before running any — the page's
  // scripts share one static context (a listener registered by script 1
  // may call a function declared by script 3), so analysis needs every
  // prolog up front.
  t0 = NowMicros();
  std::vector<std::unique_ptr<xquery::Module>> parsed;
  for (const Script& script : scripts) {
    if (script.language != ScriptLanguage::kXQuery &&
        script.language != ScriptLanguage::kXQueryP) {
      continue;
    }
    ++last_init_timing_.xquery_scripts;
    XQ_ASSIGN_OR_RETURN(std::unique_ptr<xquery::Module> module,
                        xquery::ParseModule(script.code));
    parsed.push_back(std::move(module));
  }

  // Step 4b: joint static analysis. A script with error-severity
  // diagnostics rejects the whole page at load time — a broken listener
  // should fail here, not at event-dispatch time in front of the user.
  last_diagnostics_.clear();
  Status analysis_failure;
  // Per-module facts are kept for the optimizer: its ordering/elision
  // and inferred rewrites key off analyzer cardinalities, and the
  // listener loop re-runs these ASTs on every event.
  std::vector<xquery::analysis::AnalysisFacts> module_facts(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    xquery::analysis::Analyzer analyzer;
    for (size_t j = 0; j < parsed.size(); ++j) {
      if (j != i) analyzer.AddContextModule(*parsed[j]);
    }
    xquery::analysis::AnalysisResult result = analyzer.Analyze(*parsed[i]);
    if (analysis_failure.ok() && result.has_errors()) {
      analysis_failure = result.ToStatus();
    }
    for (const std::string& key : result.facts.pure_functions) {
      page->pure_functions.insert(key);
    }
    for (const std::string& key : result.facts.memoizable_functions) {
      size_t arity = 0;
      const xml::InternedName* token = ParseFunctionKeyToken(key, &arity);
      if (token != nullptr) {
        page->memoizable_functions.insert(
            PageContext::ListenerKey{token, arity});
      }
    }
    for (const std::string& key : result.facts.parallel_safe_functions) {
      size_t arity = 0;
      const xml::InternedName* token = ParseFunctionKeyToken(key, &arity);
      if (token != nullptr) {
        page->parallel_safe_functions.insert(
            PageContext::ListenerKey{token, arity});
      }
    }
    for (const std::string& key :
         result.facts.stageable_updating_functions) {
      size_t arity = 0;
      const xml::InternedName* token = ParseFunctionKeyToken(key, &arity);
      if (token != nullptr) {
        page->stageable_updating_functions.insert(
            PageContext::ListenerKey{token, arity});
      }
    }
    // Effect summaries feed two consumers: the dispatcher's staged-run
    // interference check (every listener) and the memo cache's per-name
    // validity records (memoizable listeners with fully named reads).
    for (const auto& [key, eff] : result.facts.function_effects) {
      size_t arity = 0;
      const xml::InternedName* token = ParseFunctionKeyToken(key, &arity);
      if (token == nullptr) continue;
      PageContext::ListenerKey lkey{token, arity};
      auto fx = std::make_shared<browser::ListenerEffects>();
      fx->updating = eff.has_update;
      fx->reads_top = eff.reads_top();
      fx->writes_top = eff.writes.top;
      fx->scope_top = eff.write_scope.top;
      fx->child_reads = eff.child_reads.names;
      fx->value_reads = eff.value_reads.names;
      fx->writes = eff.writes.names;
      fx->write_scope = eff.write_scope.names;
      page->listener_effects[lkey] = std::move(fx);
      if (!eff.reads_top()) {
        page->listener_read_names[lkey] = eff.ReadNames();
      }
    }
    for (auto& d : result.diagnostics) {
      last_diagnostics_.push_back(std::move(d));
    }
    module_facts[i] = std::move(result.facts);
  }
  // Merge the per-module facts into one shared object for the plan
  // compiler: a page's scripts share a static context, so one plan set
  // (and one cardinality/purity view) covers them all.
  {
    auto merged = std::make_shared<xquery::analysis::AnalysisFacts>();
    for (const xquery::analysis::AnalysisFacts& mf : module_facts) {
      merged->cardinality.insert(mf.cardinality.begin(), mf.cardinality.end());
      merged->pure_functions.insert(mf.pure_functions.begin(),
                                    mf.pure_functions.end());
      merged->memoizable_functions.insert(mf.memoizable_functions.begin(),
                                          mf.memoizable_functions.end());
      merged->parallel_safe_functions.insert(
          mf.parallel_safe_functions.begin(), mf.parallel_safe_functions.end());
      merged->stageable_updating_functions.insert(
          mf.stageable_updating_functions.begin(),
          mf.stageable_updating_functions.end());
      merged->function_effects.insert(mf.function_effects.begin(),
                                      mf.function_effects.end());
    }
    page->facts = std::move(merged);
  }
  last_init_timing_.compile_us += NowMicros() - t0;
  XQ_RETURN_NOT_OK(analysis_failure);

  // Step 4c: install each script (prolog, globals, main body) in order.
  for (size_t i = 0; i < parsed.size(); ++i) {
    XQ_RETURN_NOT_OK(RunXQueryModule(page.get(), std::move(parsed[i]),
                                     &module_facts[i]));
  }

  // The Zorba-based plug-in puts on-load code in local:main() (§5.1).
  xml::QName main_fn("http://www.w3.org/2005/xquery-local-functions",
                     "local", "main");
  if (page->sctx->FindFunction(main_fn, 0) != nullptr) {
    XQ_ASSIGN_OR_RETURN(Sequence ignored,
                        page->evaluator->CallFunction(main_fn, {}, *page->ctx));
    (void)ignored;
    if (page->evaluator->exited()) page->evaluator->TakeExitValue();
    XQ_RETURN_NOT_OK(ApplyAfterRun(page.get()));
  }

  // Inline on* handlers route to whichever engine owns them.
  for (const InlineHandler& handler : handlers) {
    if (!page->modules.empty() && LooksLikeXQueryHandler(handler.code)) {
      XQ_RETURN_NOT_OK(RegisterXQueryInlineHandler(page.get(), handler));
    } else if (foreign_engine_ != nullptr) {
      XQ_RETURN_NOT_OK(
          foreign_engine_->RegisterInlineHandler(window, handler));
    }
  }
  last_init_timing_.listeners_registered = browser_->events().listener_count();
  // Settle any speculative GET the page load scattered but never
  // consumed (a FLWOR `where` can filter prefetched items out) — stale
  // responses must not leak into the first event dispatch.
  if (page->prefetcher != nullptr) page->prefetcher->Drain();
  return Status();
}

Status XqibPlugin::RunXQueryModule(PageContext* page,
                                   std::unique_ptr<xquery::Module> module,
                                   const xquery::analysis::AnalysisFacts* facts) {
  // Optimize before installing: page scripts are compiled once but their
  // listener bodies run on every event, so the rewrite passes (path
  // collapsing, ordering elision, constant folding) pay off at dispatch
  // time.
  xquery::OptimizeModule(module.get(), xquery::OptimizerOptions(), facts);
  page->sctx->AddModule(*module);
  // (Re)build the evaluator: the static context gained declarations.
  page->evaluator = std::make_unique<xquery::Evaluator>(*page->sctx);
  page->evaluator->set_options(eval_options_);
  page->evaluator->set_thread_pool(active_pool_);
  page->evaluator->set_analysis_facts(page->facts);
  if (services_ != nullptr) {
    services_->RegisterStubsForImports(*module, page->ctx.get());
  }

  // Bind this module's globals.
  double t0 = NowMicros();
  for (const xquery::VarDecl& decl : module->variables) {
    if (decl.init == nullptr) {
      if (!decl.external) page->ctx->env().Bind(decl.name, Sequence{});
      continue;
    }
    XQ_ASSIGN_OR_RETURN(Sequence value,
                        page->evaluator->Eval(*decl.init, *page->ctx));
    page->ctx->env().Bind(decl.name, std::move(value));
  }
  last_init_timing_.bind_globals_us += NowMicros() - t0;

  // Run the main body (registers listeners, builds the initial page).
  t0 = NowMicros();
  if (module->body != nullptr) {
    const Expr& body = *module->body;
    page->modules.push_back(std::move(module));
    XQ_ASSIGN_OR_RETURN(Sequence ignored,
                        page->evaluator->Eval(body, *page->ctx));
    (void)ignored;
    if (page->evaluator->exited()) page->evaluator->TakeExitValue();
    XQ_RETURN_NOT_OK(ApplyAfterRun(page));
  } else {
    page->modules.push_back(std::move(module));
  }
  last_init_timing_.run_main_us += NowMicros() - t0;
  return Status();
}

Status XqibPlugin::RegisterXQueryInlineHandler(PageContext* page,
                                               const InlineHandler& handler) {
  std::string rewritten = RewriteInlineHandler(handler.code);
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<xquery::Module> module,
                      xquery::ParseModule(rewritten));
  // Inline handlers get the same load-time checking as script blocks:
  // an onclick calling an undeclared function is rejected here.
  xquery::analysis::Analyzer analyzer;
  for (const auto& m : page->modules) analyzer.AddContextModule(*m);
  xquery::analysis::AnalysisResult analyzed = analyzer.Analyze(*module);
  for (auto& d : analyzed.diagnostics) {
    last_diagnostics_.push_back(std::move(d));
  }
  XQ_RETURN_NOT_OK(analyzed.ToStatus());
  xquery::OptimizeModule(module.get(), xquery::OptimizerOptions(),
                         &analyzed.facts);
  const Expr* body = module->body.get();
  if (body == nullptr) return Status();
  page->handler_modules.push_back(std::move(module));

  std::weak_ptr<PageContext> weak = FindPageShared(page->window);
  std::string type = handler.event;
  browser::Listener listener;
  listener.id = "xquery-inline:" + type + ":" + handler.code;
  listener.callback = [this, weak, body](Event& event) {
    std::shared_ptr<PageContext> page = weak.lock();
    if (page == nullptr) return;
    page->ctx->env().PushScope();
    // The JS-flavoured identifiers are visible as browser: variables.
    std::string value = event.value;
    if (value.empty() && event.target != nullptr) {
      value = event.target->GetAttributeValue("value");
    }
    page->ctx->env().Bind(BrowserQName("value"),
                          Sequence{Item::String(value)});
    page->ctx->env().Bind(
        BrowserQName("event"),
        Sequence{Item::Node(MaterializeEvent(page->ctx.get(), event))});
    page->ctx->env().Bind(
        BrowserQName("target"),
        event.target != nullptr ? Sequence{Item::Node(event.target)}
                                : Sequence{});
    Result<Sequence> result = page->evaluator->Eval(*body, *page->ctx);
    if (page->evaluator->exited()) page->evaluator->TakeExitValue();
    page->ctx->env().PopScope();
    if (!result.ok()) {
      last_script_error_ = result.status();
      page->evaluator->ResetDispatchArena(*page->ctx);
      return;
    }
    Status st = ApplyAfterRun(page.get());
    if (!st.ok()) last_script_error_ = st;
    page->evaluator->ResetDispatchArena(*page->ctx);
  };
  browser_->events().AddListener(handler.element, type, std::move(listener));
  return Status();
}

Status XqibPlugin::ApplyAfterRun(PageContext* page) {
  // With delta propagation on, capture the structured write set of the
  // apply pass. The document's own dispatch/index windows accumulate the
  // same information for their consumers; the capture feeds the emitted
  // counter and keeps the update layer's API honest in tests.
  const bool track =
      eval_options_.delta_propagation && !page->ctx->pul().empty();
  xml::DomDelta delta;
  XQ_RETURN_NOT_OK(page->ctx->pul().ApplyAll(track ? &delta : nullptr));
  if (track && !delta.Empty()) ++delta_stats_.emitted;
  for (const Browser::BomTree& tree : page->bom_trees) {
    XQ_RETURN_NOT_OK(browser_->SyncFromBomTree(tree, page->window->url()));
  }
  return Status();
}

void XqibPlugin::PropagateDelta(PageContext* page) {
  xml::Document* doc = page->window->document();
  if (!eval_options_.delta_propagation || !doc->delta_tracking()) return;
  // Every recorded op bumps the document mutation version, so an
  // unchanged version since the last sync means the dispatch window is
  // provably empty — skip the lock-and-drain. This is the common case:
  // only the first listener after an updating one finds a batch.
  if (page->delta_synced_version == doc->mutation_version()) return;
  xml::DomDelta delta;
  doc->TakeDispatchDelta(&delta);
  if (!delta.Empty()) {
    const uint64_t seq = ++page->delta_seq;
    if (delta.whole_tree) {
      // Overflowed or untracked batch: every listener is dirty and the
      // per-listener map carries no extra information.
      page->all_dirty_seq = seq;
      page->dirty_seq.clear();
    } else {
      for (const auto& [key, reads] : page->listener_read_names) {
        if (xquery::analysis::ReadSetIntersectsWrites(reads, delta.touched)) {
          page->dirty_seq[key] = seq;
        }
      }
    }
  }
  // Even an empty batch re-anchors: the document version now provably
  // matches the drained window, so skip probes stay armed.
  page->delta_synced_version = doc->mutation_version();
}

bool XqibPlugin::DeltaSkipValid(const PageContext* page,
                                const PageContext::ListenerKey& key,
                                const PageContext::MemoEntry& entry,
                                uint64_t doc_version) {
  if (entry.delta_fill_seq == 0) return false;  // ⊤ reads: never skip
  // Mutations since the last PropagateDelta have not been classified;
  // the dirty map says nothing about them, so the probe disarms.
  if (page->delta_synced_version != doc_version) return false;
  if (page->all_dirty_seq > entry.delta_fill_seq) return false;
  auto it = page->dirty_seq.find(key);
  return it == page->dirty_seq.end() || it->second <= entry.delta_fill_seq;
}

xml::Node* XqibPlugin::MaterializeEvent(DynamicContext* ctx,
                                        const Event& event) {
  xml::Document* doc = ctx->scratch_document();
  xml::Node* elem = doc->CreateElement(xml::QName("event"));
  auto add = [&](const char* name, const std::string& value) {
    xml::Node* child = doc->CreateElement(xml::QName(name));
    if (!value.empty()) child->AppendChild(doc->CreateText(value));
    elem->AppendChild(child);
  };
  add("type", event.type);
  add("altKey", event.alt_key ? "true" : "false");
  add("ctrlKey", event.ctrl_key ? "true" : "false");
  add("shiftKey", event.shift_key ? "true" : "false");
  add("button", std::to_string(event.button));
  add("value", event.value);
  add("phase", event.phase == Event::Phase::kCapture  ? "capture"
               : event.phase == Event::Phase::kTarget ? "target"
                                                      : "bubble");
  return elem;
}

void XqibPlugin::ScatterListenerPrefetch(PageContext* page,
                                         net::HttpPrefetcher* prefetcher,
                                         const xml::QName& function,
                                         size_t arity) {
  if (!eval_options_.async_federation) return;
  const xquery::FunctionDecl* decl =
      page->sctx->FindFunction(function, arity);
  if (decl == nullptr) return;
  std::shared_ptr<const xquery::federation::StaticFetchPlan> plan;
  {
    std::lock_guard<std::mutex> lk(page->fetch_plans_mu);
    auto it = page->listener_fetch_plans.find(decl);
    if (it != page->listener_fetch_plans.end()) plan = it->second;
  }
  if (plan == nullptr) {
    // Analyze outside the lock (the reachability walk can be deep); a
    // racing loser finds an identical plan already inserted.
    auto computed =
        std::make_shared<const xquery::federation::StaticFetchPlan>(
            xquery::federation::CollectListenerFetchUrls(*decl, *page->sctx));
    std::lock_guard<std::mutex> lk(page->fetch_plans_mu);
    plan = page->listener_fetch_plans.emplace(decl, std::move(computed))
               .first->second;
  }
  // `safe` means nothing reachable from the body writes the fabric (or
  // runs code we cannot see), so fetching early observes the same bytes
  // as fetching in evaluation order.
  if (!plan->safe) return;
  for (const std::string& url : plan->urls) prefetcher->Prefetch(url);
}

void XqibPlugin::InvokeListener(PageContext* page, const xml::QName& function,
                                const Event& event) {
  // Fold any document mutations since the last sync point into the
  // dirty-listener state before probing: the delta-skip check below is
  // only sound against a synced window.
  PropagateDelta(page);
  // Listener signature per §4.3.1: ($evt, $obj). Resolve the arity
  // BEFORE building any arguments so a memo hit can skip event
  // materialization entirely.
  size_t arity = 0;
  if (page->sctx->FindFunction(function, 2) != nullptr) {
    arity = 2;
  } else if (page->sctx->FindFunction(function, 1) != nullptr) {
    arity = 1;
  } else if (page->sctx->FindFunction(function, 0) == nullptr) {
    last_script_error_ = Status::Error(
        "BRWS0004", "no listener function " + function.Lexical() +
                        " with arity 0, 1 or 2");
    return;
  }

  // Memo cache: a listener the analyzer proved memoizable (DOM-pure AND
  // free of observable host calls) can only read the event payload and
  // the document snapshot, so (payload hash, mutation version) fully
  // determines its result — replay the recorded serialization instead of
  // re-evaluating. A stale version means the DOM mutated since the entry
  // was recorded: discard it and run fresh.
  const bool memoizable =
      memo_enabled_ && page->memoizable_functions.count(
                           PageContext::ListenerKey{function.token(),
                                                    arity}) > 0;
  const uint64_t doc_version = page->window->document()->mutation_version();
  const PageContext::MemoKey memo_key{function.token(), arity,
                                      HashEventPayload(event)};
  uint64_t memo_invalidated = 0;
  uint64_t memo_invalidated_name = 0;
  if (memoizable) {
    // Exclusive lock: the serial path both reads and erases. Staged
    // listeners probe under a shared lock from pool workers, but only
    // while the loop thread is parked inside the dispatch batch — the
    // lock mainly keeps the protocol uniform (and TSan quiet).
    std::unique_lock<std::shared_mutex> lk(page->memo_mu);
    auto it = page->memo_cache.find(memo_key);
    if (it != page->memo_cache.end()) {
      bool valid = it->second.doc_version == doc_version;
      uint64_t fine_survival = 0;
      uint64_t delta_skip = 0;
      // The delta probe rides on the same effect analysis as the
      // per-name counters, so the fine-grained ablation switch (which
      // restores pre-effect-analysis behavior exactly) disables it too.
      if (!valid && eval_options_.delta_propagation &&
          fine_grained_invalidation_ &&
          DeltaSkipValid(page,
                         PageContext::ListenerKey{function.token(), arity},
                         it->second, doc_version)) {
        // Every mutation batch since fill time missed the listener's read
        // set (PropagateDelta above synced the window), so the recorded
        // result is exact without probing per-name counters. Re-anchor so
        // the next probe takes the one-compare fast path.
        valid = true;
        delta_skip = 1;
        ++delta_stats_.listeners_skipped;
        it->second.doc_version = doc_version;
        it->second.delta_fill_seq = page->delta_seq;
      }
      if (!valid && fine_grained_invalidation_ && it->second.fine_grained) {
        // Globally stale, but if none of the names the listener reads
        // were touched since fill time, the recorded result is still
        // exact (PERFORMANCE.md §6).
        const xml::Document* doc = page->window->document();
        valid = true;
        for (const auto& [token, version] : it->second.read_versions) {
          if (doc->name_version(token) != version) {
            valid = false;
            break;
          }
        }
        if (valid) {
          fine_survival = 1;
          ++memo_stats_.fine_grained_survivals;
          // Re-anchor to the current global version so the next probe
          // takes the one-compare fast path again.
          it->second.doc_version = doc_version;
        }
      }
      if (valid) {
        ++memo_stats_.hits;
        last_listener_result_ = it->second.serialized;
        last_event_stats_ = EventStats{};
        last_event_stats_.memo_hits = 1;
        last_event_stats_.memo_fine_survivals = fine_survival;
        last_event_stats_.delta_listeners_skipped = delta_skip;
        if (delta_skip != 0) {
          ++page->evaluator->mutable_delta_stats().listeners_skipped;
        }
        // Memoizable implies pure: nothing to apply, nothing to render.
        ++pure_listener_skips_;
        return;
      }
      memo_invalidated_name =
          fine_grained_invalidation_ && it->second.fine_grained ? 1 : 0;
      page->memo_cache.erase(it);
      ++memo_stats_.invalidations;
      if (memo_invalidated_name != 0) {
        ++memo_stats_.invalidations_name;
      } else {
        ++memo_stats_.invalidations_global;
      }
      memo_invalidated = 1;
    } else {
      ++memo_stats_.misses;
    }
  }

  std::vector<Sequence> args;
  if (arity >= 1) {
    args.push_back(
        Sequence{Item::Node(MaterializeEvent(page->ctx.get(), event))});
  }
  if (arity == 2) {
    // $obj is the node the listener is attached to (DOM `this`, i.e. the
    // current target while capturing/bubbling), not the original target.
    xml::Node* obj = event.current_target != nullptr ? event.current_target
                                                     : event.target;
    args.push_back(obj != nullptr ? Sequence{Item::Node(obj)} : Sequence{});
  }

  // The page evaluator's counters accumulate across its whole lifetime,
  // so per-event numbers MUST be before/after deltas — overwriting (not
  // adding to) last_event_stats_ each dispatch keeps events independent.
  // Intern-pool hits come straight from the process-wide pool because
  // EvalStats only snapshots them at arena resets.
  // Fabric and prefetcher counters are snapshotted BEFORE the scatter so
  // the prefetch issuance is charged to this dispatch. (The fabric is
  // shared across pages, so concurrent sessions' traffic can land in
  // whichever dispatch window is open — totals remain accurate, like
  // intern_hits.)
  net::HttpFabric::Stats http_before;
  net::HttpPrefetcher::Stats prefetch_before;
  if (fabric_ != nullptr) http_before = fabric_->stats();
  if (page->prefetcher != nullptr) prefetch_before = page->prefetcher->stats();
  // Scatter-gather federation (PERFORMANCE.md §10): issue every
  // statically known GET in the listener body up front, so the fabric's
  // virtual-time window overlaps their latencies instead of paying the
  // round trips one after another.
  if (page->prefetcher != nullptr) {
    ScatterListenerPrefetch(page, page->prefetcher.get(), function, arity);
  }
  xquery::Evaluator::EvalStats before = page->evaluator->stats();
  xml::InternPoolStats intern_before = xml::GetInternStats();
  // Delta counters live on the document (splices) and the plugin
  // (emissions), not the evaluator: diff them the same way.
  const xml::Document* doc = page->window->document();
  const uint64_t delta_emitted_before = delta_stats_.emitted;
  const uint64_t splices_before = doc->index_splices();
  const uint64_t avoided_before = doc->bucket_rebuilds_avoided();
  Result<Sequence> result =
      page->evaluator->CallFunction(function, std::move(args), *page->ctx);
  // Await any prefetch the body never consumed: a leftover future must
  // not survive into a later dispatch (the resource may change), and its
  // latency still settles into the fabric's virtual clock as overlapped
  // (speculation wasted bandwidth, not wall-clock).
  if (page->prefetcher != nullptr) page->prefetcher->Drain();
  const xquery::Evaluator::EvalStats& after = page->evaluator->stats();
  last_event_stats_ = EventStats{};
  last_event_stats_.sorts_elided = after.sorts_elided - before.sorts_elided;
  last_event_stats_.sorts_performed =
      after.sorts_performed - before.sorts_performed;
  last_event_stats_.name_index_hits =
      after.name_index_hits - before.name_index_hits;
  last_event_stats_.early_exits = after.early_exits - before.early_exits;
  last_event_stats_.count_index_hits =
      after.count_index_hits - before.count_index_hits;
  last_event_stats_.items_pulled =
      after.streams.items_pulled - before.streams.items_pulled;
  last_event_stats_.items_materialized =
      after.streams.items_materialized - before.streams.items_materialized;
  last_event_stats_.buffers_avoided =
      after.streams.buffers_avoided - before.streams.buffers_avoided;
  last_event_stats_.arena_bytes_used =
      after.arena_bytes_used - before.arena_bytes_used;
  last_event_stats_.intern_hits =
      xml::GetInternStats().hits - intern_before.hits;
  last_event_stats_.memo_misses = memoizable && memo_invalidated == 0 ? 1 : 0;
  last_event_stats_.memo_invalidations = memo_invalidated;
  last_event_stats_.memo_invalidations_name = memo_invalidated_name;
  last_event_stats_.memo_invalidations_global =
      memo_invalidated - memo_invalidated_name;
  last_event_stats_.plan_hits = after.plan_hits - before.plan_hits;
  last_event_stats_.plan_misses = after.plan_misses - before.plan_misses;
  last_event_stats_.plan_compiles = after.plan_compiles - before.plan_compiles;
  last_event_stats_.plan_invalidations =
      after.plan_invalidations - before.plan_invalidations;
  last_event_stats_.delta_index_splices = doc->index_splices() - splices_before;
  last_event_stats_.delta_bucket_rebuilds_avoided =
      doc->bucket_rebuilds_avoided() - avoided_before;
  if (fabric_ != nullptr) {
    const net::HttpFabric::Stats& hf = fabric_->stats();
    last_event_stats_.http_requests = hf.requests - http_before.requests;
    last_event_stats_.http_cache_hits =
        hf.cache_hits - http_before.cache_hits;
    last_event_stats_.http_cache_misses =
        hf.cache_misses - http_before.cache_misses;
    last_event_stats_.http_makespan_ms =
        hf.makespan_ms - http_before.makespan_ms;
    last_event_stats_.http_overlapped_ms =
        hf.overlapped_ms - http_before.overlapped_ms;
  }
  if (page->prefetcher != nullptr) {
    const net::HttpPrefetcher::Stats& pf = page->prefetcher->stats();
    last_event_stats_.http_prefetch_issued =
        pf.issued - prefetch_before.issued;
    last_event_stats_.http_prefetch_hits = pf.hits - prefetch_before.hits;
  }
  if (page->evaluator->exited()) page->evaluator->TakeExitValue();
  if (!result.ok()) {
    last_script_error_ = result.status();
    page->evaluator->ResetDispatchArena(*page->ctx);
    ++last_event_stats_.arena_resets;
    return;
  }
  last_listener_result_ = xdm::SequenceToString(*result);
  // A listener the analyzer proved DOM-pure cannot have produced update
  // primitives or touched BOM trees: skip the apply/re-render pass. The
  // PUL-empty check stays as a belt-and-braces runtime guard.
  const bool pure_skip =
      page->pure_functions.count(xquery::analysis::AnalysisFacts::FunctionKey(
          function.Clark(), arity)) > 0 &&
      page->ctx->pul().empty();
  if (pure_skip) {
    ++pure_listener_skips_;
    // Record the result only for genuinely memoizable listeners and only
    // on a clean run (no error, empty PUL) — errors are never cached.
    if (memoizable) {
      PageContext::MemoEntry entry =
          MakeMemoEntry(page, PageContext::ListenerKey{function.token(), arity},
                        doc_version, last_listener_result_);
      std::unique_lock<std::shared_mutex> lk(page->memo_mu);
      page->memo_cache[memo_key] = std::move(entry);
    }
  } else {
    Status st = ApplyAfterRun(page);
    if (!st.ok()) last_script_error_ = st;
  }
  last_event_stats_.delta_emitted = delta_stats_.emitted - delta_emitted_before;
  // Fold the delta counters into the evaluator's cumulative EvalStats and
  // the profiler fast-path block so `:stats` and profile reports carry
  // them alongside the PR 5/6/7 counters.
  {
    xquery::Evaluator::EvalStats::DeltaStats& ds =
        page->evaluator->mutable_delta_stats();
    ds.emitted += last_event_stats_.delta_emitted;
    ds.index_splices += last_event_stats_.delta_index_splices;
    ds.bucket_rebuilds_avoided +=
        last_event_stats_.delta_bucket_rebuilds_avoided;
    xquery::Evaluator::EvalStats::HttpStats& hs =
        page->evaluator->mutable_http_stats();
    hs.cache_hits += last_event_stats_.http_cache_hits;
    hs.cache_misses += last_event_stats_.http_cache_misses;
    hs.prefetch_issued += last_event_stats_.http_prefetch_issued;
    hs.prefetch_hits += last_event_stats_.http_prefetch_hits;
    if (page->ctx->profiler != nullptr) {
      xquery::Profiler::FastPathCounters& fp =
          page->ctx->profiler->fast_path();
      fp.delta_emitted += last_event_stats_.delta_emitted;
      fp.delta_index_splices += last_event_stats_.delta_index_splices;
      fp.delta_bucket_rebuilds_avoided +=
          last_event_stats_.delta_bucket_rebuilds_avoided;
      fp.http_cache_hits += last_event_stats_.http_cache_hits;
      fp.http_cache_misses += last_event_stats_.http_cache_misses;
      fp.http_prefetch_issued += last_event_stats_.http_prefetch_issued;
      fp.http_prefetch_hits += last_event_stats_.http_prefetch_hits;
    }
  }
  // The dispatch is over and its result is materialized: reclaim every
  // stream operator this event allocated in one wholesale reset.
  page->evaluator->ResetDispatchArena(*page->ctx);
  ++last_event_stats_.arena_resets;
}

XqibPlugin::PageContext::MemoEntry XqibPlugin::MakeMemoEntry(
    PageContext* page, const PageContext::ListenerKey& key,
    uint64_t doc_version, std::string serialized) const {
  PageContext::MemoEntry entry;
  entry.doc_version = doc_version;
  entry.serialized = std::move(serialized);
  const xml::Document* doc = page->window->document();
  if (fine_grained_invalidation_ && doc->fine_grained_versions()) {
    auto names = page->listener_read_names.find(key);
    if (names != page->listener_read_names.end()) {
      entry.fine_grained = true;
      entry.read_versions.reserve(names->second.size());
      for (const xml::InternedName* token : names->second) {
        entry.read_versions.emplace_back(token, doc->name_version(token));
      }
    }
  }
  // Stamp the delta sequence at fill time: the entry survives delta-skip
  // probes as long as no later batch dirtied this listener. ⊤-read
  // listeners record no name list and keep the 0 stamp (never skipped).
  if (eval_options_.delta_propagation &&
      page->listener_read_names.count(key) > 0) {
    entry.delta_fill_seq = page->delta_seq;
  }
  return entry;
}

std::function<void()> XqibPlugin::StageListener(
    std::shared_ptr<PageContext> page, const xml::QName& function,
    const Event& event) {
  PageContext* raw = page.get();

  // Arity resolution mirrors InvokeListener. The static context is
  // immutable for the whole dispatch (the loop thread is parked inside
  // the staged run), so concurrent lookups are safe.
  size_t arity = 0;
  bool resolved = true;
  if (raw->sctx->FindFunction(function, 2) != nullptr) {
    arity = 2;
  } else if (raw->sctx->FindFunction(function, 1) != nullptr) {
    arity = 1;
  } else if (raw->sctx->FindFunction(function, 0) == nullptr) {
    resolved = false;
  }

  // The attach-time eligibility check used the arity resolution of that
  // moment; re-verify against today's — a later script may have added an
  // overload that resolves first and was NOT proved parallel-safe.
  // Updating listeners take the staged path only with fully analyzed
  // effects AND fine-grained invalidation on (the ablation switch also
  // restores serial updating dispatch).
  const PageContext::ListenerKey lkey{function.token(), arity};
  const bool pure_safe =
      resolved && raw->parallel_safe_functions.count(lkey) > 0;
  const bool updating_safe = resolved && !pure_safe &&
                             fine_grained_invalidation_ &&
                             raw->stageable_updating_functions.count(lkey) > 0;
  if (!pure_safe && !updating_safe) {
    return [this, page, function, event]() {
      ++parallel_fallbacks_;
      InvokeListener(page.get(), function, event);
    };
  }

  // Memo probe, shared lock: concurrent staged listeners may probe in
  // parallel; erasure and insertion happen exclusively at commit time.
  const bool memoizable =
      memo_enabled_ && raw->memoizable_functions.count(
                           PageContext::ListenerKey{function.token(),
                                                    arity}) > 0;
  const uint64_t doc_version = raw->window->document()->mutation_version();
  const PageContext::MemoKey memo_key{function.token(), arity,
                                      HashEventPayload(event)};
  bool memo_stale = false;
  bool memo_stale_name = false;
  if (memoizable) {
    std::shared_lock<std::shared_mutex> lk(raw->memo_mu);
    auto it = raw->memo_cache.find(memo_key);
    if (it != raw->memo_cache.end()) {
      bool valid = it->second.doc_version == doc_version;
      uint64_t fine_survival = 0;
      uint64_t delta_skip = 0;
      if (!valid && eval_options_.delta_propagation &&
          fine_grained_invalidation_ &&
          DeltaSkipValid(raw, lkey, it->second, doc_version)) {
        // Read-only delta-skip probe: the dirty-seq state only moves on
        // the loop thread, which is parked inside the dispatch batch.
        // (No re-anchor under the shared lock; the serial path refreshes.)
        valid = true;
        delta_skip = 1;
        ++delta_stats_.listeners_skipped;
      }
      if (!valid && fine_grained_invalidation_ && it->second.fine_grained) {
        // Name-granular rescue under the shared lock: the name-version
        // map only moves on the loop thread, which is parked inside the
        // dispatch batch. (No doc_version re-anchor here — that would
        // write under a shared lock; the serial path refreshes.)
        const xml::Document* doc = raw->window->document();
        valid = true;
        for (const auto& [token, version] : it->second.read_versions) {
          if (doc->name_version(token) != version) {
            valid = false;
            break;
          }
        }
        if (valid) {
          fine_survival = 1;
          ++memo_stats_.fine_grained_survivals;
        }
      }
      if (valid) {
        ++memo_stats_.hits;  // relaxed counter: safe off-thread
        std::string serialized = it->second.serialized;
        return [this, page, serialized = std::move(serialized), fine_survival,
                delta_skip]() {
          last_listener_result_ = serialized;
          last_event_stats_ = EventStats{};
          last_event_stats_.memo_hits = 1;
          last_event_stats_.memo_fine_survivals = fine_survival;
          last_event_stats_.delta_listeners_skipped = delta_skip;
          if (delta_skip != 0) {
            ++page->evaluator->mutable_delta_stats().listeners_skipped;
          }
          ++pure_listener_skips_;
        };
      }
      memo_stale = true;  // discard exclusively at commit
      memo_stale_name =
          fine_grained_invalidation_ && it->second.fine_grained;
    }
  }

  std::shared_ptr<PageContext::WorkerSlot> slot = AcquireWorkerSlot(raw);
  // Fresh environment/focus per staging: globals may rebind between
  // events. The page context is read-only for the whole staged run, so
  // the copy races with nothing.
  slot->ctx->env() = raw->ctx->env();
  slot->ctx->set_focus(raw->ctx->focus());
  slot->alerts.clear();
  slot->traces.clear();
  slot->ctx->pul().Clear();

  std::vector<Sequence> args;
  if (arity >= 1) {
    args.push_back(
        Sequence{Item::Node(MaterializeEvent(slot->ctx.get(), event))});
  }
  if (arity == 2) {
    xml::Node* obj = event.current_target != nullptr ? event.current_target
                                                     : event.target;
    args.push_back(obj != nullptr ? Sequence{Item::Node(obj)} : Sequence{});
  }

  // Scatter-gather on the worker: the slot prefetcher issues the
  // listener's statically known GETs before the body runs, so staged
  // peers' round trips overlap in the fabric's virtual-time window.
  net::HttpPrefetcher::Stats prefetch_before;
  if (slot->prefetcher != nullptr) {
    prefetch_before = slot->prefetcher->stats();
    ScatterListenerPrefetch(raw, slot->prefetcher.get(), function, arity);
  }
  xquery::Evaluator::EvalStats before = slot->evaluator->stats();
  Result<Sequence> result =
      slot->evaluator->CallFunction(function, std::move(args), *slot->ctx);
  if (slot->prefetcher != nullptr) slot->prefetcher->Drain();
  if (slot->evaluator->exited()) slot->evaluator->TakeExitValue();
  const xquery::Evaluator::EvalStats& after = slot->evaluator->stats();

  // Per-listener delta of the slot evaluator's counters — merged into
  // the page evaluator at commit so cumulative numbers match serial
  // execution.
  xquery::Evaluator::EvalStats delta;
  delta.sorts_elided = after.sorts_elided - before.sorts_elided;
  delta.sorts_performed = after.sorts_performed - before.sorts_performed;
  delta.name_index_hits = after.name_index_hits - before.name_index_hits;
  delta.early_exits = after.early_exits - before.early_exits;
  delta.count_index_hits = after.count_index_hits - before.count_index_hits;
  delta.streams.items_pulled =
      after.streams.items_pulled - before.streams.items_pulled;
  delta.streams.items_materialized =
      after.streams.items_materialized - before.streams.items_materialized;
  delta.streams.buffers_avoided =
      after.streams.buffers_avoided - before.streams.buffers_avoided;
  delta.arena_bytes_used = after.arena_bytes_used - before.arena_bytes_used;
  delta.plan_hits = after.plan_hits - before.plan_hits;
  delta.plan_misses = after.plan_misses - before.plan_misses;
  delta.plan_compiles = after.plan_compiles - before.plan_compiles;
  delta.plan_invalidations =
      after.plan_invalidations - before.plan_invalidations;
  delta.plan_bytes = after.plan_bytes - before.plan_bytes;
  // Slot-exact federation counters. Fabric-shared numbers (requests,
  // cache traffic, makespan) stay 0 per staged dispatch, like
  // intern_hits: concurrently staged peers share the fabric, so a
  // per-slot window cannot be exact — the fabric's own totals are.
  delta.http.scatter_batches =
      after.http.scatter_batches - before.http.scatter_batches;
  if (slot->prefetcher != nullptr) {
    const net::HttpPrefetcher::Stats& pf = slot->prefetcher->stats();
    delta.http.prefetch_issued = pf.issued - prefetch_before.issued;
    delta.http.prefetch_hits = pf.hits - prefetch_before.hits;
  }

  // A pure listener must come back with an empty PUL (anything else
  // means the analyzer's proof was wrong — fall back to serial); an
  // updating listener's PUL is the point, and transfers at commit.
  const bool clean =
      result.ok() && (updating_safe || slot->ctx->pul().empty());
  std::string serialized;
  if (clean) serialized = xdm::SequenceToString(*result);
  std::shared_ptr<std::vector<std::unique_ptr<xml::Document>>> docs;
  std::shared_ptr<std::vector<xquery::PendingUpdateList::Primitive>> pul;
  if (updating_safe && clean) {
    // The PUL's content nodes live in the slot's scratch documents:
    // both transfer to the page context at commit, exactly as behind
    // completions hand over their results.
    docs = std::make_shared<std::vector<std::unique_ptr<xml::Document>>>(
        slot->ctx->TakeScratchDocuments());
    pul = std::make_shared<std::vector<xquery::PendingUpdateList::Primitive>>(
        slot->ctx->pul().Take());
  }
  // The serialized string is self-contained: reclaim the slot's stream
  // transients off-thread, keeping the commit cheap.
  slot->evaluator->ResetDispatchArena(*slot->ctx);
  slot->ctx->pul().Clear();

  return [this, page, function, event, slot, clean, updating_safe, docs, pul,
          serialized = std::move(serialized), delta, memoizable, memo_stale,
          memo_stale_name, memo_key, doc_version]() {
    if (!clean) {
      // Worker-side surprise (error, or a PUL that slipped past the
      // analyzer's proof): discard the staged run and replay serially —
      // semantics are InvokeListener's by construction.
      ReleaseWorkerSlot(page.get(), slot);
      ++parallel_fallbacks_;
      InvokeListener(page.get(), function, event);
      return;
    }
    page->evaluator->AddStats(delta);
    last_event_stats_ = EventStats{};
    last_event_stats_.sorts_elided = delta.sorts_elided;
    last_event_stats_.sorts_performed = delta.sorts_performed;
    last_event_stats_.name_index_hits = delta.name_index_hits;
    last_event_stats_.early_exits = delta.early_exits;
    last_event_stats_.count_index_hits = delta.count_index_hits;
    last_event_stats_.items_pulled = delta.streams.items_pulled;
    last_event_stats_.items_materialized = delta.streams.items_materialized;
    last_event_stats_.buffers_avoided = delta.streams.buffers_avoided;
    last_event_stats_.arena_bytes_used = delta.arena_bytes_used;
    last_event_stats_.arena_resets = 1;
    last_event_stats_.intern_hits = 0;  // see EventStats comment
    last_event_stats_.memo_misses = memoizable && !memo_stale ? 1 : 0;
    last_event_stats_.memo_invalidations = memo_stale ? 1 : 0;
    last_event_stats_.memo_invalidations_name = memo_stale_name ? 1 : 0;
    last_event_stats_.memo_invalidations_global =
        memo_stale && !memo_stale_name ? 1 : 0;
    last_event_stats_.plan_hits = delta.plan_hits;
    last_event_stats_.plan_misses = delta.plan_misses;
    last_event_stats_.plan_compiles = delta.plan_compiles;
    last_event_stats_.plan_invalidations = delta.plan_invalidations;
    last_event_stats_.http_prefetch_issued = delta.http.prefetch_issued;
    last_event_stats_.http_prefetch_hits = delta.http.prefetch_hits;
    if (page->ctx->profiler != nullptr) {
      xquery::Profiler::FastPathCounters& fp =
          page->ctx->profiler->fast_path();
      fp.http_prefetch_issued += delta.http.prefetch_issued;
      fp.http_prefetch_hits += delta.http.prefetch_hits;
    }
    last_listener_result_ = serialized;
    // Replay buffered host output in registration order.
    for (std::string& a : slot->alerts) alerts_.push_back(std::move(a));
    if (page->ctx->trace_sink != nullptr) {
      for (const std::string& t : slot->traces) page->ctx->trace_sink(t);
    }
    if (updating_safe) {
      // Adopt the worker's scratch documents (they own the PUL's
      // content trees), transfer the primitives, and apply — exactly
      // where the updates would have landed had the listener run
      // serially on the page evaluator.
      if (docs != nullptr) {
        for (std::unique_ptr<xml::Document>& doc : *docs) {
          page->ctx->AdoptDocument(std::move(doc));
        }
      }
      if (pul != nullptr) {
        for (auto& p : *pul) page->ctx->pul().Add(std::move(p));
      }
      Status st = ApplyAfterRun(page.get());
      if (!st.ok()) last_script_error_ = st;
      ReleaseWorkerSlot(page.get(), slot);
      return;
    }
    // Parallel-safe implies pure: nothing to apply, nothing to render.
    ++pure_listener_skips_;
    if (memoizable) {
      PageContext::MemoEntry entry = MakeMemoEntry(
          page.get(), PageContext::ListenerKey{memo_key.name, memo_key.arity},
          doc_version, last_listener_result_);
      std::unique_lock<std::shared_mutex> lk(page->memo_mu);
      if (memo_stale) {
        ++memo_stats_.invalidations;
        if (memo_stale_name) {
          ++memo_stats_.invalidations_name;
        } else {
          ++memo_stats_.invalidations_global;
        }
      } else {
        ++memo_stats_.misses;
      }
      page->memo_cache[memo_key] = std::move(entry);
    }
    ReleaseWorkerSlot(page.get(), slot);
  };
}

std::shared_ptr<XqibPlugin::PageContext::WorkerSlot>
XqibPlugin::AcquireWorkerSlot(PageContext* page) {
  // Effective options for slot evaluators: no nested parallelism — the
  // slot already runs on a worker, and its evaluator has no pool.
  xquery::Evaluator::EvalOptions opts = eval_options_;
  opts.parallel_streams = false;
  {
    std::lock_guard<std::mutex> lk(page->slots_mu);
    if (!page->free_slots.empty()) {
      std::shared_ptr<PageContext::WorkerSlot> slot =
          std::move(page->free_slots.back());
      page->free_slots.pop_back();
      // Options may have changed since the slot was built.
      slot->evaluator->set_options(opts);
      slot->evaluator->set_analysis_facts(page->facts);
      return slot;
    }
  }
  auto slot = std::make_shared<PageContext::WorkerSlot>();
  slot->ctx = std::make_unique<DynamicContext>();
  slot->ctx->browser_profile = true;
  // The slot context is not registered in pages_, so binding calls that
  // reach it (impossible for parallel-safe listeners — belt and braces)
  // fail with BRWS0001 and trigger the serial fallback.
  slot->ctx->browser_binding = this;
  slot->ctx->clock = page->ctx->clock;
  PageContext::WorkerSlot* raw = slot.get();
  slot->ctx->trace_sink = [raw](const std::string& s) {
    raw->traces.push_back(s);
  };
  // browser:alert buffers worker-side and replays at commit; the
  // blocking dialogs error out (the analyzer keeps interactive listeners
  // off the pool, so hitting one here means the proof was wrong — fall
  // back to serial, where the real responder runs).
  slot->ctx->RegisterExternal(
      BrowserQName("alert"), 1,
      [raw](std::vector<Sequence>& args,
            DynamicContext&) -> Result<Sequence> {
        raw->alerts.push_back(
            args.empty() ? std::string() : xdm::SequenceToString(args[0]));
        return Sequence{};
      });
  auto interactive_error = [](std::vector<Sequence>&,
                              DynamicContext&) -> Result<Sequence> {
    return Status::Error("BRWS0005",
                         "interactive dialog on a pool worker");
  };
  slot->ctx->RegisterExternal(BrowserQName("prompt"), 1, interactive_error);
  slot->ctx->RegisterExternal(BrowserQName("confirm"), 1, interactive_error);
  // Same REST surface as the page context, but consuming a slot-private
  // prefetcher: a staged listener's scatter must not be drained by (or
  // hand stale responses to) a concurrently staged peer.
  if (fabric_ != nullptr) {
    slot->prefetcher = std::make_unique<net::HttpPrefetcher>(fabric_);
    slot->ctx->prefetcher = slot->prefetcher.get();
    net::RegisterRestFunctions(slot->ctx.get(), fabric_,
                               slot->prefetcher.get());
  }
  slot->evaluator = std::make_unique<xquery::Evaluator>(*page->sctx);
  slot->evaluator->set_options(opts);
  slot->evaluator->set_analysis_facts(page->facts);
  return slot;
}

void XqibPlugin::ReleaseWorkerSlot(
    PageContext* page, std::shared_ptr<PageContext::WorkerSlot> slot) {
  std::lock_guard<std::mutex> lk(page->slots_mu);
  page->free_slots.push_back(std::move(slot));
}

void XqibPlugin::EnableParallelDispatch(size_t workers) {
  // Unwire first: the loop/event system must never point at a dead pool.
  WireThreadPool(nullptr);
  pool_.reset();
  if (workers == 0) return;  // the serial baseline
  pool_ = std::make_unique<base::ThreadPool>(workers);
  WireThreadPool(pool_.get());
}

void XqibPlugin::UseSharedThreadPool(base::ThreadPool* pool) {
  WireThreadPool(nullptr);
  pool_.reset();  // any owned pool is superseded by the shared one
  if (pool == nullptr || pool->size() == 0) return;
  WireThreadPool(pool);
}

void XqibPlugin::WireThreadPool(base::ThreadPool* pool) {
  active_pool_ = pool;
  browser_->loop().set_thread_pool(pool);
  browser_->events().set_thread_pool(pool);
  for (auto& [window, page] : pages_) {
    if (page->evaluator != nullptr) page->evaluator->set_thread_pool(pool);
  }
}

void XqibPlugin::set_fine_grained_invalidation(bool on) {
  fine_grained_invalidation_ = on;
  // Toggling the document's counter mode drops stale counters and
  // forces the next name-index lookup through a full rebuild, so flips
  // mid-session stay sound.
  for (auto& [window, page] : pages_) {
    page->window->document()->set_fine_grained_versions(on);
  }
}

void XqibPlugin::set_eval_options(
    const xquery::Evaluator::EvalOptions& options) {
  eval_options_ = options;
  for (auto& [window, page] : pages_) {
    if (page->evaluator != nullptr) page->evaluator->set_options(options);
    // Delta tracking follows the ablation switch. Any toggle (either
    // direction) invalidates the page's accumulated dirty-seq state —
    // mutations that happened untracked were never classified — so mark
    // everything dirty and disarm skips until the next sync.
    page->window->document()->set_delta_tracking(options.delta_propagation);
    page->delta_synced_version = 0;
    page->dirty_seq.clear();
    page->all_dirty_seq = ++page->delta_seq;
  }
}

Status XqibPlugin::FireEvent(xml::Node* target, Event event) {
  browser_->loop().Post([this, target, event]() mutable {
    // Classify mutations made since the last sync point (script runs,
    // direct DOM pokes from the host) before the dispatcher stages any
    // listener: staged probes read the dirty state as of this moment.
    PageContext* page = FindPageByDocument(target->document());
    if (page != nullptr) PropagateDelta(page);
    browser_->events().Dispatch(target, std::move(event));
  });
  PumpEvents();
  return Status();
}

size_t XqibPlugin::PumpEvents() { return browser_->loop().RunUntilIdle(); }

// ------------------------------------------------- BrowserBinding impl ---

Status XqibPlugin::AttachListener(const std::string& event_name,
                                  const Sequence& targets,
                                  const xml::QName& listener,
                                  DynamicContext& ctx) {
  PageContext* page = FindPageByContext(ctx);
  if (page == nullptr) {
    return Status::Error("BRWS0001", "no page for this context");
  }
  std::weak_ptr<PageContext> weak = FindPageShared(page->window);
  for (const Item& item : targets) {
    if (!item.is_node()) {
      return Status::TypeError("event target must be a node");
    }
    browser::Listener l;
    l.id = ListenerId(listener);
    l.callback = [this, weak, listener](Event& event) {
      std::shared_ptr<PageContext> page = weak.lock();
      if (page == nullptr) return;
      InvokeListener(page.get(), listener, event);
    };
    // Listeners the analyzer proved parallel-safe (pure, no interactive
    // host calls) or effect-stageable updating (fully analyzed
    // read/write sets) get the staged path: the dispatcher may evaluate
    // them on a pool worker and commit on the loop thread, admitting
    // them into concurrent runs by the interference check over the
    // attached effect summaries. StageListener re-verifies eligibility
    // at dispatch time.
    size_t arity = 0;
    if (page->sctx->FindFunction(listener, 2) != nullptr) {
      arity = 2;
    } else if (page->sctx->FindFunction(listener, 1) != nullptr) {
      arity = 1;
    }
    const PageContext::ListenerKey lkey{listener.token(), arity};
    auto fx = page->listener_effects.find(lkey);
    if (fx != page->listener_effects.end()) l.effects = fx->second;
    if (page->parallel_safe_functions.count(lkey) > 0 ||
        (fine_grained_invalidation_ &&
         page->stageable_updating_functions.count(lkey) > 0)) {
      l.stage = [this, weak, listener](const Event& event)
          -> std::function<void()> {
        std::shared_ptr<PageContext> page = weak.lock();
        if (page == nullptr) return nullptr;
        return StageListener(std::move(page), listener, event);
      };
    }
    browser_->events().AddListener(item.node(), event_name, std::move(l));
  }
  return Status();
}

Status XqibPlugin::DetachListener(const std::string& event_name,
                                  const Sequence& targets,
                                  const xml::QName& listener,
                                  DynamicContext& ctx) {
  (void)ctx;
  for (const Item& item : targets) {
    if (!item.is_node()) {
      return Status::TypeError("event target must be a node");
    }
    browser_->events().RemoveListener(item.node(), event_name,
                                      ListenerId(listener));
  }
  return Status();
}

Status XqibPlugin::TriggerEvent(const std::string& event_name,
                                const Sequence& targets,
                                DynamicContext& ctx) {
  (void)ctx;
  for (const Item& item : targets) {
    if (!item.is_node()) {
      return Status::TypeError("event target must be a node");
    }
    xml::Node* target = item.node();
    Event event;
    event.type = event_name;
    browser_->loop().Post([this, target, event]() mutable {
      PageContext* page = FindPageByDocument(target->document());
      if (page != nullptr) PropagateDelta(page);
      browser_->events().Dispatch(target, std::move(event));
    });
  }
  return Status();
}

Status XqibPlugin::AttachBehind(const std::string& event_name,
                                const Expr& call_expr,
                                const xml::QName& listener,
                                DynamicContext& ctx) {
  PageContext* page = FindPageByContext(ctx);
  if (page == nullptr) {
    return Status::Error("BRWS0001", "no page for this context");
  }
  std::weak_ptr<PageContext> weak = FindPageShared(page->window);
  const Expr* call = &call_expr;
  double latency =
      fabric_ != nullptr ? fabric_->latency.base_ms : 1.0;
  (void)event_name;  // informational ("stateChanged") in this model

  auto invoke_state = [this, weak, listener](int64_t state,
                                             Sequence result) {
    std::shared_ptr<PageContext> page = weak.lock();
    if (page == nullptr) return;
    std::vector<Sequence> args;
    args.push_back(Sequence{Item::Integer(state)});
    args.push_back(std::move(result));
    Result<Sequence> r =
        page->evaluator->CallFunction(listener, std::move(args), *page->ctx);
    if (page->evaluator->exited()) page->evaluator->TakeExitValue();
    if (!r.ok()) {
      last_script_error_ = r.status();
      return;
    }
    Status st = ApplyAfterRun(page.get());
    if (!st.ok()) last_script_error_ = st;
  };

  // The call's arguments are evaluated NOW (they reference variables of
  // the attaching scope, e.g. a function parameter $str); only the call
  // itself is deferred — that is the remote round trip.
  std::vector<Sequence> eager_args;
  bool is_call = call->kind == xquery::ExprKind::kFunctionCall;
  Sequence eager_result;
  if (is_call) {
    for (const xquery::ExprPtr& kid : call->kids) {
      XQ_ASSIGN_OR_RETURN(Sequence arg, page->evaluator->Eval(*kid, ctx));
      eager_args.push_back(std::move(arg));
    }
  } else {
    XQ_ASSIGN_OR_RETURN(eager_result, page->evaluator->Eval(*call, ctx));
  }

  // readyState 1: request dispatched (immediately, asynchronously).
  browser_->loop().Post(
      [invoke_state]() { invoke_state(1, Sequence{}); }, 0.0);

  // readyState 4: the call completes and its result is delivered after
  // the simulated round-trip latency. The call is non-blocking for the
  // main flow (§4.4: "the user keeps control").
  //
  // When the callee is a declared function the analyzer proved
  // parallel-safe, the completion is an off-thread unit: a pool worker
  // evaluates the call against the DOM snapshot and the loop thread
  // commits (adopts result documents, replays buffered output, delivers
  // to the listener). Off-thread eligibility is a static property of the
  // callee, so the same path runs at every pool size — with no pool the
  // work simply executes serially at the same queue position.
  const bool off_thread =
      is_call && page->parallel_safe_functions.count(PageContext::ListenerKey{
                     call->qname.token(), call->kids.size()}) > 0;
  if (off_thread) {
    browser_->loop().PostOffThread(
        [this, weak, call, invoke_state,
         eager_args = std::move(eager_args)]() mutable
        -> browser::EventLoop::Task {
          std::shared_ptr<PageContext> page = weak.lock();
          if (page == nullptr) return nullptr;
          PageContext* raw = page.get();
          std::shared_ptr<PageContext::WorkerSlot> slot =
              AcquireWorkerSlot(raw);
          slot->ctx->env() = raw->ctx->env();
          slot->ctx->set_focus(raw->ctx->focus());
          slot->alerts.clear();
          slot->traces.clear();
          slot->ctx->pul().Clear();
          Result<Sequence> result = slot->evaluator->CallFunction(
              call->qname, std::move(eager_args), *slot->ctx);
          if (slot->evaluator->exited()) slot->evaluator->TakeExitValue();
          // Result nodes live in the slot's scratch documents: move them
          // out now so slot reuse cannot touch them; the commit hands
          // them to the page context, which keeps them alive for the
          // listener (and anything it splices into the DOM is copied by
          // the update primitives anyway).
          auto docs =
              std::make_shared<std::vector<std::unique_ptr<xml::Document>>>(
                  slot->ctx->TakeScratchDocuments());
          // Update primitives a not-quite-pure callee produced transfer
          // to the page PUL at commit — exactly where they would have
          // accumulated had the call run serially on the page evaluator.
          auto pul = std::make_shared<
              std::vector<xquery::PendingUpdateList::Primitive>>(
              slot->ctx->pul().Take());
          slot->evaluator->ResetDispatchArena(*slot->ctx);
          return [this, page, invoke_state, result, docs, pul, slot]() {
            for (std::unique_ptr<xml::Document>& doc : *docs) {
              page->ctx->AdoptDocument(std::move(doc));
            }
            for (std::string& a : slot->alerts) {
              alerts_.push_back(std::move(a));
            }
            if (page->ctx->trace_sink != nullptr) {
              for (const std::string& t : slot->traces) {
                page->ctx->trace_sink(t);
              }
            }
            for (auto& p : *pul) page->ctx->pul().Add(std::move(p));
            ReleaseWorkerSlot(page.get(), slot);
            if (!result.ok()) {
              last_script_error_ = result.status();
              invoke_state(4, Sequence{});
              return;
            }
            invoke_state(4, result.value());
          };
        },
        latency);
    return Status();
  }

  browser_->loop().Post(
      [this, weak, call, invoke_state, is_call,
       eager_args = std::move(eager_args),
       eager_result = std::move(eager_result)]() mutable {
        std::shared_ptr<PageContext> page = weak.lock();
        if (page == nullptr) return;
        if (!is_call) {
          invoke_state(4, std::move(eager_result));
          return;
        }
        Result<Sequence> result = page->evaluator->CallFunction(
            call->qname, std::move(eager_args), *page->ctx);
        if (page->evaluator->exited()) page->evaluator->TakeExitValue();
        if (!result.ok()) {
          last_script_error_ = result.status();
          invoke_state(4, Sequence{});
          return;
        }
        invoke_state(4, std::move(result).value());
      },
      latency);
  return Status();
}

Status XqibPlugin::SetStyle(const std::string& property,
                            const Sequence& targets, const std::string& value,
                            DynamicContext& ctx) {
  (void)ctx;
  for (const Item& item : targets) {
    if (!item.is_node() || !item.node()->is_element()) {
      return Status::TypeError("set style target must be an element");
    }
    browser::SetStyleProperty(item.node(), property, value);
  }
  return Status();
}

Result<std::string> XqibPlugin::GetStyle(const std::string& property,
                                         const Sequence& target,
                                         DynamicContext& ctx) {
  (void)ctx;
  XQ_ASSIGN_OR_RETURN(xml::Node* node, SingleNodeArg(target, "get style"));
  if (!node->is_element()) {
    return Status::TypeError("get style target must be an element");
  }
  return browser::GetStyleProperty(node, property);
}

// ------------------------------------------- browser: function library ---

void XqibPlugin::RegisterBrowserFunctions(PageContext* page) {
  DynamicContext* ctx = page->ctx.get();
  Window* window = page->window;
  Browser* browser = browser_;
  PageContext* raw_page = page;

  auto str_arg = [](std::vector<Sequence>& args) {
    return args.empty() ? std::string() : xdm::SequenceToString(args[0]);
  };

  ctx->RegisterExternal(
      BrowserQName("alert"), 1,
      [this, str_arg](std::vector<Sequence>& args,
                      DynamicContext&) -> Result<Sequence> {
        alerts_.push_back(str_arg(args));
        return Sequence{};
      });
  ctx->RegisterExternal(
      BrowserQName("prompt"), 1,
      [this, str_arg](std::vector<Sequence>& args,
                      DynamicContext&) -> Result<Sequence> {
        return Sequence{Item::String(prompt_responder(str_arg(args)))};
      });
  ctx->RegisterExternal(
      BrowserQName("confirm"), 1,
      [this, str_arg](std::vector<Sequence>& args,
                      DynamicContext&) -> Result<Sequence> {
        return Sequence{Item::Boolean(confirm_responder(str_arg(args)))};
      });

  // browser:top() — the whole window tree, security-filtered (§4.2.1).
  // Marked non-deterministic in the paper: each call re-materializes.
  ctx->RegisterExternal(
      BrowserQName("top"), 0,
      [browser, raw_page, window](std::vector<Sequence>&,
                                  DynamicContext& c) -> Result<Sequence> {
        Browser::BomTree tree =
            browser->MaterializeWindowTree(c.scratch_document(),
                                           window->url());
        raw_page->bom_trees.push_back(tree);
        if (tree.root == nullptr) return Sequence{};
        return Sequence{Item::Node(tree.root)};
      });

  // browser:self() — this window's node within a fresh top tree.
  ctx->RegisterExternal(
      BrowserQName("self"), 0,
      [browser, raw_page, window](std::vector<Sequence>&,
                                  DynamicContext& c) -> Result<Sequence> {
        Browser::BomTree tree =
            browser->MaterializeWindowTree(c.scratch_document(),
                                           window->url());
        raw_page->bom_trees.push_back(tree);
        for (const auto& [node, win] : tree.node_to_window) {
          if (win == window) {
            return Sequence{Item::Node(const_cast<xml::Node*>(node))};
          }
        }
        return Sequence{};
      });

  ctx->RegisterExternal(
      BrowserQName("screen"), 0,
      [browser](std::vector<Sequence>&,
                DynamicContext& c) -> Result<Sequence> {
        return Sequence{
            Item::Node(browser->MaterializeScreen(c.scratch_document()))};
      });
  ctx->RegisterExternal(
      BrowserQName("navigator"), 0,
      [browser](std::vector<Sequence>&,
                DynamicContext& c) -> Result<Sequence> {
        return Sequence{
            Item::Node(browser->MaterializeNavigator(c.scratch_document()))};
      });

  // browser:document($w) — the document behind a window node, with the
  // same-origin check; empty sequence on denial (§4.2.3).
  ctx->RegisterExternal(
      BrowserQName("document"), 1,
      [browser, raw_page, window](std::vector<Sequence>& args,
                                  DynamicContext&) -> Result<Sequence> {
        if (args[0].empty()) return Sequence{};
        if (!args[0][0].is_node()) {
          return Status::TypeError("browser:document expects a window node");
        }
        const xml::Node* node = args[0][0].node();
        for (const Browser::BomTree& tree : raw_page->bom_trees) {
          Window* target =
              browser->ResolveWindowNode(tree, node, window->url());
          if (target != nullptr) {
            return Sequence{Item::Node(target->document()->root())};
          }
        }
        return Sequence{};
      });

  // Window management (§4.2.4).
  ctx->RegisterExternal(
      BrowserQName("windowOpen"), 1,
      [browser, str_arg](std::vector<Sequence>& args,
                         DynamicContext&) -> Result<Sequence> {
        browser->top_window()->CreateFrame(str_arg(args));
        return Sequence{};
      });
  ctx->RegisterExternal(
      BrowserQName("windowClose"), 1,
      [browser, raw_page, window](std::vector<Sequence>& args,
                                  DynamicContext&) -> Result<Sequence> {
        XQ_ASSIGN_OR_RETURN(xml::Node* node,
                            SingleNodeArg(args[0], "browser:windowClose"));
        for (const Browser::BomTree& tree : raw_page->bom_trees) {
          Window* target =
              browser->ResolveWindowNode(tree, node, window->url());
          if (target != nullptr && target->parent() != nullptr) {
            target->parent()->CloseFrame(target);
            return Sequence{};
          }
        }
        return Sequence{};
      });
  auto move_fn = [browser, raw_page, window](bool relative) {
    return [browser, raw_page, window, relative](
               std::vector<Sequence>& args,
               DynamicContext&) -> Result<Sequence> {
      XQ_ASSIGN_OR_RETURN(xml::Node* node,
                          SingleNodeArg(args[0], "browser:windowMove"));
      XQ_ASSIGN_OR_RETURN(int64_t x, args[1].empty()
                                         ? Result<int64_t>(int64_t{0})
                                         : args[1][0].Atomize().ToInteger());
      XQ_ASSIGN_OR_RETURN(int64_t y, args[2].empty()
                                         ? Result<int64_t>(int64_t{0})
                                         : args[2][0].Atomize().ToInteger());
      for (const Browser::BomTree& tree : raw_page->bom_trees) {
        Window* target = browser->ResolveWindowNode(tree, node, window->url());
        if (target != nullptr) {
          if (relative) {
            target->MoveBy(static_cast<int>(x), static_cast<int>(y));
          } else {
            target->MoveTo(static_cast<int>(x), static_cast<int>(y));
          }
          return Sequence{};
        }
      }
      return Sequence{};
    };
  };
  ctx->RegisterExternal(BrowserQName("windowMoveBy"), 3, move_fn(true));
  ctx->RegisterExternal(BrowserQName("windowMoveTo"), 3, move_fn(false));

  // History (§4.2.4).
  ctx->RegisterExternal(
      BrowserQName("historyBack"), 0,
      [window](std::vector<Sequence>&, DynamicContext&) -> Result<Sequence> {
        XQ_RETURN_NOT_OK(window->HistoryBack());
        return Sequence{};
      });
  ctx->RegisterExternal(
      BrowserQName("historyForward"), 0,
      [window](std::vector<Sequence>&, DynamicContext&) -> Result<Sequence> {
        XQ_RETURN_NOT_OK(window->HistoryForward());
        return Sequence{};
      });
  ctx->RegisterExternal(
      BrowserQName("historyGo"), 1,
      [window](std::vector<Sequence>& args,
               DynamicContext&) -> Result<Sequence> {
        if (args[0].empty()) return Sequence{};
        XQ_ASSIGN_OR_RETURN(int64_t delta, args[0][0].Atomize().ToInteger());
        XQ_RETURN_NOT_OK(window->HistoryGo(static_cast<int>(delta)));
        return Sequence{};
      });

  // Document write (§4.2.4; "with XQuery, best practice would be to
  // modify the XDM" — provided for parity anyway).
  ctx->RegisterExternal(
      BrowserQName("write"), 1,
      [window, str_arg](std::vector<Sequence>& args,
                        DynamicContext&) -> Result<Sequence> {
        window->Write(str_arg(args));
        return Sequence{};
      });
  ctx->RegisterExternal(
      BrowserQName("writeln"), 1,
      [window, str_arg](std::vector<Sequence>& args,
                        DynamicContext&) -> Result<Sequence> {
        window->Write(str_arg(args) + "\n");
        return Sequence{};
      });
}

}  // namespace xqib::plugin
