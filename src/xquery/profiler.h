// Query profiler — one of the paper's §7 future-work tools ("we are
// working on tools for XQuery development … like a debugger, performance
// profiler"). Attached to a DynamicContext, it records per-AST-node
// evaluation counts and cumulative time, and renders a hot-spot report.
//
// Usage:
//   Profiler profiler;
//   ctx.profiler = &profiler;
//   compiled->Run(ctx);
//   std::cout << profiler.Report(10);

#ifndef XQIB_XQUERY_PROFILER_H_
#define XQIB_XQUERY_PROFILER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/counters.h"
#include "xquery/ast.h"

namespace xqib::xquery {

class Profiler {
 public:
  struct Entry {
    const Expr* expr = nullptr;
    uint64_t count = 0;
    double total_us = 0;   // inclusive (children included)
    double self_us = 0;    // exclusive
  };

  // Called by the evaluator around each Eval (when attached).
  void Record(const Expr* expr, double inclusive_us, double child_us) {
    Entry& e = entries_[expr];
    e.expr = expr;
    ++e.count;
    e.total_us += inclusive_us;
    e.self_us += inclusive_us - child_us;
  }

  // Running child-time accumulator used to compute self time.
  double* child_time_slot() { return &child_time_; }

  // Path fast-path and streaming-pipeline counters: bumped by the
  // evaluator alongside its own stats whenever a profiler is attached,
  // and appended to Report() so hot-spot dumps show how often the fast
  // paths fired and how lazy the pipeline stayed.
  // Relaxed atomics: parallel stream workers mirror their pulls into the
  // attached profiler concurrently. (Per-expression Entry records stay
  // loop-thread-only — worker evaluators detach the profiler.)
  struct FastPathCounters {
    base::RelaxedCounter sorts_performed;
    base::RelaxedCounter sorts_elided;
    base::RelaxedCounter name_index_hits;
    base::RelaxedCounter early_exits;
    // fn:count answered straight from the element-name index.
    base::RelaxedCounter count_index_hits;
    // Streaming pipeline: items crossing operator edges lazily, items
    // copied into Sequence buffers, and operator edges kept lazy.
    base::RelaxedCounter items_pulled;
    base::RelaxedCounter items_materialized;
    base::RelaxedCounter buffers_avoided;
    // Memory layer: bytes bump-allocated for stream operators, wholesale
    // arena resets, and a snapshot of process-wide intern-pool hits
    // (refreshed at every arena reset).
    base::RelaxedCounter arena_bytes_used;
    base::RelaxedCounter arena_resets;
    base::RelaxedCounter intern_hits;
    // Compiled-plan dispatch: calls executed through a register plan vs
    // compiled_plans-on calls that fell back to the tree walker.
    base::RelaxedCounter plan_hits;
    base::RelaxedCounter plan_misses;
    // Delta propagation: structured PUL deltas emitted, per-bucket index
    // splices, full index rebuilds avoided, listeners skipped unrun.
    base::RelaxedCounter delta_emitted;
    base::RelaxedCounter delta_index_splices;
    base::RelaxedCounter delta_bucket_rebuilds_avoided;
    base::RelaxedCounter delta_listeners_skipped;
    // Async federation: shared response-cache traffic and scatter-gather
    // prefetches (issued ahead of need / consumed by http:get).
    base::RelaxedCounter http_cache_hits;
    base::RelaxedCounter http_cache_misses;
    base::RelaxedCounter http_prefetch_issued;
    base::RelaxedCounter http_prefetch_hits;
  };
  FastPathCounters& fast_path() { return fast_path_; }
  const FastPathCounters& fast_path() const { return fast_path_; }

  // Entries sorted by self time, descending.
  std::vector<Entry> HotSpots() const;

  // A human-readable table of the top `limit` entries.
  std::string Report(size_t limit = 20) const;

  uint64_t total_evaluations() const;
  void Clear() {
    entries_.clear();
    fast_path_ = FastPathCounters{};
  }

 private:
  std::unordered_map<const Expr*, Entry> entries_;
  double child_time_ = 0;
  FastPathCounters fast_path_;
};

// Short human-readable label for an expression ("FLWOR", "path //a/b",
// "call fn:count", ...). Used by the profiler report.
std::string DescribeExpr(const Expr& expr);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_PROFILER_H_
