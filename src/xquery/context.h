// Static and dynamic evaluation contexts (XQuery §2.1). The dynamic
// context carries the hooks through which the engine reaches its host:
// the document resolver, the external-function registry (browser:*,
// http:*), the browser binding for the grammar extensions, the pending
// update list, and a controllable clock.

#ifndef XQIB_XQUERY_CONTEXT_H_
#define XQIB_XQUERY_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "xdm/arena.h"
#include "xdm/item.h"
#include "xquery/ast.h"

namespace xqib::xquery {

class DynamicContext;
class PendingUpdateList;
class Profiler;

// Host-provided native function: args are already-evaluated sequences.
using ExternalFunction = std::function<Result<xdm::Sequence>(
    std::vector<xdm::Sequence>& args, DynamicContext& ctx)>;

// Scatter-gather prefetch hook (async federation): the evaluator hands
// statically-known remote GET URLs here before a tuple loop or listener
// body runs, so their simulated round trips overlap on the fabric's
// virtual clock. net::HttpPrefetcher implements it over
// HttpFabric::Fetch; the http:get externals consume the issued futures.
class UrlPrefetcher {
 public:
  virtual ~UrlPrefetcher() = default;
  virtual void Prefetch(const std::string& url) = 0;
};

// Host hooks for the paper's browser grammar extensions (§4.3-4.5).
// Implemented by the plugin; absent outside the browser.
class BrowserBinding {
 public:
  virtual ~BrowserBinding() = default;

  virtual Status AttachListener(const std::string& event_name,
                                const xdm::Sequence& targets,
                                const xml::QName& listener,
                                DynamicContext& ctx) = 0;
  virtual Status DetachListener(const std::string& event_name,
                                const xdm::Sequence& targets,
                                const xml::QName& listener,
                                DynamicContext& ctx) = 0;
  virtual Status TriggerEvent(const std::string& event_name,
                              const xdm::Sequence& targets,
                              DynamicContext& ctx) = 0;
  // "on event E behind <call> attach listener L": schedules the call
  // asynchronously; L fires with ($readyState, $result) signals (§4.4).
  virtual Status AttachBehind(const std::string& event_name,
                              const Expr& call_expr,
                              const xml::QName& listener,
                              DynamicContext& ctx) = 0;
  virtual Status SetStyle(const std::string& property,
                          const xdm::Sequence& targets,
                          const std::string& value, DynamicContext& ctx) = 0;
  virtual Result<std::string> GetStyle(const std::string& property,
                                       const xdm::Sequence& target,
                                       DynamicContext& ctx) = 0;
};

// Compile-time context: user functions and global variables gathered
// from the main module and imported library modules.
class StaticContext {
 public:
  // Registers the declarations of `module`. Later registrations win on
  // name clash (import shadowing is an error in real XQuery; we keep the
  // permissive behaviour browsers favour).
  void AddModule(const Module& module);

  const FunctionDecl* FindFunction(const xml::QName& name,
                                   size_t arity) const;

  // Global variable declarations in registration order.
  const std::vector<const VarDecl*>& global_variables() const {
    return globals_;
  }

  const std::string& option(const std::string& clark) const;

  // Shared-ownership lookup: same resolution as FindFunction, but the
  // returned handle keeps the declaration (and its body AST) alive past
  // this context — compiled plans hold these so a cached plan can outlive
  // the page that compiled it.
  std::shared_ptr<const FunctionDecl> FindFunctionShared(
      const xml::QName& name, size_t arity) const;

  // All registered functions, sorted by Clark name + arity so plan
  // compilation and plan dumps are deterministic.
  std::vector<std::shared_ptr<const FunctionDecl>> AllFunctions() const;

  // --- compiled-plan cache keying ---
  //
  // plan_source_hash: FNV-1a over the source text of every non-library
  // module registered so far (the page's scripts / the query itself).
  // This is the process-wide plan-cache key: two pages with identical
  // script text share one compiled plan set.
  //
  // plan_fingerprint: FNV-1a over everything else that can change the
  // meaning of that text — library module sources, module namespaces,
  // default element namespaces, and declared options (the collation /
  // feature knobs ride on options). A probe that matches the source
  // hash but not the fingerprint is a genuine static-context change and
  // invalidates the cached entry.
  uint64_t plan_source_hash() const { return plan_source_hash_; }
  uint64_t plan_fingerprint() const { return plan_fingerprint_; }

 private:
  // Functions key on the interned name token + arity: no string is
  // built per FindFunction call.
  struct FunctionKey {
    const xml::InternedName* name;
    size_t arity;
    friend bool operator==(const FunctionKey& a, const FunctionKey& b) {
      return a.name == b.name && a.arity == b.arity;
    }
  };
  struct FunctionKeyHash {
    size_t operator()(const FunctionKey& k) const noexcept {
      return std::hash<const void*>{}(k.name) * 31 + k.arity;
    }
  };
  std::unordered_map<FunctionKey, std::shared_ptr<FunctionDecl>,
                     FunctionKeyHash>
      functions_;
  std::vector<const VarDecl*> globals_;
  std::unordered_map<std::string, std::string> options_;
  uint64_t plan_source_hash_ = 14695981039346656037ULL;  // FNV-1a offset
  uint64_t plan_fingerprint_ = 14695981039346656037ULL;
};

// Variable environment: a stack of scopes. Function calls push a barrier
// scope: lookups stop there and fall through only to globals (scope 0).
//
// Representation: one flat vector of (token, value) bindings plus a
// vector of scope marks. PushScope/PopScope are O(1) integer pushes —
// no per-scope hash map is ever built — and lookups compare interned
// name tokens while scanning the (small) open scopes back to front.
// This is the hot path of every FLWOR tuple and function call.
class Environment {
 public:
  Environment() { scopes_.push_back({0, false}); }

  void PushScope(bool barrier = false) {
    scopes_.push_back({bindings_.size(), barrier});
  }
  void PopScope() {
    bindings_.resize(scopes_.back().start);
    scopes_.pop_back();
  }

  void Bind(const xml::QName& name, xdm::Sequence value);
  // Rebinds an existing variable (scripting assignment); error XPDY0002
  // if the variable is not in scope.
  Status Assign(const xml::QName& name, xdm::Sequence value);
  Result<xdm::Sequence> Lookup(const xml::QName& name) const;
  bool IsBound(const xml::QName& name) const;

  // The value bound to `name` in the innermost (top) scope, or null.
  // FlworStream uses this to move a binding's buffer out before popping
  // the scope, so re-establishing tuple scopes allocates nothing.
  xdm::Sequence* TopBinding(const xml::QName& name);

  // Zero-copy view of the innermost binding (same resolution as Lookup),
  // or null if unbound. Invalidated by any Bind/PushScope/PopScope —
  // callers must copy out what they need before touching the
  // environment again.
  const xdm::Sequence* Peek(const xml::QName& name) const {
    return Find(name);
  }

 private:
  struct Binding {
    const xml::InternedName* name;
    xdm::Sequence value;
  };
  struct ScopeMark {
    size_t start;  // index of the scope's first binding in bindings_
    bool barrier;
  };

  const xdm::Sequence* Find(const xml::QName& name) const;
  xdm::Sequence* FindMutable(const xml::QName& name) {
    return const_cast<xdm::Sequence*>(Find(name));
  }

  std::vector<Binding> bindings_;
  std::vector<ScopeMark> scopes_;
};

// Run-time context.
class DynamicContext {
 public:
  DynamicContext();
  ~DynamicContext();

  Environment& env() { return env_; }

  // --- focus (context item / position / size) ---
  struct Focus {
    xdm::Item item;
    int64_t position = 0;
    int64_t size = 0;
    bool has_item = false;
  };
  const Focus& focus() const { return focus_; }
  void set_focus(Focus f) { focus_ = std::move(f); }

  // --- host hooks ---
  using DocResolver =
      std::function<Result<xml::Node*>(const std::string& uri)>;
  // fn:doc. Null (and in the browser profile always) -> error per §4.2.1.
  DocResolver doc_resolver;
  // fn:put (server profile only; blocked in the browser per §4.2.1).
  using DocWriter =
      std::function<Status(const std::string& uri, const xml::Node* node)>;
  DocWriter doc_writer;
  // The browser profile blocks fn:doc / fn:put (paper §4.2.1).
  bool browser_profile = false;

  BrowserBinding* browser_binding = nullptr;

  // fn:current-dateTime etc. Returns ISO-8601 "YYYY-MM-DDThh:mm:ss".
  std::function<std::string()> clock;

  // fn:trace / browser:alert sink (tests capture this).
  std::function<void(const std::string&)> trace_sink;

  // External (native) functions keyed by interned name token + arity.
  void RegisterExternal(const xml::QName& name, size_t arity,
                        ExternalFunction fn);
  const ExternalFunction* FindExternal(const xml::QName& name,
                                       size_t arity) const;

  // Documents created for constructed nodes during this evaluation. The
  // result-owning document keeps constructed trees alive after Execute.
  xml::Document* scratch_document();
  // Takes ownership of a document whose nodes flow into results (e.g.
  // REST responses parsed by http:get). Returns its root node.
  xml::Node* AdoptDocument(std::unique_ptr<xml::Document> doc);
  // Transfers ownership of all scratch documents to the caller.
  std::vector<std::unique_ptr<xml::Document>> TakeScratchDocuments();

  // --- pending updates (XQuery Update Facility) ---
  PendingUpdateList& pul() { return *pul_; }

  // Per-dispatch arena for stream operators and other evaluation
  // transients. The host (plugin / engine) calls arena().Reset() after
  // an evaluation round's XQUF apply pass, when no streams are live.
  xdm::Arena& arena() { return arena_; }

  // Optional query profiler (§7 future-work tooling); owned by caller.
  Profiler* profiler = nullptr;

  // Async-federation prefetch sink (owned by the host; null when the
  // ablation is off or no fabric is wired).
  UrlPrefetcher* prefetcher = nullptr;

  // Bounded evaluation note: the PR 2 EvalLimit arm/consume protocol
  // that used to live here is gone — early exit is now a property of
  // the stream operators themselves (a bounded consumer simply stops
  // calling ItemStream::Next), see Evaluator::EvalStream.

  // Recursion guard.
  int call_depth = 0;
  static constexpr int kMaxCallDepth = 512;

 private:
  struct ExternalKey {
    const xml::InternedName* name;
    size_t arity;
    friend bool operator==(const ExternalKey& a, const ExternalKey& b) {
      return a.name == b.name && a.arity == b.arity;
    }
  };
  struct ExternalKeyHash {
    size_t operator()(const ExternalKey& k) const noexcept {
      return std::hash<const void*>{}(k.name) * 31 + k.arity;
    }
  };

  Environment env_;
  Focus focus_;
  std::unordered_map<ExternalKey, ExternalFunction, ExternalKeyHash>
      externals_;
  std::vector<std::unique_ptr<xml::Document>> scratch_docs_;
  std::unique_ptr<PendingUpdateList> pul_;
  xdm::Arena arena_;
};

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_CONTEXT_H_
