#include "xquery/analysis/diagnostic.h"

#include <cstdio>

#include "base/strings.h"

namespace xqib::xquery::analysis {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

std::string Diagnostic::Render() const {
  std::string out = code + ": " + message;
  if (span.line > 0) {
    out += " (line " + std::to_string(span.line) + ", column " +
           std::to_string(span.column) + ")";
  }
  return out;
}

Status Diagnostic::ToStatus() const {
  return Status::Error(code, Render());
}

SourceSpan SpanAt(std::string_view source, size_t offset, size_t length) {
  SourceSpan span;
  span.offset = offset;
  span.length = length;
  LineCol lc = OffsetToLineCol(source, offset);
  span.line = lc.line;
  span.column = lc.column;
  return span;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

namespace {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out += ",";
    out += "{\"code\":";
    AppendJsonString(d.code, &out);
    out += ",\"severity\":";
    AppendJsonString(SeverityName(d.severity), &out);
    out += ",\"message\":";
    AppendJsonString(d.message, &out);
    out += ",\"offset\":" + std::to_string(d.span.offset);
    out += ",\"length\":" + std::to_string(d.span.length);
    out += ",\"line\":" + std::to_string(d.span.line);
    out += ",\"column\":" + std::to_string(d.span.column);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace xqib::xquery::analysis
