// Facts derived by the static analyzer and consumed elsewhere:
//   * inferred cardinalities, keyed by AST node, consumed by the
//     optimizer so cardinality/positional rewrites can fire on inferred
//     (not just syntactic) singletons;
//   * purity classification of declared functions, consumed by the
//     plug-in's event loop to skip re-render work after pure listeners.
//
// Keys are `const Expr*`: the bottom-up rewriter only replaces nodes it
// folds, so surviving nodes keep stable addresses while the optimizer
// consults the map.

#ifndef XQIB_XQUERY_ANALYSIS_FACTS_H_
#define XQIB_XQUERY_ANALYSIS_FACTS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "xquery/analysis/effects.h"

namespace xqib::xquery {
struct Expr;
}  // namespace xqib::xquery

namespace xqib::xquery::analysis {

// Inferred bounds on the number of items an expression can produce.
struct Cardinality {
  static constexpr uint64_t kUnbounded = ~uint64_t{0};
  uint64_t min = 0;
  uint64_t max = kUnbounded;

  bool IsSingleton() const { return min == 1 && max == 1; }
  bool IsNonEmpty() const { return min >= 1; }
  bool IsEmpty() const { return max == 0; }
  bool IsExact() const { return min == max && max != kUnbounded; }
};

struct AnalysisFacts {
  // Cardinality per analyzed expression node.
  std::unordered_map<const Expr*, Cardinality> cardinality;

  // Functions (keyed "Clark#arity") whose bodies provably do not mutate
  // the DOM/BOM: no updates, no assignments, no style writes, no event
  // re-wiring, no calls into unknown external code.
  std::unordered_set<std::string> pure_functions;

  // The subset of pure_functions additionally free of any OBSERVABLE
  // host interaction (browser:alert/prompt/confirm, fn:trace). A pure
  // listener may still pop an alert box on every event; only functions
  // in this set may be served from the plug-in's memo cache without
  // re-running them.
  std::unordered_set<std::string> memoizable_functions;

  // The subset of pure_functions additionally free of INTERACTIVE host
  // calls (browser:prompt/confirm, which block on user input). Dialogs
  // and fn:trace output are fine: a worker can buffer them and the
  // commit replays them in registration order. Listeners in this set
  // may be evaluated concurrently on pool workers against a DOM
  // snapshot (PERFORMANCE.md §5).
  std::unordered_set<std::string> parallel_safe_functions;

  // Inferred read/write effect summaries per declared function (same
  // keys). Ordered map so `xq_lint --effects` dumps deterministically.
  std::map<std::string, Effects> function_effects;

  // Updating listeners whose effects are statically finite (writes and
  // write scope below ⊤, no interactive host calls): candidates for
  // parallel staged dispatch when pairwise non-interfering with the
  // rest of their run (browser plug-in checks Interferes per event).
  std::unordered_set<std::string> stageable_updating_functions;

  // Union of every name read anywhere in the page's modules; ⊤ when any
  // read is unanalyzable. Drives the XQSA036 dead-update lint.
  EffectSet all_reads;

  static std::string FunctionKey(const std::string& clark, size_t arity) {
    return clark + "#" + std::to_string(arity);
  }
};

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_FACTS_H_
