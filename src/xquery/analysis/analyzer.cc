#include "xquery/analysis/analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/strings.h"
#include "xquery/analysis/builtins.h"

namespace xqib::xquery::analysis {

namespace {

// ------------------------------------------------------ type lattice ---

// Coarse item classes: enough to catch comparisons that can only raise
// XPTY0004 at runtime, without a full XML Schema type system.
enum class ItemClass {
  kAnyItem,   // unknown / mixed
  kNode,
  kAnyAtomic, // atomic, family unknown
  kUntyped,
  kBoolean,
  kInteger,
  kDecimal,
  kDouble,
  kString,
  kDateTime,
  kDate,
  kTime,
};

bool IsNumeric(ItemClass c) {
  return c == ItemClass::kInteger || c == ItemClass::kDecimal ||
         c == ItemClass::kDouble;
}

// Comparison families: values from different families never compare
// successfully under XPath 2.0 value/general comparison rules.
enum class Family { kUnknown, kNumeric, kString, kBoolean, kDateTime };

Family FamilyOf(ItemClass c) {
  switch (c) {
    case ItemClass::kBoolean: return Family::kBoolean;
    case ItemClass::kInteger:
    case ItemClass::kDecimal:
    case ItemClass::kDouble: return Family::kNumeric;
    case ItemClass::kString: return Family::kString;
    case ItemClass::kDateTime:
    case ItemClass::kDate:
    case ItemClass::kTime: return Family::kDateTime;
    default: return Family::kUnknown;
  }
}

const char* ClassName(ItemClass c) {
  switch (c) {
    case ItemClass::kAnyItem: return "item()";
    case ItemClass::kNode: return "node()";
    case ItemClass::kAnyAtomic: return "xs:anyAtomicType";
    case ItemClass::kUntyped: return "xs:untypedAtomic";
    case ItemClass::kBoolean: return "xs:boolean";
    case ItemClass::kInteger: return "xs:integer";
    case ItemClass::kDecimal: return "xs:decimal";
    case ItemClass::kDouble: return "xs:double";
    case ItemClass::kString: return "xs:string";
    case ItemClass::kDateTime: return "xs:dateTime";
    case ItemClass::kDate: return "xs:date";
    case ItemClass::kTime: return "xs:time";
  }
  return "item()";
}

ItemClass Lub(ItemClass a, ItemClass b) {
  if (a == b) return a;
  if (a == ItemClass::kAnyItem || b == ItemClass::kAnyItem) {
    return ItemClass::kAnyItem;
  }
  if (a == ItemClass::kNode || b == ItemClass::kNode) {
    return ItemClass::kAnyItem;
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == ItemClass::kDouble || b == ItemClass::kDouble) {
      return ItemClass::kDouble;
    }
    return ItemClass::kDecimal;
  }
  return ItemClass::kAnyAtomic;
}

ItemClass ClassOfAtomicType(xdm::AtomicType t) {
  switch (t) {
    case xdm::AtomicType::kUntypedAtomic: return ItemClass::kUntyped;
    case xdm::AtomicType::kString: return ItemClass::kString;
    case xdm::AtomicType::kBoolean: return ItemClass::kBoolean;
    case xdm::AtomicType::kInteger: return ItemClass::kInteger;
    case xdm::AtomicType::kDecimal: return ItemClass::kDecimal;
    case xdm::AtomicType::kDouble: return ItemClass::kDouble;
    case xdm::AtomicType::kDateTime: return ItemClass::kDateTime;
    case xdm::AtomicType::kDate: return ItemClass::kDate;
    case xdm::AtomicType::kTime: return ItemClass::kTime;
    default: return ItemClass::kAnyAtomic;
  }
}

struct InferredType {
  ItemClass cls = ItemClass::kAnyItem;
  Cardinality card;  // default {0, unbounded}
};

InferredType Any() { return InferredType{}; }

InferredType Exactly(ItemClass cls, uint64_t n) {
  InferredType t;
  t.cls = cls;
  t.card.min = n;
  t.card.max = n;
  return t;
}

InferredType Singleton(ItemClass cls) { return Exactly(cls, 1); }

InferredType Optional(ItemClass cls) {
  InferredType t;
  t.cls = cls;
  t.card.min = 0;
  t.card.max = 1;
  return t;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == Cardinality::kUnbounded || b == Cardinality::kUnbounded) {
    return Cardinality::kUnbounded;
  }
  uint64_t s = a + b;
  return s < a ? Cardinality::kUnbounded : s;
}

// Converts a declared SequenceType: the item class is trusted, but the
// occurrence indicator is not tightened to a singleton because the
// evaluator does not enforce declared types at call boundaries — we
// must not let an unchecked annotation license a semantics-changing
// rewrite. Only "empty-sequence()" (vacuously safe) narrows.
InferredType FromDeclared(const SequenceType& st) {
  InferredType t;
  switch (st.item) {
    case SequenceType::ItemKind::kAtomic:
      t.cls = ClassOfAtomicType(st.atomic);
      break;
    case SequenceType::ItemKind::kAnyNode:
    case SequenceType::ItemKind::kElement:
    case SequenceType::ItemKind::kAttribute:
    case SequenceType::ItemKind::kText:
    case SequenceType::ItemKind::kDocument:
      t.cls = ItemClass::kNode;
      break;
    case SequenceType::ItemKind::kEmptySequence:
      t.card.min = 0;
      t.card.max = 0;
      break;
    case SequenceType::ItemKind::kAnyItem:
      break;
  }
  return t;
}

// ---------------------------------------------------- symbol tables ---

struct FnInfo {
  const FunctionDecl* decl = nullptr;
  bool from_context = false;  // declared by a context module
};

struct VarInfo {
  xml::QName name;
  InferredType type;
  size_t decl_pos = 0;
  bool used = false;
  bool track_unused = false;  // locals only; globals/params exempt
};

struct Scope {
  std::vector<VarInfo> vars;
};

bool IsConstantBoolean(const Expr& e, bool* value) {
  if (e.kind == ExprKind::kLiteral &&
      e.atom.type() == xdm::AtomicType::kBoolean) {
    *value = e.atom.bool_value();
    return true;
  }
  if (e.kind == ExprKind::kFunctionCall && e.kids.empty() &&
      e.qname.ns() == xml::kFnNamespace) {
    if (e.qname.local() == "true") {
      *value = true;
      return true;
    }
    if (e.qname.local() == "false") {
      *value = false;
      return true;
    }
  }
  return false;
}

// True when `e` is a root-only path ("/"): the whole document.
bool IsDocumentRootPath(const Expr& e) {
  return e.kind == ExprKind::kPath && e.root_anchored && e.steps.empty() &&
         e.kids.empty();
}

// ------------------------------------------------------ module walker ---

class ModuleAnalyzer {
 public:
  ModuleAnalyzer(const AnalyzerOptions& options, const Module& module,
                 const std::vector<const Module*>& context,
                 AnalysisResult* result)
      : options_(options), module_(module), context_(context),
        result_(result) {}

  void Run() {
    CollectSuppressions();
    CollectFunctions();
    CollectAssignedVars();
    CheckDuplicates();
    AnalyzeGlobals();
    AnalyzeFunctions();
    AnalyzeBody();
    ComputePurity();
    ComputeEffects();
    LintBehindListeners();
    LintEffectRules();
  }

 private:
  // ------------------------------------------------------ reporting ---

  void Report(const char* code, Severity severity, std::string message,
              size_t offset, size_t length) {
    if (severity != Severity::kError && suppressed_.count(code) > 0) return;
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.message = std::move(message);
    d.span = SpanAt(module_.source_text, offset, length);
    result_->diagnostics.push_back(std::move(d));
  }

  void CollectSuppressions() {
    for (const auto& [key, value] : module_.options) {
      size_t brace = key.rfind('}');
      std::string local =
          brace == std::string::npos ? key : key.substr(brace + 1);
      if (local != "lint") continue;
      // Value forms: "suppress:XQSA030 XQSA032" or a bare code list.
      std::string codes = value;
      size_t colon = codes.find(':');
      if (colon != std::string::npos) codes = codes.substr(colon + 1);
      std::string cur;
      for (char c : codes + " ") {
        if (c == ' ' || c == ',' || c == ';') {
          if (!cur.empty()) suppressed_.insert(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
    }
  }

  // ------------------------------------------------- symbol collection ---

  void CollectFunctions() {
    checked_fn_namespaces_.insert(
        "http://www.w3.org/2005/xquery-local-functions");
    auto add_module = [&](const Module& m, bool from_context) {
      if (m.is_library && !m.module_ns.empty()) {
        checked_fn_namespaces_.insert(m.module_ns);
      }
      for (const auto& fn : m.functions) {
        std::string key =
            AnalysisFacts::FunctionKey(fn->name.Clark(), fn->params.size());
        functions_[key] = FnInfo{fn.get(), from_context};
        arities_[fn->name.Clark()].insert(fn->params.size());
      }
    };
    for (const Module* m : context_) add_module(*m, true);
    add_module(module_, false);
  }

  void CheckDuplicates() {
    if (!options_.check_scopes) return;
    std::unordered_set<std::string> seen_fns;
    for (const auto& fn : module_.functions) {
      std::string key =
          AnalysisFacts::FunctionKey(fn->name.Clark(), fn->params.size());
      if (!seen_fns.insert(key).second) {
        Report("XQSA004", Severity::kError,
               "duplicate declaration of function " + fn->name.Lexical() +
                   "#" + std::to_string(fn->params.size()),
               fn->source_pos, fn->name.Lexical().size());
      }
    }
    std::unordered_set<std::string> seen_vars;
    for (const VarDecl& v : module_.variables) {
      if (!seen_vars.insert(v.name.Clark()).second) {
        Report("XQSA005", Severity::kError,
               "duplicate declaration of variable $" + v.name.Lexical(),
               v.source_pos, v.name.Lexical().size() + 1);
      }
    }
  }

  // Variables that are the target of any `$x := e` assignment. The
  // walker visits loop bodies once, in textual order, so a fact recorded
  // at a use site could be stale on a later iteration; assigned
  // variables therefore never carry an inferred type.
  void CollectAssignedVars() {
    std::vector<const Expr*> stack;
    auto push = [&](const Expr* e) { if (e != nullptr) stack.push_back(e); };
    for (const VarDecl& v : module_.variables) push(v.init.get());
    for (const auto& fn : module_.functions) push(fn->body.get());
    push(module_.body.get());
    for (const Module* m : context_) {
      for (const VarDecl& v : m->variables) push(v.init.get());
      for (const auto& fn : m->functions) push(fn->body.get());
      push(m->body.get());
    }
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == ExprKind::kAssign) {
        assigned_vars_.insert(e->qname.Clark());
      }
      for (const ExprPtr& kid : e->kids) push(kid.get());
      for (const ExprPtr& pred : e->predicates) push(pred.get());
      for (const Step& step : e->steps) {
        for (const ExprPtr& pred : step.predicates) push(pred.get());
      }
      for (const Clause& clause : e->clauses) push(clause.expr.get());
      push(e->where.get());
      for (const OrderSpec& spec : e->order_specs) push(spec.key.get());
      if (e->direct != nullptr) {
        std::vector<const DirectNode*> nodes{e->direct.get()};
        while (!nodes.empty()) {
          const DirectNode* n = nodes.back();
          nodes.pop_back();
          push(n->expr.get());
          for (const auto& attr : n->attrs) {
            for (const auto& part : attr.parts) push(part.expr.get());
          }
          for (const auto& kid : n->children) nodes.push_back(kid.get());
        }
      }
      if (e->ft != nullptr) {
        std::vector<const FtSelection*> sels{e->ft.get()};
        while (!sels.empty()) {
          const FtSelection* s = sels.back();
          sels.pop_back();
          push(s->words.get());
          for (const auto& kid : s->kids) sels.push_back(kid.get());
        }
      }
    }
  }

  // ------------------------------------------------------- var scopes ---

  VarInfo* Lookup(const xml::QName& name) {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (auto var = scope->vars.rbegin(); var != scope->vars.rend();
           ++var) {
        if (var->name == name) return &*var;
      }
    }
    return nullptr;
  }

  void Bind(const xml::QName& name, InferredType type, size_t pos,
            bool track_unused) {
    VarInfo v;
    v.name = name;
    v.type = assigned_vars_.count(name.Clark()) > 0 ? Any() : type;
    v.decl_pos = pos;
    v.track_unused = track_unused && options_.lint;
    scopes_.back().vars.push_back(std::move(v));
  }

  void PushScope() { scopes_.push_back(Scope{}); }

  void PopScope() {
    for (const VarInfo& v : scopes_.back().vars) {
      if (v.track_unused && !v.used) {
        Report("XQSA030", Severity::kWarning,
               "unused variable $" + v.name.Lexical(), v.decl_pos,
               v.name.Lexical().size() + 1);
      }
    }
    scopes_.pop_back();
  }

  // ------------------------------------------------------- top levels ---

  void AnalyzeGlobals() {
    PushScope();  // global scope, lives for the whole analysis
    for (const Module* m : context_) {
      for (const VarDecl& v : m->variables) {
        Bind(v.name, v.type.declared ? FromDeclared(v.type) : Any(),
             0, false);
      }
    }
    // Own globals: each initializer sees the declarations above it.
    for (const VarDecl& v : module_.variables) {
      InferredType init_type = Any();
      if (v.init != nullptr) {
        init_type = Walk(*v.init, UpdateCtx::Forbidden());
      }
      InferredType type =
          v.type.declared ? FromDeclared(v.type) : init_type;
      if (v.init == nullptr && !v.external && !v.type.declared) {
        type = InferredType{};  // declare variable $x; binds ()
        type.card.min = 0;
        type.card.max = 0;
      }
      if (v.external) type = Any();
      Bind(v.name, type, v.source_pos, false);
    }
  }

  void AnalyzeFunctions() {
    for (const auto& fn : module_.functions) {
      if (fn->body == nullptr) continue;
      PushScope();
      for (const Param& p : fn->params) {
        Bind(p.name, p.type.declared ? FromDeclared(p.type) : Any(),
             p.source_pos, false);
      }
      UpdateCtx ctx = (fn->updating || fn->sequential)
                          ? UpdateCtx::Allowed()
                          : UpdateCtx::NonUpdatingFunction();
      in_function_body_ = true;
      Walk(*fn->body, ctx);
      in_function_body_ = false;
      PopScope();
    }
  }

  void AnalyzeBody() {
    if (module_.body != nullptr) {
      // The main body is a statement context (Scripting Extension):
      // top-level updates are legal and apply at statement boundaries.
      Walk(*module_.body, UpdateCtx::Allowed());
    }
    PopScope();  // global scope
  }

  // -------------------------------------------------- update contexts ---

  struct UpdateCtx {
    bool allowed = false;
    // Which code to report when an updating expression appears anyway.
    const char* code = "XQSA020";

    static UpdateCtx Allowed() { return UpdateCtx{true, "XQSA020"}; }
    static UpdateCtx Forbidden() { return UpdateCtx{false, "XQSA020"}; }
    static UpdateCtx NonUpdatingFunction() {
      return UpdateCtx{false, "XQSA022"};
    }
    // Same report code, but updates no longer allowed (e.g. descending
    // from a statement position into an operand).
    UpdateCtx Operand() const { return UpdateCtx{false, code}; }
  };

  void ReportUpdateMisuse(const Expr& e, const UpdateCtx& ctx,
                          const std::string& what) {
    if (!options_.check_updates) return;
    std::string msg = what + " is not allowed in a non-updating context";
    if (std::string(ctx.code) == "XQSA022") {
      msg = what +
            " in a function not declared 'updating' (add `declare "
            "updating function` or `declare sequential function`)";
    }
    Report(ctx.code, Severity::kError, msg, e.source_pos, 1);
  }

  // ------------------------------------------------------ walker core ---

  InferredType Walk(const Expr& e, UpdateCtx ctx) {
    InferredType t = WalkInner(e, ctx);
    if (options_.infer_types) {
      result_->facts.cardinality[&e] = t.card;
    }
    return t;
  }

  void WalkKids(const Expr& e, UpdateCtx ctx) {
    for (const ExprPtr& kid : e.kids) {
      if (kid != nullptr) Walk(*kid, ctx);
    }
  }

  InferredType WalkInner(const Expr& e, UpdateCtx ctx) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Singleton(ClassOfAtomicType(e.atom.type()));

      case ExprKind::kVarRef: {
        VarInfo* var = Lookup(e.qname);
        if (var != nullptr) {
          var->used = true;
          return var->type;
        }
        // Variables in the browser namespace are host-bound at event
        // time ($browser:event, $browser:target, $browser:value).
        if (e.qname.ns() != xml::kBrowserNamespace && options_.check_scopes) {
          Report("XQSA001", Severity::kError,
                 "undefined variable $" + e.qname.Lexical(), e.source_pos,
                 e.qname.Lexical().size() + 1);
        }
        return Any();
      }

      case ExprKind::kContextItem:
        return Singleton(ItemClass::kAnyItem);

      case ExprKind::kSequence: {
        InferredType t;
        t.card.min = 0;
        t.card.max = 0;
        t.cls = ItemClass::kAnyItem;
        bool first = true;
        for (const ExprPtr& kid : e.kids) {
          InferredType kt = Walk(*kid, ctx);  // comma list: statement-ish
          t.card.min = SatAdd(t.card.min, kt.card.min);
          t.card.max = SatAdd(t.card.max, kt.card.max);
          t.cls = first ? kt.cls : Lub(t.cls, kt.cls);
          first = false;
        }
        return t;
      }

      case ExprKind::kRange: {
        InferredType lo = Walk(*e.kids[0], ctx.Operand());
        InferredType hi = Walk(*e.kids[1], ctx.Operand());
        InferredType t;
        t.cls = ItemClass::kInteger;
        // Literal bounds give an exact count (the bench/optimizer case
        // "for $i in 1 to N").
        if (e.kids[0]->kind == ExprKind::kLiteral &&
            e.kids[1]->kind == ExprKind::kLiteral &&
            e.kids[0]->atom.type() == xdm::AtomicType::kInteger &&
            e.kids[1]->atom.type() == xdm::AtomicType::kInteger) {
          int64_t a = e.kids[0]->atom.int_value();
          int64_t b = e.kids[1]->atom.int_value();
          uint64_t n = b < a ? 0 : static_cast<uint64_t>(b - a) + 1;
          t.card.min = n;
          t.card.max = n;
        } else if (lo.card.IsNonEmpty() && hi.card.IsNonEmpty()) {
          t.card.min = 0;  // may still be empty when hi < lo
          t.card.max = Cardinality::kUnbounded;
        }
        return t;
      }

      case ExprKind::kArith: {
        InferredType l = Walk(*e.kids[0], ctx.Operand());
        InferredType r = Walk(*e.kids[1], ctx.Operand());
        InferredType t;
        t.cls = ItemClass::kDouble;
        if (l.cls == ItemClass::kInteger && r.cls == ItemClass::kInteger &&
            e.arith_op != ArithOp::kDiv) {
          t.cls = ItemClass::kInteger;
        } else if (IsNumeric(l.cls) && IsNumeric(r.cls)) {
          t.cls = Lub(l.cls, r.cls);
        }
        t.card.min = (l.card.IsNonEmpty() && r.card.IsNonEmpty()) ? 1 : 0;
        t.card.max = 1;
        return t;
      }

      case ExprKind::kUnary: {
        InferredType op = Walk(*e.kids[0], ctx.Operand());
        InferredType t;
        t.cls = IsNumeric(op.cls) ? op.cls : ItemClass::kDouble;
        t.card.min = op.card.IsNonEmpty() ? 1 : 0;
        t.card.max = 1;
        return t;
      }

      case ExprKind::kComparison: {
        InferredType l = Walk(*e.kids[0], ctx.Operand());
        InferredType r = Walk(*e.kids[1], ctx.Operand());
        CheckComparableFamilies(e, l, r);
        bool general = e.comp_op <= CompOp::kGenGe;
        InferredType t;
        t.cls = ItemClass::kBoolean;
        t.card.min = general ? 1 : 0;  // value comps propagate ()
        t.card.max = 1;
        return t;
      }

      case ExprKind::kLogical:
        WalkKids(e, ctx.Operand());
        return Singleton(ItemClass::kBoolean);

      case ExprKind::kPath: {
        WalkKids(e, ctx.Operand());
        for (const Step& step : e.steps) {
          for (const ExprPtr& pred : step.predicates) {
            Walk(*pred, ctx.Operand());
          }
        }
        LintDescendantSteps(e);
        InferredType t;
        t.cls = ItemClass::kNode;
        return t;
      }

      case ExprKind::kFilter: {
        InferredType primary = Walk(*e.kids[0], ctx.Operand());
        for (const ExprPtr& pred : e.predicates) {
          Walk(*pred, ctx.Operand());
        }
        InferredType t;
        t.cls = primary.cls;
        t.card.min = 0;
        t.card.max = primary.card.max;
        return t;
      }

      case ExprKind::kFLWOR: {
        PushScope();
        uint64_t iterations_min = 1;
        uint64_t iterations_max = 1;
        for (const Clause& clause : e.clauses) {
          InferredType in = Walk(*clause.expr, ctx.Operand());
          if (clause.kind == Clause::Kind::kFor) {
            Bind(clause.var, Singleton(in.cls), clause.source_pos, true);
            if (!clause.pos_var.local().empty()) {
              Bind(clause.pos_var, Singleton(ItemClass::kInteger),
                   clause.source_pos, true);
            }
            iterations_min =
                (iterations_min != 0 && in.card.min != 0) ? 1 : 0;
            iterations_max = (in.card.max == 0 || iterations_max == 0)
                                 ? 0
                                 : Cardinality::kUnbounded;
          } else {
            Bind(clause.var, in, clause.source_pos, true);
          }
        }
        if (e.where != nullptr) {
          Walk(*e.where, ctx.Operand());
          iterations_min = 0;
        }
        for (const OrderSpec& spec : e.order_specs) {
          Walk(*spec.key, ctx.Operand());
        }
        InferredType ret = Walk(*e.kids[0], ctx);
        PopScope();
        InferredType t;
        t.cls = ret.cls;
        t.card.min = iterations_min ? ret.card.min : 0;
        t.card.max = iterations_max == 0 ? 0 : Cardinality::kUnbounded;
        if (iterations_max != 0 && iterations_min == 1 &&
            AllLetClauses(e)) {
          t.card = ret.card;  // let-only FLWOR: exactly the return
        }
        return t;
      }

      case ExprKind::kQuantified: {
        PushScope();
        for (const Clause& clause : e.clauses) {
          InferredType in = Walk(*clause.expr, ctx.Operand());
          Bind(clause.var, Singleton(in.cls), clause.source_pos, true);
        }
        Walk(*e.kids[0], ctx.Operand());
        PopScope();
        return Singleton(ItemClass::kBoolean);
      }

      case ExprKind::kIf: {
        Walk(*e.kids[0], ctx.Operand());
        bool cond_value = false;
        bool constant = IsConstantBoolean(*e.kids[0], &cond_value);
        if (constant && options_.lint) {
          const Expr& dead = cond_value ? *e.kids[2] : *e.kids[1];
          Report("XQSA031", Severity::kWarning,
                 std::string("unreachable ") +
                     (cond_value ? "else" : "then") +
                     " branch: condition is always " +
                     (cond_value ? "true" : "false"),
                 dead.source_pos != 0 ? dead.source_pos : e.source_pos, 1);
        }
        InferredType then_t = Walk(*e.kids[1], ctx);
        InferredType else_t = Walk(*e.kids[2], ctx);
        if (constant) return cond_value ? then_t : else_t;
        InferredType t;
        t.cls = Lub(then_t.cls, else_t.cls);
        t.card.min = std::min(then_t.card.min, else_t.card.min);
        t.card.max = std::max(then_t.card.max, else_t.card.max);
        return t;
      }

      case ExprKind::kFunctionCall:
        return WalkCall(e, ctx);

      case ExprKind::kCast: {
        Walk(*e.kids[0], ctx.Operand());
        if (e.cast_op == "instance" || e.cast_op == "castable") {
          return Singleton(ItemClass::kBoolean);
        }
        InferredType t = FromDeclared(e.seq_type);
        t.card.min = 0;
        t.card.max = std::max<uint64_t>(t.card.max, 1);
        return t;
      }

      case ExprKind::kTypeswitch: {
        Walk(*e.kids[0], ctx.Operand());
        InferredType t;
        bool first = true;
        for (size_t i = 0; i < e.clauses.size(); ++i) {
          const Clause& clause = e.clauses[i];
          PushScope();
          if (!clause.var.local().empty()) {
            Bind(clause.var, FromDeclared(e.case_types[i]),
                 clause.source_pos, false);
          }
          InferredType ct = Walk(*clause.expr, ctx);
          PopScope();
          t.cls = first ? ct.cls : Lub(t.cls, ct.cls);
          t.card.min = first ? ct.card.min
                             : std::min(t.card.min, ct.card.min);
          t.card.max = first ? ct.card.max
                             : std::max(t.card.max, ct.card.max);
          first = false;
        }
        PushScope();
        if (!e.qname.local().empty()) {
          Bind(e.qname, Any(), e.source_pos, false);
        }
        InferredType dt = Walk(*e.kids[1], ctx);
        PopScope();
        t.cls = first ? dt.cls : Lub(t.cls, dt.cls);
        t.card.min = first ? dt.card.min : std::min(t.card.min, dt.card.min);
        t.card.max = first ? dt.card.max : std::max(t.card.max, dt.card.max);
        return t;
      }

      case ExprKind::kSetOp: {
        WalkKids(e, ctx.Operand());
        InferredType t;
        t.cls = ItemClass::kNode;
        return t;
      }

      case ExprKind::kFtContains: {
        Walk(*e.kids[0], ctx.Operand());
        WalkFtSelection(e.ft.get(), ctx);
        return Singleton(ItemClass::kBoolean);
      }

      case ExprKind::kDirectElement:
        WalkDirect(e.direct.get(), ctx);
        return Singleton(ItemClass::kNode);

      case ExprKind::kComputedElement:
      case ExprKind::kComputedAttribute:
      case ExprKind::kComputedText:
      case ExprKind::kComputedComment:
      case ExprKind::kComputedPI:
        WalkKids(e, ctx.Operand());
        return Singleton(ItemClass::kNode);

      case ExprKind::kEnclosed:
        if (!e.kids.empty()) return Walk(*e.kids[0], ctx.Operand());
        return Any();

      // --- Update Facility ---
      case ExprKind::kInsert: {
        if (!ctx.allowed) ReportUpdateMisuse(e, ctx, "insert");
        if (in_function_body_) update_sites_.push_back(&e);
        WalkKids(e, ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kDelete: {
        if (!ctx.allowed) ReportUpdateMisuse(e, ctx, "delete");
        CheckNotDocumentRoot(e, "delete");
        WalkKids(e, ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kReplace: {
        if (!ctx.allowed) ReportUpdateMisuse(e, ctx, "replace");
        CheckNotDocumentRoot(e, "replace");
        if (in_function_body_) update_sites_.push_back(&e);
        WalkKids(e, ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kRename: {
        if (!ctx.allowed) ReportUpdateMisuse(e, ctx, "rename");
        if (in_function_body_) update_sites_.push_back(&e);
        WalkKids(e, ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kTransform: {
        // copy $c := src modify m return r — contained updates are legal
        // anywhere; the modify clause targets only the copy.
        Walk(*e.kids[0], ctx.Operand());
        PushScope();
        Bind(e.qname, Singleton(ItemClass::kNode), e.source_pos, false);
        Walk(*e.kids[1], UpdateCtx::Allowed());
        InferredType t = Walk(*e.kids[2], ctx.Operand());
        PopScope();
        return t;
      }

      // --- Scripting Extension ---
      case ExprKind::kBlock: {
        PushScope();
        InferredType t;
        t.card.min = 0;
        t.card.max = 0;
        for (const ExprPtr& kid : e.kids) {
          t = Walk(*kid, ctx);
        }
        PopScope();
        return t;
      }
      case ExprKind::kVarDecl: {
        InferredType init = Any();
        if (!e.kids.empty()) {
          init = Walk(*e.kids[0], ctx.Operand());
        } else {
          init.card.min = 0;
          init.card.max = 0;
        }
        Bind(e.qname, init, e.source_pos, true);
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kAssign: {
        VarInfo* var = Lookup(e.qname);
        if (var == nullptr) {
          if (e.qname.ns() != xml::kBrowserNamespace &&
              options_.check_scopes) {
            Report("XQSA001", Severity::kError,
                   "assignment to undeclared variable $" +
                       e.qname.Lexical(),
                   e.source_pos, e.qname.Lexical().size() + 1);
          }
        } else {
          var->used = true;
          InferredType value = Walk(*e.kids[0], ctx.Operand());
          var->type.cls = Lub(var->type.cls, value.cls);
          var->type.card.min = std::min(var->type.card.min, value.card.min);
          var->type.card.max = std::max(var->type.card.max, value.card.max);
          return Exactly(ItemClass::kAnyItem, 0);
        }
        if (!e.kids.empty()) Walk(*e.kids[0], ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kWhile: {
        Walk(*e.kids[0], ctx.Operand());
        Walk(*e.kids[1], ctx);
        return Any();
      }
      case ExprKind::kExitWith: {
        Walk(*e.kids[0], ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      }

      // --- Browser extensions ---
      case ExprKind::kEventAttach:
      case ExprKind::kEventDetach: {
        WalkKids(e, ctx.Operand());
        CheckListener(e);
        // `behind` listeners are candidates for off-thread completion
        // delivery; whether the listener is pure is only known after
        // ComputePurity, so remember the site and lint it in Run().
        if (e.kind == ExprKind::kEventAttach && e.behind) {
          behind_attaches_.push_back(&e);
        }
        if (e.kind == ExprKind::kEventAttach) {
          attach_sites_.push_back(&e);
        }
        return Exactly(ItemClass::kAnyItem, 0);
      }
      case ExprKind::kEventTrigger:
      case ExprKind::kSetStyle:
        WalkKids(e, ctx.Operand());
        return Exactly(ItemClass::kAnyItem, 0);
      case ExprKind::kGetStyle:
        WalkKids(e, ctx.Operand());
        return Singleton(ItemClass::kString);
    }
    return Any();
  }

  static bool AllLetClauses(const Expr& flwor) {
    for (const Clause& c : flwor.clauses) {
      if (c.kind != Clause::Kind::kLet) return false;
    }
    return flwor.where == nullptr;
  }

  void WalkFtSelection(const FtSelection* sel, UpdateCtx ctx) {
    if (sel == nullptr) return;
    if (sel->words != nullptr) Walk(*sel->words, ctx.Operand());
    for (const auto& kid : sel->kids) WalkFtSelection(kid.get(), ctx);
  }

  void WalkDirect(const DirectNode* node, UpdateCtx ctx) {
    if (node == nullptr) return;
    if (node->expr != nullptr) Walk(*node->expr, ctx.Operand());
    for (const auto& attr : node->attrs) {
      for (const auto& part : attr.parts) {
        if (part.expr != nullptr) Walk(*part.expr, ctx.Operand());
      }
    }
    for (const auto& kid : node->children) WalkDirect(kid.get(), ctx);
  }

  // ----------------------------------------------------------- calls ---

  InferredType WalkCall(const Expr& e, UpdateCtx ctx) {
    for (const ExprPtr& arg : e.kids) Walk(*arg, ctx.Operand());
    size_t arity = e.kids.size();
    const std::string& ns = e.qname.ns();
    const std::string& local = e.qname.local();

    if (ns == xml::kXsNamespace) {
      if (options_.check_scopes) {
        if (!IsXsConstructor(local)) {
          Report("XQSA002", Severity::kError,
                 "unknown type constructor xs:" + local, e.source_pos,
                 local.size() + 3);
        } else if (arity != 1) {
          Report("XQSA003", Severity::kError,
                 "xs:" + local + " expects 1 argument, got " +
                     std::to_string(arity),
                 e.source_pos, local.size() + 3);
        }
      }
      InferredType t = Optional(ItemClass::kAnyAtomic);
      if (local == "string" || local == "anyURI") {
        t.cls = ItemClass::kString;
      } else if (local == "boolean") {
        t.cls = ItemClass::kBoolean;
      } else if (local == "integer" || local == "int") {
        t.cls = ItemClass::kInteger;
      } else if (local == "decimal") {
        t.cls = ItemClass::kDecimal;
      } else if (local == "double" || local == "float") {
        t.cls = ItemClass::kDouble;
      } else if (local == "untypedAtomic") {
        t.cls = ItemClass::kUntyped;
      }
      return t;
    }

    if (ns == xml::kFnNamespace) {
      const BuiltinSignature* sig = FindFnBuiltin(local);
      if (options_.check_scopes) {
        if (sig == nullptr) {
          Report("XQSA002", Severity::kError,
                 "unknown function fn:" + local, e.source_pos,
                 local.size());
        } else if (static_cast<int>(arity) < sig->min_arity ||
                   (sig->max_arity >= 0 &&
                    static_cast<int>(arity) > sig->max_arity)) {
          Report("XQSA003", Severity::kError,
                 "fn:" + local + " expects " + ArityRange(*sig) +
                     " argument(s), got " + std::to_string(arity),
                 e.source_pos, local.size());
        }
      }
      return BuiltinReturnType(e, local);
    }

    if (checked_fn_namespaces_.count(ns) > 0) {
      std::string key = AnalysisFacts::FunctionKey(e.qname.Clark(), arity);
      auto it = functions_.find(key);
      if (it == functions_.end()) {
        if (options_.check_scopes) {
          auto known = arities_.find(e.qname.Clark());
          if (known == arities_.end()) {
            Report("XQSA002", Severity::kError,
                   "undefined function " + e.qname.Lexical() + "#" +
                       std::to_string(arity),
                   e.source_pos, local.size());
          } else {
            Report("XQSA003", Severity::kError,
                   "function " + e.qname.Lexical() + " called with " +
                       std::to_string(arity) +
                       " argument(s); declared arity: " +
                       AritiesOf(known->second),
                   e.source_pos, local.size());
          }
        }
        return Any();
      }
      const FunctionDecl* decl = it->second.decl;
      if (decl->updating && !ctx.allowed) {
        ReportUpdateMisuse(e, ctx,
                           "call to updating function " + decl->name.Lexical());
      }
      if (decl->return_type.declared) {
        return FromDeclared(decl->return_type);
      }
      return Any();
    }

    // Other namespaces (browser:, http:, imported web services) resolve
    // to host-provided externals at run time; they are not checked.
    return Any();
  }

  static std::string ArityRange(const BuiltinSignature& sig) {
    if (sig.max_arity < 0) {
      return std::to_string(sig.min_arity) + "+";
    }
    if (sig.min_arity == sig.max_arity) {
      return std::to_string(sig.min_arity);
    }
    return std::to_string(sig.min_arity) + ".." +
           std::to_string(sig.max_arity);
  }

  static std::string AritiesOf(const std::set<size_t>& arities) {
    std::string out;
    for (size_t a : arities) {
      if (!out.empty()) out += ", ";
      out += std::to_string(a);
    }
    return out;
  }

  InferredType BuiltinReturnType(const Expr& e, const std::string& local) {
    if (local == "count" || local == "position" || local == "last" ||
        local == "string-length" || local == "length") {
      return Singleton(ItemClass::kInteger);
    }
    if (local == "exists" || local == "empty" || local == "boolean" ||
        local == "not" || local == "true" || local == "false" ||
        local == "contains" || local == "starts-with" ||
        local == "ends-with" || local == "matches" ||
        local == "doc-available" || local == "deep-equal") {
      return Singleton(ItemClass::kBoolean);
    }
    if (local == "string" || local == "concat" || local == "substring" ||
        local == "string-join" || local == "upper-case" ||
        local == "lower-case" || local == "translate" ||
        local == "normalize-space" || local == "replace" ||
        local == "encode-for-uri" || local == "name" ||
        local == "local-name" || local == "namespace-uri" ||
        local == "substring-before" || local == "substring-after") {
      return Singleton(ItemClass::kString);
    }
    if (local == "number") return Singleton(ItemClass::kDouble);
    if (local == "sum") return Singleton(ItemClass::kAnyAtomic);
    if (local == "avg" || local == "min" || local == "max" ||
        local == "abs" || local == "ceiling" || local == "floor" ||
        local == "round") {
      return Optional(ItemClass::kAnyAtomic);
    }
    if (local == "exactly-one" && !e.kids.empty()) {
      InferredType t;
      t.cls = ItemClass::kAnyItem;
      t.card.min = 1;
      t.card.max = 1;
      return t;
    }
    return Any();
  }

  // ----------------------------------------------------- type checks ---

  void CheckComparableFamilies(const Expr& e, const InferredType& l,
                               const InferredType& r) {
    if (!options_.infer_types) return;
    if (e.comp_op == CompOp::kIs || e.comp_op == CompOp::kPrecedes ||
        e.comp_op == CompOp::kFollows) {
      return;
    }
    Family lf = FamilyOf(l.cls);
    Family rf = FamilyOf(r.cls);
    if (lf == Family::kUnknown || rf == Family::kUnknown) return;
    if (lf == rf) return;
    if (!l.card.IsNonEmpty() || !r.card.IsNonEmpty()) return;
    Report("XQSA010", Severity::kError,
           "comparison of " + std::string(ClassName(l.cls)) + " to " +
               ClassName(r.cls) +
               " can never succeed (raises XPTY0004 at run time)",
           e.source_pos, 1);
  }

  void CheckNotDocumentRoot(const Expr& e, const char* what) {
    if (!options_.check_updates) return;
    const Expr* target = e.kids.empty() ? nullptr : e.kids[0].get();
    if (target != nullptr && IsDocumentRootPath(*target)) {
      Report("XQSA021", Severity::kError,
             std::string(what) + " of the document root is not allowed",
             target->source_pos != 0 ? target->source_pos : e.source_pos, 1);
    }
  }

  void CheckListener(const Expr& e) {
    if (!options_.check_scopes) return;
    const std::string& ns = e.qname.ns();
    if (checked_fn_namespaces_.count(ns) == 0) return;
    if (arities_.count(e.qname.Clark()) == 0) {
      Report("XQSA002", Severity::kError,
             "undefined listener function " + e.qname.Lexical(),
             e.source_pos, e.qname.Lexical().size());
    }
  }

  // ------------------------------------------------------------ lint ---

  void LintDescendantSteps(const Expr& path) {
    if (!options_.lint) return;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const Step& step = path.steps[i];
      bool is_dos = step.axis == Axis::kDescendantOrSelf &&
                    step.test.kind == NodeTest::Kind::kAnyKind &&
                    step.predicates.empty();
      if (!is_dos) continue;
      // Mirrors the optimizer's CollapseDescendantSteps precondition:
      // the '//' collapses only into a following predicate-free child
      // step.
      bool collapsible = i + 1 < path.steps.size() &&
                         path.steps[i + 1].axis == Axis::kChild &&
                         path.steps[i + 1].predicates.empty();
      if (!collapsible) {
        Report("XQSA032", Severity::kInfo,
               "descendant step '//' cannot be collapsed by the "
               "optimizer here (following step is predicated or not a "
               "child step); consider an explicit axis",
               path.source_pos, 2);
      }
    }
  }

  // ---------------------------------------------------------- purity ---

  void ComputePurity() {
    // Collect every declared function (context + analyzed module) and
    // its call edges, then run impurity to a fixpoint over the joint
    // call graph: a listener is pure only if everything it can reach is.
    struct Node {
      const FunctionDecl* decl;
      std::vector<std::string> calls;
      bool impure = false;
      bool observable = false;   // reaches alert/prompt/confirm/trace
      bool interactive = false;  // reaches prompt/confirm (blocks on input)
    };
    std::map<std::string, Node> graph;
    auto add = [&](const Module& m) {
      for (const auto& fn : m.functions) {
        Node node;
        node.decl = fn.get();
        if (fn->external || fn->body == nullptr) {
          node.impure = true;
        } else {
          observes_host_ = false;
          interacts_host_ = false;
          node.impure = !SyntacticallyPure(*fn->body, &node.calls);
          node.observable = observes_host_;
          node.interactive = interacts_host_;
        }
        graph[AnalysisFacts::FunctionKey(fn->name.Clark(),
                                         fn->params.size())] =
            std::move(node);
      }
    };
    for (const Module* m : context_) add(*m);
    add(module_);

    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [key, node] : graph) {
        if (node.impure) continue;
        for (const std::string& callee : node.calls) {
          auto it = graph.find(callee);
          if (it == graph.end() || it->second.impure) {
            node.impure = true;
            changed = true;
            break;
          }
        }
      }
    }
    // Observability propagates along the same call edges: a function
    // reaching an alert/prompt/confirm/trace call stays pure (no DOM
    // mutation) but must still run on every dispatch.
    changed = true;
    while (changed) {
      changed = false;
      for (auto& [key, node] : graph) {
        if (node.observable && node.interactive) continue;
        for (const std::string& callee : node.calls) {
          auto it = graph.find(callee);
          if (it == graph.end()) continue;
          if (it->second.observable && !node.observable) {
            node.observable = true;
            changed = true;
          }
          // Interactivity rides the same edges: a dialog that waits for
          // user input anywhere in the call tree forces the whole
          // listener back onto the loop thread.
          if (it->second.interactive && !node.interactive) {
            node.interactive = true;
            changed = true;
          }
        }
      }
    }
    for (const auto& [key, node] : graph) {
      if (!node.impure) {
        result_->facts.pure_functions.insert(key);
        if (!node.observable) {
          result_->facts.memoizable_functions.insert(key);
        }
        if (!node.interactive) {
          result_->facts.parallel_safe_functions.insert(key);
        }
      }
    }
  }

  // Reports XQSA033 for every `behind` attach whose listener function
  // applies updates (or reaches code the analyzer cannot prove pure):
  // the asynchronous completion then cannot be delivered off-thread and
  // serializes the dispatch pipeline. Runs after ComputePurity.
  void LintBehindListeners() {
    if (!options_.lint) return;
    for (const Expr* e : behind_attaches_) {
      const std::string clark = e->qname.Clark();
      auto it = arities_.find(clark);
      if (it == arities_.end()) continue;  // XQSA002 already reported
      bool any_pure = false;
      for (size_t arity : it->second) {
        if (result_->facts.pure_functions.count(
                AnalysisFacts::FunctionKey(clark, arity)) > 0) {
          any_pure = true;
          break;
        }
      }
      if (any_pure) continue;
      size_t offset, length;
      ListenerNameSpan(*e, &offset, &length);
      Report("XQSA033", Severity::kWarning,
             "'behind' listener " + e->qname.Lexical() +
                 " applies XQuery updates; its asynchronous completion "
                 "must run on the event-loop thread and cannot be "
                 "delivered off-thread",
             offset, length);
    }
  }

  // Anchors a diagnostic span on the listener-name token of an attach/
  // detach site: scan forward from the expression start past the
  // `listener` keyword (the AST does not record the token's own offset).
  void ListenerNameSpan(const Expr& e, size_t* offset, size_t* length) {
    *offset = e.source_pos;
    *length = e.qname.Lexical().size();
    const std::string& src = module_.source_text;
    size_t kw = src.find("listener", e.source_pos);
    if (kw == std::string::npos) return;
    size_t name = kw + 8;  // past "listener"
    while (name < src.size() &&
           std::isspace(static_cast<unsigned char>(src[name]))) {
      ++name;
    }
    size_t end = name;
    while (end < src.size() &&
           (std::isalnum(static_cast<unsigned char>(src[end])) ||
            src[end] == ':' || src[end] == '_' || src[end] == '-' ||
            src[end] == '.')) {
      ++end;
    }
    if (end > name) {
      *offset = name;
      *length = end - name;
    }
  }

  // --------------------------------------------------------- effects ---

  // Runs the effect-analysis fixpoint (effects.h) over the joint module
  // set and publishes the summaries: per-function read/write sets, the
  // page-wide observed-read union, and the set of updating listeners
  // whose effects are finite enough for staged parallel dispatch.
  void ComputeEffects() {
    for (const Module* m : context_) effects_.AddContextModule(m);
    effects_.Run(module_);
    result_->facts.function_effects = effects_.function_effects();
    result_->facts.all_reads = effects_.all_reads();
    for (const auto& [key, eff] : result_->facts.function_effects) {
      if (eff.has_update && !eff.interacts && !eff.writes.top &&
          !eff.write_scope.top) {
        result_->facts.stageable_updating_functions.insert(key);
      }
    }
  }

  // Merged effect summary of a listener function across its declared
  // arities (dispatch may invoke any of them depending on the event
  // payload). False when no arity has a summary.
  bool ListenerEffectSummary(const std::string& clark, Effects* out) {
    auto it = arities_.find(clark);
    if (it == arities_.end()) return false;
    bool any = false;
    for (size_t arity : it->second) {
      auto fe = result_->facts.function_effects.find(
          AnalysisFacts::FunctionKey(clark, arity));
      if (fe == result_->facts.function_effects.end()) continue;
      out->MergeFrom(fe->second);
      any = true;
    }
    return any;
  }

  // XQSA034: same-event listener pairs whose effects interfere (one
  // side writes what the other reads or writes), making registration
  // order semantically load-bearing. XQSA035: memoizable listeners
  // whose read set is ⊤, so every mutation evicts their memo entry.
  // XQSA036: updates whose written names nothing in the page observes.
  void LintEffectRules() {
    if (!options_.lint) return;

    struct AttachInfo {
      const Expr* site;
      std::string event;
      Effects effects;
    };
    std::map<std::string, std::vector<AttachInfo>> by_event;
    for (const Expr* e : attach_sites_) {
      // XQSA035 first: applies to every attach of a memoizable listener.
      const std::string clark = e->qname.Clark();
      Effects merged;
      if (!ListenerEffectSummary(clark, &merged)) continue;
      bool memoizable = false;
      auto ar = arities_.find(clark);
      for (size_t arity : ar->second) {
        if (result_->facts.memoizable_functions.count(
                AnalysisFacts::FunctionKey(clark, arity)) > 0) {
          memoizable = true;
          break;
        }
      }
      if (memoizable && merged.reads_top()) {
        size_t offset, length;
        ListenerNameSpan(*e, &offset, &length);
        Report("XQSA035", Severity::kWarning,
               "memoizable listener " + e->qname.Lexical() +
                   " has an unanalyzable read set (wildcard step, reverse "
                   "axis, or dynamic access): every DOM mutation "
                   "invalidates its memo entry; name the elements it "
                   "reads to enable fine-grained invalidation",
               offset, length);
      }
      // Group synchronous attaches with literal event names for the
      // XQSA034 interference matrix. `behind` completions are delivered
      // by their own dispatch and are covered by XQSA033.
      if (e->behind || e->kids.empty() ||
          e->kids[0]->kind != ExprKind::kLiteral) {
        continue;
      }
      by_event[e->kids[0]->atom.ToXPathString()].push_back(
          AttachInfo{e, e->kids[0]->atom.ToXPathString(),
                     std::move(merged)});
    }
    for (auto& [event, sites] : by_event) {
      for (size_t i = 0; i < sites.size(); ++i) {
        for (size_t j = i + 1; j < sites.size(); ++j) {
          if (!Interferes(sites[i].effects, sites[j].effects)) continue;
          // Anchor on the later site in source order: that's the
          // registration whose placement relative to the other matters.
          const AttachInfo& second =
              sites[i].site->source_pos <= sites[j].site->source_pos
                  ? sites[j]
                  : sites[i];
          const AttachInfo& first = &second == &sites[j] ? sites[i]
                                                         : sites[j];
          size_t offset, length;
          ListenerNameSpan(*second.site, &offset, &length);
          Report("XQSA034", Severity::kWarning,
                 "listeners " + first.site->qname.Lexical() + " and " +
                     second.site->qname.Lexical() + " on event \"" +
                     event +
                     "\" have interfering effects; their registration "
                     "order is semantically load-bearing and they cannot "
                     "be dispatched in parallel",
                 offset, length);
        }
      }
    }

    const EffectSet& observed = result_->facts.all_reads;
    for (const Expr* e : update_sites_) {
      Effects ue = effects_.ExprEffects(*e);
      if (!ue.has_update) continue;
      if (ue.writes.top || ue.write_scope.top) continue;
      if (observed.top || ue.write_scope.Intersects(observed)) continue;
      const char* kw = e->kind == ExprKind::kInsert    ? "insert"
                       : e->kind == ExprKind::kReplace ? "replace"
                                                       : "rename";
      Report("XQSA036", Severity::kWarning,
             std::string(kw) + " writes only to " +
                 RenderEffectSet(ue.write_scope) +
                 ", which no listener or query in this page reads — "
                 "dead update",
             e->source_pos, std::string(kw).size());
    }
  }

  // True when the expression tree contains no DOM/BOM mutation and no
  // calls outside the analyzable world; declared-function calls are
  // emitted into `calls` for the fixpoint.
  bool SyntacticallyPure(const Expr& e, std::vector<std::string>* calls) {
    switch (e.kind) {
      case ExprKind::kInsert:
      case ExprKind::kDelete:
      case ExprKind::kReplace:
      case ExprKind::kRename:
      case ExprKind::kAssign:
      case ExprKind::kEventAttach:
      case ExprKind::kEventDetach:
      case ExprKind::kEventTrigger:
      case ExprKind::kSetStyle:
        return false;
      case ExprKind::kFunctionCall: {
        const std::string& ns = e.qname.ns();
        if (ns == xml::kFnNamespace) {
          // put/doc touch documents outside the evaluation snapshot.
          if (e.qname.local() == "put" || e.qname.local() == "doc" ||
              e.qname.local() == "doc-available") {
            return false;
          }
          if (e.qname.local() == "trace") {
            observes_host_ = true;  // pure, but emits diagnostic output
          }
        } else if (ns == xml::kBrowserNamespace) {
          // Read-only / chrome-only browser functions.
          if (e.qname.local() != "alert" && e.qname.local() != "prompt" &&
              e.qname.local() != "confirm") {
            return false;
          }
          observes_host_ = true;  // pure, but the user sees a dialog
          if (e.qname.local() != "alert") {
            // prompt/confirm block on user input: a worker could not
            // buffer-and-replay them, so they pin the listener to the
            // loop thread (facts.parallel_safe_functions).
            interacts_host_ = true;
          }
        } else if (ns != xml::kXsNamespace &&
                   checked_fn_namespaces_.count(ns) == 0) {
          return false;  // unknown external code
        } else if (checked_fn_namespaces_.count(ns) > 0) {
          calls->push_back(
              AnalysisFacts::FunctionKey(e.qname.Clark(), e.kids.size()));
        }
        break;
      }
      default:
        break;
    }
    for (const ExprPtr& kid : e.kids) {
      if (kid != nullptr && !SyntacticallyPure(*kid, calls)) return false;
    }
    for (const Step& step : e.steps) {
      for (const ExprPtr& pred : step.predicates) {
        if (!SyntacticallyPure(*pred, calls)) return false;
      }
    }
    for (const ExprPtr& pred : e.predicates) {
      if (!SyntacticallyPure(*pred, calls)) return false;
    }
    for (const Clause& clause : e.clauses) {
      if (clause.expr != nullptr &&
          !SyntacticallyPure(*clause.expr, calls)) {
        return false;
      }
    }
    if (e.where != nullptr && !SyntacticallyPure(*e.where, calls)) {
      return false;
    }
    for (const OrderSpec& spec : e.order_specs) {
      if (!SyntacticallyPure(*spec.key, calls)) return false;
    }
    if (e.direct != nullptr && !DirectPure(*e.direct, calls)) return false;
    if (e.ft != nullptr && !FtPure(*e.ft, calls)) return false;
    return true;
  }

  bool DirectPure(const DirectNode& node,
                  std::vector<std::string>* calls) {
    if (node.expr != nullptr && !SyntacticallyPure(*node.expr, calls)) {
      return false;
    }
    for (const auto& attr : node.attrs) {
      for (const auto& part : attr.parts) {
        if (part.expr != nullptr &&
            !SyntacticallyPure(*part.expr, calls)) {
          return false;
        }
      }
    }
    for (const auto& kid : node.children) {
      if (!DirectPure(*kid, calls)) return false;
    }
    return true;
  }

  bool FtPure(const FtSelection& sel, std::vector<std::string>* calls) {
    if (sel.words != nullptr && !SyntacticallyPure(*sel.words, calls)) {
      return false;
    }
    for (const auto& kid : sel.kids) {
      if (!FtPure(*kid, calls)) return false;
    }
    return true;
  }

  // -------------------------------------------------------- members ---

  const AnalyzerOptions& options_;
  const Module& module_;
  const std::vector<const Module*>& context_;
  AnalysisResult* result_;

  std::vector<Scope> scopes_;
  std::unordered_map<std::string, FnInfo> functions_;  // Clark#arity
  std::map<std::string, std::set<size_t>> arities_;    // Clark -> arities
  std::unordered_set<std::string> checked_fn_namespaces_;
  std::unordered_set<std::string> suppressed_;
  std::unordered_set<std::string> assigned_vars_;  // Clark names
  // Set by SyntacticallyPure when the function body reaches an
  // observable host interaction (alert/prompt/confirm, fn:trace);
  // captured per-function by ComputePurity.
  bool observes_host_ = false;
  // Set alongside observes_host_ for the blocking subset
  // (prompt/confirm): these cannot be buffered by a pool worker.
  bool interacts_host_ = false;
  // `behind` attach sites recorded during the walk, linted by
  // LintBehindListeners once purity facts exist.
  std::vector<const Expr*> behind_attaches_;
  // Every attach site (XQSA034/035) and every insert/replace/rename
  // inside a declared function body (XQSA036), linted once effect
  // summaries exist.
  std::vector<const Expr*> attach_sites_;
  std::vector<const Expr*> update_sites_;
  bool in_function_body_ = false;
  EffectAnalysis effects_;
};

}  // namespace

Status AnalysisResult::ToStatus() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return d.ToStatus();
  }
  return Status();
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(options) {}

void Analyzer::AddContextModule(const Module& module) {
  context_modules_.push_back(&module);
}

AnalysisResult Analyzer::Analyze(const Module& module) const {
  AnalysisResult result;
  ModuleAnalyzer walker(options_, module, context_modules_, &result);
  walker.Run();
  // Stable order for rendering and golden tests: by source position,
  // then by code.
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.offset != b.span.offset) {
                       return a.span.offset < b.span.offset;
                     }
                     return a.code < b.code;
                   });
  return result;
}

}  // namespace xqib::xquery::analysis
