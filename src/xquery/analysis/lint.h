// Whole-page linting: runs the static analyzer over every XQuery script
// block and XQuery-looking inline handler of an XHTML page, with the
// page's scripts as each other's static context (mirroring the plug-in's
// joint load-time analysis, so xq_lint and the browser agree). Shared by
// the xq_lint CLI and the golden-diagnostics test.

#ifndef XQIB_XQUERY_ANALYSIS_LINT_H_
#define XQIB_XQUERY_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "xquery/analysis/analyzer.h"

namespace xqib::xquery::analysis {

// One analyzed unit of a page: a <script> block or an inline handler.
struct LintUnit {
  std::string label;   // "script 1", "onclick handler on <input>", ...
  std::vector<Diagnostic> diagnostics;
  // Deterministic effect-summary lines from the analyzer's effect pass
  // ("local:render#1: reads={item} writes={} scope={} pure"), one per
  // declared function plus a page-wide read-set line. Rendered by
  // xq_lint --effects.
  std::vector<std::string> effects;
};

struct LintReport {
  std::vector<LintUnit> units;

  bool has_errors() const;
  bool has_warnings() const;
  // All diagnostics flattened, each prefixed with its unit label.
  std::vector<std::string> RenderAll() const;
  // All effect-summary lines flattened, each prefixed with its unit
  // label (xq_lint --effects).
  std::vector<std::string> RenderEffects() const;
  std::string ToJson() const;
};

// Lints a standalone XQuery module (one unit labeled "query").
// Parse/lex failures are reported as an error diagnostic, not a Status.
LintReport LintQuery(const std::string& source,
                     const AnalyzerOptions& options = AnalyzerOptions());

// Lints every XQuery script and inline handler of an XHTML page.
// Returns a Status error only when the page itself is not parseable XML.
Result<LintReport> LintXhtml(const std::string& page_source,
                             const AnalyzerOptions& options =
                                 AnalyzerOptions());

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_LINT_H_
