#include "xquery/analysis/builtins.h"

#include <unordered_map>
#include <unordered_set>

namespace xqib::xquery::analysis {

const BuiltinSignature* FindFnBuiltin(const std::string& local) {
  static const std::unordered_map<std::string, BuiltinSignature>* kTable =
      new std::unordered_map<std::string, BuiltinSignature>{
          // --- context ---
          {"position", {0, 0}},
          {"last", {0, 0}},
          // --- accessors / conversion ---
          {"string", {0, 1}},
          {"data", {1, 1}},
          {"number", {0, 1}},
          {"name", {0, 1}},
          {"local-name", {0, 1}},
          {"namespace-uri", {0, 1}},
          {"node-name", {1, 1}},
          {"root", {0, 1}},
          {"boolean", {1, 1}},
          {"not", {1, 1}},
          {"true", {0, 0}},
          {"false", {0, 0}},
          // --- numeric / aggregate ---
          {"count", {1, 1}},
          {"abs", {1, 1}},
          {"ceiling", {1, 1}},
          {"floor", {1, 1}},
          {"round", {1, 1}},
          {"sum", {1, 2}},
          {"avg", {1, 1}},
          {"min", {1, 1}},
          {"max", {1, 1}},
          // --- strings ---
          {"concat", {2, -1}},
          {"string-join", {2, 2}},
          {"substring", {2, 3}},
          {"string-length", {0, 1}},
          {"length", {1, 1}},
          {"upper-case", {1, 1}},
          {"lower-case", {1, 1}},
          {"contains", {2, 2}},
          {"starts-with", {2, 2}},
          {"ends-with", {2, 2}},
          {"substring-before", {2, 2}},
          {"substring-after", {2, 2}},
          {"translate", {3, 3}},
          {"normalize-space", {0, 1}},
          {"compare", {2, 2}},
          {"codepoints-to-string", {1, 1}},
          {"string-to-codepoints", {1, 1}},
          {"matches", {2, 2}},
          {"replace", {3, 3}},
          {"tokenize", {2, 2}},
          {"encode-for-uri", {1, 1}},
          // --- sequences ---
          {"empty", {1, 1}},
          {"exists", {1, 1}},
          {"distinct-values", {1, 1}},
          {"reverse", {1, 1}},
          {"subsequence", {2, 3}},
          {"insert-before", {3, 3}},
          {"remove", {2, 2}},
          {"index-of", {2, 2}},
          {"exactly-one", {1, 1}},
          {"zero-or-one", {1, 1}},
          {"one-or-more", {1, 1}},
          {"deep-equal", {2, 2}},
          // --- documents ---
          {"doc", {1, 1}},
          {"doc-available", {1, 1}},
          {"put", {2, 2}},
          {"id", {1, 2}},
          // --- date/time ---
          {"current-dateTime", {0, 0}},
          {"current-date", {0, 0}},
          {"current-time", {0, 0}},
          {"year-from-dateTime", {1, 1}},
          {"month-from-dateTime", {1, 1}},
          {"day-from-dateTime", {1, 1}},
          {"hours-from-dateTime", {1, 1}},
          {"minutes-from-dateTime", {1, 1}},
          {"seconds-from-dateTime", {1, 1}},
          {"year-from-date", {1, 1}},
          {"month-from-date", {1, 1}},
          {"day-from-date", {1, 1}},
          {"hours-from-time", {1, 1}},
          {"minutes-from-time", {1, 1}},
          {"seconds-from-time", {1, 1}},
          // --- misc ---
          {"error", {0, 3}},
          {"serialize", {1, 1}},
          {"trace", {2, 2}},
      };
  auto it = kTable->find(local);
  return it == kTable->end() ? nullptr : &it->second;
}

bool IsXsConstructor(const std::string& local) {
  static const std::unordered_set<std::string>* kCtors =
      new std::unordered_set<std::string>{
          "string", "boolean", "integer", "int", "decimal", "double",
          "float", "anyURI", "untypedAtomic", "dateTime", "date", "time",
      };
  return kCtors->count(local) > 0;
}

}  // namespace xqib::xquery::analysis
