// Static effect analysis: per-expression and per-function read/write
// sets over interned element/attribute names.
//
// A bottom-up abstract interpretation computes, for every declared
// function (fixpoint over the call graph, like the purity fixpoints)
// and for the module body, which QName tokens an evaluation may touch:
//
//   child_reads   names examined structurally — a path step naming N
//                 reads N nodes' existence, names and child lists.
//   value_reads   names whose full subtree content may be atomized or
//                 serialized (final path steps, get-style targets).
//   writes        names directly modified by XQUF primitives: the
//                 update target's name plus every element/attribute
//                 name that inserted content or a rename can introduce.
//   write_scope   writes plus the ancestor chain of a root-anchored
//                 target path — every name whose *content* the update
//                 changes. ⊤ when the target is not a root-anchored
//                 child/attribute chain of concrete names.
//
// Each set carries a ⊤ element for the unanalyzable cases: wildcard
// node tests, reverse/sideways axes, computed constructors with dynamic
// names, fn:id/fn:root/browser BOM access, dynamic update targets,
// assignment to module globals. ⊤ is absorbing under union; sets only
// grow during the fixpoint, and the name alphabet of a module is
// finite, so recursion converges without widening.
//
// Consumers: name-granular memo/index invalidation (xml::Document per-
// name mutation counters), the listener interference matrix that lets
// provably disjoint updating listeners join parallel staged runs
// (browser::ListenerEffects), and lints XQSA034/035/036.

#ifndef XQIB_XQUERY_ANALYSIS_EFFECTS_H_
#define XQIB_XQUERY_ANALYSIS_EFFECTS_H_

#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "xml/interning.h"
#include "xquery/ast.h"

namespace xqib::xquery::analysis {

// A set of interned names with a ⊤ element. `names` is kept sorted by
// pointer and deduplicated; ⊤ clears it (⊤ absorbs every name).
struct EffectSet {
  bool top = false;
  std::vector<const xml::InternedName*> names;

  void AddName(const xml::InternedName* name);
  void MakeTop();
  // Union; returns true when this set changed.
  bool AddAll(const EffectSet& other);
  bool Contains(const xml::InternedName* name) const;
  // Set intersection is non-empty. ⊤ ∩ ∅ is empty: ⊤ stands for "all
  // names", and all names intersected with nothing is nothing.
  bool Intersects(const EffectSet& other) const;
  bool empty() const { return !top && names.empty(); }
  bool operator==(const EffectSet& other) const {
    return top == other.top && names == other.names;
  }
};

struct Effects {
  EffectSet child_reads;
  EffectSet value_reads;
  EffectSet writes;
  EffectSet write_scope;
  // child_reads ∪ value_reads minus reads performed only to navigate an
  // update target path. Those still count for interference (reordering a
  // rename against an insert whose target routes through it is visible)
  // but they do not OBSERVE data, so the XQSA036 dead-update lint tests
  // written names against this set, not the full read set.
  EffectSet observed_reads;
  // Performs updates / observable host mutation (XQUF primitives,
  // global assignment, event registry or style mutation, fn:put).
  bool has_update = false;
  // Calls browser:prompt/confirm — blocks on user input, so the body
  // can never leave the event-loop thread regardless of its sets.
  bool interacts = false;

  // The public ReadSet: everything a cached result may depend on.
  bool reads_top() const { return child_reads.top || value_reads.top; }
  // child_reads ∪ value_reads as a materialized set (empty when ⊤).
  std::vector<const xml::InternedName*> ReadNames() const;
  // Union; returns true when anything changed.
  bool MergeFrom(const Effects& other);
  bool operator==(const Effects& other) const;
};

// Whether running `a` and `b` against the same document in either
// order can produce observably different results: some write of one
// may touch something the other reads or writes. Two pure bodies never
// interfere. The write/write clause keeps committed PUL primitives
// from racing on one name; the value_reads × write_scope clause makes
// a serialized ancestor conflict with updates anywhere below it.
bool Interferes(const Effects& a, const Effects& b);

// Whether a listener's recorded read-name list touches any name a
// DomDelta wrote. This is the dispatch-skip test: a memoized listener
// whose reads miss every written name cannot observe the mutation and
// need not re-run. Callers handle the ⊤-read case separately (such
// listeners record no name list and are never skipped).
bool ReadSetIntersectsWrites(
    const std::vector<const xml::InternedName*>& reads,
    const std::unordered_set<const xml::InternedName*>& written);

// Deterministic rendering (names sorted lexicographically, not by
// interning order) for `xq_lint --effects` and tests, e.g.
//   reads={item @v} writes={entry loga} scope={body entry html loga}
std::string RenderEffectSet(const EffectSet& set);
std::string RenderEffects(const Effects& effects);

// The analysis itself. Usage mirrors Analyzer: add the page's other
// script modules as context, then Run() on the module of interest.
class EffectAnalysis {
 public:
  void AddContextModule(const Module* module);
  void Run(const Module& module);

  // Per-function summaries keyed by AnalysisFacts::FunctionKey
  // ("{ns}local#arity"); covers context-module functions too.
  const std::map<std::string, Effects>& function_effects() const {
    return functions_;
  }
  const Effects* ForFunction(const std::string& key) const;

  // Effects of the analyzed module's main body.
  const Effects& body_effects() const { return body_effects_; }

  // Union of every OBSERVING read performed anywhere — all module
  // bodies plus all declared functions, excluding update-target
  // navigation. The XQSA036 dead-update check tests a write's scope
  // against this.
  const EffectSet& all_reads() const { return all_reads_; }

  // Effects of a single expression under the computed function
  // summaries (no parameter context: free variables are treated as
  // locals). Used by the analyzer for update sites and attach targets.
  Effects ExprEffects(const Expr& e) const;

 private:
  friend class EffectWalker;

  const Module* module_ = nullptr;
  std::vector<const Module*> context_;
  std::map<std::string, Effects> functions_;
  // Module globals, keyed "var:{ns}local": the init expression's reads
  // stand in for every later reference to the variable.
  std::map<std::string, Effects> globals_;
  // Names targeted by `set $x := …` anywhere: references go ⊤.
  std::set<std::string> assigned_globals_;
  // Namespaces with visible declarations (local + library modules) vs.
  // service-import namespaces (calls evaluate against the remote store).
  std::set<std::string> declared_ns_;
  std::set<std::string> imported_ns_;
  Effects body_effects_;
  EffectSet all_reads_;
};

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_EFFECTS_H_
