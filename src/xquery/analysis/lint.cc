#include "xquery/analysis/lint.h"

#include <utility>

#include "browser/page.h"
#include "xml/xml_parser.h"
#include "xquery/parser.h"

namespace xqib::xquery::analysis {

namespace {

// A parse failure surfaces as an error diagnostic so lint output has one
// shape. The parser already embeds the position in its message; line 0
// suppresses Render()'s own span suffix.
Diagnostic ParseErrorDiagnostic(const Status& status) {
  Diagnostic d;
  d.code = status.code();
  d.severity = Severity::kError;
  d.message = status.message();
  d.span.line = 0;
  d.span.column = 0;
  return d;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// function_effects is an ordered map, so the dump is deterministic.
std::vector<std::string> EffectLines(const AnalysisFacts& facts) {
  std::vector<std::string> out;
  for (const auto& [key, eff] : facts.function_effects) {
    out.push_back(key + ": " + RenderEffects(eff));
  }
  out.push_back("page reads: " + RenderEffectSet(facts.all_reads));
  return out;
}

}  // namespace

bool LintReport::has_errors() const {
  for (const LintUnit& unit : units) {
    if (HasErrors(unit.diagnostics)) return true;
  }
  return false;
}

bool LintReport::has_warnings() const {
  for (const LintUnit& unit : units) {
    for (const Diagnostic& d : unit.diagnostics) {
      if (d.severity == Severity::kWarning) return true;
    }
  }
  return false;
}

std::vector<std::string> LintReport::RenderAll() const {
  std::vector<std::string> out;
  for (const LintUnit& unit : units) {
    for (const Diagnostic& d : unit.diagnostics) {
      out.push_back(unit.label + ": " + std::string(SeverityName(d.severity)) +
                    ": " + d.Render());
    }
  }
  return out;
}

std::vector<std::string> LintReport::RenderEffects() const {
  std::vector<std::string> out;
  for (const LintUnit& unit : units) {
    for (const std::string& line : unit.effects) {
      out.push_back(unit.label + ": " + line);
    }
  }
  return out;
}

std::string LintReport::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const LintUnit& unit : units) {
    if (!first) out += ",";
    first = false;
    out += "{\"unit\":\"" + JsonEscape(unit.label) +
           "\",\"diagnostics\":" + DiagnosticsToJson(unit.diagnostics) + "}";
  }
  out += "]";
  return out;
}

LintReport LintQuery(const std::string& source,
                     const AnalyzerOptions& options) {
  LintReport report;
  LintUnit unit;
  unit.label = "query";
  Result<std::unique_ptr<Module>> module = ParseModule(source);
  if (!module.ok()) {
    unit.diagnostics.push_back(ParseErrorDiagnostic(module.status()));
  } else {
    Analyzer analyzer(options);
    AnalysisResult result = analyzer.Analyze(**module);
    unit.diagnostics = std::move(result.diagnostics);
    unit.effects = EffectLines(result.facts);
  }
  report.units.push_back(std::move(unit));
  return report;
}

Result<LintReport> LintXhtml(const std::string& page_source,
                             const AnalyzerOptions& options) {
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                      xml::ParseDocument(page_source));
  LintReport report;

  // Parse every XQuery script first: like the plug-in, all script blocks
  // share one static context.
  struct ParsedScript {
    std::string label;
    std::unique_ptr<Module> module;  // null when the script failed to parse
    std::vector<Diagnostic> parse_errors;
  };
  std::vector<ParsedScript> parsed;
  size_t index = 0;
  for (const browser::Script& script : browser::ExtractScripts(doc.get())) {
    if (script.language != browser::ScriptLanguage::kXQuery &&
        script.language != browser::ScriptLanguage::kXQueryP) {
      continue;
    }
    ++index;
    ParsedScript p;
    p.label = "script " + std::to_string(index);
    Result<std::unique_ptr<Module>> module = ParseModule(script.code);
    if (module.ok()) {
      p.module = std::move(*module);
    } else {
      p.parse_errors.push_back(ParseErrorDiagnostic(module.status()));
    }
    parsed.push_back(std::move(p));
  }

  for (size_t i = 0; i < parsed.size(); ++i) {
    LintUnit unit;
    unit.label = parsed[i].label;
    unit.diagnostics = std::move(parsed[i].parse_errors);
    if (parsed[i].module != nullptr) {
      Analyzer analyzer(options);
      for (size_t j = 0; j < parsed.size(); ++j) {
        if (j != i && parsed[j].module != nullptr) {
          analyzer.AddContextModule(*parsed[j].module);
        }
      }
      AnalysisResult result = analyzer.Analyze(*parsed[i].module);
      for (auto& d : result.diagnostics) {
        unit.diagnostics.push_back(std::move(d));
      }
      unit.effects = EffectLines(result.facts);
    }
    report.units.push_back(std::move(unit));
  }

  // Inline handlers see all scripts as context (they may call functions
  // declared in any block). Only XQuery-looking handlers are ours; the
  // rest belong to the JavaScript engine.
  for (const browser::InlineHandler& handler :
       browser::ExtractInlineHandlers(doc.get())) {
    if (!browser::LooksLikeXQueryHandler(handler.code)) continue;
    LintUnit unit;
    unit.label = handler.event + " handler \"" + handler.code + "\"";
    Result<std::unique_ptr<Module>> module =
        ParseModule(browser::RewriteInlineHandler(handler.code));
    if (!module.ok()) {
      unit.diagnostics.push_back(ParseErrorDiagnostic(module.status()));
    } else {
      Analyzer analyzer(options);
      for (const ParsedScript& p : parsed) {
        if (p.module != nullptr) analyzer.AddContextModule(*p.module);
      }
      AnalysisResult result = analyzer.Analyze(**module);
      unit.diagnostics = std::move(result.diagnostics);
      unit.effects = EffectLines(result.facts);
    }
    report.units.push_back(std::move(unit));
  }
  return report;
}

}  // namespace xqib::xquery::analysis
