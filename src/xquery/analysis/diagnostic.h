// Diagnostics produced by the static analyzer (XQSA### codes). Every
// diagnostic carries a source span so tooling — the xq_lint CLI, the
// plug-in's load-time rejection path, editors — can point at the exact
// place in the script that triggered it.

#ifndef XQIB_XQUERY_ANALYSIS_DIAGNOSTIC_H_
#define XQIB_XQUERY_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace xqib::xquery::analysis {

enum class Severity { kInfo, kWarning, kError };

std::string_view SeverityName(Severity s);

// Half-open byte range in the analyzed script, plus its 1-based
// line/column (derived from the module's retained source text).
struct SourceSpan {
  size_t offset = 0;
  size_t length = 0;
  int line = 0;    // 0 = unknown
  int column = 0;
};

struct Diagnostic {
  std::string code;  // "XQSA001"
  Severity severity = Severity::kError;
  std::string message;
  SourceSpan span;

  // "XQSA001: undefined variable $x (line 2, column 7)" — the canonical
  // rendering, shared verbatim by xq_lint and the plug-in's load errors.
  std::string Render() const;

  // Wraps the rendered diagnostic in a Status whose error code is the
  // diagnostic code, for surfacing through the engine's error model.
  Status ToStatus() const;
};

// Computes line/column for `span` from the script source.
SourceSpan SpanAt(std::string_view source, size_t offset, size_t length);

bool HasErrors(const std::vector<Diagnostic>& diags);

// JSON array rendering for `xq_lint --json` (one object per diagnostic:
// code, severity, message, offset, length, line, column).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags);

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_DIAGNOSTIC_H_
