// Multi-pass static analyzer for XQuery modules (the load-time safety
// net the paper's plug-in pipeline lacks: a broken page script should
// fail at page load, not at event-dispatch time in front of the user).
//
// Passes, each individually toggleable:
//   1. scope/symbol  — resolves $var references and function calls
//      against prologs + the builtin library; reports undefined names,
//      duplicate declarations, and arity mismatches (XQSA001-005).
//   2. type inference — a small XDM lattice (item class + occurrence
//      bounds); flags statically-impossible comparisons (XQSA010) and
//      records inferred cardinalities in AnalysisFacts for the
//      optimizer's inferred-singleton rewrites.
//   3. update/purity — enforces XQUF placement rules (no updating
//      expression in a non-updating context, XQSA020/022; no delete or
//      replace of the document root, XQSA021) and classifies declared
//      functions as DOM-pure vs mutating for the event loop.
//   4. lint — unused variables (XQSA030), unreachable branches after
//      constant conditions (XQSA031), descendant (`//`) paths the
//      optimizer's path collapsing cannot rewrite (XQSA032), and
//      `behind` listeners that apply updates and therefore cannot have
//      their asynchronous completions delivered off-thread (XQSA033).
//   5. effects — the read/write-set abstract interpretation of
//      effects.h, published in AnalysisFacts (function_effects,
//      stageable_updating_functions, all_reads) and consumed by three
//      lints: same-event listeners with interfering effects (XQSA034),
//      memoizable listeners whose read set is ⊤ so every mutation
//      evicts them (XQSA035), and updates writing names nothing in the
//      page reads (XQSA036).
//
// Diagnostic severity: XQSA001-029 are errors, XQSA030/031/033-036
// warnings, XQSA032 info. Warnings and infos can be suppressed per
// module with
//   declare option lint "suppress:XQSA030 XQSA032";

#ifndef XQIB_XQUERY_ANALYSIS_ANALYZER_H_
#define XQIB_XQUERY_ANALYSIS_ANALYZER_H_

#include <vector>

#include "xquery/analysis/diagnostic.h"
#include "xquery/analysis/facts.h"
#include "xquery/ast.h"

namespace xqib::xquery::analysis {

struct AnalyzerOptions {
  bool check_scopes = true;
  bool infer_types = true;
  bool check_updates = true;
  bool lint = true;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  AnalysisFacts facts;

  bool has_errors() const { return HasErrors(diagnostics); }
  // First error-severity diagnostic as a Status; OK when none.
  Status ToStatus() const;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = AnalyzerOptions());

  // Registers a module whose declarations are visible to the analyzed
  // module without being checked themselves: imported libraries, or the
  // other <script> blocks of the same page (a page's scripts share one
  // static context, so a listener may call a function declared in a
  // later script).
  void AddContextModule(const Module& module);

  // Runs all enabled passes over `module`. Purity facts cover declared
  // functions of the context modules as well (the fixpoint runs over
  // the joint call graph).
  AnalysisResult Analyze(const Module& module) const;

 private:
  AnalyzerOptions options_;
  std::vector<const Module*> context_modules_;
};

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_ANALYZER_H_
