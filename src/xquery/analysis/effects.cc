#include "xquery/analysis/effects.h"

#include <algorithm>

#include "xml/qname.h"
#include "xquery/analysis/facts.h"

namespace xqib::xquery::analysis {

namespace {

// Render key: lexicographic by (local, ns) so output is stable across
// interning order; attribute and element names share one token space.
std::string NameLabel(const xml::InternedName* name) {
  if (name == nullptr) return "?";
  if (name->ns != nullptr && !name->ns->empty()) {
    return "{" + *name->ns + "}" + *name->local;
  }
  return *name->local;
}

bool TokenValid(const xml::InternedName* name) {
  return name != nullptr && name->local != nullptr && !name->local->empty();
}

}  // namespace

void EffectSet::AddName(const xml::InternedName* name) {
  if (top || !TokenValid(name)) return;
  auto it = std::lower_bound(names.begin(), names.end(), name);
  if (it == names.end() || *it != name) names.insert(it, name);
}

void EffectSet::MakeTop() {
  top = true;
  names.clear();
}

bool EffectSet::AddAll(const EffectSet& other) {
  if (top) return false;
  if (other.top) {
    MakeTop();
    return true;
  }
  bool changed = false;
  for (const xml::InternedName* n : other.names) {
    auto it = std::lower_bound(names.begin(), names.end(), n);
    if (it == names.end() || *it != n) {
      names.insert(it, n);
      changed = true;
    }
  }
  return changed;
}

bool EffectSet::Contains(const xml::InternedName* name) const {
  if (top) return true;
  return std::binary_search(names.begin(), names.end(), name);
}

bool EffectSet::Intersects(const EffectSet& other) const {
  if (top) return other.top || !other.names.empty();
  if (other.top) return !names.empty();
  auto a = names.begin();
  auto b = other.names.begin();
  while (a != names.end() && b != other.names.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

std::vector<const xml::InternedName*> Effects::ReadNames() const {
  if (reads_top()) return {};
  EffectSet all = child_reads;
  all.AddAll(value_reads);
  return all.names;
}

bool Effects::MergeFrom(const Effects& other) {
  bool changed = child_reads.AddAll(other.child_reads);
  changed |= value_reads.AddAll(other.value_reads);
  changed |= writes.AddAll(other.writes);
  changed |= write_scope.AddAll(other.write_scope);
  changed |= observed_reads.AddAll(other.observed_reads);
  if (other.has_update && !has_update) {
    has_update = true;
    changed = true;
  }
  if (other.interacts && !interacts) {
    interacts = true;
    changed = true;
  }
  return changed;
}

bool Effects::operator==(const Effects& other) const {
  return child_reads == other.child_reads &&
         value_reads == other.value_reads && writes == other.writes &&
         write_scope == other.write_scope &&
         observed_reads == other.observed_reads &&
         has_update == other.has_update && interacts == other.interacts;
}

bool Interferes(const Effects& a, const Effects& b) {
  if (!a.has_update && !b.has_update) return false;
  auto read_write = [](const Effects& r, const Effects& w) {
    if (!w.has_update) return false;
    if (w.writes.top || w.write_scope.top) return true;
    if (r.reads_top()) return true;
    return r.child_reads.Intersects(w.writes) ||
           r.value_reads.Intersects(w.write_scope);
  };
  return read_write(a, b) || read_write(b, a) ||
         a.writes.Intersects(b.writes);
}

bool ReadSetIntersectsWrites(
    const std::vector<const xml::InternedName*>& reads,
    const std::unordered_set<const xml::InternedName*>& written) {
  for (const xml::InternedName* r : reads) {
    if (written.count(r) != 0) return true;
  }
  return false;
}

std::string RenderEffectSet(const EffectSet& set) {
  if (set.top) return "TOP";
  std::vector<std::string> labels;
  labels.reserve(set.names.size());
  for (const xml::InternedName* n : set.names) labels.push_back(NameLabel(n));
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += " ";
    out += labels[i];
  }
  out += "}";
  return out;
}

std::string RenderEffects(const Effects& effects) {
  EffectSet reads = effects.child_reads;
  reads.AddAll(effects.value_reads);
  std::string out = "reads=" + RenderEffectSet(reads);
  out += " writes=" + RenderEffectSet(effects.writes);
  out += " scope=" + RenderEffectSet(effects.write_scope);
  out += effects.has_update ? " updating" : " pure";
  if (effects.interacts) out += " interactive";
  return out;
}

// ---------------------------------------------------------------------------
// The walker: one pass over an expression under the current function
// summaries. `value_used` says whether the consumer may atomize or
// serialize the result — it only matters at kVarRef / kContextItem
// leaves, where a live node of statically unknown name makes content
// reads untrackable (⊤).

namespace {

struct TargetInfo {
  // True when the target is a root-anchored chain of child/attribute
  // steps with concrete names: its ancestor names are then exactly
  // `chain` and the write's scope stays finite.
  bool chain_ok = false;
  std::vector<const xml::InternedName*> chain;
  const xml::InternedName* last = nullptr;
  enum class LastKind { kNone, kElement, kAttribute, kText } last_kind =
      LastKind::kNone;
};

bool IsGlueStep(const Step& step, bool is_last) {
  return step.axis == Axis::kDescendantOrSelf &&
         step.test.kind == NodeTest::Kind::kAnyKind &&
         step.predicates.empty() && !is_last;
}

bool IsWildcardTest(const NodeTest& test) {
  return test.any_name || test.any_ns || test.any_local ||
         !TokenValid(test.name.token());
}

bool IsForwardNamedAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kSelf:
    case Axis::kAttribute:
      return true;
    default:
      return false;
  }
}

// fn: builtins whose result is always atomic (their output can never
// carry element/attribute nodes into inserted content).
bool IsAtomicBuiltin(const std::string& local) {
  static const std::set<std::string>* kAtomic = new std::set<std::string>{
      "string",      "data",          "number",       "name",
      "local-name",  "namespace-uri", "boolean",      "not",
      "true",        "false",         "count",        "abs",
      "ceiling",     "floor",         "round",        "sum",
      "avg",         "min",           "max",          "concat",
      "string-join", "substring",     "string-length", "length",
      "upper-case",  "lower-case",    "contains",     "starts-with",
      "ends-with",   "substring-before", "substring-after", "translate",
      "normalize-space", "compare",   "codepoints-to-string",
      "string-to-codepoints", "matches", "replace",   "tokenize",
      "encode-for-uri", "empty",      "exists",       "distinct-values",
      "index-of",    "deep-equal",    "position",     "last",
      "serialize",   "string-value"};
  return kAtomic->count(local) > 0;
}

// browser: functions that mutate the BOM or emit into the document.
bool IsBrowserMutator(const std::string& local) {
  return local == "write" || local == "writeln" || local == "windowOpen" ||
         local == "windowClose" || local == "windowMoveBy" ||
         local == "windowMoveTo" || local == "historyBack" ||
         local == "historyForward" || local == "historyGo";
}

}  // namespace

class EffectWalker {
 public:
  EffectWalker(const EffectAnalysis& analysis, const Module* module)
      : analysis_(analysis), module_(module) {}

  Effects WalkBody(const Expr& e, const std::vector<Param>* params) {
    out_ = Effects{};
    params_.clear();
    if (params != nullptr) {
      for (const Param& p : *params) params_.insert(p.name.Clark());
    }
    locals_.clear();
    context_names_.clear();
    Walk(e, true);
    return std::move(out_);
  }

 private:
  void AddChildRead(const xml::InternedName* name) {
    out_.child_reads.AddName(name);
    if (!target_mode_) out_.observed_reads.AddName(name);
  }
  void AddValueRead(const xml::InternedName* name) {
    out_.value_reads.AddName(name);
    if (!target_mode_) out_.observed_reads.AddName(name);
  }
  void ReadsTop() {
    out_.child_reads.MakeTop();
    if (!target_mode_) out_.observed_reads.MakeTop();
  }
  void ValueReadsTop() {
    out_.value_reads.MakeTop();
    if (!target_mode_) out_.observed_reads.MakeTop();
  }
  void WritesTop() {
    out_.writes.MakeTop();
    out_.write_scope.MakeTop();
    out_.has_update = true;
  }
  // Walks an update-target expression: its reads count for interference
  // but not as observations (see Effects::observed_reads).
  void WalkTarget(const Expr& e) {
    const bool saved = target_mode_;
    target_mode_ = true;
    Walk(e, false);
    target_mode_ = saved;
  }

  bool IsLocal(const std::string& clark) const {
    return std::find(locals_.rbegin(), locals_.rend(), clark) !=
           locals_.rend();
  }

  void WalkKids(const Expr& e, bool value_used) {
    for (const ExprPtr& kid : e.kids) {
      if (kid != nullptr) Walk(*kid, value_used);
    }
  }

  void WalkDirect(const DirectNode& node) {
    if (node.expr != nullptr) Walk(*node.expr, true);
    for (const DirectNode::Attr& attr : node.attrs) {
      for (const DirectNode::AttrPart& part : attr.parts) {
        if (part.expr != nullptr) Walk(*part.expr, true);
      }
    }
    for (const auto& child : node.children) WalkDirect(*child);
  }

  void WalkFt(const FtSelection& ft) {
    if (ft.words != nullptr) Walk(*ft.words, true);
    for (const auto& kid : ft.kids) WalkFt(*kid);
  }

  void WalkPath(const Expr& e, bool value_used) {
    (void)value_used;  // final-step value reads are recorded regardless
    if (!e.kids.empty() && e.kids[0] != nullptr) Walk(*e.kids[0], false);
    const xml::InternedName* prev = nullptr;
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      const bool is_last = i + 1 == e.steps.size();
      if (IsGlueStep(step, is_last)) continue;  // the // connector
      const xml::InternedName* cur = nullptr;
      if (!IsForwardNamedAxis(step.axis)) {
        // parent / ancestor / sibling / preceding / following: the
        // touched names depend on document shape we cannot see.
        ReadsTop();
      } else {
        switch (step.test.kind) {
          case NodeTest::Kind::kName:
          case NodeTest::Kind::kElement:
          case NodeTest::Kind::kAttribute:
            if (IsWildcardTest(step.test)) {
              ReadsTop();
            } else {
              cur = step.test.name.token();
              AddChildRead(cur);
            }
            break;
          case NodeTest::Kind::kText:
          case NodeTest::Kind::kComment:
          case NodeTest::Kind::kPI:
          case NodeTest::Kind::kAnyKind:
            // Content nodes below the previously named element: their
            // values are that element's content. Without a named
            // anchor the read is untrackable.
            if (prev != nullptr) {
              AddValueRead(prev);
            } else {
              ReadsTop();
            }
            break;
          case NodeTest::Kind::kDocument:
            break;
        }
      }
      context_names_.push_back(cur);
      for (const ExprPtr& pred : step.predicates) Walk(*pred, false);
      context_names_.pop_back();
      if (is_last && cur != nullptr) AddValueRead(cur);
      prev = cur;
    }
  }

  // Classifies an update-target path. Reads performed by the target
  // expression itself are walked separately by the caller.
  TargetInfo ClassifyTarget(const Expr& e) const {
    TargetInfo info;
    if (e.kind != ExprKind::kPath) return info;
    if (!e.root_anchored || (!e.kids.empty() && e.kids[0] != nullptr)) {
      // Not anchored at the document root: the ancestor chain (and for
      // variables, even the target name) is unknown.
      info.chain_ok = false;
    } else {
      info.chain_ok = true;
    }
    const xml::InternedName* prev = nullptr;
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& step = e.steps[i];
      const bool is_last = i + 1 == e.steps.size();
      if (IsGlueStep(step, is_last)) {
        info.chain_ok = false;
        continue;
      }
      const bool named_test = (step.test.kind == NodeTest::Kind::kName ||
                               step.test.kind == NodeTest::Kind::kElement ||
                               step.test.kind == NodeTest::Kind::kAttribute) &&
                              !IsWildcardTest(step.test);
      const xml::InternedName* cur =
          named_test ? step.test.name.token() : nullptr;
      if ((step.axis == Axis::kChild || step.axis == Axis::kAttribute) &&
          named_test) {
        if (info.chain_ok) info.chain.push_back(cur);
      } else if (is_last && step.test.kind == NodeTest::Kind::kText &&
                 step.axis == Axis::kChild && prev != nullptr) {
        // …/name/text(): a value write into `name`.
        info.last = prev;
        info.last_kind = TargetInfo::LastKind::kText;
        return info;
      } else {
        info.chain_ok = false;
      }
      if (is_last) {
        info.last = cur;
        if (cur != nullptr) {
          info.last_kind = step.axis == Axis::kAttribute ||
                                   step.test.kind ==
                                       NodeTest::Kind::kAttribute
                               ? TargetInfo::LastKind::kAttribute
                               : TargetInfo::LastKind::kElement;
        }
      }
      prev = cur;
    }
    return info;
  }

  // The names a constructed sequence can contribute to the live tree
  // when inserted: element and attribute names, recursively.
  EffectSet ContentNames(const Expr& e) const {
    EffectSet set;
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kRange:
      case ExprKind::kArith:
      case ExprKind::kUnary:
      case ExprKind::kComparison:
      case ExprKind::kLogical:
      case ExprKind::kQuantified:
      case ExprKind::kFtContains:
      case ExprKind::kComputedText:
      case ExprKind::kComputedComment:
      case ExprKind::kComputedPI:
        break;
      case ExprKind::kSequence:
        for (const ExprPtr& kid : e.kids) {
          if (kid != nullptr) set.AddAll(ContentNames(*kid));
        }
        break;
      case ExprKind::kIf:
        if (e.kids.size() > 1 && e.kids[1]) set.AddAll(ContentNames(*e.kids[1]));
        if (e.kids.size() > 2 && e.kids[2]) set.AddAll(ContentNames(*e.kids[2]));
        break;
      case ExprKind::kEnclosed:
        if (!e.kids.empty() && e.kids[0]) set.AddAll(ContentNames(*e.kids[0]));
        break;
      case ExprKind::kCast:
        if (e.cast_op == "treat") {
          if (!e.kids.empty() && e.kids[0]) {
            set.AddAll(ContentNames(*e.kids[0]));
          }
        }
        break;
      case ExprKind::kFLWOR:
        if (!e.kids.empty() && e.kids[0]) set.AddAll(ContentNames(*e.kids[0]));
        break;
      case ExprKind::kBlock:
        if (!e.kids.empty() && e.kids.back()) {
          set.AddAll(ContentNames(*e.kids.back()));
        }
        break;
      case ExprKind::kTypeswitch:
        for (const Clause& c : e.clauses) {
          if (c.expr != nullptr) set.AddAll(ContentNames(*c.expr));
        }
        if (e.kids.size() > 1 && e.kids[1]) set.AddAll(ContentNames(*e.kids[1]));
        break;
      case ExprKind::kDirectElement:
        if (e.direct != nullptr) set.AddAll(DirectNames(*e.direct));
        break;
      case ExprKind::kComputedElement:
      case ExprKind::kComputedAttribute:
        if (e.str == "computed-name") {
          set.MakeTop();  // dynamic name: could introduce any name
        } else {
          set.AddName(e.qname.token());
          const size_t content_idx = 0;
          if (e.kind == ExprKind::kComputedElement &&
              e.kids.size() > content_idx && e.kids[content_idx]) {
            set.AddAll(ContentNames(*e.kids[content_idx]));
          }
        }
        break;
      case ExprKind::kFunctionCall:
        if (e.qname.ns() == xml::kXsNamespace ||
            (e.qname.ns() == xml::kFnNamespace &&
             IsAtomicBuiltin(e.qname.local()))) {
          break;  // provably atomic result
        }
        set.MakeTop();
        break;
      default:
        // Paths, variables, set ops, transform copies, …: the nodes
        // flowing through carry names we cannot enumerate.
        set.MakeTop();
        break;
    }
    return set;
  }

  EffectSet DirectNames(const DirectNode& node) const {
    EffectSet set;
    switch (node.kind) {
      case DirectNode::Kind::kElement:
        set.AddName(node.name.token());
        for (const DirectNode::Attr& attr : node.attrs) {
          set.AddName(attr.name.token());
        }
        for (const auto& child : node.children) {
          set.AddAll(DirectNames(*child));
        }
        break;
      case DirectNode::Kind::kEnclosedExpr:
        if (node.expr != nullptr) set.AddAll(ContentNames(*node.expr));
        break;
      case DirectNode::Kind::kText:
      case DirectNode::Kind::kComment:
      case DirectNode::Kind::kPI:
        break;
    }
    return set;
  }

  // Records a write with target info + content names. Covers insert,
  // replace, rename, set-style.
  void RecordWrite(const TargetInfo& target, const EffectSet& content) {
    out_.has_update = true;
    if (target.last == nullptr || content.top) {
      WritesTop();
      return;
    }
    out_.writes.AddName(target.last);
    out_.writes.AddAll(content);
    if (out_.writes.top) {
      out_.write_scope.MakeTop();
      return;
    }
    if (target.chain_ok) {
      out_.write_scope.AddAll(out_.writes);
      for (const xml::InternedName* n : target.chain) {
        out_.write_scope.AddName(n);
      }
      if (target.last_kind == TargetInfo::LastKind::kText) {
        out_.write_scope.AddName(target.last);
      }
    } else {
      out_.write_scope.MakeTop();
    }
  }

  void WalkFunctionCall(const Expr& e) {
    const std::string& ns = e.qname.ns();
    const std::string& local = e.qname.local();
    bool args_value_used = true;
    if (ns == xml::kFnNamespace) {
      if (local == "count" || local == "exists" || local == "empty" ||
          local == "boolean" || local == "not" || local == "zero-or-one" ||
          local == "exactly-one" || local == "one-or-more" ||
          local == "name" || local == "local-name" ||
          local == "namespace-uri" || local == "node-name") {
        args_value_used = false;
      } else if (local == "id" || local == "idref" || local == "root" ||
                 local == "doc" || local == "doc-available") {
        ReadsTop();  // jumps anywhere in the document / other documents
      } else if (local == "put") {
        WritesTop();
      }
    } else if (ns == xml::kBrowserNamespace) {
      if (local == "prompt" || local == "confirm") {
        out_.interacts = true;
      } else if (local != "alert") {
        // BOM access can hand back live document nodes from any window.
        ReadsTop();
        if (IsBrowserMutator(local)) WritesTop();
      }
    } else if (analysis_.declared_ns_.count(ns) > 0) {
      const Effects* summary = analysis_.ForFunction(
          AnalysisFacts::FunctionKey(e.qname.Clark(), e.kids.size()));
      if (summary != nullptr) {
        out_.MergeFrom(*summary);
      } else {
        // Unknown name#arity in a checked namespace (an XQSA002/003
        // error elsewhere); stay sound.
        ReadsTop();
        WritesTop();
      }
    } else if (ns == xml::kXsNamespace || ns == xml::kHttpNamespace ||
               analysis_.imported_ns_.count(ns) > 0) {
      // Constructors, the HTTP client, and imported web-service calls
      // never touch the page DOM (service modules evaluate against the
      // remote store).
    } else {
      ReadsTop();  // unknown external code
      WritesTop();
    }
    WalkKids(e, args_value_used);
  }

  void Walk(const Expr& e, bool value_used) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        break;
      case ExprKind::kVarRef: {
        const std::string clark = e.qname.Clark();
        if (IsLocal(clark)) break;
        if (analysis_.assigned_globals_.count(clark) > 0) {
          // Mutable module state: another listener may rebind it.
          ValueReadsTop();
          break;
        }
        if (params_.count(clark) > 0) {
          // A parameter can be bound to a live node of unknown name
          // ($obj, the attach target): atomizing it reads content we
          // cannot name. Navigation *from* it is covered by the steps.
          if (value_used) ValueReadsTop();
          break;
        }
        auto it = analysis_.globals_.find("var:" + clark);
        if (it != analysis_.globals_.end()) {
          // The init expression's reads stand in for the reference.
          out_.child_reads.AddAll(it->second.child_reads);
          out_.value_reads.AddAll(it->second.value_reads);
          if (!target_mode_) {
            out_.observed_reads.AddAll(it->second.observed_reads);
          }
        } else if (value_used) {
          ValueReadsTop();  // unknown variable (XQSA001 case)
        }
        break;
      }
      case ExprKind::kContextItem:
        if (value_used) {
          if (!context_names_.empty() && context_names_.back() != nullptr) {
            AddValueRead(context_names_.back());
          } else {
            ValueReadsTop();
          }
        }
        break;
      case ExprKind::kSequence:
      case ExprKind::kEnclosed:
      case ExprKind::kExitWith:
      case ExprKind::kSetOp:
        WalkKids(e, value_used);
        break;
      case ExprKind::kRange:
      case ExprKind::kArith:
      case ExprKind::kUnary:
      case ExprKind::kComparison:
      case ExprKind::kCast:
      case ExprKind::kComputedText:
      case ExprKind::kComputedComment:
      case ExprKind::kComputedPI:
        WalkKids(e, true);
        break;
      case ExprKind::kLogical:
        WalkKids(e, false);  // EBV does not read node content
        break;
      case ExprKind::kIf:
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], false);
        if (e.kids.size() > 1 && e.kids[1]) Walk(*e.kids[1], value_used);
        if (e.kids.size() > 2 && e.kids[2]) Walk(*e.kids[2], value_used);
        break;
      case ExprKind::kPath:
        WalkPath(e, value_used);
        break;
      case ExprKind::kFilter:
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], value_used);
        context_names_.push_back(nullptr);
        for (const ExprPtr& pred : e.predicates) Walk(*pred, false);
        context_names_.pop_back();
        break;
      case ExprKind::kFLWOR: {
        const size_t mark = locals_.size();
        for (const Clause& c : e.clauses) {
          if (c.expr != nullptr) Walk(*c.expr, true);
          locals_.push_back(c.var.Clark());
          if (!c.pos_var.local().empty()) {
            locals_.push_back(c.pos_var.Clark());
          }
        }
        if (e.where != nullptr) Walk(*e.where, false);
        for (const OrderSpec& spec : e.order_specs) Walk(*spec.key, true);
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], value_used);
        locals_.resize(mark);
        break;
      }
      case ExprKind::kQuantified: {
        const size_t mark = locals_.size();
        for (const Clause& c : e.clauses) {
          if (c.expr != nullptr) Walk(*c.expr, true);
          locals_.push_back(c.var.Clark());
        }
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], false);
        locals_.resize(mark);
        break;
      }
      case ExprKind::kTypeswitch: {
        // The operand is bound to the case variables, which the case
        // bodies may atomize: treat it as value-used.
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], true);
        for (const Clause& c : e.clauses) {
          const size_t mark = locals_.size();
          if (!c.var.local().empty()) locals_.push_back(c.var.Clark());
          if (c.expr != nullptr) Walk(*c.expr, value_used);
          locals_.resize(mark);
        }
        if (e.kids.size() > 1 && e.kids[1]) {
          const size_t mark = locals_.size();
          if (!e.qname.local().empty()) locals_.push_back(e.qname.Clark());
          Walk(*e.kids[1], value_used);
          locals_.resize(mark);
        }
        break;
      }
      case ExprKind::kFunctionCall:
        WalkFunctionCall(e);
        break;
      case ExprKind::kFtContains:
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], true);
        if (e.ft != nullptr) WalkFt(*e.ft);
        break;
      case ExprKind::kDirectElement:
        if (e.direct != nullptr) WalkDirect(*e.direct);
        break;
      case ExprKind::kComputedElement:
      case ExprKind::kComputedAttribute:
        WalkKids(e, true);
        break;
      case ExprKind::kInsert: {
        Walk(*e.kids[0], true);
        WalkTarget(*e.kids[1]);
        RecordWrite(ClassifyTarget(*e.kids[1]), ContentNames(*e.kids[0]));
        break;
      }
      case ExprKind::kDelete:
        WalkTarget(*e.kids[0]);
        // The deleted subtree's names are whatever lives under the
        // target at run time — statically unbounded.
        WritesTop();
        break;
      case ExprKind::kReplace: {
        WalkTarget(*e.kids[0]);
        Walk(*e.kids[1], true);
        TargetInfo target = ClassifyTarget(*e.kids[0]);
        if (e.replace_value_of &&
            (target.last_kind == TargetInfo::LastKind::kAttribute ||
             target.last_kind == TargetInfo::LastKind::kText)) {
          // Precise: only the attribute's (or text's parent's) value
          // changes; no names appear or disappear.
          RecordWrite(target, EffectSet{});
        } else {
          // Replacing a node (or an element's content) destroys a
          // subtree of statically unknown names.
          WritesTop();
        }
        break;
      }
      case ExprKind::kRename: {
        WalkTarget(*e.kids[0]);
        Walk(*e.kids[1], true);
        TargetInfo target = ClassifyTarget(*e.kids[0]);
        EffectSet new_name;
        const Expr& name_expr = *e.kids[1];
        if (name_expr.kind == ExprKind::kLiteral &&
            (module_ == nullptr || module_->default_element_ns.empty())) {
          const std::string lexical = name_expr.atom.ToXPathString();
          if (lexical.find(':') == std::string::npos && !lexical.empty()) {
            new_name.AddName(xml::InternName("", lexical));
          } else {
            new_name.MakeTop();  // prefix resolution needs static context
          }
        } else {
          new_name.MakeTop();
        }
        RecordWrite(target, new_name);
        break;
      }
      case ExprKind::kTransform: {
        Walk(*e.kids[0], true);  // the copied subtree is fully read
        const size_t mark = locals_.size();
        locals_.push_back(e.qname.Clark());
        // The modify clause only ever updates the copy (XUDY0014):
        // keep its reads, drop its writes from the live-DOM summary.
        Effects saved = std::move(out_);
        out_ = Effects{};
        Walk(*e.kids[1], false);
        Effects modify = std::move(out_);
        out_ = std::move(saved);
        out_.child_reads.AddAll(modify.child_reads);
        out_.value_reads.AddAll(modify.value_reads);
        out_.observed_reads.AddAll(modify.observed_reads);
        out_.interacts |= modify.interacts;
        if (e.kids.size() > 2 && e.kids[2]) Walk(*e.kids[2], value_used);
        locals_.resize(mark);
        break;
      }
      case ExprKind::kBlock: {
        const size_t mark = locals_.size();
        for (size_t i = 0; i < e.kids.size(); ++i) {
          if (e.kids[i] == nullptr) continue;
          Walk(*e.kids[i], i + 1 == e.kids.size() ? value_used : false);
        }
        locals_.resize(mark);
        break;
      }
      case ExprKind::kVarDecl:
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], true);
        locals_.push_back(e.qname.Clark());
        break;
      case ExprKind::kAssign:
        if (!e.kids.empty() && e.kids[0]) Walk(*e.kids[0], true);
        if (!IsLocal(e.qname.Clark()) &&
            params_.count(e.qname.Clark()) == 0) {
          // Assignment to module state: observable by every listener.
          WritesTop();
        }
        break;
      case ExprKind::kWhile:
        WalkKids(e, false);
        break;
      case ExprKind::kEventAttach:
      case ExprKind::kEventDetach:
      case ExprKind::kEventTrigger:
        // Mutates the listener registry / synthesizes dispatches:
        // affects behavior in ways no name set captures.
        WalkKids(e, false);
        WritesTop();
        break;
      case ExprKind::kSetStyle: {
        Walk(*e.kids[0], true);
        WalkTarget(*e.kids[1]);
        Walk(*e.kids[2], true);
        // Style writes land in the target's `style` attribute.
        TargetInfo target = ClassifyTarget(*e.kids[1]);
        EffectSet style;
        style.AddName(xml::InternName("", "style"));
        RecordWrite(target, style);
        break;
      }
      case ExprKind::kGetStyle:
        Walk(*e.kids[0], true);
        Walk(*e.kids[1], true);  // reads the target's style content
        break;
    }
  }

  const EffectAnalysis& analysis_;
  const Module* module_;
  Effects out_;
  bool target_mode_ = false;
  std::vector<std::string> locals_;
  std::set<std::string> params_;
  std::vector<const xml::InternedName*> context_names_;
};

// ---------------------------------------------------------------------------
// Fixpoint driver.

namespace {

void CollectAssigns(const Expr& e, std::set<std::string>* assigned) {
  if (e.kind == ExprKind::kAssign) assigned->insert(e.qname.Clark());
  for (const ExprPtr& kid : e.kids) {
    if (kid != nullptr) CollectAssigns(*kid, assigned);
  }
  for (const Step& step : e.steps) {
    for (const ExprPtr& pred : step.predicates) {
      CollectAssigns(*pred, assigned);
    }
  }
  for (const ExprPtr& pred : e.predicates) CollectAssigns(*pred, assigned);
  for (const Clause& c : e.clauses) {
    if (c.expr != nullptr) CollectAssigns(*c.expr, assigned);
  }
  if (e.where != nullptr) CollectAssigns(*e.where, assigned);
  for (const OrderSpec& spec : e.order_specs) {
    CollectAssigns(*spec.key, assigned);
  }
}

void CollectModuleAssigns(const Module& m, std::set<std::string>* assigned) {
  if (m.body != nullptr) CollectAssigns(*m.body, assigned);
  for (const auto& fn : m.functions) {
    if (fn->body != nullptr) CollectAssigns(*fn->body, assigned);
  }
  for (const VarDecl& v : m.variables) {
    if (v.init != nullptr) CollectAssigns(*v.init, assigned);
  }
}

}  // namespace

void EffectAnalysis::AddContextModule(const Module* module) {
  context_.push_back(module);
}

const Effects* EffectAnalysis::ForFunction(const std::string& key) const {
  auto it = functions_.find(key);
  return it != functions_.end() ? &it->second : nullptr;
}

Effects EffectAnalysis::ExprEffects(const Expr& e) const {
  EffectWalker walker(*this, module_);
  return walker.WalkBody(e, nullptr);
}

void EffectAnalysis::Run(const Module& module) {
  module_ = &module;
  std::vector<const Module*> modules = context_;
  modules.push_back(&module);

  declared_ns_.insert("http://www.w3.org/2005/xquery-local-functions");
  for (const Module* m : modules) {
    if (m->is_library && !m->module_ns.empty()) {
      declared_ns_.insert(m->module_ns);
    }
    for (const Module::Import& imp : m->imports) {
      imported_ns_.insert(imp.ns);
    }
    CollectModuleAssigns(*m, &assigned_globals_);
  }

  // External functions: no body to look at.
  for (const Module* m : modules) {
    for (const auto& fn : m->functions) {
      if (fn->body != nullptr) continue;
      Effects& e = functions_[AnalysisFacts::FunctionKey(
          fn->name.Clark(), fn->params.size())];
      e.child_reads.MakeTop();
      e.observed_reads.MakeTop();
      e.writes.MakeTop();
      e.write_scope.MakeTop();
      e.has_update = true;
    }
  }

  // Seed every declared function at ⊥ so recursive and forward calls
  // merge the in-progress summary instead of taking the unknown-
  // function ⊤ path on the first iteration.
  for (const Module* m : modules) {
    for (const auto& fn : m->functions) {
      if (fn->body == nullptr) continue;
      functions_[AnalysisFacts::FunctionKey(fn->name.Clark(),
                                            fn->params.size())];
    }
  }

  // Bottom-up fixpoint over globals + functions: summaries only grow
  // (every application is a merge), and each set is bounded by the
  // module's finite name alphabet, so this terminates — recursive
  // functions converge without widening to ⊤.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Module* m : modules) {
      for (const VarDecl& v : m->variables) {
        if (v.init == nullptr) continue;
        EffectWalker walker(*this, m);
        Effects e = walker.WalkBody(*v.init, nullptr);
        changed |= globals_["var:" + v.name.Clark()].MergeFrom(e);
      }
      for (const auto& fn : m->functions) {
        if (fn->body == nullptr) continue;
        EffectWalker walker(*this, m);
        Effects e = walker.WalkBody(*fn->body, &fn->params);
        changed |= functions_[AnalysisFacts::FunctionKey(
                                  fn->name.Clark(), fn->params.size())]
                       .MergeFrom(e);
      }
    }
  }

  for (const Module* m : modules) {
    if (m->body == nullptr) continue;
    EffectWalker walker(*this, m);
    Effects body = walker.WalkBody(*m->body, nullptr);
    if (m == &module) body_effects_ = body;
    all_reads_.AddAll(body.observed_reads);
  }
  for (const auto& [key, e] : functions_) {
    all_reads_.AddAll(e.observed_reads);
  }
  for (const auto& [key, e] : globals_) {
    all_reads_.AddAll(e.observed_reads);
  }
}

}  // namespace xqib::xquery::analysis
