// Signature table for the builtin function library (fn: namespace) and
// the xs: constructor functions, used by the analyzer's scope/symbol
// pass to report undefined functions and arity mismatches at compile
// time instead of XPST0017 at event-dispatch time.

#ifndef XQIB_XQUERY_ANALYSIS_BUILTINS_H_
#define XQIB_XQUERY_ANALYSIS_BUILTINS_H_

#include <string>

namespace xqib::xquery::analysis {

struct BuiltinSignature {
  int min_arity = 0;
  int max_arity = 0;  // -1 = variadic (fn:concat)
};

// Looks up an fn: builtin by local name; nullptr when unknown. The table
// mirrors the dispatch in src/xquery/functions.cc.
const BuiltinSignature* FindFnBuiltin(const std::string& local);

// True for the xs: constructor functions (xs:integer(...), ...); all are
// unary. Mirrors the kCtors map in src/xquery/functions.cc.
bool IsXsConstructor(const std::string& local);

}  // namespace xqib::xquery::analysis

#endif  // XQIB_XQUERY_ANALYSIS_BUILTINS_H_
