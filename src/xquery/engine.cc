#include "xquery/engine.h"

#include "xquery/parser.h"
#include "xquery/update.h"

namespace xqib::xquery {

Status CompiledQuery::BindGlobals(DynamicContext& ctx) {
  auto bind_module = [&](const Module& m) -> Status {
    for (const VarDecl& v : m.variables) {
      if (v.external) {
        // External variables must be pre-bound by the host; missing ones
        // default to the empty sequence (browser leniency).
        if (!ctx.env().IsBound(v.name)) {
          ctx.env().Bind(v.name, xdm::Sequence{});
        }
        continue;
      }
      if (v.init == nullptr) {
        ctx.env().Bind(v.name, xdm::Sequence{});
        continue;
      }
      XQ_ASSIGN_OR_RETURN(xdm::Sequence value, evaluator_.Eval(*v.init, ctx));
      ctx.env().Bind(v.name, std::move(value));
    }
    return Status();
  };
  for (const Module* lib : imported_) {
    XQ_RETURN_NOT_OK(bind_module(*lib));
  }
  return bind_module(*module_);
}

Result<xdm::Sequence> CompiledQuery::Run(DynamicContext& ctx,
                                         bool apply_updates) {
  if (module_->body == nullptr) return xdm::Sequence{};
  XQ_ASSIGN_OR_RETURN(xdm::Sequence result,
                      evaluator_.Eval(*module_->body, ctx));
  if (evaluator_.exited()) result = evaluator_.TakeExitValue();
  if (apply_updates) {
    XQ_RETURN_NOT_OK(ctx.pul().ApplyAll());
  }
  // The result is materialized and the apply pass is done: no stream
  // operator allocated this run can still be live, so the whole dispatch
  // arena is reclaimed in one wholesale reset.
  evaluator_.ResetDispatchArena(ctx);
  return result;
}

Result<xdm::Sequence> CompiledQuery::Call(const xml::QName& function,
                                          std::vector<xdm::Sequence> args,
                                          DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(
      xdm::Sequence result,
      evaluator_.CallFunction(function, std::move(args), ctx));
  if (evaluator_.exited()) result = evaluator_.TakeExitValue();
  XQ_RETURN_NOT_OK(ctx.pul().ApplyAll());
  evaluator_.ResetDispatchArena(ctx);
  return result;
}

Result<std::string> Engine::LoadLibrary(std::string_view source) {
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<Module> module, ParseModule(source));
  if (!module->is_library) {
    return Status::StaticError("XQST0016",
                               "not a library module (missing module "
                               "namespace declaration)");
  }
  std::string ns = module->module_ns;
  libraries_[ns] = std::move(module);
  return ns;
}

Result<std::unique_ptr<CompiledQuery>> Engine::Compile(
    std::string_view source) {
  return Compile(source, CompileOptions());
}

Result<std::unique_ptr<CompiledQuery>> Engine::Compile(
    std::string_view source, const CompileOptions& options) {
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<Module> module, ParseModule(source));
  // Imports are resolved before analysis so imported declarations are
  // visible to the scope pass and the purity fixpoint.
  StaticContext sctx;
  std::vector<const Module*> imported;
  for (const Module::Import& imp : module->imports) {
    auto it = libraries_.find(imp.ns);
    if (it != libraries_.end()) {
      sctx.AddModule(*it->second);
      imported.push_back(it->second.get());
    }
    // Unresolved imports are deferred to external functions at run time.
  }
  analysis::AnalysisResult analyzed;
  if (options.analyze) {
    analysis::Analyzer analyzer(options.analyzer);
    for (const Module* lib : imported) analyzer.AddContextModule(*lib);
    analyzed = analyzer.Analyze(*module);
    if (options.strict && analyzed.has_errors()) {
      return analyzed.ToStatus();
    }
  }
  OptimizerStats stats;
  if (options.optimize) {
    stats = OptimizeModule(module.get(), options.optimizer,
                           options.analyze ? &analyzed.facts : nullptr);
  }
  sctx.AddModule(*module);
  auto compiled = std::unique_ptr<CompiledQuery>(new CompiledQuery(
      std::move(module), std::move(sctx), std::move(imported)));
  compiled->optimizer_stats_ = stats;
  compiled->diagnostics_ = std::move(analyzed.diagnostics);
  compiled->pure_functions_ = analyzed.facts.pure_functions;
  if (options.analyze) {
    // Retained for plan specialization: cardinality entries key on AST
    // nodes, so only the ones whose nodes survived the optimizer still
    // resolve — lookups on replaced nodes simply miss (never mislead).
    compiled->evaluator_.set_analysis_facts(
        std::make_shared<const analysis::AnalysisFacts>(
            std::move(analyzed.facts)));
  }
  return compiled;
}

const Module* Engine::FindLibrary(const std::string& ns) const {
  auto it = libraries_.find(ns);
  return it == libraries_.end() ? nullptr : it->second.get();
}

}  // namespace xqib::xquery
