// Public entry point of the XQuery engine: compile a module once, then
// run its body and/or call its functions against a DynamicContext. The
// plug-in (Figure 1) compiles the page's prolog at load time and
// re-enters the compiled query for every event listener call.

#ifndef XQIB_XQUERY_ENGINE_H_
#define XQIB_XQUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/result.h"
#include "xquery/analysis/analyzer.h"
#include "xquery/ast.h"
#include "xquery/context.h"
#include "xquery/evaluator.h"
#include "xquery/optimizer.h"

namespace xqib::xquery {

class Engine;

struct CompileOptions {
  bool optimize = true;
  OptimizerOptions optimizer;
  // Static analysis. Lenient by default: diagnostics are collected on
  // the CompiledQuery (and feed the optimizer's inferred rewrites) but
  // do not fail compilation — scripts with only dynamic errors still
  // run. `strict` turns error-severity diagnostics into compile
  // failures; the plug-in and xq_lint use that mode.
  bool analyze = true;
  bool strict = false;
  analysis::AnalyzerOptions analyzer;
};

// A compiled main module plus its resolved static context.
class CompiledQuery {
 public:
  // Evaluates prolog global variables into ctx (in declaration order,
  // imported libraries first). Call once per DynamicContext.
  Status BindGlobals(DynamicContext& ctx);

  // Evaluates the query body. With `apply_updates` (the default), the
  // pending update list is applied afterwards — the Update Facility's
  // snapshot semantics. (Scripting blocks apply their own updates at
  // statement boundaries regardless.)
  Result<xdm::Sequence> Run(DynamicContext& ctx, bool apply_updates = true);

  // Calls a declared function (event listeners, web-service endpoints).
  Result<xdm::Sequence> Call(const xml::QName& function,
                             std::vector<xdm::Sequence> args,
                             DynamicContext& ctx);

  const Module& module() const { return *module_; }
  const StaticContext& static_context() const { return sctx_; }
  Evaluator& evaluator() { return evaluator_; }
  const OptimizerStats& optimizer_stats() const { return optimizer_stats_; }

  // Static-analysis output. Diagnostics include warnings/infos even in
  // lenient mode; pure_functions lists declared functions ("Clark#arity")
  // whose bodies provably do not mutate the DOM/BOM — the plug-in event
  // loop uses this to skip re-render work after pure listeners.
  const std::vector<analysis::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  const std::unordered_set<std::string>& pure_functions() const {
    return pure_functions_;
  }

 private:
  friend class Engine;
  CompiledQuery(std::unique_ptr<Module> module, StaticContext sctx,
                std::vector<const Module*> imported)
      : module_(std::move(module)),
        sctx_(std::move(sctx)),
        imported_(std::move(imported)),
        evaluator_(sctx_) {}

  std::unique_ptr<Module> module_;
  StaticContext sctx_;
  std::vector<const Module*> imported_;  // for global binding order
  Evaluator evaluator_;
  OptimizerStats optimizer_stats_;
  std::vector<analysis::Diagnostic> diagnostics_;
  // The full AnalysisFacts are retained on the evaluator (shared_ptr,
  // see Evaluator::set_analysis_facts) for compiled-plan specialization;
  // cardinality entries key on AST nodes, so only facts whose nodes
  // survived the optimizer still resolve.
  std::unordered_set<std::string> pure_functions_;
};

// Compiles queries and holds registered library modules (importable by
// namespace; the substrate for the paper's §3.4 web-service modules).
class Engine {
 public:
  // Parses and registers a library module; returns its namespace.
  Result<std::string> LoadLibrary(std::string_view source);

  // Compiles a main module, resolving imports against loaded libraries.
  // Imports with no matching library are allowed: calls into them must
  // be satisfied by external functions on the DynamicContext (this is
  // how remote web-service stubs plug in).
  Result<std::unique_ptr<CompiledQuery>> Compile(std::string_view source);
  Result<std::unique_ptr<CompiledQuery>> Compile(
      std::string_view source, const CompileOptions& options);

  const Module* FindLibrary(const std::string& ns) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Module>> libraries_;
};

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_ENGINE_H_
