#include "xquery/value_ops.h"

#include <cmath>
#include <string>

#include "xml/dom.h"

namespace xqib::xquery::valueops {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

Result<AtomicValue> RequireSingleAtomic(const Sequence& seq,
                                        std::string_view what) {
  Sequence data = xdm::Atomize(seq);
  if (data.size() != 1) {
    return Status::TypeError(std::string(what) +
                             " requires a single atomic value, got a "
                             "sequence of " +
                             std::to_string(data.size()));
  }
  return data[0].atomic();
}

Result<int> GeneralCompareAtoms(const AtomicValue& a, const AtomicValue& b) {
  if (a.is_untyped() && b.is_numeric()) {
    XQ_ASSIGN_OR_RETURN(AtomicValue pa, a.CastTo(AtomicType::kDouble));
    return pa.Compare(b);
  }
  if (b.is_untyped() && a.is_numeric()) {
    XQ_ASSIGN_OR_RETURN(AtomicValue pb, b.CastTo(AtomicType::kDouble));
    return a.Compare(pb);
  }
  return a.Compare(b);
}

bool CompareSatisfies(int cmp, CompOp op) {
  switch (op) {
    case CompOp::kGenEq: case CompOp::kValEq: return cmp == 0;
    case CompOp::kGenNe: case CompOp::kValNe: return cmp != 0 && cmp != 2;
    case CompOp::kGenLt: case CompOp::kValLt: return cmp == -1;
    case CompOp::kGenLe: case CompOp::kValLe: return cmp == -1 || cmp == 0;
    case CompOp::kGenGt: case CompOp::kValGt: return cmp == 1;
    case CompOp::kGenGe: case CompOp::kValGe: return cmp == 1 || cmp == 0;
    default: return false;
  }
}

Result<Sequence> CompareSequences(CompOp op, const Sequence& lhs,
                                  const Sequence& rhs) {
  if (op == CompOp::kIs || op == CompOp::kPrecedes || op == CompOp::kFollows) {
    if (lhs.empty() || rhs.empty()) return Sequence{};
    if (lhs.size() != 1 || rhs.size() != 1 || !lhs[0].is_node() ||
        !rhs[0].is_node()) {
      return Status::TypeError("node comparison requires single nodes");
    }
    int cmp = lhs[0].node()->CompareDocumentOrder(rhs[0].node());
    bool v = op == CompOp::kIs        ? lhs[0].node() == rhs[0].node()
             : op == CompOp::kPrecedes ? cmp < 0
                                       : cmp > 0;
    return Sequence{Item::Boolean(v)};
  }

  bool general = op >= CompOp::kGenEq && op <= CompOp::kGenGe;
  Sequence la = xdm::Atomize(lhs);
  Sequence ra = xdm::Atomize(rhs);
  if (general) {
    for (const Item& a : la) {
      for (const Item& b : ra) {
        XQ_ASSIGN_OR_RETURN(int cmp,
                            GeneralCompareAtoms(a.atomic(), b.atomic()));
        if (CompareSatisfies(cmp, op)) {
          return Sequence{Item::Boolean(true)};
        }
      }
    }
    return Sequence{Item::Boolean(false)};
  }
  // Value comparison: empty operand -> empty result.
  if (la.empty() || ra.empty()) return Sequence{};
  if (la.size() != 1 || ra.size() != 1) {
    return Status::TypeError("value comparison requires singletons");
  }
  AtomicValue a = la[0].atomic();
  AtomicValue b = ra[0].atomic();
  // Untyped operands in value comparisons are treated as strings.
  if (a.is_untyped()) a = AtomicValue::String(a.ToXPathString());
  if (b.is_untyped()) b = AtomicValue::String(b.ToXPathString());
  XQ_ASSIGN_OR_RETURN(int cmp, a.Compare(b));
  return Sequence{Item::Boolean(CompareSatisfies(cmp, op))};
}

Result<Sequence> ArithUnary(ArithOp op, const Sequence& v) {
  if (v.empty()) return Sequence{};
  XQ_ASSIGN_OR_RETURN(AtomicValue a, RequireSingleAtomic(v, "unary"));
  if (op == ArithOp::kAdd) {
    XQ_ASSIGN_OR_RETURN(double d, a.ToDouble());
    if (a.type() == AtomicType::kInteger) {
      return Sequence{Item::Integer(a.int_value())};
    }
    return Sequence{Item::Double(d)};
  }
  if (a.type() == AtomicType::kInteger) {
    return Sequence{Item::Integer(-a.int_value())};
  }
  XQ_ASSIGN_OR_RETURN(double d, a.ToDouble());
  return Sequence{Item::Double(-d)};
}

Result<Sequence> ArithSequences(ArithOp op, const Sequence& lhs,
                                const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  XQ_ASSIGN_OR_RETURN(AtomicValue a, RequireSingleAtomic(lhs, "arithmetic"));
  XQ_ASSIGN_OR_RETURN(AtomicValue b, RequireSingleAtomic(rhs, "arithmetic"));

  bool int_op = a.type() == AtomicType::kInteger &&
                b.type() == AtomicType::kInteger;
  if (int_op) {
    int64_t x = a.int_value(), y = b.int_value();
    switch (op) {
      case ArithOp::kAdd: return Sequence{Item::Integer(x + y)};
      case ArithOp::kSub: return Sequence{Item::Integer(x - y)};
      case ArithOp::kMul: return Sequence{Item::Integer(x * y)};
      case ArithOp::kDiv: {
        if (y == 0) {
          return Status::Error("FOAR0001", "integer division by zero");
        }
        if (x % y == 0) return Sequence{Item::Integer(x / y)};
        return Sequence{
            Item::Atomic(AtomicValue::Decimal(static_cast<double>(x) /
                                              static_cast<double>(y)))};
      }
      case ArithOp::kIDiv:
        if (y == 0) {
          return Status::Error("FOAR0001", "integer division by zero");
        }
        return Sequence{Item::Integer(x / y)};
      case ArithOp::kMod:
        if (y == 0) {
          return Status::Error("FOAR0001", "integer modulo by zero");
        }
        return Sequence{Item::Integer(x % y)};
    }
  }
  XQ_ASSIGN_OR_RETURN(double x, a.ToDouble());
  XQ_ASSIGN_OR_RETURN(double y, b.ToDouble());
  double r = 0;
  switch (op) {
    case ArithOp::kAdd: r = x + y; break;
    case ArithOp::kSub: r = x - y; break;
    case ArithOp::kMul: r = x * y; break;
    case ArithOp::kDiv: r = x / y; break;
    case ArithOp::kIDiv: {
      if (y == 0) return Status::Error("FOAR0001", "idiv by zero");
      return Sequence{Item::Integer(static_cast<int64_t>(x / y))};
    }
    case ArithOp::kMod: r = std::fmod(x, y); break;
  }
  return Sequence{Item::Double(r)};
}

// ------------------------------------------- XQUF primitive builders ---

Status BuildInsert(InsertMode mode, const Sequence& source,
                   const Sequence& target_seq, PendingUpdateList* pul) {
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008", "insert target must be a single node");
  }
  xml::Node* target = target_seq[0].node();
  bool into = mode == InsertMode::kInto || mode == InsertMode::kAsFirstInto ||
              mode == InsertMode::kAsLastInto;
  if (into && !target->is_element() &&
      target->kind() != xml::NodeKind::kDocument) {
    return Status::Error("XUTY0005",
                         "insert into target must be an element or document");
  }
  if (!into && target->parent() == nullptr) {
    return Status::Error("XUDY0029",
                         "insert before/after target has no parent");
  }
  xml::Document* doc = target->document();
  PendingUpdateList::Primitive prim;
  PendingUpdateList::Primitive attr_prim;
  attr_prim.kind = PendingUpdateList::Kind::kInsertAttributes;
  attr_prim.target = into ? target : target->parent();
  for (const Item& item : source) {
    if (!item.is_node()) {
      // Atomic content becomes a text node (convenience extension).
      prim.content.push_back(doc->CreateText(item.atomic().ToXPathString()));
      continue;
    }
    xml::Node* copy = doc->ImportCopy(item.node());
    if (copy->is_attribute()) {
      attr_prim.content.push_back(copy);
    } else {
      prim.content.push_back(copy);
    }
  }
  switch (mode) {
    case InsertMode::kInto:
    case InsertMode::kAsLastInto:
      prim.kind = PendingUpdateList::Kind::kInsertLast;
      break;
    case InsertMode::kAsFirstInto:
      prim.kind = PendingUpdateList::Kind::kInsertFirst;
      break;
    case InsertMode::kBefore:
      prim.kind = PendingUpdateList::Kind::kInsertBefore;
      break;
    case InsertMode::kAfter:
      prim.kind = PendingUpdateList::Kind::kInsertAfter;
      break;
  }
  prim.target = target;
  if (!attr_prim.content.empty()) {
    if (!attr_prim.target->is_element()) {
      return Status::Error("XUTY0022",
                           "attribute insertion into a non-element");
    }
    pul->Add(std::move(attr_prim));
  }
  if (!prim.content.empty()) pul->Add(std::move(prim));
  return Status();
}

Status BuildDelete(const Sequence& targets, PendingUpdateList* pul) {
  for (const Item& item : targets) {
    if (!item.is_node()) {
      return Status::Error("XUTY0007", "delete target must be nodes");
    }
    PendingUpdateList::Primitive prim;
    prim.kind = PendingUpdateList::Kind::kDelete;
    prim.target = item.node();
    pul->Add(std::move(prim));
  }
  return Status();
}

Status BuildReplace(bool replace_value_of, const Sequence& target_seq,
                    const Sequence& source, PendingUpdateList* pul) {
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008", "replace target must be a single node");
  }
  xml::Node* target = target_seq[0].node();
  PendingUpdateList::Primitive prim;
  prim.target = target;
  if (replace_value_of) {
    // replace value of node T with S: S atomizes to the new string value.
    Sequence data = xdm::Atomize(source);
    std::string value;
    for (size_t i = 0; i < data.size(); ++i) {
      if (i > 0) value += " ";
      value += data[i].atomic().ToXPathString();
    }
    prim.kind = target->is_element()
                    ? PendingUpdateList::Kind::kReplaceElementContent
                    : PendingUpdateList::Kind::kReplaceValue;
    prim.value = std::move(value);
  } else {
    if (target->parent() == nullptr) {
      return Status::Error("XUDY0009", "replace target has no parent");
    }
    prim.kind = PendingUpdateList::Kind::kReplaceNode;
    xml::Document* doc = target->document();
    for (const Item& item : source) {
      if (item.is_node()) {
        prim.content.push_back(doc->ImportCopy(item.node()));
      } else {
        prim.content.push_back(doc->CreateText(item.atomic().ToXPathString()));
      }
    }
  }
  pul->Add(std::move(prim));
  return Status();
}

Status BuildRename(const Sequence& target_seq, const Sequence& name_seq,
                   PendingUpdateList* pul) {
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008", "rename target must be a single node");
  }
  XQ_ASSIGN_OR_RETURN(AtomicValue nv,
                      RequireSingleAtomic(name_seq, "rename name"));
  xml::QName new_name = nv.type() == AtomicType::kQName
                            ? nv.qname_value()
                            : xml::QName(nv.ToXPathString());
  PendingUpdateList::Primitive prim;
  prim.kind = PendingUpdateList::Kind::kRename;
  prim.target = target_seq[0].node();
  prim.name = std::move(new_name);
  pul->Add(std::move(prim));
  return Status();
}

}  // namespace xqib::xquery::valueops
