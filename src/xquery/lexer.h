// Tokenizer for the XQuery grammar (XPath 2.0 core, FLWOR, constructors,
// the Update Facility, the Scripting Extension, and the paper's browser
// grammar extensions). XQuery keywords are context-sensitive, so the lexer
// emits names and lets the parser decide what is a keyword. Direct element
// constructors switch the parser into raw scanning; the lexer therefore
// exposes its raw cursor.

#ifndef XQIB_XQUERY_LEXER_H_
#define XQIB_XQUERY_LEXER_H_

#include <deque>
#include <string>
#include <string_view>

#include "base/result.h"

namespace xqib::xquery {

enum class TokKind {
  kEof,
  kName,     // NCName or lexical QName (text: "local" or "prefix:local")
  kString,   // string literal, text already unescaped
  kInteger,
  kDecimal,
  kDouble,
  kVariable,  // $name or $prefix:name (text excludes '$')
  kSymbol,    // punctuation / operators, text is the symbol itself
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  size_t pos = 0;  // byte offset in the source, for diagnostics

  bool IsSymbol(std::string_view s) const {
    return kind == TokKind::kSymbol && text == s;
  }
  bool IsName(std::string_view s) const {
    return kind == TokKind::kName && text == s;
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : in_(input) {}

  // Current token (lexed on demand). Parse errors surface via status().
  const Token& Peek();
  // Looks ahead k tokens (k=0 is Peek()).
  const Token& Peek(size_t k);
  // Consumes and returns the current token.
  Token Next();

  // Non-OK if tokenization failed; once set, Peek returns kEof.
  const Status& status() const { return status_; }

  // --- Raw access for direct constructors (parser-driven scanning) ---

  // Byte offset where the *current token* starts (whitespace/comments
  // skipped). Calling RawSeek invalidates buffered tokens.
  size_t TokenStart();
  // Raw input and cursor control.
  std::string_view input() const { return in_; }
  void RawSeek(size_t pos);

 private:
  Result<Token> LexOne();
  void SkipWhitespaceAndComments();

  std::string_view in_;
  size_t pos_ = 0;
  std::deque<Token> buffered_;
  Status status_;
  Token eof_token_;
};

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_LEXER_H_
