// The fn: built-in function and operator library (XQuery 1.0 and XPath
// 2.0 Functions and Operators, reference [9] of the paper) — the subset
// a browser scripting workload exercises, plus date/time component
// extraction ("a powerful function and operator library, e.g. for dates
// and times", paper §1).

#include <algorithm>
#include <cmath>
#include <regex>
#include <unordered_set>

#include "base/strings.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/update.h"

namespace xqib::xquery {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

namespace {

Status WrongArity(const std::string& name, size_t n) {
  return Status::Error("XPST0017", "wrong number of arguments (" +
                                       std::to_string(n) + ") for fn:" +
                                       name);
}

std::string StringArg(const Sequence& seq) {
  // fn-style string argument: empty sequence -> "".
  if (seq.empty()) return "";
  return seq[0].StringValue();
}

Result<Item> ContextItem(DynamicContext& ctx, const std::string& fn) {
  if (!ctx.focus().has_item) {
    return Status::Error("XPDY0002",
                         "fn:" + fn + "() requires a context item");
  }
  return ctx.focus().item;
}

Result<double> NumericArg(const Sequence& seq, bool* empty) {
  Sequence data = xdm::Atomize(seq);
  if (data.empty()) {
    *empty = true;
    return 0.0;
  }
  *empty = false;
  if (data.size() > 1) {
    return Status::TypeError("expected a single numeric value");
  }
  return data[0].atomic().ToDouble();
}

bool DeepEqualNodes(const xml::Node* a, const xml::Node* b) {
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case xml::NodeKind::kText:
    case xml::NodeKind::kComment:
      return a->value() == b->value();
    case xml::NodeKind::kProcessingInstruction:
    case xml::NodeKind::kAttribute:
      return a->name() == b->name() && a->value() == b->value();
    case xml::NodeKind::kElement: {
      if (!(a->name() == b->name())) return false;
      if (a->attributes().size() != b->attributes().size()) return false;
      for (const xml::Node* attr : a->attributes()) {
        const xml::Node* other =
            b->FindAttribute(attr->name().ns(), attr->name().local());
        if (other == nullptr || other->value() != attr->value()) return false;
      }
      // Compare children ignoring comments/PIs, per fn:deep-equal.
      auto significant = [](const xml::Node* n) {
        return n->kind() == xml::NodeKind::kElement ||
               n->kind() == xml::NodeKind::kText;
      };
      std::vector<const xml::Node*> ca, cb;
      for (const xml::Node* c : a->children()) {
        if (significant(c)) ca.push_back(c);
      }
      for (const xml::Node* c : b->children()) {
        if (significant(c)) cb.push_back(c);
      }
      if (ca.size() != cb.size()) return false;
      for (size_t i = 0; i < ca.size(); ++i) {
        if (!DeepEqualNodes(ca[i], cb[i])) return false;
      }
      return true;
    }
    case xml::NodeKind::kDocument: {
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!DeepEqualNodes(a->children()[i], b->children()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

// Extracts a component from an ISO "YYYY-MM-DDThh:mm:ss[.fff]" string.
Result<int64_t> DateTimeComponent(const std::string& iso, int index) {
  // index: 0=year 1=month 2=day 3=hour 4=minute 5=second
  static const std::regex kIso(
      R"((\d{4})-(\d{2})-(\d{2})(?:T(\d{2}):(\d{2}):(\d{2})(?:\.\d+)?)?.*)");
  std::smatch m;
  if (!std::regex_match(iso, m, kIso)) {
    return Status::Error("FORG0001",
                         "invalid dateTime lexical form '" + iso + "'");
  }
  if (index >= 3 && !m[static_cast<size_t>(index + 1)].matched) {
    return Status::Error("FORG0001", "dateTime has no time part");
  }
  return static_cast<int64_t>(
      std::stol(m[static_cast<size_t>(index + 1)].str()));
}

Result<int64_t> TimeComponent(const std::string& iso, int index) {
  // index: 0=hour 1=minute 2=second for "hh:mm:ss" forms.
  static const std::regex kTime(R"((\d{2}):(\d{2}):(\d{2})(?:\.\d+)?.*)");
  std::smatch m;
  if (!std::regex_match(iso, m, kTime)) {
    return Status::Error("FORG0001",
                         "invalid time lexical form '" + iso + "'");
  }
  return static_cast<int64_t>(
      std::stol(m[static_cast<size_t>(index + 1)].str()));
}

}  // namespace

Result<Sequence> CallBuiltinFunction(const xml::QName& name,
                                     std::vector<Sequence>& args,
                                     Evaluator& ev, DynamicContext& ctx,
                                     bool* handled) {
  (void)ev;
  *handled = true;
  if (name.ns() != xml::kFnNamespace && name.ns() != xml::kXsNamespace) {
    *handled = false;
    return Sequence{};
  }

  // xs:TYPE(value) constructor functions behave like "cast as".
  if (name.ns() == xml::kXsNamespace) {
    static const std::unordered_map<std::string, AtomicType> kCtors = {
        {"string", AtomicType::kString},
        {"boolean", AtomicType::kBoolean},
        {"integer", AtomicType::kInteger},
        {"int", AtomicType::kInteger},
        {"decimal", AtomicType::kDecimal},
        {"double", AtomicType::kDouble},
        {"float", AtomicType::kDouble},
        {"anyURI", AtomicType::kAnyUri},
        {"untypedAtomic", AtomicType::kUntypedAtomic},
        {"dateTime", AtomicType::kDateTime},
        {"date", AtomicType::kDate},
        {"time", AtomicType::kTime},
    };
    auto it = kCtors.find(name.local());
    if (it == kCtors.end()) {
      *handled = false;
      return Sequence{};
    }
    if (args.size() != 1) return WrongArity(name.Lexical(), args.size());
    Sequence data = xdm::Atomize(args[0]);
    if (data.empty()) return Sequence{};
    if (data.size() > 1) {
      return Status::TypeError("constructor applied to a sequence");
    }
    XQ_ASSIGN_OR_RETURN(AtomicValue v, data[0].atomic().CastTo(it->second));
    return Sequence{Item::Atomic(std::move(v))};
  }

  const std::string& fn = name.local();
  size_t n = args.size();

  // ---------------------------------------------------------- context ---
  if (fn == "position") {
    if (n != 0) return WrongArity(fn, n);
    if (!ctx.focus().has_item) {
      return Status::Error("XPDY0002", "fn:position() without focus");
    }
    return Sequence{Item::Integer(ctx.focus().position)};
  }
  if (fn == "last") {
    if (n != 0) return WrongArity(fn, n);
    if (!ctx.focus().has_item) {
      return Status::Error("XPDY0002", "fn:last() without focus");
    }
    return Sequence{Item::Integer(ctx.focus().size)};
  }
  if (fn == "string") {
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      return Sequence{Item::String(item.StringValue())};
    }
    if (n != 1) return WrongArity(fn, n);
    if (args[0].empty()) return Sequence{Item::String("")};
    if (args[0].size() > 1) {
      return Status::TypeError("fn:string of a sequence");
    }
    return Sequence{Item::String(args[0][0].StringValue())};
  }
  if (fn == "data") {
    if (n != 1) return WrongArity(fn, n);
    return xdm::Atomize(args[0]);
  }
  if (fn == "number") {
    Sequence input;
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      input = {item};
    } else if (n == 1) {
      input = args[0];
    } else {
      return WrongArity(fn, n);
    }
    Sequence data = xdm::Atomize(input);
    if (data.size() != 1) return Sequence{Item::Double(std::nan(""))};
    Result<double> d = data[0].atomic().ToDouble();
    return Sequence{Item::Double(d.ok() ? *d : std::nan(""))};
  }
  if (fn == "name" || fn == "local-name" || fn == "namespace-uri") {
    xml::Node* node = nullptr;
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      if (!item.is_node()) {
        return Status::TypeError("fn:" + fn + " of a non-node");
      }
      node = item.node();
    } else if (n == 1) {
      if (args[0].empty()) return Sequence{Item::String("")};
      if (!args[0][0].is_node()) {
        return Status::TypeError("fn:" + fn + " of a non-node");
      }
      node = args[0][0].node();
    } else {
      return WrongArity(fn, n);
    }
    if (fn == "name") return Sequence{Item::String(node->name().Lexical())};
    if (fn == "local-name") return Sequence{Item::String(node->name().local())};
    return Sequence{Item::String(node->name().ns())};
  }
  if (fn == "node-name") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].empty()) return Sequence{};
    if (!args[0][0].is_node()) return Status::TypeError("node-name arg");
    return Sequence{
        Item::Atomic(AtomicValue::MakeQName(args[0][0].node()->name()))};
  }
  if (fn == "root") {
    xml::Node* node = nullptr;
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      if (!item.is_node()) return Status::TypeError("fn:root of non-node");
      node = item.node();
    } else if (n == 1) {
      if (args[0].empty()) return Sequence{};
      if (!args[0][0].is_node()) {
        return Status::TypeError("fn:root of non-node");
      }
      node = args[0][0].node();
    } else {
      return WrongArity(fn, n);
    }
    return Sequence{Item::Node(node->Root())};
  }

  // ---------------------------------------------------------- boolean ---
  if (fn == "boolean") {
    if (n != 1) return WrongArity(fn, n);
    XQ_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return Sequence{Item::Boolean(b)};
  }
  if (fn == "not") {
    if (n != 1) return WrongArity(fn, n);
    XQ_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return Sequence{Item::Boolean(!b)};
  }
  if (fn == "true") return Sequence{Item::Boolean(true)};
  if (fn == "false") return Sequence{Item::Boolean(false)};

  // ---------------------------------------------------------- numeric ---
  if (fn == "count") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{Item::Integer(static_cast<int64_t>(args[0].size()))};
  }
  if (fn == "abs" || fn == "ceiling" || fn == "floor" || fn == "round") {
    if (n != 1) return WrongArity(fn, n);
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double d, NumericArg(args[0], &empty));
    if (empty) return Sequence{};
    double r = fn == "abs"       ? std::fabs(d)
               : fn == "ceiling" ? std::ceil(d)
               : fn == "floor"   ? std::floor(d)
                                 : std::floor(d + 0.5);
    Sequence data = xdm::Atomize(args[0]);
    if (data[0].atomic().type() == AtomicType::kInteger) {
      return Sequence{Item::Integer(static_cast<int64_t>(r))};
    }
    return Sequence{Item::Double(r)};
  }
  if (fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
    if (fn == "sum" ? (n < 1 || n > 2) : n != 1) return WrongArity(fn, n);
    Sequence data = xdm::Atomize(args[0]);
    if (data.empty()) {
      if (fn == "sum") {
        if (n == 2) return args[1];
        return Sequence{Item::Integer(0)};
      }
      return Sequence{};
    }
    // String min/max fall back to codepoint comparison.
    bool numeric = true;
    for (const Item& i : data) {
      if (!i.atomic().is_numeric() && !i.atomic().is_untyped()) {
        numeric = false;
        break;
      }
    }
    if ((fn == "min" || fn == "max") && !numeric) {
      std::string best = data[0].StringValue();
      for (const Item& i : data) {
        std::string s = i.StringValue();
        if ((fn == "min") ? s < best : s > best) best = s;
      }
      return Sequence{Item::String(best)};
    }
    double acc = 0;
    bool all_int = true;
    double best = 0;
    bool first = true;
    for (const Item& i : data) {
      XQ_ASSIGN_OR_RETURN(double d, i.atomic().ToDouble());
      if (i.atomic().type() != AtomicType::kInteger) all_int = false;
      acc += d;
      if (first || (fn == "min" ? d < best : d > best)) best = d;
      first = false;
    }
    if (fn == "sum") {
      if (all_int) return Sequence{Item::Integer(static_cast<int64_t>(acc))};
      return Sequence{Item::Double(acc)};
    }
    if (fn == "avg") {
      return Sequence{Item::Double(acc / static_cast<double>(data.size()))};
    }
    if (all_int) return Sequence{Item::Integer(static_cast<int64_t>(best))};
    return Sequence{Item::Double(best)};
  }

  // ----------------------------------------------------------- string ---
  if (fn == "concat") {
    if (n < 2) return WrongArity(fn, n);
    std::string out;
    for (const Sequence& a : args) out += StringArg(a);
    return Sequence{Item::String(out)};
  }
  if (fn == "string-join") {
    if (n != 2) return WrongArity(fn, n);
    std::string sep = StringArg(args[1]);
    std::string out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i > 0) out += sep;
      out += args[0][i].StringValue();
    }
    return Sequence{Item::String(out)};
  }
  if (fn == "substring") {
    if (n < 2 || n > 3) return WrongArity(fn, n);
    std::vector<uint32_t> cps = Utf8ToCodepoints(StringArg(args[0]));
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double startd, NumericArg(args[1], &empty));
    if (empty) return Sequence{Item::String("")};
    double lend = static_cast<double>(cps.size()) - startd + 1;
    if (n == 3) {
      XQ_ASSIGN_OR_RETURN(lend, NumericArg(args[2], &empty));
      if (empty) return Sequence{Item::String("")};
    }
    // XPath substring: round both, 1-based, handles NaN/negatives.
    double from = std::floor(startd + 0.5);
    double to = from + std::floor(lend + 0.5);
    std::vector<uint32_t> out;
    for (size_t i = 0; i < cps.size(); ++i) {
      double pos = static_cast<double>(i + 1);
      if (pos >= from && pos < to) out.push_back(cps[i]);
    }
    return Sequence{Item::String(CodepointsToUtf8(out))};
  }
  if (fn == "string-length") {
    std::string s;
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      s = item.StringValue();
    } else if (n == 1) {
      s = StringArg(args[0]);
    } else {
      return WrongArity(fn, n);
    }
    return Sequence{Item::Integer(static_cast<int64_t>(Utf8Length(s)))};
  }
  // The paper's AJAX example (§4.4) calls fn:length on a string.
  if (fn == "length") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{
        Item::Integer(static_cast<int64_t>(Utf8Length(StringArg(args[0]))))};
  }
  if (fn == "upper-case") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{Item::String(AsciiToUpper(StringArg(args[0])))};
  }
  if (fn == "lower-case") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{Item::String(AsciiToLower(StringArg(args[0])))};
  }
  if (fn == "contains" || fn == "starts-with" || fn == "ends-with") {
    if (n != 2) return WrongArity(fn, n);
    std::string a = StringArg(args[0]), b = StringArg(args[1]);
    bool r = fn == "contains"      ? Contains(a, b)
             : fn == "starts-with" ? StartsWith(a, b)
                                   : EndsWith(a, b);
    return Sequence{Item::Boolean(r)};
  }
  if (fn == "substring-before" || fn == "substring-after") {
    if (n != 2) return WrongArity(fn, n);
    std::string a = StringArg(args[0]), b = StringArg(args[1]);
    size_t pos = a.find(b);
    if (pos == std::string::npos || b.empty()) {
      return Sequence{Item::String(b.empty() && fn == "substring-after"
                                       ? a
                                       : std::string())};
    }
    if (fn == "substring-before") {
      return Sequence{Item::String(a.substr(0, pos))};
    }
    return Sequence{Item::String(a.substr(pos + b.size()))};
  }
  if (fn == "translate") {
    if (n != 3) return WrongArity(fn, n);
    std::vector<uint32_t> src = Utf8ToCodepoints(StringArg(args[0]));
    std::vector<uint32_t> map_from = Utf8ToCodepoints(StringArg(args[1]));
    std::vector<uint32_t> map_to = Utf8ToCodepoints(StringArg(args[2]));
    std::vector<uint32_t> out;
    for (uint32_t cp : src) {
      auto it = std::find(map_from.begin(), map_from.end(), cp);
      if (it == map_from.end()) {
        out.push_back(cp);
      } else {
        size_t idx = static_cast<size_t>(it - map_from.begin());
        if (idx < map_to.size()) out.push_back(map_to[idx]);
      }
    }
    return Sequence{Item::String(CodepointsToUtf8(out))};
  }
  if (fn == "normalize-space") {
    std::string s;
    if (n == 0) {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      s = item.StringValue();
    } else if (n == 1) {
      s = StringArg(args[0]);
    } else {
      return WrongArity(fn, n);
    }
    return Sequence{Item::String(NormalizeSpace(s))};
  }
  if (fn == "compare") {
    if (n != 2) return WrongArity(fn, n);
    if (args[0].empty() || args[1].empty()) return Sequence{};
    int c = StringArg(args[0]).compare(StringArg(args[1]));
    return Sequence{Item::Integer(c < 0 ? -1 : (c > 0 ? 1 : 0))};
  }
  if (fn == "codepoints-to-string") {
    if (n != 1) return WrongArity(fn, n);
    std::vector<uint32_t> cps;
    for (const Item& i : xdm::Atomize(args[0])) {
      XQ_ASSIGN_OR_RETURN(int64_t cp, i.atomic().ToInteger());
      cps.push_back(static_cast<uint32_t>(cp));
    }
    return Sequence{Item::String(CodepointsToUtf8(cps))};
  }
  if (fn == "string-to-codepoints") {
    if (n != 1) return WrongArity(fn, n);
    Sequence out;
    for (uint32_t cp : Utf8ToCodepoints(StringArg(args[0]))) {
      out.push_back(Item::Integer(cp));
    }
    return out;
  }
  if (fn == "matches" || fn == "replace" || fn == "tokenize") {
    if ((fn == "replace" && n != 3) || (fn != "replace" && n != 2)) {
      return WrongArity(fn, n);
    }
    std::string input = StringArg(args[0]);
    std::string pattern = StringArg(args[1]);
    std::regex re;
    // std::regex throws on malformed patterns; this is the one place we
    // bridge an exception into a Status.
    try {
      re = std::regex(pattern, std::regex::ECMAScript);
    } catch (const std::regex_error& err) {
      return Status::Error("FORX0002",
                           "invalid regular expression: " + pattern);
    }
    if (fn == "matches") {
      return Sequence{
          Item::Boolean(std::regex_search(input, re))};
    }
    if (fn == "replace") {
      std::string repl = StringArg(args[2]);
      return Sequence{Item::String(std::regex_replace(input, re, repl))};
    }
    // tokenize
    Sequence out;
    std::sregex_token_iterator it(input.begin(), input.end(), re, -1), end;
    for (; it != end; ++it) out.push_back(Item::String(*it));
    return out;
  }
  if (fn == "encode-for-uri") {
    if (n != 1) return WrongArity(fn, n);
    std::string out;
    for (unsigned char c : StringArg(args[0])) {
      if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
          c == '~') {
        out.push_back(static_cast<char>(c));
      } else {
        char buf[4];
        std::snprintf(buf, sizeof(buf), "%%%02X", c);
        out += buf;
      }
    }
    return Sequence{Item::String(out)};
  }

  // --------------------------------------------------------- sequence ---
  if (fn == "empty") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{Item::Boolean(args[0].empty())};
  }
  if (fn == "exists") {
    if (n != 1) return WrongArity(fn, n);
    return Sequence{Item::Boolean(!args[0].empty())};
  }
  if (fn == "distinct-values") {
    if (n != 1) return WrongArity(fn, n);
    Sequence data = xdm::Atomize(args[0]);
    Sequence out;
    std::unordered_set<std::string> seen;
    for (Item& i : data) {
      // Distinctness by typed-value string form, numerics normalized.
      std::string key;
      if (i.atomic().is_numeric()) {
        Result<double> d = i.atomic().ToDouble();
        key = "N:" + (d.ok() ? DoubleToXPathString(*d) : i.StringValue());
      } else {
        key = "S:" + i.StringValue();
      }
      if (seen.insert(key).second) out.push_back(std::move(i));
    }
    return out;
  }
  if (fn == "reverse") {
    if (n != 1) return WrongArity(fn, n);
    Sequence out(args[0].rbegin(), args[0].rend());
    return out;
  }
  if (fn == "head") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].empty()) return Sequence{};
    return Sequence{args[0][0]};
  }
  if (fn == "tail") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].empty()) return Sequence{};
    return Sequence(args[0].begin() + 1, args[0].end());
  }
  if (fn == "subsequence") {
    if (n < 2 || n > 3) return WrongArity(fn, n);
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double startd, NumericArg(args[1], &empty));
    if (empty) return Sequence{};
    double lend = std::numeric_limits<double>::infinity();
    if (n == 3) {
      XQ_ASSIGN_OR_RETURN(lend, NumericArg(args[2], &empty));
      if (empty) return Sequence{};
    }
    double from = std::floor(startd + 0.5);
    double to = from + (std::isinf(lend) ? lend : std::floor(lend + 0.5));
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      double pos = static_cast<double>(i + 1);
      if (pos >= from && pos < to) out.push_back(args[0][i]);
    }
    return out;
  }
  if (fn == "insert-before") {
    if (n != 3) return WrongArity(fn, n);
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double posd, NumericArg(args[1], &empty));
    int64_t pos = empty ? 1 : static_cast<int64_t>(posd);
    if (pos < 1) pos = 1;
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (static_cast<int64_t>(i + 1) == pos) {
        out.insert(out.end(), args[2].begin(), args[2].end());
      }
      out.push_back(args[0][i]);
    }
    if (pos > static_cast<int64_t>(args[0].size())) {
      out.insert(out.end(), args[2].begin(), args[2].end());
    }
    return out;
  }
  if (fn == "remove") {
    if (n != 2) return WrongArity(fn, n);
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double posd, NumericArg(args[1], &empty));
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (!empty && static_cast<double>(i + 1) == posd) continue;
      out.push_back(args[0][i]);
    }
    return out;
  }
  if (fn == "index-of") {
    if (n != 2) return WrongArity(fn, n);
    Sequence data = xdm::Atomize(args[0]);
    Sequence needle = xdm::Atomize(args[1]);
    if (needle.size() != 1) {
      return Status::TypeError("fn:index-of needs a single search value");
    }
    Sequence out;
    for (size_t i = 0; i < data.size(); ++i) {
      Result<int> cmp = data[i].atomic().Compare(needle[0].atomic());
      if (cmp.ok() && *cmp == 0) {
        out.push_back(Item::Integer(static_cast<int64_t>(i + 1)));
      }
    }
    return out;
  }
  if (fn == "exactly-one") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].size() != 1) {
      return Status::Error("FORG0005", "fn:exactly-one: sequence size " +
                                           std::to_string(args[0].size()));
    }
    return args[0];
  }
  if (fn == "zero-or-one") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].size() > 1) {
      return Status::Error("FORG0003", "fn:zero-or-one: more than one item");
    }
    return args[0];
  }
  if (fn == "one-or-more") {
    if (n != 1) return WrongArity(fn, n);
    if (args[0].empty()) {
      return Status::Error("FORG0004", "fn:one-or-more: empty sequence");
    }
    return args[0];
  }
  if (fn == "deep-equal") {
    if (n != 2) return WrongArity(fn, n);
    if (args[0].size() != args[1].size()) {
      return Sequence{Item::Boolean(false)};
    }
    for (size_t i = 0; i < args[0].size(); ++i) {
      const Item& a = args[0][i];
      const Item& b = args[1][i];
      if (a.is_node() != b.is_node()) return Sequence{Item::Boolean(false)};
      if (a.is_node()) {
        if (!DeepEqualNodes(a.node(), b.node())) {
          return Sequence{Item::Boolean(false)};
        }
      } else {
        Result<int> cmp = a.atomic().Compare(b.atomic());
        if (!cmp.ok() || *cmp != 0) return Sequence{Item::Boolean(false)};
      }
    }
    return Sequence{Item::Boolean(true)};
  }

  // -------------------------------------------------------------- node ---
  if (fn == "doc" || fn == "doc-available") {
    if (n != 1) return WrongArity(fn, n);
    if (ctx.browser_profile) {
      // Paper §4.2.1: fn:doc and fn:put are blocked in the browser.
      return Status::Error("BRWS0002",
                           "fn:" + fn + " is blocked in the browser "
                           "profile for security reasons");
    }
    if (ctx.doc_resolver == nullptr) {
      return Status::Error("FODC0002", "no document resolver configured");
    }
    Result<xml::Node*> doc = ctx.doc_resolver(StringArg(args[0]));
    if (fn == "doc-available") {
      return Sequence{Item::Boolean(doc.ok())};
    }
    if (!doc.ok()) return doc.status();
    return Sequence{Item::Node(*doc)};
  }
  if (fn == "put") {
    if (n != 2) return WrongArity(fn, n);
    if (ctx.browser_profile) {
      return Status::Error("BRWS0002",
                           "fn:put is blocked in the browser profile");
    }
    if (ctx.doc_writer == nullptr) {
      return Status::Error("FODC0002", "no document writer configured");
    }
    if (args[0].size() != 1 || !args[0][0].is_node()) {
      return Status::TypeError("fn:put expects a single node");
    }
    XQ_RETURN_NOT_OK(ctx.doc_writer(StringArg(args[1]), args[0][0].node()));
    return Sequence{};
  }
  if (fn == "id") {
    if (n < 1 || n > 2) return WrongArity(fn, n);
    xml::Node* context_node = nullptr;
    if (n == 2) {
      if (args[1].empty() || !args[1][0].is_node()) {
        return Status::TypeError("fn:id second argument must be a node");
      }
      context_node = args[1][0].node();
    } else {
      XQ_ASSIGN_OR_RETURN(Item item, ContextItem(ctx, fn));
      if (!item.is_node()) return Status::TypeError("fn:id context");
      context_node = item.node();
    }
    Sequence out;
    for (const Item& idv : xdm::Atomize(args[0])) {
      for (const std::string& one :
           SplitChar(NormalizeSpace(idv.StringValue()), ' ')) {
        xml::Node* found = context_node->document()->GetElementById(one);
        if (found != nullptr) out.push_back(Item::Node(found));
      }
    }
    XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&out));
    return out;
  }

  // --------------------------------------------------------- date/time ---
  if (fn == "current-dateTime") {
    return Sequence{Item::Atomic(AtomicValue::DateTime(ctx.clock()))};
  }
  if (fn == "current-date") {
    std::string now = ctx.clock();
    return Sequence{Item::Atomic(AtomicValue::Date(now.substr(0, 10)))};
  }
  if (fn == "current-time") {
    std::string now = ctx.clock();
    return Sequence{Item::Atomic(
        AtomicValue::Time(now.size() >= 19 ? now.substr(11, 8) : now))};
  }
  {
    static const std::unordered_map<std::string, int> kDtComponents = {
        {"year-from-dateTime", 0},  {"month-from-dateTime", 1},
        {"day-from-dateTime", 2},   {"hours-from-dateTime", 3},
        {"minutes-from-dateTime", 4}, {"seconds-from-dateTime", 5},
        {"year-from-date", 0},      {"month-from-date", 1},
        {"day-from-date", 2},
    };
    auto it = kDtComponents.find(fn);
    if (it != kDtComponents.end()) {
      if (n != 1) return WrongArity(fn, n);
      if (args[0].empty()) return Sequence{};
      Sequence data = xdm::Atomize(args[0]);
      XQ_ASSIGN_OR_RETURN(int64_t v, DateTimeComponent(
                                         data[0].atomic().ToXPathString(),
                                         it->second));
      return Sequence{Item::Integer(v)};
    }
    static const std::unordered_map<std::string, int> kTimeComponents = {
        {"hours-from-time", 0},
        {"minutes-from-time", 1},
        {"seconds-from-time", 2},
    };
    auto it2 = kTimeComponents.find(fn);
    if (it2 != kTimeComponents.end()) {
      if (n != 1) return WrongArity(fn, n);
      if (args[0].empty()) return Sequence{};
      Sequence data = xdm::Atomize(args[0]);
      XQ_ASSIGN_OR_RETURN(
          int64_t v,
          TimeComponent(data[0].atomic().ToXPathString(), it2->second));
      return Sequence{Item::Integer(v)};
    }
  }

  // --------------------------------------------------------------misc ---
  if (fn == "error") {
    std::string code = "FOER0000";
    std::string msg = "error raised by fn:error";
    if (n >= 1 && !args[0].empty()) code = args[0][0].StringValue();
    if (n >= 2 && !args[1].empty()) msg = args[1][0].StringValue();
    return Status::Error(code, msg);
  }
  if (fn == "serialize") {
    if (n != 1) return WrongArity(fn, n);
    std::string out;
    for (const Item& item : args[0]) {
      if (item.is_node()) {
        out += xml::Serialize(item.node());
      } else {
        out += item.StringValue();
      }
    }
    return Sequence{Item::String(out)};
  }
  if (fn == "trace") {
    if (n != 2) return WrongArity(fn, n);
    if (ctx.trace_sink) {
      ctx.trace_sink(StringArg(args[1]) + ": " +
                     xdm::SequenceToString(args[0]));
    }
    return args[0];
  }

  *handled = false;
  return Sequence{};
}

// ------------------------------------------------- streaming builtins ---

StreamFnClass ClassifyStreamBuiltin(const xml::QName& name, size_t arity) {
  if (name.ns() != xml::kFnNamespace) return StreamFnClass::kNone;
  const std::string& fn = name.local();
  if (arity == 1 && (fn == "exists" || fn == "empty" || fn == "boolean" ||
                     fn == "not" || fn == "head")) {
    return StreamFnClass::kEarlyExit;
  }
  if ((arity == 2 || arity == 3) && fn == "subsequence") {
    return StreamFnClass::kEarlyExit;
  }
  if (arity == 1 && (fn == "count" || fn == "avg" || fn == "min" ||
                     fn == "max" || fn == "sum")) {
    return StreamFnClass::kFold;
  }
  if (arity == 2 && fn == "sum") return StreamFnClass::kFold;
  return StreamFnClass::kNone;
}

bool StreamBuiltinNeedsOrderedArg(const std::string& local) {
  // Pure existence tests observe only (non-)emptiness, so an unordered,
  // possibly duplicated witness stream decides them. Everything else
  // counts, positions or aggregates — the document-order barrier also
  // dedups, so it must stay (count(/a/b/..) must count the parent once).
  return !(local == "exists" || local == "empty" || local == "boolean" ||
           local == "not");
}

Result<Sequence> CallStreamBuiltin(const xml::QName& name,
                                   xdm::ItemStream& arg0,
                                   std::vector<Sequence>& rest, Evaluator& ev,
                                   DynamicContext& ctx) {
  const std::string& fn = name.local();
  const bool bounded = ev.options().bounded_eval;
  Item item;

  if (fn == "exists" || fn == "empty") {
    bool any = false;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      any = true;
      if (bounded) {
        ev.CountEarlyExit(ctx);
        break;
      }
    }
    return Sequence{Item::Boolean(fn == "exists" ? any : !any)};
  }
  if (fn == "boolean" || fn == "not") {
    bool b = false;
    if (bounded) {
      XQ_ASSIGN_OR_RETURN(b, ev.StreamEBV(arg0, ctx));
    } else {
      XQ_ASSIGN_OR_RETURN(Sequence v, xdm::MaterializeStream(arg0, nullptr));
      ev.CountMaterialized(ctx, v.size());
      XQ_ASSIGN_OR_RETURN(b, xdm::EffectiveBooleanValue(v));
    }
    return Sequence{Item::Boolean(fn == "boolean" ? b : !b)};
  }
  if (fn == "head") {
    Sequence out;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      if (out.empty()) out.push_back(std::move(item));
      if (bounded) {
        ev.CountEarlyExit(ctx);
        break;
      }
    }
    return out;
  }
  if (fn == "subsequence") {
    bool empty = false;
    XQ_ASSIGN_OR_RETURN(double startd, NumericArg(rest[0], &empty));
    if (empty) return Sequence{};
    double lend = std::numeric_limits<double>::infinity();
    if (rest.size() == 2) {
      XQ_ASSIGN_OR_RETURN(lend, NumericArg(rest[1], &empty));
      if (empty) return Sequence{};
    }
    double from = std::floor(startd + 0.5);
    double to = from + (std::isinf(lend) ? lend : std::floor(lend + 0.5));
    Sequence out;
    int64_t i = 0;
    bool stopped = false;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      double pos = static_cast<double>(++i);
      if (pos >= from && pos < to) out.push_back(std::move(item));
      // Past the window: nothing later can match (to is monotone in pos;
      // NaN bounds keep every comparison false and drain harmlessly).
      if (bounded && pos + 1 >= to) {
        stopped = true;
        break;
      }
    }
    if (stopped) ev.CountEarlyExit(ctx);
    return out;
  }
  if (fn == "count") {
    int64_t n = 0;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      ++n;
    }
    ev.CountBuffersAvoided(ctx);
    return Sequence{Item::Integer(n)};
  }
  if (fn == "sum" || fn == "avg") {
    // True fold: atomize item by item, never buffering the sequence.
    double acc = 0;
    bool all_int = true;
    int64_t n = 0;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      Sequence atoms = xdm::Atomize(Sequence{std::move(item)});
      for (const Item& a : atoms) {
        XQ_ASSIGN_OR_RETURN(double d, a.atomic().ToDouble());
        if (a.atomic().type() != AtomicType::kInteger) all_int = false;
        acc += d;
        ++n;
      }
    }
    if (n == 0) {
      if (fn == "sum") {
        if (!rest.empty()) return rest[0];
        return Sequence{Item::Integer(0)};
      }
      return Sequence{};
    }
    ev.CountBuffersAvoided(ctx);
    if (fn == "avg") {
      return Sequence{Item::Double(acc / static_cast<double>(n))};
    }
    if (all_int) return Sequence{Item::Integer(static_cast<int64_t>(acc))};
    return Sequence{Item::Double(acc)};
  }
  if (fn == "min" || fn == "max") {
    // min/max need the whole atomized input to pick the numeric-vs-string
    // comparison mode, so they buffer atoms — but never the source nodes.
    Sequence data;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, arg0.Next(&item));
      if (!more) break;
      Sequence atoms = xdm::Atomize(Sequence{std::move(item)});
      for (Item& a : atoms) data.push_back(std::move(a));
    }
    ev.CountMaterialized(ctx, data.size());
    if (data.empty()) return Sequence{};
    bool numeric = true;
    for (const Item& i : data) {
      if (!i.atomic().is_numeric() && !i.atomic().is_untyped()) {
        numeric = false;
        break;
      }
    }
    if (!numeric) {
      std::string best = data[0].StringValue();
      for (const Item& i : data) {
        std::string s = i.StringValue();
        if ((fn == "min") ? s < best : s > best) best = s;
      }
      return Sequence{Item::String(best)};
    }
    bool all_int = true;
    double best = 0;
    bool first = true;
    for (const Item& i : data) {
      XQ_ASSIGN_OR_RETURN(double d, i.atomic().ToDouble());
      if (i.atomic().type() != AtomicType::kInteger) all_int = false;
      if (first || (fn == "min" ? d < best : d > best)) best = d;
      first = false;
    }
    if (all_int) return Sequence{Item::Integer(static_cast<int64_t>(best))};
    return Sequence{Item::Double(best)};
  }
  return Status::Error("XPST0017",
                       "not a stream-consumable builtin: fn:" + fn);
}

}  // namespace xqib::xquery
