// Tree-walking evaluator for the XQIB dialect. One Evaluator can be
// reused across queries sharing a StaticContext (the plugin keeps one per
// page and re-enters it for every event listener call, Figure 1).

#ifndef XQIB_XQUERY_EVALUATOR_H_
#define XQIB_XQUERY_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/counters.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "xdm/item.h"
#include "xdm/stream.h"
#include "xquery/ast.h"
#include "xquery/context.h"

namespace xqib::xquery {

namespace analysis {
struct AnalysisFacts;
}  // namespace analysis
namespace federation {
struct FlworScatterPlan;
}  // namespace federation
namespace plan {
struct ModulePlans;
struct PlanEvaluatorAccess;
}  // namespace plan

struct EvaluatorStreams;

class Evaluator {
 public:
  explicit Evaluator(const StaticContext& sctx) : sctx_(sctx) {}

  // Runtime toggles for the path fast paths. All on by default; the
  // benchmark ablations flip them off to measure each axis in isolation.
  struct EvalOptions {
    // Skip SortDocumentOrderDedup for steps the optimizer annotated
    // order-preserving + duplicate-free.
    bool honor_sort_elision = true;
    // Route whole-tree descendant name steps (//name) through the
    // document's lazily built element-name index.
    bool use_name_index = true;
    // Stop evaluation early for bounded consumers: existence tests
    // ([pred], exists, empty, and/or/if/where conditions), positional
    // [1]/[last()], head/subsequence prefixes.
    bool bounded_eval = true;
    // Compose path steps, FLWOR clauses and sequence-valued builtins as
    // lazy pull streams (xdm::ItemStream). Off: every operator edge
    // re-materializes a full Sequence — the PR 2-era eager baseline the
    // benchmarks ablate against.
    bool stream_pipeline = true;
    // Allocate stream operators out of the DynamicContext's per-dispatch
    // arena instead of the heap. Off: every operator is a malloc/free
    // pair — the ablation baseline for the memory benchmarks.
    bool arena_streams = true;
    // Split whole-tree //name steps across the worker pool: the
    // element-name-index bucket is partitioned, each worker evaluates
    // the first predicate over its slice (with globally correct
    // position()/last()), and the kept nodes merge back in document
    // order. Requires a thread pool (set_thread_pool) and a bucket of
    // at least parallel_cutoff nodes; smaller buckets stay sequential —
    // the fork/join overhead would dominate.
    bool parallel_streams = true;
    size_t parallel_cutoff = 2048;
    // Dispatch user-declared function calls through compiled register
    // plans (xquery/plan/): the body is lowered once into flat bytecode
    // specialized by analyzer facts, cached process-wide on (source
    // hash, static-context fingerprint), and executed without AST
    // traversal. Off: every call tree-walks — the oracle the plan
    // ablation tests compare against.
    bool compiled_plans = true;
    // Propagate structured DOM deltas through the mutation pipeline:
    // PUL applications emit per-name membership deltas, the element-name
    // index splices touched buckets instead of rebuilding them, and
    // dispatch skips memoized listeners whose static read sets are
    // disjoint from the delta's write names without re-running them.
    // Off: the PR 6 survive-or-recompute path — the ablation oracle.
    bool delta_propagation = true;
    // Scatter-gather over remote sources: FLWOR bodies whose http:get
    // URLs are statically expressible (literals, or templates over the
    // loop variable) and provably free of reachable fabric writes issue
    // the whole batch as overlapping HttpFabric fetches before the tuple
    // loop runs; the http:get externals consume the in-flight futures.
    // Requires a DynamicContext::prefetcher (wired by the plugin). Off:
    // every remote call is a fresh serial round trip — the byte-identical
    // oracle the federation ablation tests compare against.
    bool async_federation = true;
  };
  const EvalOptions& options() const { return options_; }
  void set_options(const EvalOptions& options) { options_ = options; }

  // Cumulative fast-path counters across all Eval/CallFunction calls.
  // Relaxed atomics: parallel stream partitions and worker-slot commits
  // bump these from pool threads; copying the struct snapshots every
  // counter (the before/after delta idiom stays valid on the loop
  // thread).
  struct EvalStats {
    base::RelaxedCounter sorts_performed;
    base::RelaxedCounter sorts_elided;
    base::RelaxedCounter name_index_hits;
    // Bounded consumers (EBV witness, [N], [last()], exists/empty/head)
    // that stopped pulling before their producer was exhausted.
    base::RelaxedCounter early_exits;
    // fn:count answered from Document::ElementsByName without
    // instantiating any items.
    base::RelaxedCounter count_index_hits;
    // Streaming-pipeline counters (items pulled across operator edges,
    // items copied into Sequence buffers, operator edges kept lazy).
    xdm::StreamStats streams;
    // Memory-layer counters: bytes bump-allocated for stream operators,
    // wholesale arena resets, and interning-pool hits (snapshotted from
    // the process-wide pool at each arena reset).
    base::RelaxedCounter arena_bytes_used;
    base::RelaxedCounter arena_resets;
    base::RelaxedCounter intern_hits;
    // Partitioned //name[pred] scans: chunks evaluated on pool workers.
    base::RelaxedCounter parallel_predicate_chunks;
    // Compiled-plan counters: function plans compiled by this evaluator
    // (zero on every warm dispatch — asserted by the regression tests),
    // dispatches executed through a plan, compiled_plans-on dispatches
    // that fell back to the tree walker, process-wide cache entries
    // discarded on a static-context fingerprint mismatch, and bytes of
    // plan code + pools compiled.
    base::RelaxedCounter plan_compiles;
    base::RelaxedCounter plan_hits;
    base::RelaxedCounter plan_misses;
    base::RelaxedCounter plan_invalidations;
    base::RelaxedCounter plan_bytes;
    // Delta-propagation counters: structured deltas emitted by PUL
    // applications, per-bucket index splice operations, full index
    // rebuilds avoided by splicing, and memoized listeners skipped
    // without evaluation because their read sets missed the delta's
    // write names.
    struct DeltaStats {
      base::RelaxedCounter emitted;
      base::RelaxedCounter index_splices;
      base::RelaxedCounter bucket_rebuilds_avoided;
      base::RelaxedCounter listeners_skipped;
    };
    DeltaStats delta;
    // Async-federation counters: response-cache traffic (diffed from the
    // fabric by the dispatch host) and scatter-gather prefetch activity
    // (urls issued ahead of need, issued fetches consumed by http:get,
    // whole FLWOR batches scattered).
    struct HttpStats {
      base::RelaxedCounter cache_hits;
      base::RelaxedCounter cache_misses;
      base::RelaxedCounter prefetch_issued;
      base::RelaxedCounter prefetch_hits;
      base::RelaxedCounter scatter_batches;
    };
    HttpStats http;
  };
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }
  // Folds another evaluator's counters into this one — the dispatch
  // scheduler merges each worker slot's per-listener delta back into the
  // page evaluator so cumulative numbers match serial execution.
  void AddStats(const EvalStats& delta);
  // Direct access to the delta-propagation block: the plugin's dispatch
  // fast paths bump one or two of these per skipped listener, where a
  // full-struct AddStats merge would dominate the skip itself.
  EvalStats::DeltaStats& mutable_delta_stats() { return stats_.delta; }
  // Same idiom for the federation block: the plugin diffs fabric /
  // prefetcher counters around each dispatch and folds the delta here.
  EvalStats::HttpStats& mutable_http_stats() { return stats_.http; }

  // Evaluates an expression. Updating sub-expressions append to
  // ctx.pul(); the caller decides when to apply (snapshot vs scripting).
  Result<xdm::Sequence> Eval(const Expr& e, DynamicContext& ctx);

  // Lazily evaluates `e` as a pull stream. Work is deferred into Next()
  // calls for the lazy kinds (paths, filters, FLWOR without order by,
  // sequence concatenation, ranges); everything else evaluates eagerly
  // and streams the buffered result. With stream_pipeline off this
  // always materializes first.
  Result<xdm::StreamPtr> EvalStream(const Expr& e, DynamicContext& ctx);

  // Effective boolean value of a stream: pulls at most two items (the
  // second only to reproduce FORG0006 on multi-atomic sequences).
  Result<bool> StreamEBV(xdm::ItemStream& s, DynamicContext& ctx);

  // Counter hooks shared by the stream operators and the builtin
  // library when it drains argument streams (profiler-mirrored).
  void CountPulled(DynamicContext& ctx, uint64_t n = 1);
  void CountMaterialized(DynamicContext& ctx, uint64_t n);
  void CountBuffersAvoided(DynamicContext& ctx, uint64_t n = 1);
  void CountEarlyExit(DynamicContext& ctx);
  void CountArenaAlloc(DynamicContext& ctx, uint64_t bytes);

  // Resets ctx's per-dispatch arena (the host calls this after the XQUF
  // apply pass, when no streams are live) and refreshes the arena /
  // interning snapshots in EvalStats and the profiler.
  void ResetDispatchArena(DynamicContext& ctx);

  // The arena stream operators allocate from under the current options
  // (null = heap, the ablation baseline).
  xdm::Arena* StreamArena(DynamicContext& ctx) {
    return options_.arena_streams ? &ctx.arena() : nullptr;
  }

  // Invokes a user-declared or external function with pre-evaluated
  // arguments. Used by the plugin to dispatch event listeners.
  Result<xdm::Sequence> CallFunction(const xml::QName& name,
                                     std::vector<xdm::Sequence> args,
                                     DynamicContext& ctx);

  // Scripting "exit with": set while unwinding; cleared by function-call
  // boundaries and by TakeExitValue().
  bool exited() const { return exit_flag_; }
  xdm::Sequence TakeExitValue() {
    exit_flag_ = false;
    return std::move(exit_value_);
  }

  const StaticContext& static_context() const { return sctx_; }

  // Analyzer facts (type/cardinality/purity) used to specialize plan
  // compilation. Optional: without them plans still compile, just
  // without the fact-driven opcode specializations. Shared ownership so
  // page evaluators and their worker-slot clones see one facts object.
  void set_analysis_facts(
      std::shared_ptr<const analysis::AnalysisFacts> facts) {
    facts_ = std::move(facts);
  }
  const analysis::AnalysisFacts* analysis_facts() const {
    return facts_.get();
  }

  // Worker pool for EvalOptions::parallel_streams (null = sequential).
  // Worker-slot evaluators run with a null pool: a listener already
  // executing on a worker thread must not fork again.
  void set_thread_pool(base::ThreadPool* pool) { pool_ = pool; }
  base::ThreadPool* thread_pool() const { return pool_; }

 private:
  friend struct EvaluatorStreams;
  friend struct plan::PlanEvaluatorAccess;

  // Resolves this evaluator's compiled plans against the process-wide
  // cache (compiling on a cold or invalidated key) and memoizes the
  // result, so the warm dispatch path performs zero cache probes and
  // zero compiles. Called only when options_.compiled_plans is on.
  void EnsurePlans();

  // The per-kind dispatch; Eval wraps it with optional profiling.
  Result<xdm::Sequence> EvalImpl(const Expr& e, DynamicContext& ctx);
  // EvalStream with an ordering requirement: consumers that only
  // observe (non-)emptiness pass ordered_required=false, letting the
  // final path step skip its document-order barrier.
  Result<xdm::StreamPtr> EvalStreamOrdered(const Expr& e, DynamicContext& ctx,
                                           bool ordered_required);
  // Drains a stream into a Sequence, accounting the buffer.
  Result<xdm::Sequence> MaterializeFrom(xdm::StreamPtr s, DynamicContext& ctx);
  // Composes one pull stream per path step (axis cursor + optional sort
  // barrier); the initial context sequence evaluates eagerly.
  Result<xdm::StreamPtr> BuildPathStream(const Expr& e, DynamicContext& ctx,
                                         bool ordered_required);
  Result<xdm::StreamPtr> BuildFilterStream(const Expr& e, DynamicContext& ctx);
  // The initial context sequence of a path (kids[0] / root / focus).
  Result<xdm::Sequence> PathInput(const Expr& e, DynamicContext& ctx);
  // Eager per-step path loop — the stream_pipeline=false ablation
  // baseline and the oracle the streaming tests compare against.
  Result<xdm::Sequence> EvalPathEager(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalStep(const Step& step, xml::Node* node,
                                 DynamicContext& ctx);
  // Evaluates `e` and returns its effective boolean value; lazy kinds
  // stream and stop at the first witness item.
  Result<bool> EvalBool(const Expr& e, DynamicContext& ctx);
  // Element-name-index bucket for a whole-tree descendant name step
  // from `origin`, or nullptr when not applicable. *skip_origin is set
  // when the origin itself must be excluded (descendant:: axis).
  const std::vector<xml::Node*>* IndexedStepBucket(const Step& step,
                                                   xml::Node* origin,
                                                   bool* skip_origin);
  // Whole-tree descendant name step answered from the document's
  // element-name index; fills *out (doc order, duplicate-free, step
  // predicates NOT yet applied) and returns true when applicable.
  bool TryIndexedStep(const Step& step, const xdm::Sequence& current,
                      xdm::Sequence* out);
  // fn:count over a bare //name path answered from the index size
  // without instantiating items.
  bool TryFastCount(const Expr& arg, DynamicContext& ctx, int64_t* out);
  // Conservative static scan: could evaluating `e` as a predicate
  // observe fn:last() (directly or through a called function, which
  // inherits the focus in the XQIB dialect)? Memoized per node.
  bool NeedsLast(const Expr& e);
  Result<xdm::Sequence> ApplyPredicates(
      const std::vector<ExprPtr>& predicates, xdm::Sequence input,
      DynamicContext& ctx);
  Result<xdm::Sequence> ApplyOnePredicate(const Expr& pred,
                                          xdm::Sequence input,
                                          DynamicContext& ctx);
  Result<xdm::Sequence> EvalFLWOR(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalQuantified(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalComparison(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalArith(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalSetOp(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalFunctionCall(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalCast(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalFtContains(const Expr& e, DynamicContext& ctx);
  Result<bool> EvalFtSelection(const FtSelection& sel,
                               const std::vector<std::string>& tokens,
                               DynamicContext& ctx);
  Result<xdm::Sequence> EvalDirectElement(const Expr& e, DynamicContext& ctx);
  Result<xml::Node*> BuildDirectNode(const DirectNode& d, xml::Document* doc,
                                     DynamicContext& ctx);
  Result<xdm::Sequence> EvalComputedConstructor(const Expr& e,
                                                DynamicContext& ctx);
  Status AppendContent(const xdm::Sequence& content, xml::Node* parent,
                       xml::Document* doc);
  Result<xdm::Sequence> EvalInsert(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalDelete(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalReplace(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalRename(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalTransform(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalBlock(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalWhile(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalBrowserExtension(const Expr& e,
                                             DynamicContext& ctx);

  // Checks a value against a sequence type (instance of / treat).
  Result<bool> MatchesSequenceType(const xdm::Sequence& value,
                                   const SequenceType& st);

  // Conservative static scan for the parallel-stream gate: is `e` safe
  // to evaluate concurrently against a read-only document snapshot?
  // (No updates/scripting/host effects, no fn:position/fn:last — chunk
  // focus positions are an implementation detail — and declared-function
  // calls only to nothing: builtins of fn:/xs: minus doc/put/trace and
  // the interactive browser dialogs.) Memoized per node.
  bool ParallelSafePredicate(const Expr& e);
  // Parallel predicate evaluation over an indexed //name bucket:
  // partitions `input` across the pool, evaluates `pred` per node, and
  // fills `out` with the kept nodes in document order. With
  // `global_positions` (single-origin descendant::name step) a numeric
  // predicate value selects by global index; without it (the
  // uncollapsed //name form, where positions are per-parent) a numeric
  // value makes the whole call abandon — the caller falls back to the
  // sequential stream. Returns false when the gate declines (no pool,
  // bucket under cutoff, unsafe predicate, runtime positional abandon).
  bool TryParallelPredicate(const Expr& pred, const xdm::Sequence& input,
                            DynamicContext& ctx, bool global_positions,
                            Result<xdm::Sequence>* out);

  // Async federation: if `e` is a FLWOR whose remote GETs are templated
  // over the loop variable (federation::AnalyzeFlworScatter, memoized
  // per node) and the binding is pure enough to pre-evaluate, issues the
  // whole URL batch through ctx.prefetcher before the tuple loop runs.
  // Called from both the eager and the streaming FLWOR paths.
  void MaybeScatterFlwor(const Expr& e, DynamicContext& ctx);

  const StaticContext& sctx_;
  bool exit_flag_ = false;
  xdm::Sequence exit_value_;
  EvalOptions options_;
  EvalStats stats_;
  base::ThreadPool* pool_ = nullptr;
  std::unordered_map<const Expr*, bool> needs_last_cache_;
  std::unordered_map<const Expr*, bool> parallel_safe_cache_;
  // Memoized federation::AnalyzeFlworScatter results (the analysis walks
  // the whole call graph under the FLWOR; dispatch re-enters the same
  // listener bodies every event).
  std::unordered_map<const Expr*,
                     std::shared_ptr<const federation::FlworScatterPlan>>
      scatter_plan_cache_;
  std::shared_ptr<const analysis::AnalysisFacts> facts_;
  // Memoized plan resolution (EnsurePlans): null until the first
  // compiled_plans dispatch, then pinned for as long as the static
  // context keys match. Loop-thread / slot-thread discipline like the
  // memo caches above — an Evaluator is never re-entered concurrently.
  std::shared_ptr<const plan::ModulePlans> plans_;
  uint64_t plans_source_hash_ = 0;
  uint64_t plans_fingerprint_ = 0;
};

// Built-in function dispatch (functions.cc). Sets *handled=false if the
// name is not a known built-in.
Result<xdm::Sequence> CallBuiltinFunction(const xml::QName& name,
                                          std::vector<xdm::Sequence>& args,
                                          Evaluator& ev, DynamicContext& ctx,
                                          bool* handled);

// How a builtin may consume its first argument as a stream (functions.cc):
// kFold drains without buffering (count, sum, avg, min, max); kEarlyExit
// additionally stops pulling once decided (exists, empty, boolean, not,
// head, subsequence). kNone: not stream-consumable at this arity.
enum class StreamFnClass { kNone, kFold, kEarlyExit };
StreamFnClass ClassifyStreamBuiltin(const xml::QName& name, size_t arity);
// True when the builtin's result depends on the order (or duplicates)
// of its first argument, so the path feeding it may not skip its final
// document-order barrier.
bool StreamBuiltinNeedsOrderedArg(const std::string& local);
// Dispatches a stream-consumable builtin: arg0 is pulled lazily, `rest`
// holds the remaining (eagerly evaluated) arguments.
Result<xdm::Sequence> CallStreamBuiltin(const xml::QName& name,
                                        xdm::ItemStream& arg0,
                                        std::vector<xdm::Sequence>& rest,
                                        Evaluator& ev, DynamicContext& ctx);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_EVALUATOR_H_
