// Tree-walking evaluator for the XQIB dialect. One Evaluator can be
// reused across queries sharing a StaticContext (the plugin keeps one per
// page and re-enters it for every event listener call, Figure 1).

#ifndef XQIB_XQUERY_EVALUATOR_H_
#define XQIB_XQUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "xdm/item.h"
#include "xquery/ast.h"
#include "xquery/context.h"

namespace xqib::xquery {

class Evaluator {
 public:
  explicit Evaluator(const StaticContext& sctx) : sctx_(sctx) {}

  // Runtime toggles for the path fast paths. All on by default; the
  // benchmark ablations flip them off to measure each axis in isolation.
  struct EvalOptions {
    // Skip SortDocumentOrderDedup for steps the optimizer annotated
    // order-preserving + duplicate-free.
    bool honor_sort_elision = true;
    // Route whole-tree descendant name steps (//name) through the
    // document's lazily built element-name index.
    bool use_name_index = true;
    // Stop path evaluation early for existence tests ([pred], exists,
    // empty, and/or/if/where conditions) and positional [1]/[last()].
    bool bounded_eval = true;
  };
  const EvalOptions& options() const { return options_; }
  void set_options(const EvalOptions& options) { options_ = options; }

  // Cumulative fast-path counters across all Eval/CallFunction calls.
  struct EvalStats {
    uint64_t sorts_performed = 0;
    uint64_t sorts_elided = 0;
    uint64_t name_index_hits = 0;
    uint64_t early_exits = 0;
  };
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

  // Evaluates an expression. Updating sub-expressions append to
  // ctx.pul(); the caller decides when to apply (snapshot vs scripting).
  Result<xdm::Sequence> Eval(const Expr& e, DynamicContext& ctx);

  // Invokes a user-declared or external function with pre-evaluated
  // arguments. Used by the plugin to dispatch event listeners.
  Result<xdm::Sequence> CallFunction(const xml::QName& name,
                                     std::vector<xdm::Sequence> args,
                                     DynamicContext& ctx);

  // Scripting "exit with": set while unwinding; cleared by function-call
  // boundaries and by TakeExitValue().
  bool exited() const { return exit_flag_; }
  xdm::Sequence TakeExitValue() {
    exit_flag_ = false;
    return std::move(exit_value_);
  }

  const StaticContext& static_context() const { return sctx_; }

 private:
  // The per-kind dispatch; Eval wraps it with optional profiling.
  Result<xdm::Sequence> EvalImpl(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalPath(const Expr& e, DynamicContext& ctx,
                                 DynamicContext::EvalLimit limit);
  Result<xdm::Sequence> EvalStep(const Step& step, xml::Node* node,
                                 DynamicContext& ctx);
  // Evaluates `e` and returns its effective boolean value; for path
  // operands it arms an existence limit first so the path stops at the
  // first witness node.
  Result<bool> EvalBool(const Expr& e, DynamicContext& ctx);
  // Whole-tree descendant name step answered from the document's
  // element-name index; fills *out (doc order, duplicate-free, step
  // predicates NOT yet applied) and returns true when applicable.
  bool TryIndexedStep(const Step& step, const xdm::Sequence& current,
                      xdm::Sequence* out);
  Result<xdm::Sequence> ApplyPredicates(
      const std::vector<ExprPtr>& predicates, xdm::Sequence input,
      DynamicContext& ctx);
  Result<xdm::Sequence> EvalFLWOR(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalQuantified(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalComparison(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalArith(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalSetOp(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalFunctionCall(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalCast(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalFtContains(const Expr& e, DynamicContext& ctx);
  Result<bool> EvalFtSelection(const FtSelection& sel,
                               const std::vector<std::string>& tokens,
                               DynamicContext& ctx);
  Result<xdm::Sequence> EvalDirectElement(const Expr& e, DynamicContext& ctx);
  Result<xml::Node*> BuildDirectNode(const DirectNode& d, xml::Document* doc,
                                     DynamicContext& ctx);
  Result<xdm::Sequence> EvalComputedConstructor(const Expr& e,
                                                DynamicContext& ctx);
  Status AppendContent(const xdm::Sequence& content, xml::Node* parent,
                       xml::Document* doc);
  Result<xdm::Sequence> EvalInsert(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalDelete(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalReplace(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalRename(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalTransform(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalBlock(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalWhile(const Expr& e, DynamicContext& ctx);
  Result<xdm::Sequence> EvalBrowserExtension(const Expr& e,
                                             DynamicContext& ctx);

  // Checks a value against a sequence type (instance of / treat).
  Result<bool> MatchesSequenceType(const xdm::Sequence& value,
                                   const SequenceType& st);

  const StaticContext& sctx_;
  bool exit_flag_ = false;
  xdm::Sequence exit_value_;
  EvalOptions options_;
  EvalStats stats_;
};

// Built-in function dispatch (functions.cc). Sets *handled=false if the
// name is not a known built-in.
Result<xdm::Sequence> CallBuiltinFunction(const xml::QName& name,
                                          std::vector<xdm::Sequence>& args,
                                          Evaluator& ev, DynamicContext& ctx,
                                          bool* handled);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_EVALUATOR_H_
