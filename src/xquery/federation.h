// Static analysis for async federation (scatter-gather prefetch): which
// remote GET round trips inside a listener body or FLWOR can be issued
// as one overlapping batch before evaluation reaches them.
//
// A prefetch is only sound when the response the future carries equals
// the response the in-line call would have seen: the analysis therefore
// aborts (safe=false / inapplicable) whenever anything reachable from
// the expression can write the fabric between issue and consume —
// http:put, fn:put, an unknown external (webservice stubs run arbitrary
// server-side code), or a synchronous event trigger. DOM updates and
// scripting assignments never touch the fabric and stay eligible; fn:doc
// resolves against the in-process XmlStore, not the fabric, so it is
// neither a hazard nor a prefetch target.

#ifndef XQIB_XQUERY_FEDERATION_H_
#define XQIB_XQUERY_FEDERATION_H_

#include <string>
#include <vector>

#include "xquery/ast.h"
#include "xquery/context.h"

namespace xqib::xquery::federation {

// Statically-constant string value of `e`: a string-like literal or
// fn:concat over such. Returns false when any part is dynamic.
bool StaticStringValue(const Expr& e, std::string* out);

// The statically-known remote GETs reachable from an expression.
struct StaticFetchPlan {
  // False when a fabric write is reachable; urls is empty then.
  bool safe = false;
  // Statically-constant http:get / http:get-text URLs, deduped, in
  // discovery order. URLs computed from runtime values are not listed
  // (the FLWOR scatter below covers the loop-shaped ones).
  std::vector<std::string> urls;
};

// Walks `body`, recursing into user-declared functions via `sctx`
// (cycle-proof, bounded depth).
StaticFetchPlan CollectStaticFetchUrls(const Expr& body,
                                       const StaticContext& sctx);

// Listener entry point: the declared function's body (external or
// body-less declarations yield safe=false).
StaticFetchPlan CollectListenerFetchUrls(const FunctionDecl& fn,
                                         const StaticContext& sctx);

// A URL built per tuple from literal fragments and the loop variable's
// string value, e.g. concat("http://", $site, "/api").
struct UrlTemplate {
  struct Part {
    std::string literal;
    bool is_var = false;  // slot for the loop variable
  };
  std::vector<Part> parts;
  bool has_var = false;
};

std::string InstantiateUrl(const UrlTemplate& t, const std::string& var_value);

// Per-tuple scatter over a FLWOR: applicable when the expression is a
// single unordered `for` over one variable, nothing reachable writes
// the fabric, and at least one http:get in the where/return has a URL
// expressible as a template over that variable. The caller must still
// prove the binding expression pure enough to evaluate twice (the
// scatter evaluates it once ahead of the tuple loop).
struct FlworScatterPlan {
  bool applicable = false;
  const Expr* binding = nullptr;
  xml::QName loop_var;
  std::vector<UrlTemplate> templates;
};

FlworScatterPlan AnalyzeFlworScatter(const Expr& flwor,
                                     const StaticContext& sctx);

// True when the syntactic subtree contains an http:* extension call
// (no recursion into callees). The plan compiler uses this to keep
// federated FLWORs on the tree walker, where the scatter hook lives —
// a remote round trip dwarfs any register-plan gain, and plans are
// cached process-wide so the decision must not depend on per-evaluator
// options.
bool ContainsFabricCall(const Expr& e);

}  // namespace xqib::xquery::federation

#endif  // XQIB_XQUERY_FEDERATION_H_
