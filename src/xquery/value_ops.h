// Value-level kernels shared by the tree-walking evaluator and the
// compiled-plan executor (xquery/plan/): arithmetic and comparison over
// already-evaluated sequences, and XQUF pending-update primitive
// construction over already-evaluated operands. Keeping one copy of
// these semantics is what lets the tree walker stay the oracle for the
// bytecode path — both lower onto the exact same kernels.

#ifndef XQIB_XQUERY_VALUE_OPS_H_
#define XQIB_XQUERY_VALUE_OPS_H_

#include <string_view>

#include "base/result.h"
#include "xdm/item.h"
#include "xquery/ast.h"
#include "xquery/update.h"

namespace xqib::xquery::valueops {

// Atomizes `seq` and requires exactly one atomic value (XPTY0004
// otherwise); `what` names the construct for the error message.
Result<xdm::AtomicValue> RequireSingleAtomic(const xdm::Sequence& seq,
                                             std::string_view what);

// Untyped promotion for general comparisons: untyped vs numeric compares
// numerically, untyped vs anything else compares as string.
Result<int> GeneralCompareAtoms(const xdm::AtomicValue& a,
                                const xdm::AtomicValue& b);

// Whether a three-way comparison result (with 2 = NaN/unordered)
// satisfies the comparison operator.
bool CompareSatisfies(int cmp, CompOp op);

// Full comparison semantics over evaluated operands: node comparisons
// (is / << / >>), existential general comparisons, and singleton value
// comparisons with untyped-to-string promotion.
Result<xdm::Sequence> CompareSequences(CompOp op, const xdm::Sequence& lhs,
                                       const xdm::Sequence& rhs);

// Unary +/- over an evaluated operand (empty in, empty out).
Result<xdm::Sequence> ArithUnary(ArithOp op, const xdm::Sequence& v);

// Binary arithmetic over evaluated operands: integer fast path with
// exact-division decimal promotion, double path otherwise, FOAR0001 on
// zero divisors.
Result<xdm::Sequence> ArithSequences(ArithOp op, const xdm::Sequence& lhs,
                                     const xdm::Sequence& rhs);

// --- XQUF pending-update construction (operands already evaluated) ---
//
// Each builder performs the target/content checks of the corresponding
// update expression and appends primitives to `pul`. The evaluating side
// only contributes operand evaluation order.

Status BuildInsert(InsertMode mode, const xdm::Sequence& source,
                   const xdm::Sequence& target_seq, PendingUpdateList* pul);
Status BuildDelete(const xdm::Sequence& targets, PendingUpdateList* pul);
Status BuildReplace(bool replace_value_of, const xdm::Sequence& target_seq,
                    const xdm::Sequence& source, PendingUpdateList* pul);
Status BuildRename(const xdm::Sequence& target_seq,
                   const xdm::Sequence& name_seq, PendingUpdateList* pul);

}  // namespace xqib::xquery::valueops

#endif  // XQIB_XQUERY_VALUE_OPS_H_
