#include "xquery/fulltext.h"

#include "base/strings.h"

namespace xqib::xquery {

namespace {

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || static_cast<unsigned char>(c) >= 0x80;
}

}  // namespace

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string StemWord(std::string_view word) {
  std::string w = AsciiToLower(word);
  auto strip = [&](std::string_view suffix, size_t min_stem) {
    if (w.size() >= suffix.size() + min_stem && EndsWith(w, suffix)) {
      w.resize(w.size() - suffix.size());
      return true;
    }
    return false;
  };
  // Plural / verb forms, longest suffix first.
  if (strip("sses", 2)) {
    w += "ss";
  } else if (strip("ies", 2)) {
    w += "i";
  } else if (!EndsWith(w, "ss")) {
    strip("s", 2);
  }
  if (strip("eed", 1)) {
    w += "ee";
  } else if (strip("ing", 2) || strip("ed", 2)) {
    // undouble final consonant: running -> run
    if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
        w.back() != 'l' && w.back() != 's' && w.back() != 'z') {
      w.pop_back();
    }
  }
  strip("ly", 2);
  if (strip("ment", 2) || strip("ness", 2) || strip("tion", 2)) {
    // stripped derivational suffixes
  }
  return w;
}

bool ContainsPhrase(const std::vector<std::string>& tokens,
                    std::string_view phrase, bool stemming) {
  std::vector<std::string> needle = TokenizeWords(phrase);
  if (needle.empty()) return false;
  if (stemming) {
    for (std::string& t : needle) t = StemWord(t);
  }
  if (needle.size() > tokens.size()) return false;
  for (size_t i = 0; i + needle.size() <= tokens.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      const std::string& hay =
          stemming ? StemWord(tokens[i + j]) : tokens[i + j];
      if (hay != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace xqib::xquery
