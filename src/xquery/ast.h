// AST for the XQuery dialect implemented by XQIB: XPath 2.0 core, FLWOR,
// constructors, full-text ftcontains (simplified), the Update Facility,
// the Scripting Extension, and the paper's browser grammar extensions
// (Sections 4.3-4.5: event attach/detach/trigger, behind, set/get style).
//
// The AST is a tagged tree: one Expr node type with a kind discriminator.
// This keeps the evaluator a single dense switch (the idiom used by
// several production query interpreters) at the cost of per-kind field
// documentation, given below.

#ifndef XQIB_XQUERY_AST_H_
#define XQIB_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xdm/item.h"
#include "xml/qname.h"

namespace xqib::xquery {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,      // atom
  kVarRef,       // qname (resolved variable name)
  kContextItem,  // "."
  kSequence,     // kids: comma operands
  kRange,        // kids: [lo, hi]
  kArith,        // op in {+,-,*,div,idiv,mod}; kids: [lhs, rhs]
  kUnary,        // op in {+,-}; kids: [operand]
  kComparison,   // op; kids: [lhs, rhs]
  kLogical,      // op in {and, or}; kids: [lhs, rhs]
  kPath,         // kids[0] optional initial expr; steps; flag root-anchored
  kFilter,       // kids[0] primary; predicates
  kFLWOR,        // clauses; kids[0] = return expr; optional where/order
  kQuantified,   // op in {some, every}; clauses (for-like); kids[0] = test
  kIf,           // kids: [cond, then, else]
  kFunctionCall, // qname; kids: args
  kCast,         // op = "cast"|"castable"|"treat"|"instance"; target type
  kTypeswitch,   // kids[0]=operand, kids[1]=default expr; clauses+case_types
  kSetOp,        // str in {"union","intersect","except"}; kids: [lhs, rhs]
  kFtContains,   // kids[0] = searched expr; ft root in ft
  kDirectElement,    // direct constructor tree (see DirectNode)
  kComputedElement,  // qname or kids[0]=name expr; kids[1] = content
  kComputedAttribute,
  kComputedText,     // kids[0] = content
  kComputedComment,
  kComputedPI,       // literal target in str
  kEnclosed,         // kids[0]: expression enclosed in { } inside content

  // --- XQuery Update Facility ---
  kInsert,   // insert_mode; kids: [source, target]
  kDelete,   // kids: [target]
  kReplace,  // flag value_of; kids: [target, source]
  kRename,   // kids: [target, new-name expr]
  kTransform,  // copy $var := expr modify expr return expr

  // --- Scripting Extension ---
  kBlock,     // kids: statements, executed sequentially
  kVarDecl,   // qname; kids[0] optional init (block-local declare)
  kAssign,    // qname; kids[0] = value ("set $x := e" / "$x := e")
  kWhile,     // kids: [cond, body]
  kExitWith,  // kids: [value]

  // --- Browser extensions (paper Sections 4.3-4.5) ---
  kEventAttach,   // kids: [event-name, target]; listener qname; flag behind
  kEventDetach,   // kids: [event-name, target]; listener qname
  kEventTrigger,  // kids: [event-name, target]
  kSetStyle,      // kids: [property, target, value]
  kGetStyle,      // kids: [property, target]
};

enum class ArithOp { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

enum class CompOp {
  // General comparisons (existential over sequences).
  kGenEq, kGenNe, kGenLt, kGenLe, kGenGt, kGenGe,
  // Value comparisons (singleton).
  kValEq, kValNe, kValLt, kValLe, kValGt, kValGe,
  // Node comparisons.
  kIs, kPrecedes, kFollows,
};

enum class Axis {
  kChild, kDescendant, kDescendantOrSelf, kSelf, kAttribute,
  kParent, kAncestor, kAncestorOrSelf,
  kFollowingSibling, kPrecedingSibling, kFollowing, kPreceding,
};

const char* AxisName(Axis axis);

// A node test within a path step.
struct NodeTest {
  enum class Kind {
    kName,        // element/attribute name test, possibly wildcarded
    kAnyKind,     // node()
    kText,        // text()
    kComment,     // comment()
    kPI,          // processing-instruction([name])
    kElement,     // element() / element(name)
    kAttribute,   // attribute() / attribute(name)
    kDocument,    // document-node()
  };
  Kind kind = Kind::kName;
  xml::QName name;        // for kName/kElement/kAttribute/kPI
  bool any_name = false;  // "*"
  bool any_ns = false;    // "*:local"
  bool any_local = false; // "prefix:*"
};

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;
  // Set by the optimizer's ordering pass: the step's raw output (before
  // the evaluator's per-step sort) is statically known to be in document
  // order / duplicate-free given the proven context state. When both
  // hold the evaluator elides SortDocumentOrderDedup for the step.
  bool preserves_order = false;
  bool no_duplicates = false;
};

// FLWOR / quantified binding clause.
struct Clause {
  enum class Kind { kFor, kLet };
  Kind kind = Kind::kFor;
  xml::QName var;
  xml::QName pos_var;      // "at $i"; empty local means absent
  ExprPtr expr;
  size_t source_pos = 0;   // byte offset of the bound variable
};

struct OrderSpec {
  ExprPtr key;
  bool descending = false;
  bool empty_greatest = false;
};

// Simplified full-text selection tree (ftand / ftor / ftnot / words).
struct FtSelection {
  enum class Kind { kWords, kAnd, kOr, kNot };
  Kind kind = Kind::kWords;
  ExprPtr words;          // for kWords: evaluates to search string(s)
  bool with_stemming = false;
  std::vector<std::unique_ptr<FtSelection>> kids;
};

// Direct constructor content node.
struct DirectNode {
  enum class Kind { kElement, kText, kEnclosedExpr, kComment, kPI };
  Kind kind = Kind::kElement;
  xml::QName name;    // element name (prefix kept; ns resolved statically)
  std::string text;   // text content / comment text / PI data
  ExprPtr expr;       // enclosed expression
  // Attributes: value is a concatenation of literal and enclosed parts.
  struct AttrPart {
    std::string literal;
    ExprPtr expr;  // set => enclosed part
  };
  struct Attr {
    xml::QName name;
    std::vector<AttrPart> parts;
  };
  std::vector<Attr> attrs;
  std::vector<std::unique_ptr<DirectNode>> children;
};

enum class InsertMode { kInto, kAsFirstInto, kAsLastInto, kBefore, kAfter };

// Minimal sequence-type info used by cast/instance-of and declarations.
struct SequenceType {
  enum class Occurrence { kOne, kOptional, kStar, kPlus };
  Occurrence occ = Occurrence::kOne;
  // Item type: an atomic xs: type, or generic tests.
  enum class ItemKind { kAtomic, kAnyItem, kAnyNode, kElement, kAttribute,
                        kText, kDocument, kEmptySequence };
  ItemKind item = ItemKind::kAnyItem;
  xdm::AtomicType atomic = xdm::AtomicType::kUntypedAtomic;
  // True when the type was written in the source (an `as` clause); the
  // static analyzer only trusts declared types.
  bool declared = false;
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;
  size_t source_pos = 0;

  // Generic children; meaning depends on kind (see enum comments).
  std::vector<ExprPtr> kids;

  // kLiteral
  xdm::AtomicValue atom;

  // kVarRef / kFunctionCall / kComputed* / kVarDecl / kAssign /
  // kEventAttach/kEventDetach (listener name)
  xml::QName qname;

  // kArith / kUnary
  ArithOp arith_op = ArithOp::kAdd;
  // kComparison
  CompOp comp_op = CompOp::kGenEq;
  // kLogical: true = and, false = or
  bool logical_and = true;

  // kPath
  bool root_anchored = false;
  std::vector<Step> steps;

  // kFilter
  std::vector<ExprPtr> predicates;

  // kFLWOR / kQuantified
  std::vector<Clause> clauses;
  ExprPtr where;
  std::vector<OrderSpec> order_specs;
  bool quant_every = false;

  // kCast
  std::string cast_op;  // "cast" | "castable" | "treat" | "instance"
  SequenceType seq_type;
  // kTypeswitch: one type per case clause (parallel to `clauses`)
  std::vector<SequenceType> case_types;

  // kFtContains
  std::unique_ptr<FtSelection> ft;

  // kDirectElement
  std::unique_ptr<DirectNode> direct;

  // kComputedPI target / kInsert string fields etc.
  std::string str;

  // kInsert
  InsertMode insert_mode = InsertMode::kInto;
  // kReplace
  bool replace_value_of = false;
  // kEventAttach: paper's "behind" (async completion event, §4.4)
  bool behind = false;
  // kVarDecl/kTransform copy var handled via qname + kids.
};

ExprPtr MakeExpr(ExprKind kind);

// Parameter of a user-declared function.
struct Param {
  xml::QName name;
  SequenceType type;
  size_t source_pos = 0;
};

// A user function from the prolog.
struct FunctionDecl {
  xml::QName name;
  std::vector<Param> params;
  SequenceType return_type;
  ExprPtr body;        // null for external functions
  bool updating = false;
  bool sequential = false;
  bool external = false;
  size_t source_pos = 0;  // byte offset of the function name
};

// A prolog variable declaration.
struct VarDecl {
  xml::QName name;
  ExprPtr init;  // null for external
  bool external = false;
  SequenceType type;      // `as` clause; type.declared marks presence
  size_t source_pos = 0;  // byte offset of the variable name
};

// A parsed module: prolog + body (body may be null for library modules).
struct Module {
  // Module declaration (library modules / web-service modules, §3.4).
  bool is_library = false;
  std::string module_ns;
  std::string module_prefix;
  int service_port = 0;  // the paper's "port:2001" extension; 0 = none

  std::vector<std::pair<std::string, std::string>> namespaces;  // prefix,uri
  std::string default_element_ns;
  std::vector<std::pair<std::string, std::string>> options;  // clark,value
  std::vector<VarDecl> variables;
  std::vector<std::shared_ptr<FunctionDecl>> functions;
  // import module namespace p="uri" at "loc";
  struct Import {
    std::string prefix;
    std::string ns;
    std::string location;
  };
  std::vector<Import> imports;

  ExprPtr body;

  // Original query text, retained so diagnostics can map byte offsets
  // (Expr::source_pos) to line/column positions.
  std::string source_text;
};

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_AST_H_
