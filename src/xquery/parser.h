// Recursive-descent parser for the XQIB XQuery dialect.
//
// Grammar coverage: XQuery 1.0 core expressions (FLWOR, quantified, if,
// paths with all axes, constructors, operators, casts), the Update
// Facility, the Scripting Extension (blocks, declare/set variables,
// while, exit with), simplified XQuery Full Text (ftcontains with
// ftand/ftor/ftnot and "with stemming"), and the browser grammar
// extensions the paper proposes in Sections 4.3-4.5:
//
//   EventAttach  ::= "on" "event" ExprSingle ("at"|"behind") ExprSingle
//                    "attach" "listener" QName
//   EventDetach  ::= "on" "event" ExprSingle "at" ExprSingle
//                    "detach" "listener" QName
//   EventTrigger ::= "trigger" "event" ExprSingle "at" ExprSingle
//   SetStyleExpr ::= "set" "style" ExprSingle "of" ExprSingle
//                    "to" ExprSingle
//   GetStyleExpr ::= "get" "style" ExprSingle "of" ExprSingle

#ifndef XQIB_XQUERY_PARSER_H_
#define XQIB_XQUERY_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/result.h"
#include "xquery/ast.h"
#include "xquery/lexer.h"

namespace xqib::xquery {

// Parses a main or library module. Statically resolves QNames against the
// prolog's namespace declarations plus the built-in bindings (xs, fn,
// local, browser, http).
Result<std::unique_ptr<Module>> ParseModule(std::string_view query);

// Parses a single expression (no prolog); convenience for tests/XPath.
Result<std::unique_ptr<Module>> ParseExpression(std::string_view expr);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_PARSER_H_
